"""Image processing one-pixel-per-PE: distance transform + labelling.

The paper's Section 2 notes its communication primitives are the ones used
to implement the EDT algorithm; this demo maps a 16x16 binary image onto a
16x16 PPA and runs the two classic grid kernels:

* a city-block distance transform (wavefront over nearest-neighbour shifts),
* connected-component labelling, where straight runs of foreground pixels
  collapse over the reconfigurable buses in a single transaction — the
  switch-box payoff, made visible in the iteration counts.

Run:  python examples/image_processing.py
"""

import numpy as np

from repro.apps import connected_components, distance_transform, random_blobs
from repro.ppa import PPAConfig, PPAMachine

N = 16


def show(grid, fmt) -> None:
    for row in grid:
        print(" ".join(fmt(v) for v in row))
    print()


def main() -> None:
    img = random_blobs(N, blobs=4, radius=2, seed=11)

    print("input image (# = feature pixel):\n")
    show(img, lambda v: "#" if v else ".")

    dt = distance_transform(PPAMachine(PPAConfig(n=N)), img)
    print(
        f"city-block distance transform "
        f"({dt.iterations} wavefront iterations, "
        f"{dt.counters['shifts']} shifts):\n"
    )
    show(dt.distances, lambda v: f"{min(int(v), 35):>2x}")

    fast = connected_components(PPAMachine(PPAConfig(n=N)), img, use_buses=True)
    slow = connected_components(PPAMachine(PPAConfig(n=N)), img, use_buses=False)
    labels = fast.relabelled()
    print(f"connected components ({fast.count} found):\n")
    show(labels, lambda v: "." if v < 0 else chr(ord("A") + int(v) % 26))

    print(
        f"bus-accelerated labelling: {fast.iterations} iterations vs "
        f"{slow.iterations} with shifts only - straight runs collapse in "
        "one bus transaction."
    )


if __name__ == "__main__":
    main()
