"""Road-network routing: every intersection finds its way to the hospital.

A city is an 8x8 grid of intersections; streets (4-neighbour edges) have
congestion-dependent travel times and a few streets are closed. The PPA
holds the 64x64 weight matrix (one PE per street pair) and a single MCP run
computes, in parallel, the fastest route from *every* intersection to the
hospital — the "natural matching between the data structure of the problem
and that of the PPA architecture" the paper's introduction motivates.

Run:  python examples/road_network_routing.py
"""

import numpy as np

from repro import PPAConfig, PPAMachine, minimum_cost_path
from repro.workloads import WeightSpec, grid_graph

SIDE = 8
HOSPITAL = (6, 5)  # grid coordinates (row, col)
CLOSED_STREETS = [((2, 1), (2, 2)), ((3, 3), (4, 3)), ((5, 5), (6, 5))]
SEED = 42


def vertex(r: int, c: int) -> int:
    return r * SIDE + c


def main() -> None:
    inf = (1 << 16) - 1
    # Streets with travel times 1..9 (both directions, seeded).
    W = grid_graph(SIDE, seed=SEED, weights=WeightSpec(1, 9), inf_value=inf)
    for (a, b) in CLOSED_STREETS:
        W[vertex(*a), vertex(*b)] = inf
        W[vertex(*b), vertex(*a)] = inf

    n = W.shape[0]
    machine = PPAMachine(PPAConfig(n=n, word_bits=16))
    destination = vertex(*HOSPITAL)
    result = minimum_cost_path(machine, W, destination)

    print(f"travel time to the hospital at {HOSPITAL} from every corner:\n")
    for r in range(SIDE):
        row = []
        for c in range(SIDE):
            v = vertex(r, c)
            if (r, c) == HOSPITAL:
                row.append("  H")
            elif result.reachable[v]:
                row.append(f"{int(result.sow[v]):>3}")
            else:
                row.append("  .")
        print(" ".join(row))

    start = vertex(0, 0)
    path = result.path(start)
    print(f"\nfastest route from (0, 0), time {result.cost(start)}:")
    print("  " + " -> ".join(f"({v // SIDE},{v % SIDE})" for v in path))

    print(
        f"\nPPA run: {result.iterations} iterations, "
        f"{result.counters['bus_cycles']} bus transactions on a "
        f"{n}x{n} array"
    )


if __name__ == "__main__":
    main()
