"""Fault injection, corruption, detection and localisation.

The PPA's claim to fame is a switch-box simple enough to build in hardware;
hardware fails. This demo:

1. runs a healthy MCP and validates its PTN tree;
2. injects a stuck-open switch fault, re-runs the same problem, and shows
   the corruption being caught by the tree validator;
3. runs the 6-transaction bus self-test, which names the broken switch.

Run:  python examples/fault_diagnosis.py
"""

import numpy as np

from repro import (
    GraphError,
    PPAConfig,
    PPAMachine,
    minimum_cost_path,
    validate_tree,
)
from repro.ppa import FaultKind, FaultPlan, diagnose_switches
from repro.workloads import WeightSpec, gnp_digraph

N = 8
FAULT = (3, 3, FaultKind.STUCK_OPEN)


def main() -> None:
    W = gnp_digraph(N, 0.45, seed=5, weights=WeightSpec(1, 9),
                    inf_value=(1 << 16) - 1)

    healthy = minimum_cost_path(PPAMachine(PPAConfig(n=N)), W, d=0)
    validate_tree(healthy, W)
    print(f"healthy run: costs to 0 = {healthy.sow.tolist()} "
          f"(PTN tree validates)")

    broken_machine = PPAMachine(PPAConfig(n=N))
    broken_machine.inject_faults(FaultPlan().add(*FAULT))
    print(f"\ninjecting {FAULT[2].value} switch at ({FAULT[0]}, {FAULT[1]}) "
          "on both buses...")
    try:
        broken = minimum_cost_path(broken_machine, W, d=0)
    except GraphError as exc:
        print(f"run aborted by the convergence guard: {exc}")
    else:
        same = np.array_equal(broken.sow, healthy.sow)
        print(f"faulty run: costs to 0 = {broken.sow.tolist()}")
        print(f"matches healthy answer: {same}")
        try:
            validate_tree(broken, W)
            print("PTN tree validates (fault not exercised by this input)")
        except GraphError as exc:
            print(f"corruption caught by validate_tree: {exc}")

    print("\nrunning the bus self-test on the faulty machine...")
    report = diagnose_switches(broken_machine)
    for f in report.faults:
        bus = "column" if f.axis == 0 else "row"
        print(f"  -> {f.kind.value} switch at ({f.row}, {f.col}) on the "
              f"{bus} bus")
    print(f"({report.transactions} probe transactions)")


if __name__ == "__main__":
    main()
