"""The full toolchain on one program: source -> AST -> assembly -> result.

Takes the paper's ``minimum_cost_path()`` PPC text down every rung of the
reproduction ladder:

1. parse + static-check, pretty-print a canonicalised excerpt;
2. interpret it (tree walker over the machine primitives);
3. compile it to the 38-opcode PPA instruction set and execute the stream;
4. compare values and bus-transaction counts across the rungs and against
   the native implementation.

Run:  python examples/compiler_pipeline.py
"""

import numpy as np

from repro import PPAConfig, PPAMachine, minimum_cost_path, normalize_weights
from repro.ppc.lang import compile_ppc, compile_to_asm, programs
from repro.ppc.lang.formatter import format_program
from repro.ppc.lang.parser import parse
from repro.workloads import WeightSpec, gnp_digraph

N, H, D = 8, 16, 2


def fresh() -> PPAMachine:
    return PPAMachine(PPAConfig(n=N, word_bits=H))


def main() -> None:
    W = gnp_digraph(N, 0.35, seed=3, weights=WeightSpec(1, 9),
                    inf_value=(1 << H) - 1)

    print("1. parse + canonicalise (first lines of the formatted listing):")
    formatted = format_program(parse(programs.MCP_CODE))
    print("   | " + "\n   | ".join(formatted.splitlines()[:8]) + "\n   | ...")

    print("\n2. interpret the source...")
    m_int = fresh()
    interp = compile_ppc(programs.MCP_CODE).run(
        m_int, "minimum_cost_path",
        globals={"W": normalize_weights(W, m_int), "d": D},
    )

    print("3. compile to PPA assembly and execute the instruction stream...")
    compiled_prog = compile_to_asm(programs.MCP_CODE, N, H,
                                   entry="minimum_cost_path")
    print(f"   {len(compiled_prog.instructions)} instructions, "
          f"{compiled_prog.mem_words} per-PE memory words; excerpt:")
    print("   | " + "\n   | ".join(compiled_prog.asm.splitlines()[1:7]))
    m_cc = fresh()
    compiled = compiled_prog.run(
        m_cc, globals={"W": normalize_weights(W, m_cc), "d": D}
    )

    print("\n4. compare against the native implementation:")
    native = minimum_cost_path(fresh(), W, D)
    rows = [
        ("native", native.sow, native.counters),
        ("interpreted", interp.globals["SOW"][D], interp.counters),
        ("compiled", compiled.globals["SOW"][D], compiled.counters),
    ]
    for name, sow, counters in rows:
        match = np.array_equal(sow, native.sow)
        print(f"   {name:>12}: SOW row = {sow.tolist()}  "
              f"(matches native: {match}; "
              f"wired-ORs = {counters['reductions']}, "
              f"broadcasts = {counters['broadcasts']})")
    assert np.array_equal(interp.globals["SOW"][D], native.sow)
    assert np.array_equal(compiled.globals["SOW"][D], native.sow)
    assert compiled.counters["reductions"] == interp.counters["reductions"]
    print("\nall rungs agree; compiled stream reproduces the interpreter's "
          "bus transactions exactly.")


if __name__ == "__main__":
    main()
