"""Running the paper's Polymorphic Parallel C listing, as printed.

The repository embeds a mini-PPC compiler/interpreter; this demo compiles
the paper's ``minimum_cost_path()`` program — including the K&R-style
``min()`` routine exactly as listed in Section 3 — runs it on a simulated
PPA, and compares it against the native implementation.

Run:  python examples/ppc_language_demo.py
"""

import numpy as np

from repro import PPAConfig, PPAMachine, minimum_cost_path, normalize_weights
from repro.errors import PPCTypeError
from repro.ppc.lang import compile_ppc, programs
from repro.workloads import WeightSpec, gnp_digraph


def main() -> None:
    n, d = 8, 2
    inf = (1 << 16) - 1
    W = gnp_digraph(n, 0.35, seed=3, weights=WeightSpec(1, 9), inf_value=inf)

    print("compiling the paper's PPC program (min + selected_min + MCP)...")
    program = compile_ppc(programs.MCP_CODE)

    machine = PPAMachine(PPAConfig(n=n, word_bits=16))
    Wm = normalize_weights(W, machine)
    run = program.run(machine, "minimum_cost_path", globals={"W": Wm, "d": d})

    sow = run.globals["SOW"][d]
    ptn = run.globals["PTN"][d]
    print(f"\ninterpreted SOW row {d}: {sow}")
    print(f"interpreted PTN row {d}: {ptn}")

    native = minimum_cost_path(PPAMachine(PPAConfig(n=n, word_bits=16)), W, d)
    print(f"native       SOW row {d}: {native.sow}")
    agree = np.array_equal(sow, native.sow) and np.array_equal(ptn, native.ptn)
    print(f"\ninterpreter == native implementation: {agree}")

    print("\ninterpreted run cost:")
    for key in ("broadcasts", "reductions", "bus_cycles", "bit_cycles"):
        print(f"  {key:>12}: {run.counters[key]}")

    # The analyzer catches controller/PE confusion statically:
    print("\nstatic checking demo - branching the controller on a parallel value:")
    bad = """
    parallel int X;
    void main() { if (X > 3) X = 0; }
    """
    try:
        compile_ppc(bad)
    except PPCTypeError as exc:
        print(f"  rejected as expected: {exc}")


if __name__ == "__main__":
    main()
