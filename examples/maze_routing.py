"""Maze (Lee-style wavefront) routing with unit-weight MCP.

Classic VLSI detail-routing: find a shortest wire path between two pins on
a grid with obstacles. With unit edge weights the MCP costs are exactly the
BFS wavefront levels of Lee's algorithm, so one `reachable_set` run on the
PPA yields every cell's distance to the target pin and the PTN pointers
trace the wire.

Run:  python examples/maze_routing.py
"""

import numpy as np

from repro import PPAConfig, PPAMachine
from repro.core import reachable_set

MAZE = [
    "..........",
    ".####.###.",
    ".#.......#",
    ".#.#####..",
    "...#...#.#",
    ".###.#.#..",
    ".....#....",
    ".#####.##.",
    ".#...#.#..",
    "...#...#.S",
]
TARGET = (0, 0)  # wire must reach the top-left pin
SIDE = len(MAZE)


def vertex(r: int, c: int) -> int:
    return r * SIDE + c


def build_adjacency() -> np.ndarray:
    """4-neighbour adjacency between open cells."""
    n = SIDE * SIDE
    adj = np.zeros((n, n), dtype=bool)
    for r in range(SIDE):
        for c in range(SIDE):
            if MAZE[r][c] == "#":
                continue
            for dr, dc in ((0, 1), (1, 0), (0, -1), (-1, 0)):
                rr, cc = r + dr, c + dc
                if 0 <= rr < SIDE and 0 <= cc < SIDE and MAZE[rr][cc] != "#":
                    adj[vertex(r, c), vertex(rr, cc)] = True
    return adj


def main() -> None:
    adj = build_adjacency()
    n = adj.shape[0]
    machine = PPAMachine(PPAConfig(n=n, word_bits=16))
    result = reachable_set(machine, adj, vertex(*TARGET))

    # Find the start pin 'S'.
    (sr, sc) = next(
        (r, c) for r in range(SIDE) for c in range(SIDE) if MAZE[r][c] == "S"
    )
    start = vertex(sr, sc)
    path = result.path(start) if result.reachable[start] else []
    on_path = set(path)

    print("wavefront levels (target T, wire *, obstacles #):\n")
    for r in range(SIDE):
        cells = []
        for c in range(SIDE):
            v = vertex(r, c)
            if MAZE[r][c] == "#":
                cells.append(" #")
            elif (r, c) == TARGET:
                cells.append(" T")
            elif v in on_path:
                cells.append(" *")
            elif result.reachable[v]:
                cells.append(f"{int(result.sow[v]) % 100:>2}")
            else:
                cells.append(" .")
        print(" ".join(cells))

    if path:
        print(f"\nwire length from S: {result.cost(start)} segments")
    else:
        print("\nS cannot reach the target pin")
    print(
        f"PPA run: {result.iterations} iterations "
        f"({result.iterations} = longest wavefront), "
        f"{result.counters['bus_cycles']} bus transactions"
    )


if __name__ == "__main__":
    main()
