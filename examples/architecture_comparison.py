"""Reproduce the paper's closing comparison: PPA vs CM hypercube vs GCN.

Runs the same minimum-cost-path problem on all four simulated machines
(PPA, Gated Connection Network, Connection-Machine hypercube, plain mesh)
and prints the communication cost in both transaction counts and bit-cycle
counts — the quantitative version of the paper's claim that the PPA
"delivers the same performance, in terms of computational complexity, as
the hypercube interconnection network of the Connection Machine, and as
the Gated Connection Network".

Run:  python examples/architecture_comparison.py
"""

from repro.analysis import run_a8, run_t5, run_t13


def main() -> None:
    print(run_t5().render())
    print()
    print(run_a8().render())
    print()
    # Section 4 in the other direction: what the *more* powerful
    # Reconfigurable Mesh buys over the PPA.
    print(run_t13().render())


if __name__ == "__main__":
    main()
