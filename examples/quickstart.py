"""Quickstart: minimum cost paths on a Polymorphic Processor Array.

Builds the weight matrix of a small directed graph, maps it onto a 6x6 PPA
(one PE per matrix element), and computes every vertex's minimum cost path
to a destination — the exact computation of the IPPS'98 paper.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import INF, PPAConfig, PPAMachine, minimum_cost_path

# w[i, j] = weight of the directed edge i -> j; INF = no edge; the diagonal
# must be zero (a vertex reaches itself for free).
W = np.array(
    [
        # 0    1    2    3    4    5
        [0,    2,   9, INF, INF, INF],  # 0
        [INF,  0,   4,   3, INF, INF],  # 1
        [INF, INF,  0, INF,   1,   8],  # 2
        [INF, INF, INF,   0,   6, INF],  # 3
        [INF, INF, INF, INF,   0,   2],  # 4
        [INF, INF, INF, INF, INF,   0],  # 5
    ]
)

DESTINATION = 5


def main() -> None:
    machine = PPAMachine(PPAConfig(n=W.shape[0], word_bits=16))
    result = minimum_cost_path(machine, W, DESTINATION)

    print(f"minimum cost paths to vertex {DESTINATION}")
    print(f"converged in {result.iterations} do-while iterations\n")
    for v in range(result.n):
        if not result.reachable[v]:
            print(f"  {v}: unreachable")
            continue
        path = " -> ".join(map(str, result.path(v)))
        print(f"  {v}: cost {result.cost(v):>2}   path {path}")

    print("\nmachine cost of the run (SIMD cycle counters):")
    for key, value in result.counters.items():
        print(f"  {key:>12}: {value}")


if __name__ == "__main__":
    main()
