"""Scaling fits."""

import numpy as np
import pytest

from repro.metrics.complexity import linear_fit, loglog_slope


class TestLinearFit:
    def test_exact_line(self):
        fit = linear_fit([1, 2, 3, 4], [3, 5, 7, 9])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r2 == pytest.approx(1.0)

    def test_noisy_line_r2_below_one(self):
        rng = np.random.default_rng(0)
        x = np.arange(50)
        y = 3 * x + rng.normal(0, 5, 50)
        fit = linear_fit(x, y)
        assert fit.slope == pytest.approx(3.0, abs=0.3)
        assert 0.9 < fit.r2 < 1.0

    def test_constant_y(self):
        fit = linear_fit([1, 2, 3], [5, 5, 5])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r2 == pytest.approx(1.0)

    def test_predict(self):
        fit = linear_fit([0, 1], [1, 3])
        assert fit.predict([2])[0] == pytest.approx(5.0)

    def test_too_few_points(self):
        with pytest.raises(ValueError, match="two"):
            linear_fit([1], [1])

    def test_degenerate_x(self):
        with pytest.raises(ValueError, match="variance"):
            linear_fit([2, 2, 2], [1, 2, 3])


class TestLogLogSlope:
    def test_linear_growth_slope_one(self):
        x = np.array([4, 8, 16, 32])
        assert loglog_slope(x, 5 * x) == pytest.approx(1.0)

    def test_quadratic_growth_slope_two(self):
        x = np.array([4, 8, 16, 32])
        assert loglog_slope(x, x**2) == pytest.approx(2.0)

    def test_constant_slope_zero(self):
        assert loglog_slope([4, 8, 16], [7, 7, 7]) == pytest.approx(0.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            loglog_slope([1, 2], [0, 1])
