"""Table / Series rendering."""

import pytest

from repro.metrics.tables import Series, Table


class TestTable:
    def make(self):
        t = Table("Demo", ["name", "value"])
        t.add_row("alpha", 1)
        t.add_row("beta", 2.5)
        return t

    def test_row_arity_checked(self):
        t = self.make()
        with pytest.raises(ValueError, match="cells"):
            t.add_row("only-one")

    def test_render_contains_everything(self):
        t = self.make()
        t.note("a note")
        out = t.render()
        assert "Demo" in out
        assert "alpha" in out and "2.500" in out
        assert "note: a note" in out

    def test_markdown(self):
        md = self.make().to_markdown()
        assert md.splitlines()[2].startswith("| name")
        assert "| alpha | 1 |" in md

    def test_column_accessor(self):
        assert self.make().column("value") == [1, 2.5]

    def test_column_unknown(self):
        with pytest.raises(ValueError):
            self.make().column("nope")

    def test_alignment_consistent(self):
        lines = self.make().render().splitlines()
        header, sep, *rows = lines[2:]
        assert len(header) == len(sep)
        assert all(len(r) == len(header) for r in rows)


class TestSeries:
    def make(self):
        s = Series("Sweep", "n")
        s.add_point(4, a=1, b=10)
        s.add_point(8, a=2, b=20)
        return s

    def test_accumulates(self):
        s = self.make()
        assert s.x == [4, 8]
        assert s.ys["a"] == [1, 2]

    def test_as_table(self):
        t = self.make().as_table()
        assert t.headers == ["n", "a", "b"]
        assert t.rows[1] == [8, 2, 20]

    def test_render_via_table(self):
        s = self.make()
        s.note("shape holds")
        out = s.render()
        assert "Sweep" in out and "shape holds" in out


class TestRenderChart:
    def make(self):
        s = Series("Sweep", "n")
        s.add_point(4, cost=10.0)
        s.add_point(8, cost=20.0)
        s.add_point(16, cost=40.0)
        s.note("linear")
        return s

    def test_bars_scale_to_max(self):
        lines = self.make().render_chart(width=20).splitlines()
        bars = [l for l in lines if "#" in l]
        assert bars[-1].count("#") == 20  # the max fills the width
        assert bars[0].count("#") == 5

    def test_values_printed(self):
        out = self.make().render_chart()
        assert "40.000" in out and "10.000" in out

    def test_notes_and_title(self):
        out = self.make().render_chart()
        assert out.startswith("Sweep")
        assert "note: linear" in out

    def test_multiple_series_blocks(self):
        s = Series("S", "x")
        s.add_point(1, a=1, b=9)
        out = s.render_chart()
        assert "| a" in out and "| b" in out

    def test_zero_max_safe(self):
        s = Series("S", "x")
        s.add_point(1, a=0)
        out = s.render_chart()
        assert "0" in out  # no division crash

    def test_int_values_formatted_as_int(self):
        s = Series("S", "x")
        s.add_point(1, a=7)
        assert " 7" in s.render_chart()
