"""Answer verification: the fixpoint check accepts truth, rejects lies."""

import numpy as np
import pytest

from repro.core import all_pairs_minimum_cost, minimum_cost_path
from repro.ppa import PPAConfig, PPAMachine
from repro.serve.oracle import bellman_reference, verify_apsp, verify_mcp

MAXINT = (1 << 16) - 1


def _graph(n, seed=11, density=0.35):
    rng = np.random.default_rng(seed)
    W = rng.integers(1, 9, size=(n, n)).astype(np.int64)
    W[rng.random((n, n)) < 1.0 - density] = MAXINT
    np.fill_diagonal(W, 0)
    return W


@pytest.fixture(params=[6, 10])
def solved(request):
    n = request.param
    W = _graph(n)
    machine = PPAMachine(PPAConfig(n=n, word_bits=16))
    res = minimum_cost_path(machine, W, 0)
    return W, res


class TestVerifyMcp:
    def test_accepts_engine_output(self, solved):
        W, res = solved
        assert verify_mcp(W, res.sow, res.ptn, 0, MAXINT) == []

    def test_rejects_wrong_cost(self, solved):
        W, res = solved
        sow = res.sow.copy()
        victim = int(np.flatnonzero((sow > 0) & (sow < MAXINT))[0])
        sow[victim] += 1
        problems = verify_mcp(W, sow, res.ptn, 0, MAXINT)
        assert any("fixpoint violated" in p for p in problems)

    def test_rejects_fake_reachability(self, solved):
        W, res = solved
        sow = res.sow.copy()
        unreachable = np.flatnonzero(sow >= MAXINT)
        if unreachable.size == 0:
            pytest.skip("all vertices reachable in this instance")
        sow[int(unreachable[0])] = 7  # claim a path that does not exist
        assert verify_mcp(W, sow, res.ptn, 0, MAXINT) != []

    def test_rejects_nonzero_destination(self, solved):
        W, res = solved
        sow = res.sow.copy()
        sow[0] = 1
        problems = verify_mcp(W, sow, res.ptn, 0, MAXINT)
        assert any("expected 0" in p for p in problems)

    def test_rejects_bad_successor(self, solved):
        W, res = solved
        ptn = res.ptn.copy()
        reachable = np.flatnonzero((res.sow < MAXINT)
                                   & (np.arange(len(ptn)) != 0))
        v = int(reachable[0])
        # point v at a vertex that is not on any optimal continuation
        for candidate in range(len(ptn)):
            if candidate == ptn[v]:
                continue
            edge = W[v, candidate]
            if edge >= MAXINT or res.sow[candidate] >= MAXINT \
                    or edge + res.sow[candidate] != res.sow[v]:
                ptn[v] = candidate
                break
        problems = verify_mcp(W, res.sow, ptn, 0, MAXINT)
        assert any("ptn" in p for p in problems)

    def test_rejects_self_supporting_underestimate(self, solved):
        # the zero diagonal must not let a vertex claim cost 0 to
        # everything with itself as successor (the stuck-open bus fault
        # signature: seed-34 chaos regression)
        W, res = solved
        sow, ptn = res.sow.copy(), res.ptn.copy()
        victim = int(np.flatnonzero(sow > 0)[0])
        sow[victim] = 0
        ptn[victim] = victim
        problems = verify_mcp(W, sow, ptn, 0, MAXINT)
        assert problems != []

    def test_rejects_mutually_supporting_cycle(self):
        # two vertices joined by zero-weight edges claiming each other as
        # successors telescope perfectly but never reach the destination
        W = np.full((4, 4), MAXINT, dtype=np.int64)
        np.fill_diagonal(W, 0)
        W[1, 0] = 5
        W[2, 3] = 0
        W[3, 2] = 0
        W[2, 0] = 9
        sow = np.array([0, 5, 2, 2], dtype=np.int64)
        ptn = np.array([0, 0, 3, 2], dtype=np.int64)
        problems = verify_mcp(W, sow, ptn, 0, MAXINT)
        assert any("cycle" in p for p in problems)

    def test_rejects_out_of_range(self, solved):
        W, res = solved
        sow = res.sow.copy()
        sow[1] = -3
        assert verify_mcp(W, sow, res.ptn, 0, MAXINT) != []
        assert verify_mcp(W, res.sow, res.ptn, len(sow), MAXINT) != []
        assert verify_mcp(W, res.sow[:-1], res.ptn, 0, MAXINT) != []


class TestVerifyApsp:
    def test_accepts_engine_output(self):
        W = _graph(8)
        machine = PPAMachine(PPAConfig(n=8, word_bits=16))
        res = all_pairs_minimum_cost(machine, W)
        assert verify_apsp(W, res.dist, res.succ, MAXINT) == []

    def test_rejects_corruption_anywhere(self):
        W = _graph(8)
        machine = PPAMachine(PPAConfig(n=8, word_bits=16))
        res = all_pairs_minimum_cost(machine, W)
        dist = res.dist.copy()
        off = np.argwhere((dist > 0) & (dist < MAXINT))
        v, d = off[len(off) // 2]
        dist[v, d] -= 1
        problems = verify_apsp(W, dist, res.succ, MAXINT)
        assert any("fixpoint violated" in p for p in problems)

    def test_rejects_self_supporting_underestimate(self):
        W = _graph(8)
        machine = PPAMachine(PPAConfig(n=8, word_bits=16))
        res = all_pairs_minimum_cost(machine, W)
        dist, succ = res.dist.copy(), res.succ.copy()
        off = np.argwhere((dist > 0) & (dist < MAXINT))
        v, d = (int(x) for x in off[0])
        dist[v, d] = 0
        succ[v, d] = v
        assert verify_apsp(W, dist, succ, MAXINT) != []

    def test_rejects_nonzero_diagonal(self):
        W = _graph(6)
        machine = PPAMachine(PPAConfig(n=6, word_bits=16))
        res = all_pairs_minimum_cost(machine, W)
        dist = res.dist.copy()
        dist[2, 2] = 5
        problems = verify_apsp(W, dist, res.succ, MAXINT)
        assert any("diagonal" in p for p in problems)


class TestBellmanReference:
    def test_matches_the_machine(self, solved):
        W, res = solved
        np.testing.assert_array_equal(
            bellman_reference(W, 0, MAXINT), res.sow
        )

    def test_every_destination(self):
        n = 7
        W = _graph(n, seed=5)
        machine = PPAMachine(PPAConfig(n=n, word_bits=16))
        apsp = all_pairs_minimum_cost(machine, W)
        for d in range(n):
            np.testing.assert_array_equal(
                bellman_reference(W, d, MAXINT), apsp.dist[:, d]
            )
