"""Request coalescing: identical answers, shared flights, real batching.

Coalescing is a pure throughput optimisation — the tests here pin that
claim from three directions: chaos campaign digests are identical with
it on and off, single-flight waiters receive bit-identical payloads,
and the coalescer's accounting (lane fill, admission weight) reflects
real batches.
"""

import asyncio
import hashlib
import json

import numpy as np
import pytest

from repro.resilience import BackoffPolicy
from repro.serve.chaos import ChaosScenario, run_scenario
from repro.serve.loadgen import random_graph
from repro.serve.service import PathQueryService, ServiceConfig


def fast_config(**overrides) -> ServiceConfig:
    base = dict(
        workers=1,
        backoff=BackoffPolicy(base=0.001, cap=0.01, max_attempts=2),
        breaker_cooldown_s=0.2,
        recovery_successes=2,
        coalesce_window_ms=5.0,
    )
    base.update(overrides)
    return ServiceConfig(**base)


async def put(service, n=10, seed=7, name="g"):
    wire = random_graph(n, 0.4, np.random.default_rng(seed))
    resp = await service.handle_request({
        "id": "setup", "op": "put_graph", "graph": name,
        "weights": wire, "word_bits": 16,
    })
    assert resp.status == "ok", resp.error
    return wire


class TestCoalescedAnswers:
    def test_burst_coalesces_into_one_batch(self):
        async def main():
            service = PathQueryService(fast_config())
            try:
                await put(service)
                out = await asyncio.gather(*(
                    service.handle_request({"id": i, "op": "dest",
                                            "graph": "g", "dest": i})
                    for i in range(6)
                ))
                assert all(r.status == "ok" for r in out)
                assert {r.timing.get("batched_with") for r in out} == {6}
                snap = service.stats()["coalescer"]
                assert snap["batches"] == 1
                assert snap["lane_fill"] == {"6": 1}
                assert snap["coalesced_requests"] == 6
                # one admission slot consumed, weighted by 6 lanes
                adm = service.stats()["admission"]
                assert adm["admitted"] == 1
                assert adm["admitted_weight"] == 6
            finally:
                await service.stop()
        asyncio.run(main())

    def test_single_flight_payloads_bit_identical(self):
        async def main():
            service = PathQueryService(fast_config())
            try:
                await put(service)
                out = await asyncio.gather(*(
                    service.handle_request({"id": i, "op": "dest",
                                            "graph": "g", "dest": 3})
                    for i in range(5)
                ))
                assert all(r.status == "ok" for r in out)
                blobs = {
                    json.dumps([r.result["sow"], r.result["ptn"],
                                r.result["iterations"]])
                    for r in out
                }
                assert len(blobs) == 1  # byte-for-byte the same answer
                snap = service.stats()["coalescer"]
                assert snap["single_flight_hits"] == 4
                assert snap["lane_fill"] == {"1": 1}
                assert sum(
                    1 for r in out if r.timing.get("single_flight")
                ) == 4
            finally:
                await service.stop()
        asyncio.run(main())

    def test_full_batch_dispatches_early(self):
        async def main():
            service = PathQueryService(
                fast_config(max_lanes=2, coalesce_window_ms=10_000.0)
            )
            try:
                await put(service)
                # window is absurdly long: only the max_lanes flush can
                # let these complete promptly
                out = await asyncio.wait_for(asyncio.gather(*(
                    service.handle_request({"id": i, "op": "dest",
                                            "graph": "g", "dest": i})
                    for i in range(4)
                )), timeout=30)
                assert all(r.status == "ok" for r in out)
                snap = service.stats()["coalescer"]
                assert snap["flushed_full"] == 2
                assert snap["lane_fill"] == {"2": 2}
            finally:
                await service.stop()
        asyncio.run(main())

    def test_coalesced_matches_uncoalesced_answers(self):
        async def main():
            on = PathQueryService(fast_config(seed=5))
            off = PathQueryService(fast_config(seed=5, coalesce=False))
            try:
                await put(on)
                await put(off)
                a = await asyncio.gather(*(
                    on.handle_request({"id": i, "op": "dest",
                                       "graph": "g", "dest": i % 10})
                    for i in range(10)
                ))
                b = await asyncio.gather(*(
                    off.handle_request({"id": i, "op": "dest",
                                        "graph": "g", "dest": i % 10})
                    for i in range(10)
                ))
                for ra, rb in zip(a, b):
                    assert ra.status == rb.status == "ok"
                    assert ra.result["sow"] == rb.result["sow"]
                    assert ra.result["ptn"] == rb.result["ptn"]
                    assert ra.result["iterations"] == \
                        rb.result["iterations"]
            finally:
                await on.stop()
                await off.stop()
        asyncio.run(main())


class TestChaosDigestInvariance:
    @pytest.mark.parametrize("kinds", [
        ("healthy", "bus-fault"),
        ("update-storm",),
    ])
    def test_campaign_digest_identical_on_vs_off(self, kinds):
        """Coalescing changes throughput, never answers: the chaos
        digest over every verified answer must be invariant."""
        def digest_with(coalesce: bool) -> str:
            h = hashlib.blake2b(digest_size=16)
            for i in range(4):
                sc = ChaosScenario(
                    name=f"run{i:03d}-{kinds[i % len(kinds)]}",
                    kind=kinds[i % len(kinds)],
                    seed=90_000 + i, n=8, requests=10,
                    coalesce=coalesce,
                )
                outcome = asyncio.run(run_scenario(sc))
                assert outcome["wrong"] == 0
                h.update(json.dumps(
                    [sc.to_dict(), sorted(outcome["ok_answers"])],
                    sort_keys=True, separators=(",", ":"),
                ).encode())
            return h.hexdigest()

        assert digest_with(True) == digest_with(False)


class TestCacheHitSpan:
    def test_cached_answer_emits_cache_hit_span(self):
        async def main():
            service = PathQueryService(fast_config())
            try:
                await put(service)
                r1 = await service.handle_request(
                    {"id": 1, "op": "dest", "graph": "g", "dest": 2})
                assert r1.status == "ok"
                assert not r1.timing.get("cached")
                r2 = await service.handle_request(
                    {"id": 2, "op": "dest", "graph": "g", "dest": 2})
                assert r2.timing.get("cached") is True
                hits = service.profile().find("serve.cache_hit")
                assert len(hits) == 1
                assert hits[0].attrs["dest"] == 2
                assert hits[0].end >= hits[0].start
            finally:
                await service.stop()
        asyncio.run(main())
