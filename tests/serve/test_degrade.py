"""Degradation ladder: rung selection, stickiness, recovery, records."""

import pytest

from repro.errors import ConfigurationError
from repro.serve.degrade import RUNGS, DegradationLadder, Rung


class TestRungTable:
    def test_five_rungs_top_to_bottom(self):
        assert len(RUNGS) == 5
        assert [r.index for r in RUNGS] == [0, 1, 2, 3, 4]
        assert RUNGS[0].engine == "compiled" and RUNGS[0].use_workers
        assert RUNGS[3].engine == "fused"
        assert RUNGS[4].engine == "cycle" and RUNGS[4].resilient

    def test_monotone_loss_of_capability(self):
        # workers are only at the top; lane divisor never shrinks going down
        assert [r.use_workers for r in RUNGS] == [True] + [False] * 4
        divs = [r.lane_div for r in RUNGS]
        assert divs == sorted(divs)

    def test_record_is_machine_readable(self):
        rec = RUNGS[3].record(["fused-tier probe", "pressure"], workers=1)
        assert rec == {
            "rung": 3, "label": "fused-tier", "engine": "fused",
            "workers": 1, "lane_div": 4, "resilient": False,
            "reasons": ["fused-tier probe", "pressure"],
        }


class TestSelection:
    def test_healthy_graph_gets_rung_zero(self):
        ladder = DegradationLadder()
        rung, reasons = ladder.rung_for("g")
        assert rung.index == 0
        assert reasons == []

    def test_breaker_open_floors_at_one(self):
        ladder = DegradationLadder()
        rung, reasons = ladder.rung_for("g", breaker_open=True)
        assert rung.index == 1
        assert any("breaker" in r for r in reasons)

    @pytest.mark.parametrize("pressure, bump", [
        (0.0, 0), (0.49, 0), (0.5, 1), (0.89, 1), (0.9, 2), (1.0, 2),
    ])
    def test_pressure_bumps(self, pressure, bump):
        ladder = DegradationLadder()
        rung, reasons = ladder.rung_for("g", pressure=pressure)
        assert rung.index == bump
        assert bool(reasons) == bool(bump)

    def test_bump_saturates_at_the_bottom(self):
        ladder = DegradationLadder()
        ladder.record_failure("g", RUNGS[3], "x")  # level 4
        rung, _ = ladder.rung_for("g", pressure=1.0)
        assert rung.index == 4


class TestStickiness:
    def test_failure_pins_below_the_failed_rung(self):
        ladder = DegradationLadder()
        ladder.record_failure("g", RUNGS[0], "verify rejected")
        rung, reasons = ladder.rung_for("g")
        assert rung.index == 1
        assert "verify rejected" in " ".join(reasons)

    def test_per_graph_isolation(self):
        ladder = DegradationLadder()
        ladder.record_failure("bad", RUNGS[1], "x")
        assert ladder.rung_for("bad")[0].index == 2
        assert ladder.rung_for("good")[0].index == 0

    def test_rung_below_walks_and_terminates(self):
        ladder = DegradationLadder()
        rung = RUNGS[0]
        seen = [rung.index]
        while (rung := ladder.rung_below(rung)) is not None:
            seen.append(rung.index)
        assert seen == [0, 1, 2, 3, 4]


class TestRecovery:
    def test_recovers_one_rung_after_streak(self):
        ladder = DegradationLadder(recovery_successes=3)
        ladder.record_failure("g", RUNGS[1], "x")
        assert ladder.rung_for("g")[0].index == 2
        for _ in range(2):
            ladder.record_success("g")
            assert ladder.rung_for("g")[0].index == 2
        ladder.record_success("g")  # streak complete
        assert ladder.rung_for("g")[0].index == 1
        assert ladder.snapshot()["recoveries"] == 1

    def test_failure_resets_the_streak(self):
        ladder = DegradationLadder(recovery_successes=2)
        ladder.record_failure("g", RUNGS[0], "x")
        ladder.record_success("g")
        ladder.record_failure("g", RUNGS[1], "y")  # streak lost, level 2
        ladder.record_success("g")
        assert ladder.rung_for("g")[0].index == 2

    def test_full_recovery_clears_reasons(self):
        ladder = DegradationLadder(recovery_successes=1)
        ladder.record_failure("g", RUNGS[0], "incident")
        ladder.record_success("g")
        rung, reasons = ladder.rung_for("g")
        assert rung.index == 0
        assert reasons == []

    def test_forget_drops_all_state(self):
        ladder = DegradationLadder()
        ladder.record_failure("g", RUNGS[2], "x")
        ladder.forget("g")
        assert ladder.rung_for("g")[0].index == 0

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            DegradationLadder(recovery_successes=0)
