"""Wire protocol: encoding, validation, size caps."""

import json

import pytest

from repro.errors import ReproError
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    OPS,
    STATUSES,
    Request,
    Response,
    decode_line,
    encode_message,
)


class TestRequest:
    def test_roundtrip(self):
        req = Request(id="a-1", op="point", graph="g", source=2, dest=5,
                      deadline_ms=100.0, want_path=True)
        back = Request.from_dict(decode_line(encode_message(req)))
        assert back == req

    def test_minimal(self):
        req = Request.from_dict({"id": 1, "op": "ping"})
        assert req.id == 1 and req.op == "ping"
        assert req.word_bits == 16 and not req.want_path

    def test_unknown_op_rejected(self):
        with pytest.raises(ReproError, match="unknown op"):
            Request.from_dict({"id": 1, "op": "teleport"})

    def test_missing_id_rejected(self):
        with pytest.raises(ReproError, match="no id"):
            Request.from_dict({"op": "ping"})

    def test_non_numeric_fields_rejected(self):
        with pytest.raises(ReproError, match="source"):
            Request.from_dict({"id": 1, "op": "point", "source": "zero"})
        with pytest.raises(ReproError, match="deadline_ms"):
            Request.from_dict({"id": 1, "op": "point",
                               "deadline_ms": "soon"})

    def test_non_object_rejected(self):
        with pytest.raises(ReproError, match="JSON object"):
            Request.from_dict([1, 2, 3])

    def test_all_ops_are_known(self):
        assert set(OPS) == {"point", "dest", "apsp", "put_graph",
                            "del_graph", "stats", "health", "ping"}


class TestResponse:
    def test_roundtrip_with_degraded(self):
        resp = Response(id="a-1", status="ok", op="point",
                        result={"cost": 3},
                        degraded={"rung": 2, "reasons": ["pressure"]},
                        timing={"total_ms": 1.5})
        back = Response.from_dict(decode_line(encode_message(resp)))
        assert back == resp

    def test_sparse_encoding_omits_empty_fields(self):
        wire = json.loads(
            encode_message(Response(id=1, status="ok")).decode()
        )
        assert wire == {"id": 1, "status": "ok"}

    def test_unknown_status_rejected(self):
        with pytest.raises(ReproError, match="unknown status"):
            Response.from_dict({"id": 1, "status": "maybe"})

    def test_statuses_constant(self):
        assert STATUSES == ("ok", "shed", "deadline", "error")


class TestFraming:
    def test_malformed_json_rejected(self):
        with pytest.raises(ReproError, match="malformed"):
            decode_line(b"{nope")

    def test_oversized_line_rejected(self):
        with pytest.raises(ReproError, match="exceeds"):
            decode_line(b"x" * (MAX_LINE_BYTES + 1))

    def test_lines_are_newline_terminated(self):
        assert encode_message({"id": 1, "op": "ping"}).endswith(b"\n")
