"""End-to-end service behaviour: correctness, shedding, deadlines,
retry-with-degradation, caching, TCP transport.

Slow or faulty compute is injected through the service's
``machine_factory`` — the same seam the chaos harness uses — so every
scenario here is deterministic.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.ppa import FaultKind, FaultPlan, PPAConfig, PPAMachine
from repro.resilience import BackoffPolicy
from repro.serve import (
    PathQueryService,
    ServeClient,
    ServiceConfig,
)
from repro.serve.oracle import bellman_reference
from repro.serve.service import default_machine_factory

MAXINT = (1 << 16) - 1

WIRE = [
    [0, 2, None, 4, None, None],
    [None, 0, 1, None, 7, None],
    [None, None, 0, 3, None, None],
    [1, None, None, 0, None, 2],
    [None, None, None, None, 0, 1],
    [None, 3, None, None, None, 0],
]
GRID = np.asarray(
    [[MAXINT if v is None else v for v in row] for row in WIRE],
    dtype=np.int64,
)


def run(coro):
    return asyncio.run(coro)


def fast_config(**overrides) -> ServiceConfig:
    base = dict(
        workers=1,
        backoff=BackoffPolicy(base=0.001, cap=0.01, max_attempts=2),
        breaker_cooldown_s=0.2,
        recovery_successes=2,
    )
    base.update(overrides)
    return ServiceConfig(**base)


async def put(service, name="g", wire=WIRE):
    resp = await service.handle_request({
        "id": "put", "op": "put_graph", "graph": name, "weights": wire,
    })
    assert resp.status == "ok", resp.error
    return resp


class TestQueries:
    def test_point_matches_reference(self):
        async def main():
            service = PathQueryService(fast_config())
            await put(service)
            for source in range(6):
                for dest in range(6):
                    resp = await service.handle_request({
                        "id": f"{source}-{dest}", "op": "point",
                        "graph": "g", "source": source, "dest": dest,
                    })
                    assert resp.status == "ok"
                    expect = int(bellman_reference(GRID, dest,
                                                   MAXINT)[source])
                    if expect >= MAXINT:
                        assert not resp.result["reachable"]
                        assert resp.result["cost"] is None
                    else:
                        assert resp.result["cost"] == expect
            await service.stop()

        run(main())

    def test_point_path_is_walkable(self):
        async def main():
            service = PathQueryService(fast_config())
            await put(service)
            resp = await service.handle_request({
                "id": 1, "op": "point", "graph": "g",
                "source": 0, "dest": 5, "want_path": True,
            })
            path = resp.result["path"]
            assert path[0] == 0 and path[-1] == 5
            cost = sum(int(GRID[a, b]) for a, b in zip(path, path[1:]))
            assert cost == resp.result["cost"]
            await service.stop()

        run(main())

    def test_dest_returns_whole_column(self):
        async def main():
            service = PathQueryService(fast_config())
            await put(service)
            resp = await service.handle_request({
                "id": 1, "op": "dest", "graph": "g", "dest": 3,
            })
            want = [int(v) for v in bellman_reference(GRID, 3, MAXINT)]
            assert resp.result["sow"] == want
            await service.stop()

        run(main())

    def test_apsp_summary_and_column_reuse(self):
        async def main():
            service = PathQueryService(fast_config())
            await put(service)
            resp = await service.handle_request({
                "id": 1, "op": "apsp", "graph": "g",
            })
            assert resp.status == "ok"
            assert resp.result["n"] == 6
            assert len(resp.result["digest"]) == 32
            # point queries now come straight from the APSP cache
            hits_before = service.counters["cache_hits"]
            resp = await service.handle_request({
                "id": 2, "op": "point", "graph": "g",
                "source": 0, "dest": 1,
            })
            assert resp.status == "ok"
            assert resp.timing.get("cached")
            assert service.counters["cache_hits"] == hits_before + 1
            await service.stop()

        run(main())

    def test_repeated_dest_is_cached(self):
        async def main():
            service = PathQueryService(fast_config())
            await put(service)
            first = await service.handle_request({
                "id": 1, "op": "dest", "graph": "g", "dest": 2,
            })
            second = await service.handle_request({
                "id": 2, "op": "dest", "graph": "g", "dest": 2,
            })
            assert second.timing.get("cached")
            assert second.result["sow"] == first.result["sow"]
            await service.stop()

        run(main())

    def test_put_graph_bumps_version_and_invalidates(self):
        async def main():
            service = PathQueryService(fast_config())
            first = await put(service)
            assert first.result["version"] == 1
            await service.handle_request({
                "id": 1, "op": "dest", "graph": "g", "dest": 0,
            })
            shorter = [[0, 1], [None, 0]]
            second = await put(service, wire=shorter)
            assert second.result["version"] == 2
            resp = await service.handle_request({
                "id": 2, "op": "dest", "graph": "g", "dest": 0,
            })
            assert not resp.timing.get("cached")
            assert resp.result["sow"] == [0, MAXINT]
            await service.stop()

        run(main())


class TestValidation:
    @pytest.mark.parametrize("body, fragment", [
        ({"op": "point", "graph": "nope", "source": 0, "dest": 1},
         "unknown graph"),
        ({"op": "point", "graph": "g", "source": 99, "dest": 1},
         "source"),
        ({"op": "point", "graph": "g", "source": 0, "dest": 99}, "dest"),
        ({"op": "dest", "graph": "g"}, "dest"),
        ({"op": "apsp"}, "graph"),
        ({"op": "put_graph", "graph": "x"}, "weights"),
        ({"op": "put_graph", "graph": "x", "weights": [[0]]}, "square"),
        ({"op": "nonsense"}, "unknown op"),
    ])
    def test_bad_requests_get_error_responses(self, body, fragment):
        async def main():
            service = PathQueryService(fast_config())
            await put(service)
            resp = await service.handle_request(dict(body, id="bad"))
            assert resp.status == "error"
            assert fragment in resp.error
            await service.stop()

        run(main())

    def test_del_graph(self):
        async def main():
            service = PathQueryService(fast_config())
            await put(service)
            resp = await service.handle_request({
                "id": 1, "op": "del_graph", "graph": "g",
            })
            assert resp.result["deleted"]
            resp = await service.handle_request({
                "id": 2, "op": "point", "graph": "g",
                "source": 0, "dest": 1,
            })
            assert resp.status == "error"
            await service.stop()

        run(main())


class _GateFactory:
    """Machine factory whose compute blocks until released (via a
    threading event checked inside a fake machine build)."""

    def __init__(self, delay_s: float):
        self.delay_s = delay_s
        self.calls = 0

    def __call__(self, n: int, word_bits: int) -> PPAMachine:
        self.calls += 1
        time.sleep(self.delay_s)
        return default_machine_factory(n, word_bits)


class TestOverload:
    def test_shed_with_backpressure_signal(self):
        async def main():
            factory = _GateFactory(0.3)
            # coalescing would fold these six distinct-dest requests into
            # one admission slot; this test pins the *per-request*
            # admission path, so run with it off
            service = PathQueryService(
                fast_config(max_inflight=1, max_queue=1, coalesce=False),
                machine_factory=factory,
            )
            await put(service)
            bodies = [{"id": f"q{i}", "op": "dest", "graph": "g",
                       "dest": i % 6, "deadline_ms": 5_000}
                      for i in range(6)]
            responses = await asyncio.gather(*(
                service.handle_request(b) for b in bodies
            ))
            statuses = [r.status for r in responses]
            assert statuses.count("shed") >= 3
            for r in responses:
                if r.status == "shed":
                    assert r.retry_after_ms is not None
                    assert r.retry_after_ms > 0
            assert service.counters["shed"] >= 3
            await service.stop()

        run(main())

    def test_deadline_in_queue_and_during_compute(self):
        async def main():
            factory = _GateFactory(0.4)
            service = PathQueryService(
                fast_config(max_inflight=1, max_queue=4),
                machine_factory=factory,
            )
            await put(service)
            responses = await asyncio.gather(*(
                service.handle_request({
                    "id": f"q{i}", "op": "dest", "graph": "g",
                    "dest": i % 6, "deadline_ms": 120,
                }) for i in range(3)
            ))
            assert {r.status for r in responses} == {"deadline"}
            assert service.counters["deadline"] == 3
            # abandoned compute still finished and released its slot
            await service.stop()
            assert service.admission.inflight == 0

        run(main())


class _FaultyFactory:
    """Every machine carries a stuck-open bus fault — the analytic tiers
    refuse it, the cycle engine computes garbage the verifier rejects,
    and only the resilient rung (with spare PEs) recovers."""

    def __call__(self, n: int, word_bits: int) -> PPAMachine:
        machine = default_machine_factory(n, word_bits)
        machine.inject_faults(
            FaultPlan().add(1, 3, FaultKind.STUCK_OPEN, axis=0)
        )
        return machine


class TestDegradation:
    def test_bus_fault_degrades_to_resilient_rung(self):
        async def main():
            service = PathQueryService(fast_config(),
                                       machine_factory=_FaultyFactory())
            await put(service)
            resp = await service.handle_request({
                "id": 1, "op": "dest", "graph": "g", "dest": 0,
            })
            assert resp.status == "ok"
            want = [int(v) for v in bellman_reference(GRID, 0, MAXINT)]
            assert resp.result["sow"] == want
            # the downgrade is recorded, machine-readably
            assert resp.degraded is not None
            assert resp.degraded["rung"] == 4
            assert resp.degraded["resilient"]
            assert resp.degraded["reasons"]
            assert service.counters["verify_rejections"] >= 1
            assert resp.timing["attempts"] > 1
            await service.stop()

        run(main())

    def test_ladder_is_sticky_then_recovers(self):
        async def main():
            service = PathQueryService(fast_config(),
                                       machine_factory=_FaultyFactory())
            await put(service)
            first = await service.handle_request({
                "id": 1, "op": "dest", "graph": "g", "dest": 0,
            })
            attempts_first = first.timing["attempts"]
            second = await service.handle_request({
                "id": 2, "op": "dest", "graph": "g", "dest": 1,
            })
            # sticky level: no ladder re-walk on the next request
            assert second.timing["attempts"] < attempts_first
            assert second.degraded is not None
            await service.stop()

        run(main())

    def test_breaker_open_floors_the_ladder(self):
        async def main():
            service = PathQueryService(fast_config(workers=2))
            await put(service)
            for _ in range(service.config.breaker_failure_threshold):
                service.breaker.record_failure("induced")
            resp = await service.handle_request({
                "id": 1, "op": "apsp", "graph": "g",
            })
            assert resp.status == "ok"
            assert resp.degraded is not None
            assert resp.degraded["rung"] >= 1
            assert any("breaker" in r for r in resp.degraded["reasons"])
            assert resp.result["workers"] == 1
            await service.stop()

        run(main())

    def test_healthy_response_carries_no_degraded_stamp(self):
        async def main():
            service = PathQueryService(fast_config())
            await put(service)
            resp = await service.handle_request({
                "id": 1, "op": "point", "graph": "g",
                "source": 0, "dest": 1,
            })
            assert resp.status == "ok"
            assert resp.degraded is None
            await service.stop()

        run(main())


class TestIntrospection:
    def test_stats_and_health_and_profile(self):
        async def main():
            service = PathQueryService(fast_config())
            await put(service)
            await service.handle_request({
                "id": 1, "op": "point", "graph": "g",
                "source": 0, "dest": 1,
            })
            stats = (await service.handle_request(
                {"id": 2, "op": "stats"})).result
            assert stats["graphs"]["g"]["n"] == 6
            assert stats["counters"]["ok"] >= 2
            health = (await service.handle_request(
                {"id": 3, "op": "health"})).result
            assert health["status"] == "healthy"
            profile = service.profile()
            names = [s.name for s in profile.spans]
            assert "serve.request" in names
            assert profile.find("serve.attempt")
            await service.stop()

        run(main())


class TestTcpTransport:
    def test_client_roundtrip_and_multiplexing(self):
        async def main():
            service = PathQueryService(fast_config())
            server = await service.start("127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            async with ServeClient("127.0.0.1", port) as client:
                assert (await client.ping()).result["pong"]
                await client.put_graph("g", WIRE)
                futures = [client.submit("point", graph="g",
                                         source=s, dest=d)
                           for s in range(6) for d in range(6)]
                await client.drain()
                responses = await asyncio.gather(*futures)
                assert all(r.status == "ok" for r in responses)
                costs = {(r.result["source"], r.result["dest"]):
                         r.result["cost"] for r in responses}
                assert costs[(0, 2)] == 3
            await service.stop()

        run(main())

    def test_malformed_line_gets_error_response(self):
        async def main():
            service = PathQueryService(fast_config())
            server = await service.start("127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write(b"this is not json\n")
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), 5)
            assert b'"error"' in line and b"malformed" in line
            writer.close()
            await writer.wait_closed()
            await service.stop()

        run(main())
