"""Service-level chaos harness: determinism and the two hard invariants
(zero silent-wrong answers, zero leaked shared-memory segments).

The full 50-run campaign runs in the benchmark / CI smoke job; here we
run a small campaign covering every injection kind.
"""

import pytest

from repro.serve.chaos import (
    CHAOS_KINDS,
    ChaosScenario,
    run_chaos_campaign,
    run_scenario,
)


class TestScenarioPlan:
    def test_kinds_cover_the_issue_matrix(self):
        assert set(CHAOS_KINDS) == {
            "healthy", "worker-kill", "worker-slow", "overload",
            "bus-fault", "update-storm",
        }

    def test_unknown_kind_rejected(self):
        import asyncio

        from repro.errors import ConfigurationError
        sc = ChaosScenario(name="x", kind="meteor-strike", seed=1)
        with pytest.raises(ConfigurationError):
            asyncio.run(run_scenario(sc))

    def test_scenario_to_dict_roundtrips(self):
        sc = ChaosScenario(name="r0", kind="healthy", seed=3, n=8,
                           requests=5)
        d = sc.to_dict()
        assert d["kind"] == "healthy" and d["seed"] == 3 and d["n"] == 8


class TestCampaign:
    @pytest.fixture(scope="class")
    def report(self):
        return run_chaos_campaign(runs=len(CHAOS_KINDS), seed=42, n=8,
                                  requests_per_run=8)

    def test_every_kind_ran(self, report):
        assert set(report["by_kind"]) == set(CHAOS_KINDS)

    def test_no_silent_wrong(self, report):
        assert report["silent_wrong"] == 0

    def test_no_leaked_shm(self, report):
        assert report["leaked_shm"] == []

    def test_failures_were_actually_injected_and_survived(self, report):
        # the campaign is not vacuous: degraded responses and/or
        # verifier rejections occurred, yet answers stayed correct
        assert report["validated"] > 0
        assert (report["degraded_responses"] > 0
                or report["verify_rejections"] > 0
                or report["by_status"].get("shed", 0) > 0)

    def test_latency_is_recorded(self, report):
        lat = report["latency_ms"]
        assert 0 <= lat["p50"] <= lat["p99"] <= lat["max"]

    def test_same_seed_same_digest(self, report):
        again = run_chaos_campaign(runs=len(CHAOS_KINDS), seed=42, n=8,
                                   requests_per_run=8)
        assert again["digest"] == report["digest"]
        assert again["silent_wrong"] == 0

    def test_different_seed_different_digest(self, report):
        other = run_chaos_campaign(runs=2, seed=7, n=8,
                                   requests_per_run=6,
                                   kinds=("healthy", "bus-fault"))
        assert other["digest"] != report["digest"]
        assert other["silent_wrong"] == 0
