"""Circuit breaker state machine, driven by an injected clock."""

import pytest

from repro.errors import ConfigurationError
from repro.serve.breaker import BreakerState, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def breaker(clock):
    return CircuitBreaker(failure_threshold=3, cooldown_s=5.0, clock=clock)


class TestClosed:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_trips_at_threshold(self, breaker):
        for _ in range(2):
            breaker.record_failure("boom")
            assert breaker.state is BreakerState.CLOSED
        breaker.record_failure("boom")
        assert breaker.state is BreakerState.OPEN
        assert breaker.stats["trips"] == 1

    def test_success_resets_the_streak(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED


class TestOpen:
    def test_rejects_during_cooldown(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        clock.advance(4.9)
        assert not breaker.allow()
        assert breaker.stats["rejections"] == 2

    def test_half_opens_after_cooldown(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()  # the single half-open probe
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow()  # probe budget spent


class TestHalfOpen:
    def _open_then_half(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()

    def test_probe_success_closes(self, breaker, clock):
        self._open_then_half(breaker, clock)
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens(self, breaker, clock):
        self._open_then_half(breaker, clock)
        breaker.record_failure("still broken")
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        # and the cooldown restarted
        clock.advance(5.0)
        assert breaker.allow()


class TestBookkeeping:
    def test_history_is_bounded_and_annotated(self, clock):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1.0,
                                 clock=clock, max_history=4)
        for _ in range(10):
            breaker.record_failure("x")
            clock.advance(1.0)
            breaker.allow()
            breaker.record_success()
        assert len(breaker.history) == 4
        states = {frm for _, frm, _, _ in breaker.history} | \
                 {to for _, _, to, _ in breaker.history}
        assert states <= {"closed", "open", "half_open"}

    def test_snapshot(self, breaker):
        breaker.record_failure("a")
        snap = breaker.snapshot()
        assert snap["state"] == "closed"
        assert snap["failures"] == 1
        assert snap["consecutive_failures"] == 1

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(cooldown_s=-1)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(half_open_probes=0)
