"""Admission control: bounded queue, shedding, backpressure, handover."""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.serve.admission import AdmissionController, QueueFull


def run(coro):
    return asyncio.run(coro)


class TestFastPath:
    def test_acquire_under_capacity_is_immediate(self):
        async def main():
            ctl = AdmissionController(max_inflight=2, max_queue=4)
            await ctl.acquire()
            await ctl.acquire()
            assert ctl.inflight == 2
            assert ctl.queue_depth == 0
            ctl.release()
            ctl.release()
            assert ctl.inflight == 0

        run(main())

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ConfigurationError):
            AdmissionController(max_queue=-1)


class TestQueueing:
    def test_waiter_runs_when_slot_frees(self):
        async def main():
            ctl = AdmissionController(max_inflight=1, max_queue=4)
            await ctl.acquire()
            got = asyncio.Event()

            async def waiter():
                await ctl.acquire()
                got.set()

            task = asyncio.ensure_future(waiter())
            await asyncio.sleep(0)
            assert ctl.queue_depth == 1
            assert not got.is_set()
            ctl.release()  # slot handover, not a decrement
            await asyncio.wait_for(got.wait(), 1)
            assert ctl.inflight == 1
            assert ctl.queue_depth == 0
            ctl.release()
            await task

        run(main())

    def test_shed_beyond_queue_bound_is_synchronous(self):
        async def main():
            ctl = AdmissionController(max_inflight=1, max_queue=1)
            await ctl.acquire()
            filler = asyncio.ensure_future(ctl.acquire())
            await asyncio.sleep(0)
            with pytest.raises(QueueFull) as exc:
                await ctl.acquire()  # queue full: must raise, not wait
            assert exc.value.retry_after_ms > 0
            assert ctl.stats.shed == 1
            ctl.release()
            await filler
            ctl.release()

        run(main())

    def test_cancelled_waiter_does_not_leak_slot(self):
        async def main():
            ctl = AdmissionController(max_inflight=1, max_queue=4)
            await ctl.acquire()
            task = asyncio.ensure_future(ctl.acquire())
            await asyncio.sleep(0)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            ctl.release()
            # the slot is actually free again
            await asyncio.wait_for(ctl.acquire(), 1)
            ctl.release()

        run(main())


class TestSignals:
    def test_pressure_tracks_queue_occupancy(self):
        async def main():
            ctl = AdmissionController(max_inflight=1, max_queue=2)
            assert ctl.pressure == 0.0
            await ctl.acquire()
            tasks = [asyncio.ensure_future(ctl.acquire())
                     for _ in range(2)]
            await asyncio.sleep(0)
            assert ctl.pressure == 1.0
            assert ctl.retry_after_ms() == pytest.approx(
                ctl.base_retry_after_ms * 5.0)
            for _ in range(3):
                ctl.release()
            await asyncio.gather(*tasks)

        run(main())

    def test_snapshot_counts(self):
        async def main():
            ctl = AdmissionController(max_inflight=2, max_queue=0)
            await ctl.acquire()
            await ctl.acquire()
            with pytest.raises(QueueFull):
                await ctl.acquire()
            snap = ctl.snapshot()
            assert snap["admitted"] == 2
            assert snap["shed"] == 1
            assert snap["peak_inflight"] == 2
            ctl.release()
            ctl.release()

        run(main())
