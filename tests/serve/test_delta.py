"""Delta invalidation soundness: a kept column is never stale.

The service's incremental `put_graph` keeps cached columns that
`column_is_dirty` clears. The claim this file pins (oracle-checked):
every kept column still satisfies the full Bellman-fixpoint oracle
under the NEW weights — so serving it at the bumped version can never
be silent-wrong. The dirty test is conservative (may recompute a column
that did not change) but never unsound, including multi-edge deltas.
"""

import asyncio

import numpy as np
import pytest

from repro.errors import GraphError
from repro.serve.delta import (
    apply_edge_delta,
    certify_warm_plane,
    column_is_dirty,
    decode_edges,
    dirty_destinations,
)
from repro.serve.oracle import bellman_reference, verify_mcp
from repro.serve.service import PathQueryService, ServiceConfig

MAXINT = (1 << 16) - 1


def random_grid(n, rng, density=0.4):
    W = np.full((n, n), MAXINT, dtype=np.int64)
    mask = rng.random((n, n)) < density
    W[mask] = rng.integers(1, 10, size=int(mask.sum()))
    np.fill_diagonal(W, 0)
    return W


def solve(W, d):
    """Reference (sow, ptn) pair that passes the oracle."""
    n = W.shape[0]
    sow = bellman_reference(W, d, MAXINT)
    ptn = np.full(n, d, dtype=np.int64)
    for v in range(n):
        if v == d or sow[v] >= MAXINT:
            continue
        for u in range(n):
            if u != v and W[v, u] < MAXINT \
                    and sow[v] == W[v, u] + sow[u]:
                ptn[v] = u
                break
    return sow, ptn


class TestDecodeEdges:
    def test_valid_triples_decode(self):
        edges = decode_edges([[0, 1, 5], [2, 3, None]], 4, MAXINT)
        assert edges == [(0, 1, 5), (2, 3, MAXINT)]

    @pytest.mark.parametrize("bad", [
        [],                      # empty
        "nope",                  # not a list
        [[0, 1]],                # wrong arity
        [[0, 0, 3]],             # diagonal
        [[0, 9, 3]],             # out of range
        [[0, 1, -1]],            # negative weight
        [[0, 1, MAXINT + 1]],    # beyond the sentinel
        [[0, 1, "x"]],           # non-int weight
        [["a", 1, 2]],           # non-int endpoint
    ])
    def test_bad_wire_forms_rejected(self, bad):
        with pytest.raises(GraphError):
            decode_edges(bad, 4, MAXINT)

    def test_later_entries_win(self):
        W = np.zeros((3, 3), dtype=np.int64)
        edges = decode_edges([[0, 1, 5], [0, 1, 7]], 3, MAXINT)
        assert apply_edge_delta(W, edges, MAXINT)[0, 1] == 7


class TestDirtySoundness:
    def test_kept_columns_pass_the_oracle_under_new_weights(self):
        """The headline property: clean verdict => oracle-clean at W_new."""
        rng = np.random.default_rng(3)
        kept = dirtied = 0
        for trial in range(60):
            n = int(rng.integers(4, 12))
            W = random_grid(n, rng)
            k = int(rng.integers(1, 5))  # multi-edge deltas included
            edges = []
            for _ in range(k):
                u = int(rng.integers(0, n))
                v = int(rng.integers(0, n - 1))
                v += v >= u
                w = MAXINT if rng.random() < 0.3 \
                    else int(rng.integers(1, 10))
                edges.append((u, v, w))
            W_new = apply_edge_delta(W, edges, MAXINT)
            for d in range(n):
                sow, ptn = solve(W, d)
                if column_is_dirty(edges, sow, ptn, MAXINT):
                    dirtied += 1
                    continue
                kept += 1
                assert not verify_mcp(W_new, sow, ptn, d, MAXINT), \
                    f"kept a stale column (trial {trial}, dest {d})"
        assert kept > 50, "dirty test too conservative to be useful"
        assert dirtied > 50, "delta stream never dirtied anything"

    def test_vectorised_plane_test_matches_scalar(self):
        rng = np.random.default_rng(9)
        for _ in range(20):
            n = int(rng.integers(4, 10))
            W = random_grid(n, rng)
            cols = [solve(W, d) for d in range(n)]
            dist = np.stack([c[0] for c in cols], axis=1)
            succ = np.stack([c[1] for c in cols], axis=1)
            u = int(rng.integers(0, n))
            v = int(rng.integers(0, n - 1))
            v += v >= u
            edges = [(u, v, int(rng.integers(1, 10)))]
            plane = dirty_destinations(edges, dist, succ, MAXINT)
            scalar = [column_is_dirty(edges, dist[:, d], succ[:, d],
                                      MAXINT) for d in range(n)]
            assert plane.tolist() == scalar

    def test_cost_improvement_dirties_affected_column(self):
        # 0 -> 1 -> 2 costs 10; a 0->2 shortcut of 3 must dirty dest 2
        W = np.full((3, 3), MAXINT, dtype=np.int64)
        np.fill_diagonal(W, 0)
        W[0, 1] = 5
        W[1, 2] = 5
        sow, ptn = solve(W, 2)
        assert column_is_dirty([(0, 2, 3)], sow, ptn, MAXINT)

    def test_removing_tree_edge_dirties_column(self):
        W = np.full((3, 3), MAXINT, dtype=np.int64)
        np.fill_diagonal(W, 0)
        W[0, 1] = 5
        W[1, 2] = 5
        sow, ptn = solve(W, 2)
        assert column_is_dirty([(1, 2, MAXINT)], sow, ptn, MAXINT)

    def test_irrelevant_edge_keeps_column(self):
        W = np.full((4, 4), MAXINT, dtype=np.int64)
        np.fill_diagonal(W, 0)
        W[0, 1] = 2
        W[1, 2] = 2
        W[1, 0] = 20  # expensive detour, not on the tree
        # improving the detour without making it competitive (9 + 4 > 2)
        # cannot affect any answer for dest 2
        sow, ptn = solve(W, 2)
        assert not column_is_dirty([(1, 0, 9)], sow, ptn, MAXINT)


class TestCertifiedWarmPlane:
    def test_bounds_are_achievable_or_maxint(self):
        rng = np.random.default_rng(17)
        for _ in range(20):
            n = int(rng.integers(4, 10))
            W = random_grid(n, rng)
            cols = [solve(W, d) for d in range(n)]
            dist = np.stack([c[0] for c in cols], axis=1)
            succ = np.stack([c[1] for c in cols], axis=1)
            u = int(rng.integers(0, n))
            v = int(rng.integers(0, n - 1))
            v += v >= u
            edges = [(u, v, MAXINT if rng.random() < 0.5
                      else int(rng.integers(1, 10)))]
            W_new = apply_edge_delta(W, edges, MAXINT)
            dests = np.arange(n, dtype=np.int64)
            warm = certify_warm_plane(W_new, dist, succ, dests, MAXINT)
            for d in range(n):
                true = bellman_reference(W_new, d, MAXINT)
                # certified upper bounds: never below the new fixpoint
                assert (warm[:, d] >= true).all()
                assert warm[d, d] == 0


class TestServiceDelta:
    def run(self, coro):
        return asyncio.run(coro)

    def test_delta_updates_never_serve_stale_answers(self):
        async def main():
            rng = np.random.default_rng(29)
            n = 10
            W = random_grid(n, rng)
            wire = [[None if int(c) >= MAXINT else int(c) for c in row]
                    for row in W]
            service = PathQueryService(ServiceConfig(workers=1, seed=1))
            try:
                resp = await service.handle_request({
                    "id": 0, "op": "put_graph", "graph": "g",
                    "weights": wire, "word_bits": 16,
                })
                assert resp.status == "ok"
                grid = W.copy()
                version = 1
                for round_ in range(6):
                    # query every destination (fills + migrates caches)
                    for d in range(n):
                        r = await service.handle_request({
                            "id": f"{round_}-{d}", "op": "dest",
                            "graph": "g", "dest": d,
                        })
                        assert r.status == "ok"
                        assert r.result["version"] == version
                        want = bellman_reference(grid, d, MAXINT)
                        assert r.result["sow"] == [int(x) for x in want]
                    u = int(rng.integers(0, n))
                    v = int(rng.integers(0, n - 1))
                    v += v >= u
                    w = None if rng.random() < 0.3 \
                        else int(rng.integers(1, 10))
                    r = await service.handle_request({
                        "id": f"u{round_}", "op": "put_graph",
                        "graph": "g", "edges": [[u, v, w]],
                        "base_version": version,
                    })
                    assert r.status == "ok", r.error
                    grid[u, v] = MAXINT if w is None else w
                    version += 1
                    assert r.result["version"] == version
            finally:
                await service.stop()
        self.run(main())

    def test_version_conflict_rejected(self):
        async def main():
            service = PathQueryService(ServiceConfig(workers=1))
            try:
                wire = [[0, 1, None], [None, 0, 1], [1, None, 0]]
                await service.handle_request({
                    "id": 0, "op": "put_graph", "graph": "g",
                    "weights": wire, "word_bits": 16,
                })
                r = await service.handle_request({
                    "id": 1, "op": "put_graph", "graph": "g",
                    "edges": [[0, 2, 4]], "base_version": 7,
                })
                assert r.status == "error"
                assert "version conflict" in r.error
            finally:
                await service.stop()
        self.run(main())

    def test_weights_and_edges_together_rejected(self):
        async def main():
            service = PathQueryService(ServiceConfig(workers=1))
            try:
                wire = [[0, 1], [1, 0]]
                await service.handle_request({
                    "id": 0, "op": "put_graph", "graph": "g",
                    "weights": wire, "word_bits": 16,
                })
                r = await service.handle_request({
                    "id": 1, "op": "put_graph", "graph": "g",
                    "weights": wire, "edges": [[0, 1, 2]],
                })
                assert r.status == "error"
            finally:
                await service.stop()
        self.run(main())

    def test_incremental_apsp_matches_cold_digest(self):
        async def main():
            rng = np.random.default_rng(41)
            n = 9
            W = random_grid(n, rng)
            wire = [[None if int(c) >= MAXINT else int(c) for c in row]
                    for row in W]
            service = PathQueryService(ServiceConfig(workers=1, seed=2))
            cold_svc = PathQueryService(ServiceConfig(workers=1, seed=2))
            try:
                for s in (service, cold_svc):
                    r = await s.handle_request({
                        "id": 0, "op": "put_graph", "graph": "g",
                        "weights": wire, "word_bits": 16,
                    })
                    assert r.status == "ok"
                r = await service.handle_request(
                    {"id": 1, "op": "apsp", "graph": "g"})
                assert r.status == "ok"
                r = await service.handle_request({
                    "id": 2, "op": "put_graph", "graph": "g",
                    "edges": [[0, 1, 1], [2, 3, None]],
                })
                assert r.status == "ok", r.error
                warm = await service.handle_request(
                    {"id": 3, "op": "apsp", "graph": "g"})
                assert warm.status == "ok"
                # cold service registers the post-delta grid directly
                W_new = apply_edge_delta(
                    W, [(0, 1, 1), (2, 3, MAXINT)], MAXINT)
                wire_new = [[None if int(c) >= MAXINT else int(c)
                             for c in row] for row in W_new]
                r = await cold_svc.handle_request({
                    "id": 4, "op": "put_graph", "graph": "g",
                    "weights": wire_new, "word_bits": 16,
                })
                assert r.status == "ok"
                cold = await cold_svc.handle_request(
                    {"id": 5, "op": "apsp", "graph": "g"})
                assert cold.status == "ok"
                assert warm.result["digest"] == cold.result["digest"]
                if warm.result["incremental"] is not None:
                    assert 0 < warm.result["incremental"] <= n
            finally:
                await service.stop()
                await cold_svc.stop()
        self.run(main())
