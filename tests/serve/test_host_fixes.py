"""Pinning regressions for the true positives `repro lint --host` found.

Each test locks in the behavioural fix for one finding the host
analyzer surfaced when it first ran over the tree (the structural side
is pinned globally: tests/verify/test_sanitizer_bridge.py asserts the
whole tree stays statically clean):

* ``host-shm-attach-leak`` in ``engine/shard.py`` — ``_run_shard``
  attached all five planes in a list comprehension, so a failing attach
  stranded the earlier handles;
* ``host-orphan-task`` adjacent in ``serve/coalesce.py`` — the batch
  dispatch task's exception was never consumed, stranding every waiter
  in the flushed batch;
* ``host-blocking-io`` in ``serve/service.py`` — ``stop()`` joined the
  thread pool synchronously on the event loop.
"""

import asyncio
from types import SimpleNamespace

import pytest

from repro.engine import shard as shard_mod
from repro.ppa.topology import PPAConfig
from repro.serve.coalesce import ColumnCoalescer


class _FakeShm:
    """Attach stand-in recording whether close() ran."""

    def __init__(self, name):
        self.name = name
        self.closed = False

    def close(self):
        self.closed = True


class TestShardPartialAttach:
    def test_failed_attach_closes_earlier_handles(self, monkeypatch):
        # plane 3 of 5 fails to attach: the two already-open handles
        # must be closed on the way out (pre-fix, the comprehension
        # stranded them)
        opened = []

        def fake_attach(name):
            if len(opened) == 2:
                raise FileNotFoundError(f"no such segment: {name}")
            shm = _FakeShm(name)
            opened.append(shm)
            return shm

        monkeypatch.setattr(shard_mod, "_attach", fake_attach)
        monkeypatch.setattr(shard_mod, "_worker_ctx", {
            "config": PPAConfig(n=4),
            "fields": ("bus_cycles",),
            "w": "a", "dist": "b", "succ": "c",
            "iters": "d", "lanes": "e",
        })
        with pytest.raises(FileNotFoundError):
            shard_mod._run_shard((0, 0, 2))
        assert len(opened) == 2
        assert all(shm.closed for shm in opened)


class TestCoalescerDispatchFailure:
    def test_dispatch_exception_resolves_waiters(self):
        # a dispatch task that dies must resolve every pending waiter
        # with an error outcome (pre-fix: unconsumed task exception,
        # waiters hung forever)
        async def main():
            async def dispatch(graph, waiters, deadline_at):
                raise RuntimeError("engine fell over")

            co = ColumnCoalescer(dispatch, window_ms=0)
            g = SimpleNamespace(name="g", version=1)
            future, single = co.join(g, dest=0, deadline_at=0.0)
            assert not single
            outcome = await asyncio.wait_for(future, timeout=5)
            assert outcome["status"] == "error"
            assert "engine fell over" in outcome["error"]
            assert co.stats.dispatch_errors == 1
            assert co.stats.to_dict()["dispatch_errors"] == 1
            await co.drain()

        asyncio.run(main())

    def test_cancelled_dispatch_resolves_waiters(self):
        async def main():
            started = asyncio.Event()

            async def dispatch(graph, waiters, deadline_at):
                started.set()
                await asyncio.sleep(60)

            co = ColumnCoalescer(dispatch, window_ms=0)
            g = SimpleNamespace(name="g", version=1)
            future, _ = co.join(g, dest=0, deadline_at=0.0)
            await started.wait()
            for task in list(co._tasks):
                task.cancel()
            outcome = await asyncio.wait_for(future, timeout=5)
            assert outcome["status"] == "error"
            assert "cancelled" in outcome["error"]

        asyncio.run(main())

    def test_successful_dispatch_counts_no_errors(self):
        async def main():
            async def dispatch(graph, waiters, deadline_at):
                for fut in waiters.values():
                    fut.set_result({"status": "ok", "payload": {}})

            co = ColumnCoalescer(dispatch, window_ms=0)
            g = SimpleNamespace(name="g", version=1)
            future, _ = co.join(g, dest=0, deadline_at=0.0)
            outcome = await asyncio.wait_for(future, timeout=5)
            assert outcome["status"] == "ok"
            await co.drain()
            assert co.stats.dispatch_errors == 0

        asyncio.run(main())


class TestStopOffloadsExecutorJoin:
    def test_loop_keeps_ticking_while_stop_joins_threads(self):
        # stop() joins the thread pool via run_in_executor: a heartbeat
        # task must keep running while a slow in-flight solve holds a
        # worker thread (pre-fix, shutdown(wait=True) froze the loop)
        import threading
        import time as time_mod

        from repro.serve.service import PathQueryService, ServiceConfig

        async def main():
            service = PathQueryService(ServiceConfig(verify=False))
            release = threading.Event()

            def slow_job():
                release.wait(timeout=10)

            loop = asyncio.get_running_loop()
            job = loop.run_in_executor(service._threads(), slow_job)
            ticks = 0

            async def heartbeat():
                nonlocal ticks
                while True:
                    await asyncio.sleep(0.01)
                    ticks += 1

            beat = asyncio.create_task(heartbeat())
            stop = asyncio.create_task(service.stop())
            await asyncio.sleep(0.15)
            ticks_during_stop = ticks
            release.set()
            await stop
            await job
            beat.cancel()
            await asyncio.gather(beat, return_exceptions=True)
            assert not stop.done() or service._executor is None
            # ~15 ticks expected; >=5 proves the loop never froze
            assert ticks_during_stop >= 5, ticks_during_stop

        asyncio.run(main())

    def test_stop_is_idempotent(self):
        from repro.serve.service import PathQueryService, ServiceConfig

        async def main():
            service = PathQueryService(ServiceConfig(verify=False))
            service._threads()
            await service.stop()
            assert service._executor is None
            await service.stop()

        asyncio.run(main())
