"""Public API surface: imports, __all__ integrity, docstring example."""

import numpy as np
import pytest

import repro


class TestSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_docstring_example(self):
        W = np.array(
            [
                [0, 4, repro.INF, repro.INF],
                [repro.INF, 0, 1, repro.INF],
                [repro.INF, repro.INF, 0, 7],
                [2, repro.INF, repro.INF, 0],
            ]
        )
        machine = repro.PPAMachine(repro.PPAConfig(n=4, word_bits=16))
        result = repro.minimum_cost_path(machine, W, d=3)
        assert int(result.sow[0]) == 12
        assert result.path(0) == [0, 1, 2, 3]

    def test_errors_are_catchable_via_base(self):
        with pytest.raises(repro.ReproError):
            repro.PPAConfig(n=0)

    def test_subpackages_importable(self):
        import repro.analysis  # noqa: F401
        import repro.baselines  # noqa: F401
        import repro.core  # noqa: F401
        import repro.metrics  # noqa: F401
        import repro.ppa  # noqa: F401
        import repro.ppc  # noqa: F401
        import repro.ppc.lang  # noqa: F401
        import repro.workloads  # noqa: F401
