"""Cross-machine integration: four architectures, two oracles, one answer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import PPAConfig, PPAMachine, minimum_cost_path
from repro.baselines import (
    GCNMachine,
    HypercubeMachine,
    MeshMachine,
    bellman_ford,
    dijkstra,
)
from repro.workloads import WeightSpec, gnp_digraph

INF16 = (1 << 16) - 1


def all_results(W, d):
    n = W.shape[0]
    out = {
        "ppa": minimum_cost_path(PPAMachine(PPAConfig(n=n)), W, d),
        "mesh": MeshMachine(n).mcp(W, d),
        "gcn": GCNMachine(n).mcp(W, d),
    }
    if n & (n - 1) == 0:
        out["hypercube"] = HypercubeMachine(n).mcp(W, d)
    return out


class TestAgreement:
    @given(seed=st.integers(0, 10_000), density=st.floats(0, 1))
    @settings(max_examples=25)
    def test_all_machines_agree(self, seed, density):
        n = 8
        W = gnp_digraph(n, density, seed=seed, weights=WeightSpec(0, 30),
                        inf_value=INF16)
        d = seed % n
        bf = bellman_ford(W, d, maxint=INF16)
        dj = dijkstra(W, d, maxint=INF16)
        assert np.array_equal(bf.sow, dj.sow)
        for name, res in all_results(W, d).items():
            assert np.array_equal(res.sow, bf.sow), name
            assert res.iterations == bf.iterations, name

    def test_identical_iteration_counts_across_machines(self):
        W = gnp_digraph(8, 0.3, seed=11, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        results = all_results(W, 5)
        iters = {r.iterations for r in results.values()}
        assert len(iters) == 1

    def test_every_machine_reports_counters(self):
        W = gnp_digraph(8, 0.3, seed=11, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        for name, res in all_results(W, 5).items():
            assert res.counters["bus_cycles"] > 0, name
            assert res.counters["bit_cycles"] > 0, name


class TestCostHierarchy:
    def test_bit_cycle_ordering_at_n32(self):
        W = gnp_digraph(32, 0.2, seed=3, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        res = all_results(W, 7)
        bits = {k: v.counters["bit_cycles"] for k, v in res.items()}
        assert bits["mesh"] > bits["hypercube"] > bits["ppa"]
        assert bits["mesh"] > bits["gcn"]
