"""Every example script runs cleanly and prints its headline output."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "minimum cost paths to vertex 5" in out
        assert "0 -> 1" in out

    def test_road_network(self):
        out = run_example("road_network_routing.py")
        assert "hospital" in out
        assert "fastest route from (0, 0)" in out

    def test_maze(self):
        out = run_example("maze_routing.py")
        assert "wire length from S" in out

    def test_ppc_demo(self):
        out = run_example("ppc_language_demo.py")
        assert "interpreter == native implementation: True" in out
        assert "rejected as expected" in out

    def test_architecture_comparison(self):
        out = run_example("architecture_comparison.py")
        assert "T5" in out and "A8" in out

    def test_image_processing(self):
        out = run_example("image_processing.py")
        assert "distance transform" in out
        assert "connected components" in out

    def test_fault_diagnosis(self):
        out = run_example("fault_diagnosis.py")
        assert "corruption caught by validate_tree" in out
        assert "stuck-open switch at (3, 3)" in out

    def test_compiler_pipeline(self):
        out = run_example("compiler_pipeline.py")
        assert "all rungs agree" in out
