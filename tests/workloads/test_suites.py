"""Named workload suites."""

import pytest

from repro.errors import GraphError
from repro.workloads.suites import SUITES, suite_cases

INF16 = (1 << 16) - 1


class TestSuites:
    def test_known_suites_present(self):
        assert {"correctness", "unit"} <= set(SUITES)

    def test_correctness_suite_shape(self):
        cases = suite_cases("correctness", inf_value=INF16)
        assert len(cases) > 20
        for case in cases:
            assert case.W.shape == (case.n, case.n)
            assert 0 <= case.destination < case.n
            assert (case.W <= INF16).all()

    def test_unit_suite_unit_weights(self):
        for case in suite_cases("unit", inf_value=INF16):
            finite = case.W[(case.W > 0) & (case.W < INF16)]
            assert (finite == 1).all()

    def test_inf_value_respected(self):
        inf = 255
        for case in suite_cases("unit", inf_value=inf):
            assert case.W.max() == inf

    def test_deterministic(self):
        import numpy as np

        a = suite_cases("correctness", inf_value=INF16)
        b = suite_cases("correctness", inf_value=INF16)
        assert all(np.array_equal(x.W, y.W) for x, y in zip(a, b))

    def test_unknown_suite(self):
        with pytest.raises(GraphError, match="unknown suite"):
            suite_cases("nope", inf_value=INF16)
