"""Named workload suites."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.workloads.suites import (
    SUITES,
    batch_suite,
    run_batched_suite,
    suite_cases,
)

INF16 = (1 << 16) - 1


class TestSuites:
    def test_known_suites_present(self):
        assert {"correctness", "unit"} <= set(SUITES)

    def test_correctness_suite_shape(self):
        cases = suite_cases("correctness", inf_value=INF16)
        assert len(cases) > 20
        for case in cases:
            assert case.W.shape == (case.n, case.n)
            assert 0 <= case.destination < case.n
            assert (case.W <= INF16).all()

    def test_unit_suite_unit_weights(self):
        for case in suite_cases("unit", inf_value=INF16):
            finite = case.W[(case.W > 0) & (case.W < INF16)]
            assert (finite == 1).all()

    def test_inf_value_respected(self):
        inf = 255
        for case in suite_cases("unit", inf_value=inf):
            assert case.W.max() == inf

    def test_deterministic(self):
        import numpy as np

        a = suite_cases("correctness", inf_value=INF16)
        b = suite_cases("correctness", inf_value=INF16)
        assert all(np.array_equal(x.W, y.W) for x, y in zip(a, b))

    def test_unknown_suite(self):
        with pytest.raises(GraphError, match="unknown suite"):
            suite_cases("nope", inf_value=INF16)


class TestBatchSuite:
    def test_groups_by_grid_size(self):
        cases = suite_cases("correctness", inf_value=INF16)
        stacks = batch_suite(cases)
        # one stack per distinct grid size when lanes is uncapped
        assert len(stacks) == len({c.n for c in cases})
        for stack in stacks:
            assert stack.W.shape == (stack.batch, stack.n, stack.n)
            assert stack.destinations.shape == (stack.batch,)
            assert len(stack.members) == stack.batch

    def test_lane_cap_chunks_deterministically(self):
        cases = suite_cases("correctness", inf_value=INF16)
        stacks = batch_suite(cases, lanes=4)
        assert all(s.batch <= 4 for s in stacks)
        # chunking preserves suite order and loses no case
        flat = [m for s in stacks for m in s.members]
        by_n: dict[int, list[str]] = {}
        for c in cases:
            by_n.setdefault(c.n, []).append(c.name)
        expected = [m for n in sorted(by_n) for m in by_n[n]]
        assert flat == expected

    def test_lane_order_maps_back_to_cases(self):
        cases = suite_cases("unit", inf_value=INF16)
        by_name = {c.name: c for c in cases}
        for stack in batch_suite(cases):
            for b, member in enumerate(stack.members):
                assert np.array_equal(stack.W[b], by_name[member].W)
                assert stack.destinations[b] == by_name[member].destination

    def test_invalid_lanes(self):
        with pytest.raises(GraphError, match="lanes must be >= 1"):
            batch_suite(suite_cases("unit", inf_value=INF16), lanes=0)


class TestRunBatchedSuite:
    @pytest.mark.parametrize("lanes", [None, 3])
    def test_results_match_serial_runs(self, lanes):
        from repro import PPAConfig, PPAMachine, minimum_cost_path

        cases = suite_cases("unit", inf_value=INF16)
        results = run_batched_suite(cases, lanes=lanes)
        assert set(results) == {c.name for c in cases}
        for case in cases:
            serial = minimum_cost_path(
                PPAMachine(PPAConfig(n=case.n, word_bits=16)),
                case.W,
                case.destination,
            )
            got = results[case.name]
            assert np.array_equal(got.sow, serial.sow)
            assert np.array_equal(got.ptn, serial.ptn)
            assert got.iterations == serial.iterations
            assert got.counters == serial.counters
