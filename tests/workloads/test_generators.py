"""Graph generators: structure, determinism, conventions."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.workloads.generators import (
    DEFAULT_INF,
    complete_graph,
    geometric_graph,
    gnp_digraph,
    grid_graph,
    layered_graph,
    random_tree,
    ring_graph,
)
from repro.workloads.weights import WeightSpec

INF = DEFAULT_INF


def edges(W):
    mask = (W < INF) & ~np.eye(W.shape[0], dtype=bool)
    return mask


class TestConventions:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: gnp_digraph(8, 0.4, seed=1),
            lambda: grid_graph(3, seed=1),
            lambda: ring_graph(8, seed=1),
            lambda: random_tree(8, seed=1),
            lambda: geometric_graph(8, 0.4, seed=1),
            lambda: complete_graph(8, seed=1),
            lambda: layered_graph(3, 2, seed=1)[0],
        ],
    )
    def test_zero_diagonal_and_dtype(self, factory):
        W = factory()
        assert W.dtype == np.int64
        assert (np.diag(W) == 0).all()
        mask = edges(W)
        assert (W[mask] >= 1).all()

    def test_determinism(self):
        a = gnp_digraph(10, 0.3, seed=42)
        b = gnp_digraph(10, 0.3, seed=42)
        assert np.array_equal(a, b)
        c = gnp_digraph(10, 0.3, seed=43)
        assert not np.array_equal(a, c)


class TestGnp:
    def test_density_extremes(self):
        assert not edges(gnp_digraph(6, 0.0, seed=0)).any()
        assert edges(gnp_digraph(6, 1.0, seed=0)).sum() == 30

    def test_bad_probability(self):
        with pytest.raises(GraphError, match="probability"):
            gnp_digraph(4, 1.5)

    def test_bad_size(self):
        with pytest.raises(GraphError, match="size"):
            gnp_digraph(0, 0.5)


class TestGrid:
    def test_vertex_count(self):
        assert grid_graph(4).shape == (16, 16)

    def test_neighbour_structure(self):
        W = grid_graph(3, weights=WeightSpec(1, 1))
        # vertex 4 (centre) connects to 1, 3, 5, 7
        for nb in (1, 3, 5, 7):
            assert W[4, nb] == 1 and W[nb, 4] == 1
        assert W[4, 0] == INF  # no diagonal streets

    def test_unidirectional(self):
        W = grid_graph(3, bidirectional=False)
        assert W[0, 1] < INF
        assert W[1, 0] == INF


class TestRingAndTree:
    def test_ring_structure(self):
        W = ring_graph(5, weights=WeightSpec(1, 1))
        for i in range(5):
            assert W[i, (i + 1) % 5] == 1
        assert edges(W).sum() == 5

    def test_single_vertex_ring_has_no_self_loop(self):
        W = ring_graph(1)
        assert W.shape == (1, 1) and W[0, 0] == 0

    def test_tree_has_n_minus_1_edges(self):
        W = random_tree(9, seed=3)
        assert edges(W).sum() == 8

    def test_tree_all_reach_root(self):
        from repro.baselines.sequential import bellman_ford

        W = random_tree(9, seed=3)
        bf = bellman_ford(W, 0, maxint=INF)
        assert bf.reachable.all()


class TestLayered:
    def test_exact_depth(self):
        W, d = layered_graph(4, 3, seed=0)
        assert d == 0
        assert W.shape == (13, 13)
        from repro.baselines.sequential import bellman_ford

        bf = bellman_ford(W, 0, maxint=INF)
        assert bf.reachable.all()
        assert bf.iterations == 4

    def test_layers_fully_connected(self):
        W, _ = layered_graph(2, 2, seed=0, weights=WeightSpec(1, 1))
        # layer 1 = {1, 2} -> sink 0; layer 2 = {3, 4} -> layer 1
        assert W[1, 0] == 1 and W[2, 0] == 1
        assert W[3, 1] == 1 and W[3, 2] == 1 and W[4, 1] == 1

    def test_no_shortcuts(self):
        W, _ = layered_graph(3, 2, seed=0)
        assert W[5, 0] == INF  # layer 3 cannot skip to the sink


class TestGeometric:
    def test_radius_controls_density(self):
        sparse = edges(geometric_graph(20, 0.1, seed=1)).sum()
        dense = edges(geometric_graph(20, 0.8, seed=1)).sum()
        assert dense > sparse

    def test_symmetric_structure(self):
        W = geometric_graph(10, 0.5, seed=2)
        assert np.array_equal(edges(W), edges(W).T)

    def test_bad_radius(self):
        with pytest.raises(GraphError, match="radius"):
            geometric_graph(5, 0.0)


class TestComplete:
    def test_all_pairs_connected(self):
        W = complete_graph(5, seed=0)
        assert edges(W).sum() == 20
