"""Weight assignment policies."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.workloads.weights import WeightSpec, uniform_weights, unit_weights


class TestWeightSpec:
    def test_range_applied(self):
        spec = WeightSpec(3, 5)
        adj = ~np.eye(6, dtype=bool)
        W = spec.apply(adj, np.random.default_rng(0), 999)
        vals = W[adj]
        assert vals.min() >= 3 and vals.max() <= 5

    def test_missing_edges_get_inf(self):
        spec = WeightSpec(1, 1)
        adj = np.zeros((4, 4), dtype=bool)
        adj[0, 1] = True
        W = spec.apply(adj, np.random.default_rng(0), 777)
        assert W[0, 1] == 1
        assert W[1, 0] == 777

    def test_diagonal_forced_zero(self):
        spec = WeightSpec(1, 9)
        adj = np.ones((4, 4), dtype=bool)
        W = spec.apply(adj, np.random.default_rng(0), 999)
        assert (np.diag(W) == 0).all()

    def test_invalid_range(self):
        with pytest.raises(GraphError, match="invalid weight range"):
            WeightSpec(5, 2)
        with pytest.raises(GraphError):
            WeightSpec(-1, 4)

    def test_unit_weights(self):
        spec = unit_weights()
        adj = ~np.eye(3, dtype=bool)
        W = spec.apply(adj, np.random.default_rng(0), 99)
        assert (W[adj] == 1).all()

    def test_uniform_shorthand(self):
        assert uniform_weights(2, 7) == WeightSpec(2, 7)

    def test_zero_weights_allowed_explicitly(self):
        spec = WeightSpec(0, 0)
        adj = ~np.eye(3, dtype=bool)
        W = spec.apply(adj, np.random.default_rng(0), 99)
        assert (W[adj] == 0).all()
