"""The drift guard's artefact validation: clear failures, never a KeyError.

``benchmarks/check_drift.py`` is a standalone script (not part of the
``repro`` package), so it is loaded here by file path. Only the cheap
pre-flight machinery is exercised — the regeneration checks themselves run
in CI via ``python benchmarks/check_drift.py``.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).parent.parent / "benchmarks" / "check_drift.py"


@pytest.fixture(scope="module")
def drift():
    spec = importlib.util.spec_from_file_location("check_drift", _SCRIPT)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


NAME = "BENCH_p2_batching.json"  # any registered bench artefact


class TestValidateArtifact:
    def test_missing_file_fails_with_instructions(self, drift, tmp_path):
        diffs = drift._validate_artifact(tmp_path / NAME)
        assert len(diffs) == 1
        assert "missing" in diffs[0]
        assert "pytest benchmarks/" in diffs[0]

    def test_unreadable_json_fails(self, drift, tmp_path):
        path = tmp_path / NAME
        path.write_text("{not json")
        (diff,) = drift._validate_artifact(path)
        assert "unreadable JSON" in diff

    def test_non_object_payload_fails(self, drift, tmp_path):
        path = tmp_path / NAME
        path.write_text("[1, 2, 3]")
        (diff,) = drift._validate_artifact(path)
        assert "JSON object" in diff

    def test_unknown_schema_version_fails(self, drift, tmp_path):
        path = tmp_path / NAME
        path.write_text(json.dumps({"schema": "repro-bench-p2-v999"}))
        (diff,) = drift._validate_artifact(path)
        assert "unknown schema" in diff
        assert "repro-bench-p2-v999" in diff
        assert "repro-bench-p2-v1" in diff  # says what it understands

    def test_missing_schema_key_fails(self, drift, tmp_path):
        path = tmp_path / NAME
        path.write_text(json.dumps({"entries": []}))
        (diff,) = drift._validate_artifact(path)
        assert "unknown schema: None" in diff

    def test_profile_files_use_format_key(self, drift, tmp_path):
        path = tmp_path / "BENCH_t1_mcp.json"
        path.write_text(json.dumps({"format": "repro-profile-v2"}))
        (diff,) = drift._validate_artifact(path)
        assert "unknown format" in diff

    def test_registered_artifacts_all_pass_preflight(self, drift):
        for name in drift.CHECKS:
            assert drift._validate_artifact(drift.PROFILE_DIR / name) == []


class TestMain:
    def test_registries_are_symmetric(self, drift):
        assert set(drift.CHECKS) == set(drift.EXPECTED_SCHEMAS)

    def test_missing_artifact_fails_run(self, drift, tmp_path, monkeypatch,
                                         capsys):
        monkeypatch.setattr(drift, "PROFILE_DIR", tmp_path)
        monkeypatch.setattr(
            drift, "CHECKS", {NAME: lambda p: []}
        )
        monkeypatch.setattr(
            drift, "EXPECTED_SCHEMAS",
            {NAME: ("schema", "repro-bench-p2-v1")},
        )
        assert drift.main() == 1
        out = capsys.readouterr().out
        assert f"FAIL {NAME}" in out
        assert "missing" in out

    def test_keyerror_in_check_reports_layout_problem(
        self, drift, tmp_path, monkeypatch, capsys
    ):
        path = tmp_path / NAME
        path.write_text(json.dumps({"schema": "repro-bench-p2-v1"}))

        def bad_check(p):
            return json.loads(p.read_text())["entries"]  # raises KeyError

        monkeypatch.setattr(drift, "PROFILE_DIR", tmp_path)
        monkeypatch.setattr(drift, "CHECKS", {NAME: bad_check})
        monkeypatch.setattr(
            drift, "EXPECTED_SCHEMAS",
            {NAME: ("schema", "repro-bench-p2-v1")},
        )
        assert drift.main() == 1
        out = capsys.readouterr().out
        assert "missing key 'entries'" in out
        assert "regenerate" in out

    def test_unregistered_committed_artifact_fails(
        self, drift, tmp_path, monkeypatch, capsys
    ):
        (tmp_path / "BENCH_rogue.json").write_text("{}")
        monkeypatch.setattr(drift, "PROFILE_DIR", tmp_path)
        monkeypatch.setattr(drift, "CHECKS", {})
        monkeypatch.setattr(drift, "EXPECTED_SCHEMAS", {})
        assert drift.main() == 1
        err = capsys.readouterr().err
        assert "BENCH_rogue.json" in err
