"""Image applications vs scipy.ndimage oracles."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import ndimage

from repro.apps import (
    connected_components,
    distance_transform,
    frame_image,
    random_blobs,
)
from repro.errors import GraphError
from repro.ppa import PPAConfig, PPAMachine

CROSS = np.array([[0, 1, 0], [1, 1, 1], [0, 1, 0]], dtype=bool)


def machine(n):
    return PPAMachine(PPAConfig(n=n, word_bits=16))


def l1_oracle(img):
    """Exact city-block distances (taxicab chamfer on a boolean image)."""
    return ndimage.distance_transform_cdt(~img, metric="taxicab")


def partition_equal(a, b):
    """Two labelings induce the same partition of the foreground."""
    fg = a >= 0
    if not np.array_equal(fg, b >= 0):
        return False
    mapping = {}
    for x, y in zip(a[fg], b[fg]):
        if mapping.setdefault(int(x), int(y)) != int(y):
            return False
    return len(set(mapping.values())) == len(mapping)


class TestImageGenerators:
    def test_random_blobs_deterministic(self):
        assert np.array_equal(random_blobs(12, seed=5), random_blobs(12, seed=5))

    def test_random_blobs_nonempty(self):
        assert random_blobs(12, seed=1).any()

    def test_frame_is_hollow(self):
        img = frame_image(10, margin=2)
        assert img[2, 5] and not img[5, 5]

    def test_frame_too_small(self):
        with pytest.raises(GraphError):
            frame_image(4, margin=2)


class TestDistanceTransform:
    def test_single_feature_pixel(self):
        img = np.zeros((7, 7), dtype=bool)
        img[3, 3] = True
        res = distance_transform(machine(7), img)
        rows = np.abs(np.arange(7)[:, None] - 3)
        cols = np.abs(np.arange(7)[None, :] - 3)
        assert np.array_equal(res.distances, rows + cols)
        # the four in-place directional sweeps chamfer-propagate, so fewer
        # iterations than the max distance are needed — but at least the
        # quadrant-diagonal bound plus the convergence round
        assert 2 <= res.iterations <= 7

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_scipy_on_blobs(self, seed):
        img = random_blobs(12, blobs=3, radius=2, seed=seed)
        res = distance_transform(machine(12), img)
        assert np.array_equal(res.distances, l1_oracle(img))

    def test_frame_interior(self):
        img = frame_image(11, margin=1)
        res = distance_transform(machine(11), img)
        assert res.distances[5, 5] == l1_oracle(img)[5, 5]
        assert res.max_distance == res.distances.max()

    def test_all_feature_image(self):
        img = np.ones((5, 5), dtype=bool)
        res = distance_transform(machine(5), img)
        assert not res.distances.any()
        assert res.iterations == 1

    def test_empty_image_all_unreached(self):
        img = np.zeros((5, 5), dtype=bool)
        res = distance_transform(machine(5), img)
        assert (res.distances == res.unreached).all()
        assert res.max_distance == 0

    def test_shape_mismatch(self):
        with pytest.raises(GraphError, match="does not fit"):
            distance_transform(machine(5), np.zeros((4, 4), bool))

    def test_borders_not_adjacent(self):
        """No torus wrap: a feature on the left edge is far from the right."""
        img = np.zeros((8, 8), dtype=bool)
        img[:, 0] = True
        res = distance_transform(machine(8), img)
        assert (res.distances[:, 7] == 7).all()

    @given(seed=st.integers(0, 10_000), n=st.integers(4, 10))
    @settings(max_examples=25)
    def test_property_matches_scipy(self, seed, n):
        img = random_blobs(n, blobs=2, radius=2, seed=seed)
        res = distance_transform(machine(n), img)
        assert np.array_equal(res.distances, l1_oracle(img))


class TestConnectedComponents:
    def scipy_labels(self, img):
        lab, count = ndimage.label(img, structure=CROSS)
        return np.where(img, lab - 1, -1), count

    @pytest.mark.parametrize("use_buses", [True, False])
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_scipy_partition(self, use_buses, seed):
        img = random_blobs(12, blobs=4, radius=2, seed=seed)
        res = connected_components(machine(12), img, use_buses=use_buses)
        want, count = self.scipy_labels(img)
        assert res.count == count
        assert partition_equal(res.labels, want)

    def test_labels_are_canonical_min_index(self):
        img = np.zeros((5, 5), dtype=bool)
        img[1, 1:4] = True
        res = connected_components(machine(5), img)
        assert set(np.unique(res.labels)) == {-1, 1 * 5 + 1}

    def test_relabelled_compact(self):
        img = random_blobs(10, blobs=3, radius=1, seed=7)
        res = connected_components(machine(10), img)
        compact = res.relabelled()
        ids = set(np.unique(compact[compact >= 0]))
        assert ids == set(range(res.count))

    def test_buses_accelerate_long_runs(self):
        """A full-width bar converges in O(1) rounds over the bus but needs
        Θ(n) neighbourhood sweeps without it."""
        n = 16
        img = np.zeros((n, n), dtype=bool)
        img[4, :] = True
        fast = connected_components(machine(n), img, use_buses=True)
        slow = connected_components(machine(n), img, use_buses=False)
        assert fast.count == slow.count == 1
        assert fast.iterations <= 3
        assert slow.iterations >= n - 2

    def test_empty_image(self):
        res = connected_components(machine(5), np.zeros((5, 5), bool))
        assert res.count == 0
        assert (res.labels == -1).all()

    def test_spiral_shape(self):
        """A snaky single component — worst case for pure propagation."""
        img = np.array(
            [
                [1, 1, 1, 1, 1],
                [0, 0, 0, 0, 1],
                [1, 1, 1, 0, 1],
                [1, 0, 0, 0, 1],
                [1, 1, 1, 1, 1],
            ],
            dtype=bool,
        )
        res = connected_components(machine(5), img)
        want, count = self.scipy_labels(img)
        assert res.count == count == 1
        assert partition_equal(res.labels, want)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20)
    def test_property_matches_scipy(self, seed):
        img = random_blobs(9, blobs=3, radius=1, seed=seed)
        res = connected_components(machine(9), img)
        want, count = self.scipy_labels(img)
        assert res.count == count
        assert partition_equal(res.labels, want)

    def test_edge_runs_do_not_wrap(self):
        """Foreground touching both vertical borders must stay two
        components (the bus clusters never wrap the image)."""
        img = np.zeros((6, 6), dtype=bool)
        img[2, 0] = img[2, 5] = True
        res = connected_components(machine(6), img)
        assert res.count == 2
