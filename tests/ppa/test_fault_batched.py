"""Fault application on the batched bus paths and the plan caches.

:mod:`repro.ppa.faults` promises three cache-safety properties (its
module docstring): a faulted transaction must never reuse a faultless
plan (stuck-ats rewrite the switch plane *before* plan resolution), an
intermittent fault that does not fire leaves the programmed plane
byte-identical and *may* reuse the faultless plan, and transients are
applied to the received values *after* the kernel — invisible to every
cache. This file pins all three against the serial 2-D path, the
lane-expanded shared-plane path and the per-lane-stack path, and then
pins the headline regression: a static fault corrupts a batched
multi-destination run **lane-for-lane identically** to the serial
per-destination runs, counters included.
"""

import numpy as np
import pytest

from repro.core import all_pairs_minimum_cost, minimum_cost_path
from repro.ppa import PPAConfig, PPAMachine
from repro.ppa.directions import Direction
from repro.ppa.faults import FaultKind, FaultPlan
from repro.ppa.segments import (
    clear_plan_cache,
    plan_cache_stats,
    reset_plan_cache_stats,
)
from repro.workloads import WeightSpec, gnp_digraph

INF16 = (1 << 16) - 1


def machine(n: int = 4, plan: FaultPlan | None = None) -> PPAMachine:
    m = PPAMachine(PPAConfig(n=n, word_bits=16))
    if plan is not None:
        m.inject_faults(plan)
    return m


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_plan_cache()
    reset_plan_cache_stats()
    yield
    clear_plan_cache()


def _open_plan() -> FaultPlan:
    return FaultPlan().add(2, 1, FaultKind.STUCK_OPEN, axis=0)


class TestCacheIsolation:
    """Faulted and faultless transactions never share a plan."""

    def test_serial_faulted_plane_misses_faultless_plan(self):
        m = machine()
        heads = m.row_index == 0
        healthy = m.broadcast(m.row_index, Direction.SOUTH, heads)
        m.broadcast(m.row_index, Direction.SOUTH, heads)
        stats = plan_cache_stats()
        assert (stats.broadcast_misses, stats.broadcast_hits) == (1, 1)

        m.inject_faults(_open_plan())
        faulted = m.broadcast(m.row_index, Direction.SOUTH, heads)
        assert stats.broadcast_misses == 2  # new plan, not the cached one
        assert not np.array_equal(healthy, faulted)

    def test_lane_expanded_faulted_plane_misses_too(self):
        base = machine()
        view = base.lanes(3)
        heads = base.row_index == 0  # shared 2-D plane, expanded per lane
        src = np.broadcast_to(base.row_index, (3, 4, 4))
        healthy = view.broadcast(src, Direction.SOUTH, heads)
        stats = plan_cache_stats()
        misses0 = stats.broadcast_misses

        base.inject_faults(_open_plan())
        faulted = base.lanes(3).broadcast(src, Direction.SOUTH, heads)
        assert stats.broadcast_misses > misses0
        assert not np.array_equal(healthy, faulted)
        # Physical damage hits every lane the same way.
        for b in range(1, 3):
            assert np.array_equal(faulted[0], faulted[b])

    def test_per_lane_stack_faulted_plane_misses_too(self):
        base = machine()
        view = base.lanes(2)
        stack = np.stack([base.row_index == 0, base.row_index == 1])
        src = np.broadcast_to(base.row_index, (2, 4, 4))
        healthy = view.broadcast(src, Direction.SOUTH, stack)
        stats = plan_cache_stats()
        misses0 = stats.broadcast_misses

        base.inject_faults(_open_plan())
        faulted = base.lanes(2).broadcast(src, Direction.SOUTH, stack)
        assert stats.broadcast_misses > misses0
        assert not np.array_equal(healthy, faulted)

    def test_reduce_path_is_isolated_as_well(self):
        m = machine()
        heads = m.col_index == m.n - 1
        healthy = m.bus_reduce(m.col_index, Direction.WEST, heads, "min")
        m.bus_reduce(m.col_index, Direction.WEST, heads, "min")
        stats = plan_cache_stats()
        assert (stats.reduce_misses, stats.reduce_hits) == (1, 1)

        m.inject_faults(FaultPlan().add(1, 2, FaultKind.STUCK_OPEN, axis=1))
        faulted = m.bus_reduce(m.col_index, Direction.WEST, heads, "min")
        assert stats.reduce_misses == 2
        assert not np.array_equal(healthy, faulted)


class TestIntermittentCacheBehaviour:
    def test_quiet_intermittent_reuses_the_faultless_plan(self):
        """An activation draw that does not fire leaves the programmed
        plane byte-identical — the faultless plan is reused (no cache
        pollution, no spurious result change)."""
        m = machine()
        heads = m.row_index == 0
        healthy = m.broadcast(m.row_index, Direction.SOUTH, heads)

        m.inject_faults(FaultPlan(seed=0).add_intermittent(
            2, 1, FaultKind.STUCK_OPEN, probability=1e-12, axis=0))
        again = m.broadcast(m.row_index, Direction.SOUTH, heads)
        stats = plan_cache_stats()
        assert (stats.broadcast_misses, stats.broadcast_hits) == (1, 1)
        assert np.array_equal(healthy, again)

    def test_firing_intermittent_behaves_like_the_permanent(self):
        m = machine()
        heads = m.row_index == 0
        healthy = m.broadcast(m.row_index, Direction.SOUTH, heads)

        m.inject_faults(FaultPlan(seed=0).add_intermittent(
            2, 1, FaultKind.STUCK_OPEN, probability=1.0, axis=0))
        flaky = m.broadcast(m.row_index, Direction.SOUTH, heads)
        perm = machine(plan=_open_plan()).broadcast(
            machine().row_index, Direction.SOUTH, heads)
        assert np.array_equal(flaky, perm)
        assert not np.array_equal(flaky, healthy)


class TestTransientCacheInvisibility:
    def test_transient_corrupts_values_but_hits_the_cache(self):
        m = machine()
        heads = m.row_index == 0
        healthy = m.broadcast(m.row_index, Direction.SOUTH, heads)

        m.inject_faults(FaultPlan(seed=0).add_transient(
            2, 1, bit=3, probability=1.0, axis=0))
        flipped = m.broadcast(m.row_index, Direction.SOUTH, heads)
        stats = plan_cache_stats()
        # Same programmed plane -> plan served from cache...
        assert (stats.broadcast_misses, stats.broadcast_hits) == (1, 1)
        # ...yet the received word at (2, 1) has bit 3 flipped.
        assert flipped[2, 1] == healthy[2, 1] ^ (1 << 3)
        delta = flipped != healthy
        assert delta.sum() == 1 and delta[2, 1]

    def test_transient_hits_every_lane_of_a_stack(self):
        base = machine()
        base.inject_faults(FaultPlan(seed=0).add_transient(
            2, 1, bit=0, probability=1.0, axis=0))
        view = base.lanes(3)
        heads = base.row_index == 0
        src = np.broadcast_to(base.row_index, (3, 4, 4))
        out = view.broadcast(src, Direction.SOUTH, heads)
        assert (out[:, 2, 1] == (0 ^ 1)).all()

    def test_flip_above_the_driven_width_is_a_no_op(self):
        m = machine()
        heads = m.row_index == 0
        m.inject_faults(FaultPlan(seed=0).add_transient(
            2, 1, bit=9, probability=1.0, axis=0))
        flags = m.bus_or(m.row_index == 0, Direction.SOUTH, heads)
        healthy = machine().bus_or(
            machine().row_index == 0, Direction.SOUTH, heads)
        # A 1-bit wired-OR transfer has no bit 9 to flip.
        assert np.array_equal(flags, healthy)


class TestLaneForLaneEquivalence:
    """One batched faulted run == the per-destination serial faulted
    runs, value-for-value and counter-for-counter."""

    N = 5

    def _graph(self):
        return gnp_digraph(self.N, 0.5, seed=2, weights=WeightSpec(1, 9),
                           inf_value=INF16)

    def _plan(self):
        return FaultPlan().add(3, 1, FaultKind.STUCK_OPEN, axis=0)

    def test_static_fault_batched_equals_serial(self):
        W = self._graph()
        res = all_pairs_minimum_cost(machine(self.N, self._plan()), W)
        totals: dict[str, int] = {}
        for d in range(self.N):
            s = minimum_cost_path(machine(self.N, self._plan()), W, d)
            assert np.array_equal(res.dist[:, d], s.sow), d
            assert np.array_equal(res.succ[:, d], s.ptn), d
            assert int(res.iterations[d]) == int(s.iterations), d
            for k, v in s.counters.items():
                totals[k] = totals.get(k, 0) + int(v)
        for k in sorted(set(totals) | set(res.counters)):
            assert totals.get(k, 0) == int(res.counters.get(k, 0)), k

    def test_seeded_stochastic_plan_replays_bit_for_bit(self):
        W = self._graph()

        def run():
            plan = FaultPlan(seed=7).add_intermittent(
                3, 1, FaultKind.STUCK_OPEN, probability=0.5, axis=0
            ).add_transient(1, 2, bit=2, probability=0.2, axis=1)
            return all_pairs_minimum_cost(machine(self.N, plan), W)

        a, b = run(), run()
        assert np.array_equal(a.dist, b.dist)
        assert np.array_equal(a.succ, b.succ)
        assert dict(a.machine_counters) == dict(b.machine_counters)

    def test_fault_actually_changes_the_answer(self):
        """Guard the guard: the fault chosen above is not a no-op."""
        W = self._graph()
        healthy = all_pairs_minimum_cost(machine(self.N), W)
        faulted = all_pairs_minimum_cost(machine(self.N, self._plan()), W)
        assert not np.array_equal(healthy.dist, faulted.dist)
