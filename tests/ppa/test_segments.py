"""Bus resolution: broadcast and segmented reductions vs a naive reference.

The naive reference walks each ring with Python loops, implementing the
documented semantics directly (cluster = Open head + downstream Shorts,
cyclic); the vectorised implementation must agree on every input.
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import BusError
from repro.ppa.directions import Direction
from repro.ppa.segments import broadcast_values, segmented_reduce, shift_values

DIRECTIONS = list(Direction)


# ---------------------------------------------------------------------------
# Naive reference semantics
# ---------------------------------------------------------------------------


def ring_views(arr: np.ndarray, direction: Direction):
    """Yield (ring_index, 1-D ring in downstream order, writeback fn)."""
    a = arr if direction.axis == 1 else arr.T
    for r in range(a.shape[0]):
        ring = a[r] if direction.is_forward else a[r][::-1]
        yield r, np.array(ring)


def naive_broadcast(src, open_plane, direction):
    src = np.asarray(src)
    out = np.empty_like(src)
    o_canon = dict(ring_views(np.asarray(open_plane, bool), direction))
    s_canon = dict(ring_views(src, direction))
    res = {}
    for r, opens in o_canon.items():
        vals = s_canon[r]
        n = len(vals)
        got = vals.copy()
        if opens.any():
            for i in range(n):
                j = i
                # nearest Open at-or-upstream, wrapping
                for _ in range(n):
                    if opens[j]:
                        break
                    j = (j - 1) % n
                got[i] = vals[j]
        res[r] = got
    # reassemble
    out_c = np.stack([res[r] if direction.is_forward else res[r][::-1]
                      for r in range(len(res))])
    return out_c if direction.axis == 1 else out_c.T


def naive_reduce(values, open_plane, direction, op):
    import operator

    fns = {
        "or": lambda a, b: a | b,
        "and": lambda a, b: a & b,
        "min": min,
        "max": max,
        "sum": operator.add,
    }
    f = fns[op]
    values = np.asarray(values)
    o_canon = dict(ring_views(np.asarray(open_plane, bool), direction))
    v_canon = dict(ring_views(values, direction))
    res = {}
    for r, opens in o_canon.items():
        vals = v_canon[r]
        n = len(vals)
        got = np.empty_like(vals)
        if not opens.any():
            total = vals[0]
            for v in vals[1:]:
                total = f(total, v)
            got[:] = total
        else:
            # head of i = nearest Open at-or-upstream
            heads = np.empty(n, dtype=int)
            for i in range(n):
                j = i
                while not opens[j]:
                    j = (j - 1) % n
                heads[i] = j
            for h in set(heads):
                members = [i for i in range(n) if heads[i] == h]
                total = vals[members[0]]
                for i in members[1:]:
                    total = f(total, vals[i])
                for i in members:
                    got[i] = total
        res[r] = got
    out_c = np.stack([res[r] if direction.is_forward else res[r][::-1]
                      for r in range(len(res))])
    return out_c if direction.axis == 1 else out_c.T


# ---------------------------------------------------------------------------
# Hand-built cases
# ---------------------------------------------------------------------------


class TestBroadcastBasics:
    def test_single_open_row_drives_whole_column_ring(self):
        src = np.arange(16).reshape(4, 4)
        L = np.zeros((4, 4), bool)
        L[1] = True  # row 1 open on every column
        out = broadcast_values(src, L, Direction.SOUTH)
        assert np.array_equal(out, np.tile(src[1], (4, 1)))

    def test_open_node_receives_its_own_value(self):
        src = np.arange(16).reshape(4, 4)
        L = np.zeros((4, 4), bool)
        L[2] = True
        out = broadcast_values(src, L, Direction.SOUTH)
        assert np.array_equal(out[2], src[2])

    def test_two_opens_split_ring(self):
        src = np.array([[10, 11, 12, 13]])
        L = np.array([[True, False, True, False]])
        out = broadcast_values(src, L, Direction.EAST)
        # EAST: head at-or-west. cols 0,1 -> head 0; cols 2,3 -> head 2
        assert out.tolist() == [[10, 10, 12, 12]]

    def test_west_direction_reverses_cluster_side(self):
        src = np.array([[10, 11, 12, 13]])
        L = np.array([[True, False, True, False]])
        out = broadcast_values(src, L, Direction.WEST)
        # WEST: downstream decreasing col; head at-or-east.
        # col 3 -> wraps to head 0; cols 2,1 -> head 2; col 0 -> head 0
        assert out.tolist() == [[10, 12, 12, 10]]

    def test_no_open_permissive_is_identity(self):
        src = np.arange(12).reshape(3, 4)
        L = np.zeros((3, 4), bool)
        out = broadcast_values(src, L, Direction.EAST)
        assert np.array_equal(out, src)

    def test_no_open_strict_raises(self):
        src = np.zeros((3, 3))
        with pytest.raises(BusError, match="no Open switch"):
            broadcast_values(
                src, np.zeros((3, 3), bool), Direction.NORTH, strict=True
            )

    def test_partial_open_strict_raises_only_for_bad_ring(self):
        src = np.zeros((2, 2))
        L = np.array([[True, True], [True, True]])
        # all rings fine
        broadcast_values(src, L, Direction.EAST, strict=True)
        L = np.array([[True, False], [False, False]])
        with pytest.raises(BusError):
            broadcast_values(src, L, Direction.EAST, strict=True)

    def test_all_open_is_identity(self):
        src = np.arange(16).reshape(4, 4) * 3
        L = np.ones((4, 4), bool)
        for d in DIRECTIONS:
            assert np.array_equal(broadcast_values(src, L, d), src)

    def test_bool_payload_preserved(self):
        src = np.eye(4, dtype=bool)
        L = np.zeros((4, 4), bool)
        L[:, 0] = True
        out = broadcast_values(src, L, Direction.EAST)
        assert out.dtype == np.bool_
        assert np.array_equal(out, np.tile(src[:, :1], (1, 4)))


class TestReduceBasics:
    def test_whole_ring_or(self):
        bits = np.zeros((3, 3), bool)
        bits[0, 2] = True
        L = np.zeros((3, 3), bool)
        L[:, 0] = True  # one head per row ring
        out = segmented_reduce(bits, L, Direction.EAST, "or")
        assert out[0].all() and not out[1:].any()

    def test_two_cluster_min(self):
        vals = np.array([[5, 3, 9, 1]])
        L = np.array([[True, False, True, False]])
        out = segmented_reduce(vals, L, Direction.EAST, "min")
        assert out.tolist() == [[3, 3, 1, 1]]

    def test_sum_over_clusters(self):
        vals = np.array([[1, 2, 3, 4]])
        L = np.array([[True, False, False, True]])
        out = segmented_reduce(vals, L, Direction.EAST, "sum")
        # clusters: {0,1,2} and {3}
        assert out.tolist() == [[6, 6, 6, 4]]

    def test_cyclic_cluster_wraps(self):
        vals = np.array([[7, 2, 5, 4]])
        L = np.array([[False, True, False, False]])
        out = segmented_reduce(vals, L, Direction.EAST, "max")
        # single head at col 1: whole ring is one cluster
        assert out.tolist() == [[7, 7, 7, 7]]

    def test_no_open_reduces_whole_ring(self):
        vals = np.array([[4, 9, 1]])
        out = segmented_reduce(
            vals, np.zeros((1, 3), bool), Direction.EAST, "min"
        )
        assert out.tolist() == [[1, 1, 1]]

    def test_no_open_strict_raises(self):
        with pytest.raises(BusError):
            segmented_reduce(
                np.zeros((2, 2)),
                np.zeros((2, 2), bool),
                Direction.SOUTH,
                "or",
                strict=True,
            )

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown reduction"):
            segmented_reduce(
                np.zeros((2, 2)), np.ones((2, 2), bool), Direction.EAST, "xor"
            )

    def test_all_open_is_identity(self):
        vals = np.arange(9).reshape(3, 3)
        L = np.ones((3, 3), bool)
        for op in ("min", "max", "sum"):
            out = segmented_reduce(vals, L, Direction.WEST, op)
            assert np.array_equal(out, vals), op


class TestShift:
    def test_east_moves_data_right(self):
        src = np.array([[1, 2, 3, 4]])
        assert shift_values(src, Direction.EAST).tolist() == [[4, 1, 2, 3]]

    def test_west_moves_data_left(self):
        src = np.array([[1, 2, 3, 4]])
        assert shift_values(src, Direction.WEST).tolist() == [[2, 3, 4, 1]]

    def test_south_moves_data_down(self):
        src = np.array([[1], [2], [3]])
        assert shift_values(src, Direction.SOUTH).ravel().tolist() == [3, 1, 2]

    def test_north_moves_data_up(self):
        src = np.array([[1], [2], [3]])
        assert shift_values(src, Direction.NORTH).ravel().tolist() == [2, 3, 1]

    def test_linear_fill(self):
        src = np.array([[1, 2, 3]])
        out = shift_values(src, Direction.EAST, torus=False, fill=9)
        assert out.tolist() == [[9, 1, 2]]

    @pytest.mark.parametrize("d", DIRECTIONS)
    def test_shift_then_opposite_restores(self, d):
        src = np.arange(20).reshape(4, 5)
        back = shift_values(shift_values(src, d), d.opposite())
        assert np.array_equal(back, src)


# ---------------------------------------------------------------------------
# Property tests against the naive reference
# ---------------------------------------------------------------------------

grids = st.integers(min_value=1, max_value=6)


@st.composite
def grid_case(draw):
    rows = draw(grids)
    cols = draw(grids)
    vals = draw(
        st.lists(
            st.lists(st.integers(0, 255), min_size=cols, max_size=cols),
            min_size=rows,
            max_size=rows,
        )
    )
    opens = draw(
        st.lists(
            st.lists(st.booleans(), min_size=cols, max_size=cols),
            min_size=rows,
            max_size=rows,
        )
    )
    direction = draw(st.sampled_from(DIRECTIONS))
    return np.array(vals), np.array(opens, dtype=bool), direction


@given(grid_case())
def test_broadcast_matches_naive(case):
    vals, opens, direction = case
    got = broadcast_values(vals, opens, direction)
    want = naive_broadcast(vals, opens, direction)
    assert np.array_equal(got, want)


@given(grid_case(), st.sampled_from(["min", "max", "sum"]))
def test_reduce_matches_naive(case, op):
    vals, opens, direction = case
    got = segmented_reduce(vals, opens, direction, op)
    want = naive_reduce(vals, opens, direction, op)
    assert np.array_equal(got, want)


@given(grid_case())
def test_or_matches_naive(case):
    vals, opens, direction = case
    bits = vals % 2 == 0
    got = segmented_reduce(bits, opens, direction, "or")
    want = naive_reduce(bits, opens, direction, "or")
    assert np.array_equal(got.astype(bool), want.astype(bool))


@given(grid_case())
def test_broadcast_idempotent(case):
    """Broadcasting a broadcast result again with the same L is a no-op."""
    vals, opens, direction = case
    once = broadcast_values(vals, opens, direction)
    twice = broadcast_values(once, opens, direction)
    assert np.array_equal(once, twice)


@given(grid_case())
def test_reduce_delivers_cluster_constant(case):
    """All members of one cluster receive the same reduction result."""
    vals, opens, direction = case
    red = segmented_reduce(vals, opens, direction, "min")
    # a second min-reduce over the same clusters must be a fixed point
    again = segmented_reduce(red, opens, direction, "min")
    assert np.array_equal(red, again)


class TestPlanCache:
    """The bus-plan LRU must be invisible except in speed."""

    def test_distinct_planes_not_confused(self):
        from repro.ppa.segments import clear_plan_cache

        clear_plan_cache()
        src = np.arange(16).reshape(4, 4)
        L1 = np.zeros((4, 4), bool)
        L1[:, 0] = True
        L2 = np.zeros((4, 4), bool)
        L2[:, 2] = True
        a1 = broadcast_values(src, L1, Direction.EAST)
        a2 = broadcast_values(src, L2, Direction.EAST)
        # repeat in swapped order -> must hit cache yet stay correct
        b2 = broadcast_values(src, L2, Direction.EAST)
        b1 = broadcast_values(src, L1, Direction.EAST)
        assert np.array_equal(a1, b1) and np.array_equal(a2, b2)
        assert not np.array_equal(a1, a2)

    def test_same_plane_different_direction(self):
        src = np.arange(16).reshape(4, 4)
        L = np.zeros((4, 4), bool)
        L[0, :] = True
        south = broadcast_values(src, L, Direction.SOUTH)
        north = broadcast_values(src, L, Direction.NORTH)
        assert np.array_equal(south, np.tile(src[0], (4, 1)))
        assert np.array_equal(north, np.tile(src[0], (4, 1)))

    def test_strict_error_survives_caching(self):
        from repro.ppa.segments import clear_plan_cache

        clear_plan_cache()
        src = np.zeros((3, 3))
        L = np.zeros((3, 3), bool)
        broadcast_values(src, L, Direction.EAST)  # permissive: cached plan
        with pytest.raises(BusError):
            broadcast_values(src, L, Direction.EAST, strict=True)

    def test_reduce_cache_respects_op(self):
        vals = np.array([[3, 1, 4, 1]])
        L = np.array([[True, False, True, False]])
        mn = segmented_reduce(vals, L, Direction.EAST, "min")
        mx = segmented_reduce(vals, L, Direction.EAST, "max")
        assert mn.tolist() == [[1, 1, 1, 1]]
        assert mx.tolist() == [[3, 3, 4, 4]]

    def test_cache_eviction_keeps_correctness(self):
        from repro.ppa import segments

        segments.clear_plan_cache()
        src = np.arange(36).reshape(6, 6)
        results = {}
        for k in range(80):  # > cache size: forces evictions
            L = np.zeros((6, 6), bool)
            L[:, k % 6] = True
            results[k % 6] = broadcast_values(src, L, Direction.EAST)
        for col, out in results.items():
            L = np.zeros((6, 6), bool)
            L[:, col] = True
            assert np.array_equal(out, broadcast_values(src, L, Direction.EAST))

    def test_clear_plan_cache(self):
        from repro.ppa import segments

        src = np.arange(9).reshape(3, 3)
        L = np.eye(3, dtype=bool)
        broadcast_values(src, L, Direction.EAST)
        segments.clear_plan_cache()
        assert len(segments._broadcast_plans) == 0
        assert len(segments._reduce_plans) == 0
