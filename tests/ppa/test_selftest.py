"""Bus self-test: the 6-transaction diagnostic localises injected faults."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ppa import PPAConfig, PPAMachine
from repro.ppa.faults import FaultKind, FaultPlan
from repro.ppa.selftest import diagnose_switches


def machine(n=6):
    return PPAMachine(PPAConfig(n=n, word_bits=16))


def found_set(report):
    return {(f.row, f.col, f.kind, f.axis) for f in report.faults}


class TestHealthy:
    def test_clean_machine_reports_healthy(self):
        report = diagnose_switches(machine())
        assert report.healthy
        assert report.faults == ()

    def test_costs_six_transactions(self):
        report = diagnose_switches(machine())
        assert report.transactions == 6


class TestSingleFaults:
    @pytest.mark.parametrize("axis", [0, 1])
    @pytest.mark.parametrize("pos", [(0, 0), (2, 3), (5, 5), (0, 5)])
    def test_stuck_open_localised(self, axis, pos):
        m = machine()
        m.inject_faults(FaultPlan().add(*pos, FaultKind.STUCK_OPEN, axis=axis))
        report = diagnose_switches(m)
        assert found_set(report) == {(pos[0], pos[1], FaultKind.STUCK_OPEN, axis)}
        assert not report.undiagnosable_rings

    @pytest.mark.parametrize("axis", [0, 1])
    @pytest.mark.parametrize("pos", [(0, 0), (2, 3), (5, 5)])
    def test_stuck_short_localised(self, axis, pos):
        m = machine()
        m.inject_faults(FaultPlan().add(*pos, FaultKind.STUCK_SHORT, axis=axis))
        report = diagnose_switches(m)
        assert found_set(report) == {
            (pos[0], pos[1], FaultKind.STUCK_SHORT, axis)
        }


class TestMultipleFaults:
    def test_mixed_faults_on_different_rings(self):
        m = machine()
        plan = (
            FaultPlan()
            .add(0, 3, FaultKind.STUCK_OPEN, axis=1)
            .add(4, 1, FaultKind.STUCK_SHORT, axis=1)
            .add(2, 2, FaultKind.STUCK_OPEN, axis=0)
        )
        m.inject_faults(plan)
        report = diagnose_switches(m)
        assert found_set(report) == {
            (0, 3, FaultKind.STUCK_OPEN, 1),
            (4, 1, FaultKind.STUCK_SHORT, 1),
            (2, 2, FaultKind.STUCK_OPEN, 0),
        }

    def test_two_stuck_open_same_ring(self):
        m = machine()
        m.inject_faults(
            FaultPlan()
            .add(1, 2, FaultKind.STUCK_OPEN, axis=1)
            .add(1, 4, FaultKind.STUCK_OPEN, axis=1)
        )
        report = diagnose_switches(m)
        assert found_set(report) == {
            (1, 2, FaultKind.STUCK_OPEN, 1),
            (1, 4, FaultKind.STUCK_OPEN, 1),
        }

    def test_adaptive_heads_survive_dead_default_heads(self):
        """Stuck-shorts at both default probe positions: the adaptive
        probes relocate and the ring stays fully diagnosable."""
        m = machine()
        m.inject_faults(
            FaultPlan()
            .add(2, 0, FaultKind.STUCK_SHORT, axis=1)
            .add(2, 1, FaultKind.STUCK_SHORT, axis=1)
            .add(2, 4, FaultKind.STUCK_OPEN, axis=1)
        )
        report = diagnose_switches(m)
        assert not report.undiagnosable_rings
        assert found_set(report) == {
            (2, 0, FaultKind.STUCK_SHORT, 1),
            (2, 1, FaultKind.STUCK_SHORT, 1),
            (2, 4, FaultKind.STUCK_OPEN, 1),
        }

    def test_stuck_open_at_dead_alternate_head(self):
        """Regression (found by hypothesis): stuck-open at position 0 with
        position 1 stuck short used to be invisible to fixed-head probes."""
        m = machine()
        m.inject_faults(
            FaultPlan()
            .add(0, 0, FaultKind.STUCK_OPEN, axis=1)
            .add(0, 1, FaultKind.STUCK_SHORT, axis=1)
        )
        report = diagnose_switches(m)
        assert found_set(report) == {
            (0, 0, FaultKind.STUCK_OPEN, 1),
            (0, 1, FaultKind.STUCK_SHORT, 1),
        }

    def test_ring_with_one_healthy_switch_flagged(self):
        n = 3
        m = machine(n)
        plan = FaultPlan()
        for c in range(n - 1):
            plan.add(1, c, FaultKind.STUCK_SHORT, axis=1)
        m.inject_faults(plan)
        report = diagnose_switches(m)
        assert (1, 1) in report.undiagnosable_rings

    @given(
        faults=st.lists(
            st.tuples(
                st.integers(0, 5),
                st.integers(0, 5),
                st.sampled_from([FaultKind.STUCK_OPEN, FaultKind.STUCK_SHORT]),
                st.sampled_from([0, 1]),
            ),
            min_size=1,
            max_size=4,
            unique_by=lambda f: (f[0], f[1], f[3]),
        )
    )
    @settings(max_examples=30)
    def test_property_exact_diagnosis(self, faults):
        """With <= 4 faults on 6-rings every ring keeps >= 2 healthy
        switches, so the adaptive diagnostic must be exact: every injected
        fault found, nothing invented, nothing flagged."""
        m = machine()
        plan = FaultPlan()
        for r, c, kind, axis in faults:
            plan.add(r, c, kind, axis)
        m.inject_faults(plan)
        report = diagnose_switches(m)
        assert not report.undiagnosable_rings
        assert found_set(report) == {
            (r, c, kind, axis) for r, c, kind, axis in faults
        }
