"""CycleCounters bookkeeping."""

from repro.ppa.counters import CycleCounters


class TestCounters:
    def test_starts_zero(self):
        assert all(v == 0 for v in CycleCounters().snapshot().values())

    def test_snapshot_is_copy(self):
        c = CycleCounters()
        snap = c.snapshot()
        c.instructions += 5
        assert snap["instructions"] == 0

    def test_diff(self):
        c = CycleCounters()
        c.broadcasts = 3
        before = c.snapshot()
        c.broadcasts += 2
        c.alu_ops += 7
        d = c.diff(before)
        assert d["broadcasts"] == 2
        assert d["alu_ops"] == 7
        assert d["shifts"] == 0

    def test_reset(self):
        c = CycleCounters()
        c.bus_cycles = 11
        c.reset()
        assert c.bus_cycles == 0

    def test_merge_accumulates(self):
        a = CycleCounters()
        b = CycleCounters()
        a.shifts = 2
        b.shifts = 3
        b.bit_cycles = 10
        a.merge(b)
        assert a.shifts == 5
        assert a.bit_cycles == 10

    def test_snapshot_contains_all_fields(self):
        snap = CycleCounters().snapshot()
        assert {
            "instructions",
            "broadcasts",
            "reductions",
            "shifts",
            "alu_ops",
            "global_ors",
            "bus_cycles",
            "bit_cycles",
        } <= set(snap)
