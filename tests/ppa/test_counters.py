"""CycleCounters bookkeeping."""

import pytest

from repro.ppa.counters import CounterCheckpoint, CycleCounters


class TestCounters:
    def test_starts_zero(self):
        assert all(v == 0 for v in CycleCounters().snapshot().values())

    def test_snapshot_is_copy(self):
        c = CycleCounters()
        snap = c.snapshot()
        c.instructions += 5
        assert snap["instructions"] == 0

    def test_diff(self):
        c = CycleCounters()
        c.broadcasts = 3
        before = c.snapshot()
        c.broadcasts += 2
        c.alu_ops += 7
        d = c.diff(before)
        assert d["broadcasts"] == 2
        assert d["alu_ops"] == 7
        assert d["shifts"] == 0

    def test_reset(self):
        c = CycleCounters()
        c.bus_cycles = 11
        c.reset()
        assert c.bus_cycles == 0

    def test_merge_accumulates(self):
        a = CycleCounters()
        b = CycleCounters()
        a.shifts = 2
        b.shifts = 3
        b.bit_cycles = 10
        a.merge(b)
        assert a.shifts == 5
        assert a.bit_cycles == 10

    def test_snapshot_contains_all_fields(self):
        snap = CycleCounters().snapshot()
        assert {
            "instructions",
            "broadcasts",
            "reductions",
            "shifts",
            "alu_ops",
            "global_ors",
            "bus_cycles",
            "bit_cycles",
        } <= set(snap)


class TestRoundTripSafety:
    """snapshot/diff/merge reject partial or misspelt dictionaries."""

    def test_diff_rejects_missing_keys(self):
        c = CycleCounters()
        with pytest.raises(ValueError, match="missing keys"):
            c.diff({"instructions": 0})

    def test_diff_rejects_unknown_keys(self):
        c = CycleCounters()
        snap = c.snapshot()
        snap["instrucions"] = snap.pop("instructions")  # typo
        with pytest.raises(ValueError, match="unknown keys"):
            c.diff(snap)

    def test_merge_rejects_partial_mapping(self):
        with pytest.raises(ValueError, match="not a complete counter"):
            CycleCounters().merge({"alu_ops": 3})

    def test_merge_accepts_full_mapping(self):
        c = CycleCounters()
        snap = CycleCounters().snapshot()
        snap["alu_ops"] = 4
        c.merge(snap)
        assert c.alu_ops == 4

    def test_from_snapshot_round_trip(self):
        c = CycleCounters()
        c.broadcasts = 7
        c.bit_cycles = 19
        back = CycleCounters.from_snapshot(c.snapshot())
        assert back.snapshot() == c.snapshot()

    def test_from_snapshot_rejects_partial(self):
        with pytest.raises(ValueError, match="from_snapshot"):
            CycleCounters.from_snapshot({"broadcasts": 1})

    def test_field_names_match_snapshot(self):
        c = CycleCounters()
        assert set(CycleCounters.field_names()) == set(c.snapshot())


class TestCheckpoint:
    def test_delta_measures_block(self):
        c = CycleCounters()
        c.instructions = 10
        with c.checkpoint() as cp:
            assert isinstance(cp, CounterCheckpoint)
            assert cp.delta is None  # still open
            c.instructions += 3
            c.bus_cycles += 2
        assert cp.delta["instructions"] == 3
        assert cp.delta["bus_cycles"] == 2
        assert cp.delta["shifts"] == 0

    def test_checkpoint_never_writes_counters(self):
        c = CycleCounters()
        c.alu_ops = 5
        before = c.snapshot()
        with c.checkpoint():
            pass
        assert c.snapshot() == before

    def test_delta_set_even_on_exception(self):
        c = CycleCounters()
        with pytest.raises(RuntimeError):
            with c.checkpoint() as cp:
                c.global_ors += 1
                raise RuntimeError("boom")
        assert cp.delta["global_ors"] == 1

    def test_nested_checkpoints(self):
        c = CycleCounters()
        with c.checkpoint() as outer:
            c.shifts += 1
            with c.checkpoint() as inner:
                c.shifts += 2
            c.shifts += 4
        assert inner.delta["shifts"] == 2
        assert outer.delta["shifts"] == 7
