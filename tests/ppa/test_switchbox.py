"""Switch-plane coercion."""

import numpy as np
import pytest

from repro.errors import MachineError
from repro.ppa.switchbox import OPEN, SHORT, as_switch_plane


class TestConstants:
    def test_open_short_are_booleans(self):
        assert OPEN is True
        assert SHORT is False


class TestCoercion:
    def test_bool_grid_passthrough(self):
        L = np.eye(3, dtype=bool)
        out = as_switch_plane(L, (3, 3))
        assert np.array_equal(out, L)

    def test_int_grid_casts(self):
        out = as_switch_plane(np.eye(3, dtype=int), (3, 3))
        assert out.dtype == np.bool_
        assert out[0, 0] and not out[0, 1]

    def test_scalar_broadcasts(self):
        assert as_switch_plane(True, (2, 2)).all()
        assert not as_switch_plane(0, (2, 2)).any()

    def test_row_vector_broadcasts(self):
        out = as_switch_plane(np.array([True, False]), (2, 2))
        assert out[:, 0].all() and not out[:, 1].any()

    def test_wrong_shape_rejected(self):
        with pytest.raises(MachineError, match="does not match"):
            as_switch_plane(np.ones((4, 3), bool), (3, 3))

    def test_result_is_contiguous(self):
        out = as_switch_plane(np.ones((3, 3), bool)[:, ::-1], (3, 3))
        assert out.flags["C_CONTIGUOUS"]
