"""PPAMachine: masks, stores, primitives, accounting."""

import numpy as np
import pytest

from repro.errors import BusError, MachineError, MaskError, WordWidthError
from repro.ppa import BusCostModel, Direction, PPAConfig, PPAMachine


class TestGeometry:
    def test_int_shorthand_config(self):
        m = PPAMachine(5)
        assert m.n == 5 and m.word_bits == 16

    def test_index_planes(self, machine4):
        assert machine4.row_index[2, 3] == 2
        assert machine4.col_index[2, 3] == 3

    def test_index_planes_are_copies(self, machine4):
        machine4.row_index[0, 0] = 99
        assert machine4.row_index[0, 0] == 0

    def test_maxint(self):
        assert PPAMachine(PPAConfig(n=2, word_bits=8)).maxint == 255


class TestMasks:
    def test_default_all_active(self, machine4):
        assert machine4.active_mask.all()

    def test_where_restricts_store(self, machine4):
        a = machine4.new_parallel(0)
        with machine4.where(machine4.row_index == 1):
            machine4.store(a, 7)
        assert (a[1] == 7).all()
        assert a.sum() == 7 * 4

    def test_where_nests_by_and(self, machine4):
        a = machine4.new_parallel(0)
        with machine4.where(machine4.row_index == 1):
            with machine4.where(machine4.col_index == 2):
                machine4.store(a, 5)
        assert a[1, 2] == 5
        assert a.sum() == 5

    def test_elsewhere_complements_within_parent(self, machine4):
        a = machine4.new_parallel(0)
        with machine4.where(machine4.row_index <= 1):
            with machine4.elsewhere(machine4.col_index == 0):
                machine4.store(a, 3)
        # rows 0-1, cols 1-3
        assert (a[:2, 1:] == 3).all()
        assert a[:2, 0].sum() == 0 and a[2:].sum() == 0

    def test_mask_popped_after_block(self, machine4):
        with machine4.where(machine4.row_index == 0):
            pass
        assert machine4.active_mask.all()

    def test_mask_popped_on_exception(self, machine4):
        with pytest.raises(RuntimeError):
            with machine4.where(machine4.row_index == 0):
                raise RuntimeError("boom")
        assert machine4.active_mask.all()

    def test_bad_mask_shape_rejected(self, machine4):
        with pytest.raises(MachineError, match="switch plane"):
            with machine4.where(np.ones((3, 7), bool)):
                pass

    def test_store_outside_where_is_full(self, machine4):
        a = machine4.new_parallel(1)
        machine4.store(a, 9)
        assert (a == 9).all()


class TestBroadcast:
    def test_row_to_grid(self, machine4):
        src = machine4.row_index * 10 + machine4.col_index
        out = machine4.broadcast(src, Direction.SOUTH, machine4.row_index == 2)
        assert np.array_equal(out, np.tile(src[2], (4, 1)))

    def test_counts_transaction(self, machine4):
        before = machine4.counters.snapshot()
        machine4.broadcast(
            machine4.new_parallel(1), Direction.EAST, machine4.col_index == 0
        )
        d = machine4.counters.diff(before)
        assert d["broadcasts"] == 1
        assert d["bus_cycles"] == 1
        assert d["bit_cycles"] == machine4.word_bits

    def test_bool_broadcast_costs_one_bit(self, machine4):
        before = machine4.counters.snapshot()
        machine4.broadcast(
            machine4.new_parallel(0, dtype=bool),
            Direction.EAST,
            machine4.col_index == 0,
        )
        assert machine4.counters.diff(before)["bit_cycles"] == 1

    def test_linear_cost_model_charges_ring(self):
        m = PPAMachine(PPAConfig(n=8, bus_cost_model=BusCostModel.LINEAR))
        m.broadcast(m.new_parallel(0), Direction.SOUTH, m.row_index == 0)
        assert m.counters.bus_cycles == 8

    def test_strict_bus_raises_on_undriven_ring(self):
        m = PPAMachine(PPAConfig(n=4, strict_bus=True))
        with pytest.raises(BusError):
            m.broadcast(m.new_parallel(0), Direction.SOUTH, False)


class TestReduceAndOr:
    def test_bus_or_whole_row(self, machine4):
        bits = machine4.new_parallel(0, dtype=bool)
        bits[1, 3] = True
        out = machine4.bus_or(bits, Direction.WEST, machine4.col_index == 3)
        assert out[1].all() and not out[0].any()

    def test_bus_reduce_min(self, machine4):
        vals = machine4.col_index + 10 * machine4.row_index
        out = machine4.bus_reduce(
            vals, Direction.EAST, machine4.col_index == 0, "min"
        )
        assert np.array_equal(out, 10 * machine4.row_index)

    def test_reduce_counts(self, machine4):
        before = machine4.counters.snapshot()
        machine4.bus_or(
            machine4.new_parallel(0, dtype=bool),
            Direction.EAST,
            machine4.col_index == 0,
        )
        d = machine4.counters.diff(before)
        assert d["reductions"] == 1
        assert d["bit_cycles"] == 1  # wired-OR is single-bit


class TestShiftAndGlobalOr:
    def test_shift_torus(self, machine4):
        out = machine4.shift(machine4.col_index, Direction.EAST)
        assert out[0].tolist() == [3, 0, 1, 2]

    def test_shift_linear_fill(self):
        m = PPAMachine(PPAConfig(n=4, torus=False))
        out = m.shift(m.col_index, Direction.EAST, fill=-1)
        assert out[0].tolist() == [-1, 0, 1, 2]

    def test_global_or(self, machine4):
        flags = machine4.new_parallel(0, dtype=bool)
        assert machine4.global_or(flags) is False
        flags[3, 3] = True
        assert machine4.global_or(flags) is True

    def test_global_or_cost(self, machine4):
        before = machine4.counters.snapshot()
        machine4.global_or(machine4.new_parallel(0, dtype=bool))
        d = machine4.counters.diff(before)
        assert d["global_ors"] == 1
        assert d["bus_cycles"] == 2


class TestWordArithmetic:
    def test_sat_add_saturates_at_maxint(self):
        m = PPAMachine(PPAConfig(n=2, word_bits=8))
        a = m.new_parallel(200)
        b = m.new_parallel(100)
        assert (m.sat_add(a, b) == 255).all()

    def test_sat_add_normal(self, machine4):
        out = machine4.sat_add(machine4.new_parallel(3), machine4.new_parallel(4))
        assert (out == 7).all()

    def test_maxint_absorbs(self):
        m = PPAMachine(PPAConfig(n=2, word_bits=8))
        out = m.sat_add(m.new_parallel(m.maxint), m.new_parallel(1))
        assert (out == m.maxint).all()

    def test_check_word_accepts_range(self, machine4):
        machine4.check_word(np.array([0, machine4.maxint]))

    def test_check_word_rejects_negative(self, machine4):
        with pytest.raises(WordWidthError):
            machine4.check_word(np.array([-1]))

    def test_check_word_rejects_overflow(self, machine4):
        with pytest.raises(WordWidthError):
            machine4.check_word(np.array([machine4.maxint + 1]))

    def test_bit_planes(self, machine4):
        v = machine4.new_parallel(0b1010)
        assert machine4.bit(v, 1).all()
        assert not machine4.bit(v, 0).any()
        assert machine4.bit(v, 3).all()

    def test_bit_index_out_of_word(self, machine4):
        with pytest.raises(WordWidthError):
            machine4.bit(machine4.new_parallel(0), 16)

    def test_require_square_fit(self, machine4):
        machine4.require_square_fit(4)
        with pytest.raises(MaskError):
            machine4.require_square_fit(5)


class TestTrace:
    def test_disabled_by_default(self, machine4):
        machine4.broadcast(
            machine4.new_parallel(0), Direction.EAST, machine4.col_index == 0
        )
        assert len(machine4.trace) == 0

    def test_capture_records_kinds(self, machine4):
        with machine4.trace.capture():
            machine4.broadcast(
                machine4.new_parallel(0), Direction.EAST, machine4.col_index == 0
            )
            machine4.bus_or(
                machine4.new_parallel(0, dtype=bool),
                Direction.SOUTH,
                machine4.row_index == 0,
            )
            machine4.global_or(machine4.new_parallel(0, dtype=bool))
        kinds = [t.kind for t in machine4.trace.records]
        assert kinds == ["broadcast", "reduce", "global_or"]

    def test_span_accounting(self, machine4):
        with machine4.trace.capture():
            machine4.broadcast(
                machine4.new_parallel(0), Direction.EAST, machine4.col_index == 0
            )
        t = machine4.trace.records[0]
        assert t.open_count == 4  # one per row ring
        assert t.max_span == 4  # one open per ring of length 4

    def test_reprice(self, machine4):
        with machine4.trace.capture():
            for _ in range(3):
                machine4.broadcast(
                    machine4.new_parallel(0),
                    Direction.EAST,
                    machine4.col_index == 0,
                )
        assert machine4.trace.reprice(lambda span: span) == 12
        machine4.trace.clear()
        assert len(machine4.trace) == 0

    def test_exact_span_evenly_spaced_opens(self):
        """Evenly spaced opens: exact span beats the analytical bound.

        Ring length 8 with opens at columns 0 and 4 cuts every row ring
        into two clusters of span 4 each; the pessimistic formula
        ``ring_len - k + 1`` would report 7.
        """
        from repro.ppa.bus import max_cluster_span_bound

        machine = PPAMachine(PPAConfig(n=8, word_bits=8))
        opens = (machine.col_index % 4) == 0
        with machine.trace.capture():
            machine.broadcast(machine.new_parallel(0), Direction.EAST, opens)
        t = machine.trace.records[0]
        assert t.open_count == 16
        assert t.max_span == 4
        assert max_cluster_span_bound(8, 2) == 7  # bound, not exact

    def test_exact_span_adjacent_opens_hit_bound(self):
        """Adjacent opens realise the worst case of the bound."""
        from repro.ppa.bus import max_cluster_span_bound

        machine = PPAMachine(PPAConfig(n=8, word_bits=8))
        opens = machine.col_index <= 1  # opens at columns 0 and 1
        with machine.trace.capture():
            machine.broadcast(machine.new_parallel(0), Direction.EAST, opens)
        t = machine.trace.records[0]
        assert t.max_span == 7 == max_cluster_span_bound(8, 2)

    def test_exact_span_column_rings(self):
        """SOUTH transactions analyse columns, not rows."""
        machine = PPAMachine(PPAConfig(n=8, word_bits=8))
        opens = (machine.row_index % 4) == 0
        with machine.trace.capture():
            machine.broadcast(machine.new_parallel(0), Direction.SOUTH, opens)
        assert machine.trace.records[0].max_span == 4

    def test_exact_span_no_opens_ring(self, machine4):
        """A ring with no opens floats as one full-length cluster."""
        opens = (machine4.col_index == 0) & (machine4.row_index > 0)
        with machine4.trace.capture():
            machine4.broadcast(machine4.new_parallel(0), Direction.EAST, opens)
        assert machine4.trace.records[0].max_span == 4
