"""Batched (lane-stack) bus resolution vs per-lane 2-D execution.

The 2-D kernels are property-tested against a naive ring-walking reference
in ``test_segments.py``; here the ``(B, n, n)`` batched paths — shared
2-D plane, per-lane 3-D plane stacks, lane-expanded fast/general plans —
must match running the (trusted) 2-D kernel once per lane. Also covers the
plan-cache observability satellite: hit/miss statistics, the four-cache
``clear_plan_cache``, and LRU-bounded memory under a huge plane sweep.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BusError
from repro.ppa import segments
from repro.ppa.directions import Direction
from repro.ppa.segments import (
    broadcast_values,
    clear_plan_cache,
    invalidate_stack_digest,
    plan_cache_sizes,
    plan_cache_stats,
    reset_plan_cache_stats,
    reset_stack_digest_stats,
    segmented_reduce,
    shift_values,
    stack_digest_memo_size,
    stack_digest_stats,
)

DIRECTIONS = list(Direction)
OPS = ("or", "min", "max", "sum")


@st.composite
def batched_case(draw):
    B = draw(st.integers(1, 4))
    rows = draw(st.integers(1, 5))
    cols = draw(st.integers(1, 5))
    vals = draw(
        st.lists(
            st.lists(
                st.lists(st.integers(0, 255), min_size=cols, max_size=cols),
                min_size=rows, max_size=rows,
            ),
            min_size=B, max_size=B,
        )
    )
    opens = draw(
        st.lists(
            st.lists(
                st.lists(st.booleans(), min_size=cols, max_size=cols),
                min_size=rows, max_size=rows,
            ),
            min_size=B, max_size=B,
        )
    )
    direction = draw(st.sampled_from(DIRECTIONS))
    return np.array(vals), np.array(opens, dtype=bool), direction


class TestSharedPlaneBatched:
    """(B, n, n) values against one shared 2-D switch plane."""

    @given(batched_case())
    @settings(max_examples=60)
    def test_broadcast_matches_per_lane(self, case):
        vals, opens, direction = case
        shared = opens[0]
        got = broadcast_values(vals, shared, direction)
        for b in range(vals.shape[0]):
            want = broadcast_values(vals[b], shared, direction)
            assert np.array_equal(got[b], want)

    @given(batched_case(), st.sampled_from(OPS))
    @settings(max_examples=60)
    def test_reduce_matches_per_lane(self, case, op):
        vals, opens, direction = case
        shared = opens[0]
        if op == "or":
            vals = vals % 2 == 0
        got = segmented_reduce(vals, shared, direction, op)
        for b in range(vals.shape[0]):
            want = segmented_reduce(vals[b], shared, direction, op)
            assert np.array_equal(got[b], want)

    def test_fast_path_one_open_per_ring(self):
        """<=1 Open per ring takes the SIMD axis-reduction fast path."""
        rng = np.random.default_rng(0)
        vals = rng.integers(0, 100, size=(3, 4, 4))
        L = np.zeros((4, 4), bool)
        L[:, 1] = True  # exactly one Open per row ring
        out = segmented_reduce(vals, L, Direction.EAST, "min")
        assert np.array_equal(out, vals.min(axis=-1, keepdims=True)
                              .repeat(4, axis=-1))
        got = broadcast_values(vals, L, Direction.EAST)
        assert np.array_equal(got, np.repeat(vals[:, :, 1:2], 4, axis=-1))

    def test_general_path_multi_open(self):
        vals = np.array([[[5, 3, 9, 1]], [[2, 8, 4, 6]]])
        L = np.array([[True, False, True, False]])
        out = segmented_reduce(vals, L, Direction.EAST, "min")
        assert out.tolist() == [[[3, 3, 1, 1]], [[2, 2, 4, 4]]]

    def test_result_is_writable(self):
        vals = np.arange(32).reshape(2, 4, 4)
        L = np.zeros((4, 4), bool)
        L[:, 0] = True
        out = segmented_reduce(vals, L, Direction.EAST, "max")
        out[0, 0, 0] = -1  # materialised, not a read-only broadcast view
        assert out[0, 0, 0] == -1

    def test_strict_raises_for_undriven_ring(self):
        vals = np.zeros((2, 3, 3))
        L = np.zeros((3, 3), bool)
        with pytest.raises(BusError, match="ring 0 has no Open switch"):
            broadcast_values(vals, L, Direction.EAST, strict=True)
        with pytest.raises(BusError, match="ring 0 has no Open"):
            segmented_reduce(vals, L, Direction.EAST, "or", strict=True)


class TestPerLaneStacks:
    """(B, n, n) values against per-lane (B, n, n) switch stacks."""

    @given(batched_case())
    @settings(max_examples=60)
    def test_broadcast_matches_per_lane(self, case):
        vals, opens, direction = case
        got = broadcast_values(vals, opens, direction)
        for b in range(vals.shape[0]):
            want = broadcast_values(vals[b], opens[b], direction)
            assert np.array_equal(got[b], want)

    @given(batched_case(), st.sampled_from(OPS))
    @settings(max_examples=60)
    def test_reduce_matches_per_lane(self, case, op):
        vals, opens, direction = case
        if op == "or":
            vals = vals % 2 == 0
        got = segmented_reduce(vals, opens, direction, op)
        for b in range(vals.shape[0]):
            want = segmented_reduce(vals[b], opens[b], direction, op)
            assert np.array_equal(got[b], want)

    def test_shared_2d_src_against_stack(self):
        src = np.arange(16).reshape(4, 4)
        L = np.zeros((3, 4, 4), bool)
        L[0, :, 0] = True
        L[1, :, 2] = True
        L[2] = np.eye(4, dtype=bool)
        got = broadcast_values(src, L, Direction.EAST)
        for b in range(3):
            assert np.array_equal(
                got[b], broadcast_values(src, L[b], Direction.EAST)
            )

    def test_strict_error_names_lane_and_ring(self):
        vals = np.zeros((2, 3, 3))
        L = np.ones((2, 3, 3), bool)
        L[1, 2] = False  # lane 1, row ring 2 un-driven (EAST)
        with pytest.raises(BusError, match="lane 1 ring 2"):
            broadcast_values(vals, L, Direction.EAST, strict=True)
        with pytest.raises(BusError, match="lane 1 ring 2"):
            segmented_reduce(vals, L, Direction.EAST, "or", strict=True)

    def test_bad_plane_rank_rejected(self):
        vals = np.zeros((2, 3, 3))
        with pytest.raises(ValueError, match="2-D or a"):
            broadcast_values(vals, np.zeros((2, 2, 3, 3), bool),
                             Direction.EAST)
        with pytest.raises(ValueError, match="2-D or a"):
            segmented_reduce(vals, np.zeros((3,), bool), Direction.EAST, "or")


class TestBatchedShift:
    @pytest.mark.parametrize("d", DIRECTIONS)
    def test_lane_stack_shift_matches_per_lane(self, d):
        rng = np.random.default_rng(1)
        vals = rng.integers(0, 50, size=(3, 4, 4))
        got = shift_values(vals, d)
        for b in range(3):
            assert np.array_equal(got[b], shift_values(vals[b], d))

    def test_linear_fill_applies_to_all_lanes(self):
        vals = np.arange(2 * 1 * 3).reshape(2, 1, 3)
        out = shift_values(vals, Direction.EAST, torus=False, fill=7)
        assert out[:, :, 0].ravel().tolist() == [7, 7]


class TestPlanCacheObservability:
    """Hit/miss accounting + the four-cache clear + bounded memory."""

    def test_stats_count_hits_and_misses(self):
        clear_plan_cache()
        reset_plan_cache_stats()
        src = np.arange(16).reshape(4, 4)
        L = np.zeros((4, 4), bool)
        L[:, 0] = True
        stats = plan_cache_stats()
        broadcast_values(src, L, Direction.EAST)
        assert (stats.broadcast_misses, stats.broadcast_hits) == (1, 0)
        broadcast_values(src, L, Direction.EAST)
        assert (stats.broadcast_misses, stats.broadcast_hits) == (1, 1)
        segmented_reduce(src, L, Direction.EAST, "min")
        segmented_reduce(src, L, Direction.EAST, "min")
        assert (stats.reduce_misses, stats.reduce_hits) == (1, 1)
        assert stats.hits == 2 and stats.misses == 2

    def test_stats_sink_kwarg_receives_copies(self):
        from repro.ppa.counters import PlanCacheStats

        clear_plan_cache()
        sink = PlanCacheStats()
        src = np.zeros((3, 3))
        L = np.eye(3, dtype=bool)
        broadcast_values(src, L, Direction.EAST, stats=sink)
        broadcast_values(src, L, Direction.EAST, stats=sink)
        assert sink.broadcast_misses == 1 and sink.broadcast_hits == 1

    def test_batched_expanded_plans_count_once_per_call(self):
        clear_plan_cache()
        reset_plan_cache_stats()
        stats = plan_cache_stats()
        vals = np.zeros((3, 4, 4))
        L = np.zeros((4, 4), bool)
        L[:, 0] = True
        segmented_reduce(vals, L, Direction.EAST, "or")
        segmented_reduce(vals, L, Direction.EAST, "or")
        assert (stats.reduce_misses, stats.reduce_hits) == (1, 1)

    def test_mcp_inner_loop_hits_cache_2h_per_iteration(self):
        """The bit-serial min()/selected_min() issue ~2h wired-ORs per MCP
        iteration against one switch plane — after the first iteration,
        every one of them must be a plan-cache hit."""
        from repro.core import minimum_cost_path
        from repro.ppa import PPAConfig, PPAMachine
        from repro.workloads import WeightSpec, gnp_digraph

        clear_plan_cache()
        machine = PPAMachine(PPAConfig(n=8, word_bits=16))
        W = gnp_digraph(8, 0.4, seed=1, weights=WeightSpec(1, 9),
                        inf_value=machine.maxint)
        # Per-transaction observability is a cycle-engine property — the
        # fused engine issues no bus transactions at all.
        res = minimum_cost_path(machine, W, 2, engine="cycle")
        stats = machine.counters.plan_cache
        h = machine.word_bits
        # 2h wired-ORs per iteration (h for min, h for selected_min); all
        # but the first iteration's two resolutions hit the LRU.
        assert stats.reduce_hits >= 2 * h * (res.iterations - 1)
        # per-machine sink never enters the machine's cost vocabulary
        assert "plan_cache" not in machine.counters.snapshot()

    def test_clear_plan_cache_covers_all_four_caches(self):
        clear_plan_cache()
        src2 = np.arange(16).reshape(4, 4)
        src3 = np.arange(48).reshape(3, 4, 4)
        L2 = np.zeros((4, 4), bool)
        L2[:, 0] = True
        L3 = np.zeros((3, 4, 4), bool)
        L3[:, :, 0] = True
        L3[0, :, 2] = True
        broadcast_values(src2, L2, Direction.EAST)   # per-plane broadcast
        segmented_reduce(src2, L2, Direction.EAST, "or")  # per-plane reduce
        broadcast_values(src3, L3, Direction.EAST)   # broadcast stack
        segmented_reduce(src3, L3, Direction.EAST, "or")  # reduce stack
        sizes = plan_cache_sizes()
        assert all(sizes[k] > 0 for k in
                   ("broadcast", "reduce", "broadcast_stacks",
                    "reduce_stacks")), sizes
        clear_plan_cache()
        assert plan_cache_sizes() == {
            "broadcast": 0, "reduce": 0,
            "broadcast_stacks": 0, "reduce_stacks": 0,
        }

    def test_stack_digest_memoized_per_resolved_stack(self):
        """The (B, n, n) stack branches must hash the ring-pile bytes ONCE
        per resolved stack object, not on every call — repeat transactions
        against the same plane stack are an id-lookup plus an LRU hit."""
        clear_plan_cache()
        reset_stack_digest_stats()
        rng = np.random.default_rng(3)
        vals = rng.integers(0, 99, size=(4, 6, 6))
        L = rng.random((4, 6, 6)) < 0.3
        L[:, :, 0] = True  # every ring driven
        want_b = broadcast_values(vals, L, Direction.EAST)
        want_r = segmented_reduce(vals, L, Direction.EAST, "min")
        for _ in range(49):
            assert np.array_equal(
                broadcast_values(vals, L, Direction.EAST), want_b
            )
            assert np.array_equal(
                segmented_reduce(vals, L, Direction.EAST, "min"), want_r
            )
        stats = stack_digest_stats()
        # One hash for the first broadcast; the reduce and every later call
        # reuse it. 100 calls => 1 miss, 99 hits.
        assert stats == {"hits": 99, "misses": 1}
        assert stack_digest_memo_size() >= 1

    def test_stack_digest_invalidated_on_writeback(self):
        """Mutating a plane stack through the machine's store() must drop
        the memoized digest so the next transaction re-hashes (and resolves
        a fresh plan) instead of resurrecting the stale one."""
        from repro.ppa import PPAConfig, PPAMachine

        clear_plan_cache()
        machine = PPAMachine(PPAConfig(n=4, word_bits=8), batch=2)
        L = np.zeros((2, 4, 4), dtype=bool)
        L[:, :, 0] = True
        vals = np.arange(32, dtype=np.int64).reshape(2, 4, 4)
        got = machine.broadcast(vals, Direction.EAST, L)
        assert np.array_equal(got, np.repeat(vals[:, :, 0:1], 4, axis=-1))
        # Writeback: move the Open column from 0 to 1 *in place*.
        machine.store(L, np.roll(L, 1, axis=-1))
        got = machine.broadcast(vals, Direction.EAST, L)
        assert np.array_equal(got, np.repeat(vals[:, :, 1:2], 4, axis=-1))

    def test_stack_digest_memo_drops_dead_arrays(self):
        """Garbage-collected stacks leave no memo entries behind (so a
        recycled id() can never alias a stale digest)."""
        clear_plan_cache()
        vals = np.zeros((2, 3, 3), dtype=np.int64)
        base = stack_digest_memo_size()
        for _ in range(50):
            L = np.eye(3, dtype=bool)[None, :, :].repeat(2, axis=0)
            segmented_reduce(vals, L, Direction.EAST, "or")
            del L
        assert stack_digest_memo_size() <= base + 1

    def test_invalidate_is_noop_for_unseen_arrays(self):
        invalidate_stack_digest(np.zeros((2, 2, 2), dtype=bool))

    def test_batched_mcp_hashes_each_stack_once(self):
        """The batched MCP loop presents the same row-d plane stack every
        round — the digest memo must collapse all of those to one hash."""
        from repro.core.batched import batched_minimum_cost_path
        from repro.ppa import PPAConfig, PPAMachine
        from repro.workloads import WeightSpec, gnp_digraph

        clear_plan_cache()
        machine = PPAMachine(PPAConfig(n=8, word_bits=16), batch=8)
        W = gnp_digraph(8, 0.4, seed=5, weights=WeightSpec(1, 9),
                        inf_value=machine.maxint)
        reset_stack_digest_stats()
        res = batched_minimum_cost_path(
            machine, W, np.arange(8), engine="cycle"
        )
        stats = stack_digest_stats()
        rounds = int(res.iterations.max())
        # Fresh (data-dependent) 3-D stacks are hashed once each: col_d at
        # init plus the two bit-serial survivor planes per round. The
        # stable row_d stack — re-presented as the statement-10 broadcast
        # plane every round — hashes once and then hits the memo, where it
        # previously re-hashed the whole (B*n^2,) pile per round.
        assert stats["misses"] <= 2 + 2 * rounds
        assert stats["hits"] >= rounds - 1
        """A sweep over 1000 distinct planes must evict, not accumulate."""
        clear_plan_cache()
        src = np.arange(16, dtype=np.int64).reshape(4, 4)
        src3 = np.broadcast_to(src, (2, 4, 4))
        rng = np.random.default_rng(7)
        for _ in range(1000):
            L = rng.random((4, 4)) < 0.4
            broadcast_values(src, L, Direction.EAST)
            segmented_reduce(src, L, Direction.EAST, "or")
            broadcast_values(src3, np.stack([L, ~L]), Direction.EAST)
            segmented_reduce(src3, np.stack([L, ~L]), Direction.EAST, "or")
        sizes = plan_cache_sizes()
        assert sizes["broadcast"] <= segments._PLAN_CACHE_SIZE
        assert sizes["reduce"] <= segments._PLAN_CACHE_SIZE
        assert sizes["broadcast_stacks"] <= segments._STACK_CACHE_SIZE
        assert sizes["reduce_stacks"] <= segments._STACK_CACHE_SIZE
