"""Per-lane cost accounting on batched machines.

Two layers under test:

* :class:`repro.ppa.counters.LaneCounters` — the per-lane counter planes
  themselves (accumulation, masking, round-trip-safe snapshots).
* :class:`repro.ppa.machine.PPAMachine` lane management — batched
  construction, the active-lane mask that gates the ledger, the
  ``lanes()`` shared-attribution view, and ``lane_global_or``.

The contract that makes batched == serial counter parity possible: the
scalar :class:`CycleCounters` bundle prices each batched SIMD instruction
once, while every *active* lane's plane is charged exactly what a serial
run would have charged.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, MaskError
from repro.ppa import PPAConfig, PPAMachine
from repro.ppa.counters import CycleCounters, LaneCounters
from repro.ppa.directions import Direction


class TestLaneCounters:
    def test_starts_zero(self):
        lc = LaneCounters(3)
        assert all((v == 0).all() for v in lc.snapshot().values())
        assert len(lc) == 3

    def test_rejects_nonpositive_lanes(self):
        with pytest.raises(ValueError, match="lanes must be >= 1"):
            LaneCounters(0)

    def test_add_all_lanes(self):
        lc = LaneCounters(4)
        lc.add({"alu_ops": 5, "instructions": 5})
        assert lc.total()["alu_ops"] == 20
        assert lc.lane(2)["alu_ops"] == 5

    def test_add_masked_lanes_only(self):
        lc = LaneCounters(3)
        lc.add({"bus_cycles": 7}, mask=np.array([True, False, True]))
        planes = lc.snapshot()
        assert planes["bus_cycles"].tolist() == [7, 0, 7]

    def test_add_unknown_counter_raises(self):
        lc = LaneCounters(2)
        with pytest.raises(ValueError, match="unknown counter"):
            lc.add({"bus_cylces": 1})  # typo

    def test_vocabulary_matches_cycle_counters(self):
        lc = LaneCounters(1)
        assert set(lc.snapshot()) == set(CycleCounters.field_names())

    def test_snapshot_is_copy(self):
        lc = LaneCounters(2)
        snap = lc.snapshot()
        lc.add({"shifts": 1})
        assert snap["shifts"].tolist() == [0, 0]

    def test_diff_per_lane(self):
        lc = LaneCounters(3)
        lc.add({"broadcasts": 2})
        before = lc.snapshot()
        lc.add({"broadcasts": 3}, mask=np.array([False, True, True]))
        d = lc.diff(before)
        assert d["broadcasts"].tolist() == [0, 3, 3]
        assert d["reductions"].tolist() == [0, 0, 0]

    def test_diff_rejects_partial_snapshot(self):
        lc = LaneCounters(2)
        with pytest.raises(ValueError, match="missing keys"):
            lc.diff({"alu_ops": np.zeros(2, dtype=np.int64)})

    def test_merge_lane_for_lane(self):
        a = LaneCounters(2)
        b = LaneCounters(2)
        a.add({"global_ors": 1}, mask=np.array([True, False]))
        b.add({"global_ors": 4}, mask=np.array([False, True]))
        a.merge(b)
        assert a.snapshot()["global_ors"].tolist() == [1, 4]

    def test_merge_rejects_lane_mismatch(self):
        with pytest.raises(ValueError, match="cannot merge 3 lanes into 2"):
            LaneCounters(2).merge(LaneCounters(3))

    def test_merge_rejects_partial_mapping(self):
        with pytest.raises(ValueError, match="not a complete lane-counter"):
            LaneCounters(2).merge({"alu_ops": np.zeros(2)})

    def test_reset(self):
        lc = LaneCounters(2)
        lc.add({"bit_cycles": 9})
        lc.reset()
        assert lc.total()["bit_cycles"] == 0

    def test_lane_and_total_views(self):
        lc = LaneCounters(3)
        lc.add({"instructions": 2}, mask=np.array([True, True, False]))
        assert lc.lane(0)["instructions"] == 2
        assert lc.lane(2)["instructions"] == 0
        assert lc.total()["instructions"] == 4

    def test_static_lane_of_and_total_of(self):
        lc = LaneCounters(3)
        before = lc.snapshot()
        lc.add({"alu_ops": 3}, mask=np.array([False, True, True]))
        delta = lc.diff(before)
        assert LaneCounters.lane_of(delta, 1)["alu_ops"] == 3
        assert LaneCounters.lane_of(delta, 0)["alu_ops"] == 0
        assert LaneCounters.total_of(delta)["alu_ops"] == 6


class TestBatchedMachineCtor:
    def test_unbatched_has_no_lane_counters(self):
        m = PPAMachine(PPAConfig(n=4))
        assert m.batch is None
        assert m.lane_counters is None
        assert m.parallel_shape == (4, 4)

    def test_batched_shapes_and_ledger(self):
        m = PPAMachine(PPAConfig(n=4), batch=3)
        assert m.batch == 3
        assert isinstance(m.lane_counters, LaneCounters)
        assert len(m.lane_counters) == 3
        assert m.parallel_shape == (3, 4, 4)
        assert m.new_parallel().shape == (3, 4, 4)

    def test_rejects_nonpositive_batch(self):
        with pytest.raises(ConfigurationError, match="batch must be >= 1"):
            PPAMachine(PPAConfig(n=4), batch=0)


class TestActiveLaneMask:
    def test_requires_batched_machine(self):
        m = PPAMachine(PPAConfig(n=4))
        with pytest.raises(MaskError, match="requires a batched machine"):
            m.set_active_lanes(np.array([True]))
        with pytest.raises(MaskError, match="requires a batched machine"):
            m.active_lanes

    def test_wrong_shape_raises(self):
        m = PPAMachine(PPAConfig(n=4), batch=3)
        with pytest.raises(MaskError, match="does not match batch"):
            m.set_active_lanes(np.array([True, False]))

    def test_default_all_active(self):
        m = PPAMachine(PPAConfig(n=4), batch=2)
        assert m.active_lanes.tolist() == [True, True]

    def test_none_reactivates_all(self):
        m = PPAMachine(PPAConfig(n=4), batch=2)
        m.set_active_lanes(np.array([False, True]))
        assert m.active_lanes.tolist() == [False, True]
        m.set_active_lanes(None)
        assert m.active_lanes.tolist() == [True, True]

    def test_mask_is_copied_both_ways(self):
        m = PPAMachine(PPAConfig(n=4), batch=2)
        src = np.array([True, False])
        m.set_active_lanes(src)
        src[0] = False  # caller mutation must not leak in
        assert m.active_lanes.tolist() == [True, False]
        view = m.active_lanes
        view[1] = True  # returned copy must not leak back
        assert m.active_lanes.tolist() == [True, False]

    def test_mask_gates_lane_ledger_not_scalar_counters(self):
        m = PPAMachine(PPAConfig(n=4), batch=3)
        m.set_active_lanes(np.array([True, False, True]))
        m.count_alu(5)
        # scalar stream: one controller charge regardless of the mask
        assert m.counters.alu_ops == 5
        planes = m.lane_counters.snapshot()
        assert planes["alu_ops"].tolist() == [5, 0, 5]
        assert planes["instructions"].tolist() == [5, 0, 5]

    def test_datapath_still_computes_masked_lanes(self):
        """The mask gates *cost*, not computation: a bus op on a batched
        machine yields results in every lane, converged or not."""
        m = PPAMachine(PPAConfig(n=4), batch=2)
        m.set_active_lanes(np.array([True, False]))
        vals = m.new_parallel(1)
        out = m.bus_reduce(
            vals, Direction.EAST, np.ones((4, 4), dtype=bool), "sum"
        )
        assert out.shape == (2, 4, 4)
        assert (out[1] == 1).all()  # masked lane computed anyway


class TestLanesView:
    def test_requires_unbatched(self):
        m = PPAMachine(PPAConfig(n=4), batch=2)
        with pytest.raises(MaskError, match="requires an unbatched machine"):
            m.lanes(2)

    def test_shares_counters_telemetry_trace_faults(self):
        m = PPAMachine(PPAConfig(n=4))
        view = m.lanes(3)
        assert view.batch == 3
        assert view.counters is m.counters
        assert view.telemetry is m.telemetry
        assert view.trace is m.trace
        assert view._faults is m._faults

    def test_view_charges_callers_scalar_counters(self):
        m = PPAMachine(PPAConfig(n=4))
        view = m.lanes(2)
        view.count_alu(3)
        assert m.counters.alu_ops == 3
        # per-lane ledger belongs to the view, not the parent
        assert m.lane_counters is None
        assert view.lane_counters.total()["alu_ops"] == 6

    def test_view_memory_is_private(self):
        m = PPAMachine(PPAConfig(n=4))
        view = m.lanes(2)
        assert view.memory is not m.memory
        assert view.new_parallel().shape == (2, 4, 4)
        assert m.new_parallel().shape == (4, 4)


class TestLaneGlobalOr:
    def test_requires_batched(self):
        m = PPAMachine(PPAConfig(n=4))
        with pytest.raises(MaskError, match="requires a batched machine"):
            m.lane_global_or(np.zeros((4, 4), dtype=bool))

    def test_per_lane_result(self):
        m = PPAMachine(PPAConfig(n=4), batch=3)
        bits = np.zeros((3, 4, 4), dtype=bool)
        bits[0, 2, 1] = True
        bits[2, 0, 0] = True
        assert m.lane_global_or(bits).tolist() == [True, False, True]

    def test_shared_plane_broadcasts_over_lanes(self):
        m = PPAMachine(PPAConfig(n=4), batch=2)
        plane = np.zeros((4, 4), dtype=bool)
        plane[1, 1] = True
        assert m.lane_global_or(plane).tolist() == [True, True]

    def test_charged_like_global_or(self):
        serial = PPAMachine(PPAConfig(n=4))
        serial.global_or(np.zeros((4, 4), dtype=bool))
        batched = PPAMachine(PPAConfig(n=4), batch=2)
        batched.lane_global_or(np.zeros((2, 4, 4), dtype=bool))
        assert batched.counters.snapshot() == serial.counters.snapshot()
        # and each active lane is charged that same serial price
        assert (
            batched.lane_counters.lane(0) == serial.counters.snapshot()
        )

    def test_masked_lane_not_charged(self):
        m = PPAMachine(PPAConfig(n=4), batch=2)
        m.set_active_lanes(np.array([False, True]))
        m.lane_global_or(np.zeros((2, 4, 4), dtype=bool))
        planes = m.lane_counters.snapshot()
        assert planes["global_ors"].tolist() == [0, 1]


class TestBatchedChargeParity:
    """A batched bus op charges each active lane exactly the serial price."""

    def test_broadcast_reduce_shift_parity(self):
        n = 4
        L = np.zeros((n, n), dtype=bool)
        L[:, 0] = True  # one Open per ring -> whole-ring clusters

        serial = PPAMachine(PPAConfig(n=n))
        v = np.arange(n * n, dtype=np.int64).reshape(n, n)
        serial.broadcast(v, Direction.EAST, L)
        serial.bus_reduce(v, Direction.EAST, L, "min")
        serial.shift(v, Direction.SOUTH)
        expected = serial.counters.snapshot()

        batched = PPAMachine(PPAConfig(n=n), batch=3)
        vb = np.broadcast_to(v, (3, n, n)).copy()
        batched.broadcast(vb, Direction.EAST, L)
        batched.bus_reduce(vb, Direction.EAST, L, "min")
        batched.shift(vb, Direction.SOUTH)
        # one SIMD stream -> scalar counters identical to one serial run
        assert batched.counters.snapshot() == expected
        # ... and so is every lane's ledger
        for lane in range(3):
            assert batched.lane_counters.lane(lane) == expected
        assert batched.lane_counters.total() == {
            k: 3 * v for k, v in expected.items()
        }
