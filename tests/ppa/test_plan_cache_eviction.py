"""Plan-cache eviction under interleaved workloads.

The four module-wide LRUs in :mod:`repro.ppa.segments` — per-plane
broadcast/reduce plans and assembled batched stack plans — are host-side
accelerators. They must (a) stay within their documented bounds no matter
how many distinct machines/workloads hammer them, (b) evict least-recently
used entries first, and (c) never leak hit/miss accounting into any
machine counter snapshot.
"""

import numpy as np
import pytest

from repro.core import minimum_cost_path
from repro.errors import GraphError
from repro.core.batched import batched_minimum_cost_path
from repro.ppa import FaultKind, FaultPlan, PPAConfig, PPAMachine
from repro.ppa.directions import EAST
from repro.ppa.segments import (
    _PLAN_CACHE_SIZE,
    _STACK_CACHE_SIZE,
    _broadcast_plans,
    clear_plan_cache,
    plan_cache_sizes,
    reset_plan_cache_stats,
)
from repro.workloads import WeightSpec, gnp_digraph


@pytest.fixture(autouse=True)
def _fresh():
    clear_plan_cache()
    reset_plan_cache_stats()
    yield
    clear_plan_cache()


def _graph(n, seed, maxint):
    return gnp_digraph(n, 0.5, seed=seed, weights=WeightSpec(1, 9),
                      inf_value=maxint)


def _run_serial(n, seed=0):
    machine = PPAMachine(PPAConfig(n=n, word_bits=16))
    W = _graph(n, seed, machine.maxint)
    minimum_cost_path(machine, W, 0, engine="cycle")


def _run_batched(n, batch, seed=0):
    machine = PPAMachine(PPAConfig(n=n, word_bits=16), batch=batch)
    W = _graph(n, seed, machine.maxint)
    dest = np.arange(batch) % n
    batched_minimum_cost_path(machine, W, dest, engine="cycle")


def _run_faulted(n, row, col, seed=0):
    machine = PPAMachine(PPAConfig(n=n, word_bits=16))
    plan = FaultPlan()
    plan.add(row, col, FaultKind.STUCK_OPEN)
    machine.inject_faults(plan)
    W = _graph(n, seed, machine.maxint)
    try:
        minimum_cost_path(machine, W, 0)  # auto falls back to cycle
    except GraphError:
        pass  # a stuck-open switch may break convergence; we only
        # care that the faulted planes exercised the caches


class TestBounds:
    def test_documented_bounds(self):
        assert _PLAN_CACHE_SIZE == 64
        assert _STACK_CACHE_SIZE == 16

    def test_interleaved_workloads_stay_bounded(self):
        """Serial, batched and faulted runs over many shapes interleaved:
        no cache may ever exceed its bound."""
        for i, n in enumerate(range(2, 14)):
            _run_serial(n, seed=i)
            _run_batched(n, batch=(i % 3) + 1, seed=i)
            if n >= 3:
                _run_faulted(n, row=1, col=n // 2, seed=i)
            sizes = plan_cache_sizes()
            assert sizes["broadcast"] <= _PLAN_CACHE_SIZE
            assert sizes["reduce"] <= _PLAN_CACHE_SIZE
            assert sizes["broadcast_stacks"] <= _STACK_CACHE_SIZE
            assert sizes["reduce_stacks"] <= _STACK_CACHE_SIZE

    def test_plane_churn_saturates_at_bound(self):
        """Enough distinct planes to overflow: the per-plane LRU pins at
        exactly its bound and keeps serving."""
        machine = PPAMachine(PPAConfig(n=8, word_bits=16))
        data = np.arange(64, dtype=np.int64).reshape(8, 8)
        rng = np.random.default_rng(0)
        for _ in range(_PLAN_CACHE_SIZE + 20):
            plane = rng.random((8, 8)) < 0.5
            machine.broadcast(data, EAST, plane)
        assert plan_cache_sizes()["broadcast"] == _PLAN_CACHE_SIZE

    def test_stack_churn_saturates_at_bound(self):
        """Distinct batched stacks overflow the 16-entry stack LRU."""
        machine = PPAMachine(PPAConfig(n=4, word_bits=16), batch=3)
        data = np.ones((3, 4, 4), dtype=np.int64)
        rng = np.random.default_rng(1)
        for _ in range(_STACK_CACHE_SIZE + 10):
            stack = rng.random((3, 4, 4)) < 0.5
            machine.broadcast(data, EAST, stack)
        assert plan_cache_sizes()["broadcast_stacks"] == _STACK_CACHE_SIZE


class TestLRUOrder:
    def test_least_recently_used_is_evicted_first(self):
        machine = PPAMachine(PPAConfig(n=4, word_bits=16))
        data = np.arange(16, dtype=np.int64).reshape(4, 4)

        def plane(i):
            # Bit pattern of i: distinct for every i < 2**16.
            bits = [(i >> b) & 1 for b in range(16)]
            return np.array(bits, dtype=bool).reshape(4, 4)

        first = plane(0)
        machine.broadcast(data, EAST, first)
        key0 = next(iter(_broadcast_plans))
        # Fill to the brim with other planes, touching the first again
        # midway so it is *not* the LRU victim.
        for i in range(1, _PLAN_CACHE_SIZE - 1):
            machine.broadcast(data, EAST, plane(i))
        machine.broadcast(data, EAST, first)  # refresh
        for i in range(_PLAN_CACHE_SIZE, _PLAN_CACHE_SIZE + 10):
            machine.broadcast(data, EAST, plane(i))
        assert key0 in _broadcast_plans  # survived: it was refreshed
        assert len(_broadcast_plans) == _PLAN_CACHE_SIZE


class TestStatsIsolation:
    def test_stats_never_enter_counter_snapshots(self):
        machine = PPAMachine(PPAConfig(n=6, word_bits=16), batch=2)
        W = _graph(6, 7, machine.maxint)
        res = batched_minimum_cost_path(machine, W, [0, 1], engine="cycle")
        stats_fields = {
            "broadcast_hits", "broadcast_misses", "reduce_hits",
            "reduce_misses", "hits", "misses",
        }
        assert not stats_fields & set(res.counters)
        assert not stats_fields & set(machine.counters.snapshot())
        for name in res.lane_counters:
            assert name not in stats_fields

    def test_eviction_churn_is_counter_neutral(self):
        """Two identical runs, one against a cold cache and one against a
        cache poisoned past its bound, charge identical counters."""
        def run():
            machine = PPAMachine(PPAConfig(n=5, word_bits=16))
            W = _graph(5, 3, machine.maxint)
            return minimum_cost_path(machine, W, 1, engine="cycle").counters

        cold = run()
        # Poison: overflow the plane LRU with junk planes.
        machine = PPAMachine(PPAConfig(n=5, word_bits=16))
        data = np.zeros((5, 5), dtype=np.int64)
        rng = np.random.default_rng(9)
        for _ in range(_PLAN_CACHE_SIZE + 5):
            machine.broadcast(data, EAST, rng.random((5, 5)) < 0.5)
        assert run() == cold
