"""Assembler: syntax, labels, operand checking."""

import pytest

from repro.ppa.assembler import AssemblyError, assemble
from repro.ppa.directions import Direction
from repro.ppa.isa import Opcode


class TestBasics:
    def test_minimal_program(self):
        prog = assemble("halt")
        assert len(prog) == 1 and prog[0].opcode is Opcode.HALT

    def test_operand_decoding(self):
        prog = assemble("ldi r3, 42\nhalt")
        assert prog[0].operands == (3, 42)

    def test_hex_immediate(self):
        prog = assemble("ldi r0, 0xFF\nhalt")
        assert prog[0].operands == (0, 255)

    def test_negative_immediate(self):
        prog = assemble("saddi s1, -1\nhalt")
        assert prog[0].operands == (1, -1)

    def test_direction_case_insensitive(self):
        prog = assemble("shift r1, r2, south\nhalt")
        assert prog[0].operands == (1, 2, Direction.SOUTH)

    def test_comments_and_blank_lines(self):
        prog = assemble("""
        ; leading comment
        ldi r0, 1   ; trailing comment

        halt
        """)
        assert len(prog) == 2

    def test_mnemonic_case_insensitive(self):
        assert assemble("HALT")[0].opcode is Opcode.HALT


class TestLabels:
    def test_forward_and_backward_references(self):
        prog = assemble("""
        start:  ldi r0, 1
                jmp end
                jmp start
        end:    halt
        """)
        assert prog[1].operands == (3,)  # end
        assert prog[2].operands == (0,)  # start

    def test_label_on_its_own_line(self):
        prog = assemble("""
        loop:
                saddi s0, -1
                sjge s0, loop
                halt
        """)
        assert prog[1].operands == (0, 0)

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError, match="duplicate label"):
            assemble("a: ldi r0, 1\na: halt")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblyError, match="undefined label"):
            assemble("jmp nowhere\nhalt")

    def test_invalid_label_name(self):
        with pytest.raises(AssemblyError, match="invalid label"):
            assemble("1abc: halt")


class TestErrors:
    def test_unknown_instruction(self):
        with pytest.raises(AssemblyError, match="unknown instruction"):
            assemble("frobnicate r0\nhalt")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError, match="expects 2 operand"):
            assemble("ldi r0\nhalt")

    def test_bad_register(self):
        with pytest.raises(AssemblyError, match="parallel register"):
            assemble("ldi r16, 0\nhalt")
        with pytest.raises(AssemblyError, match="scalar register"):
            assemble("sldi s9, 0\nhalt")

    def test_register_kind_mismatch(self):
        with pytest.raises(AssemblyError, match="parallel register"):
            assemble("mov s1, r2\nhalt")

    def test_bad_direction(self):
        with pytest.raises(AssemblyError, match="direction"):
            assemble("shift r0, r1, UP\nhalt")

    def test_bad_immediate(self):
        with pytest.raises(AssemblyError, match="integer"):
            assemble("ldi r0, banana\nhalt")

    def test_missing_halt(self):
        with pytest.raises(AssemblyError, match="no halt"):
            assemble("ldi r0, 1")

    def test_error_reports_line(self):
        with pytest.raises(AssemblyError, match="line 3"):
            assemble("halt\n; fine\nbogus r1\n")
