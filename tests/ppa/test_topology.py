"""PPAConfig validation and cost models."""

import pytest

from repro.errors import ConfigurationError
from repro.ppa.topology import BusCostModel, PPAConfig


class TestValidation:
    def test_defaults(self):
        cfg = PPAConfig(n=8)
        assert cfg.word_bits == 16
        assert cfg.bus_cost_model is BusCostModel.UNIT
        assert cfg.torus and not cfg.strict_bus

    def test_rejects_zero_grid(self):
        with pytest.raises(ConfigurationError, match="grid side"):
            PPAConfig(n=0)

    def test_rejects_negative_grid(self):
        with pytest.raises(ConfigurationError):
            PPAConfig(n=-3)

    @pytest.mark.parametrize("h", [0, 1, 63, 100])
    def test_rejects_bad_word_bits(self, h):
        with pytest.raises(ConfigurationError, match="word_bits"):
            PPAConfig(n=4, word_bits=h)

    @pytest.mark.parametrize("h", [2, 16, 62])
    def test_accepts_word_bits_range(self, h):
        assert PPAConfig(n=4, word_bits=h).word_bits == h

    def test_rejects_non_enum_cost_model(self):
        with pytest.raises(ConfigurationError, match="bus_cost_model"):
            PPAConfig(n=4, bus_cost_model="unit")

    def test_frozen(self):
        cfg = PPAConfig(n=4)
        with pytest.raises(AttributeError):
            cfg.n = 8


class TestDerived:
    def test_maxint_is_all_ones(self):
        assert PPAConfig(n=4, word_bits=8).maxint == 255
        assert PPAConfig(n=4, word_bits=16).maxint == 65535

    def test_shape(self):
        assert PPAConfig(n=5).shape == (5, 5)

    def test_unit_cost_is_one(self):
        assert PPAConfig(n=32).bus_transaction_cycles() == 1

    def test_linear_cost_is_ring_length(self):
        cfg = PPAConfig(n=32, bus_cost_model=BusCostModel.LINEAR)
        assert cfg.bus_transaction_cycles() == 32
