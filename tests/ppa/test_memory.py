"""ParallelMemory variable table."""

import numpy as np
import pytest

from repro.errors import VariableError
from repro.ppa.memory import ParallelMemory


@pytest.fixture
def mem():
    return ParallelMemory((3, 3))


class TestDeclare:
    def test_int_default_zero(self, mem):
        arr = mem.declare("a")
        assert arr.dtype == np.int64
        assert not arr.any()

    def test_logical_kind(self, mem):
        arr = mem.declare("flag", "logical")
        assert arr.dtype == np.bool_
        assert mem.kind("flag") == "logical"

    def test_init_scalar_broadcasts(self, mem):
        arr = mem.declare("a", init=7)
        assert (arr == 7).all()

    def test_init_grid(self, mem):
        grid = np.arange(9).reshape(3, 3)
        arr = mem.declare("a", init=grid)
        assert np.array_equal(arr, grid)

    def test_redeclare_rejected(self, mem):
        mem.declare("a")
        with pytest.raises(VariableError, match="already declared"):
            mem.declare("a")

    def test_unknown_kind_rejected(self, mem):
        with pytest.raises(VariableError, match="unknown parallel kind"):
            mem.declare("a", "float")


class TestReadWrite:
    def test_read_unknown_rejected(self, mem):
        with pytest.raises(VariableError, match="undeclared"):
            mem.read("nope")

    def test_write_full(self, mem):
        mem.declare("a")
        mem.write("a", 5)
        assert (mem.read("a") == 5).all()

    def test_write_masked(self, mem):
        mem.declare("a")
        mask = np.zeros((3, 3), bool)
        mask[1, 1] = True
        mem.write("a", 9, mask=mask)
        arr = mem.read("a")
        assert arr[1, 1] == 9
        assert arr.sum() == 9

    def test_write_casts_to_kind(self, mem):
        mem.declare("f", "logical")
        mem.write("f", 1)
        assert mem.read("f").dtype == np.bool_


class TestLifecycle:
    def test_free(self, mem):
        mem.declare("a")
        mem.free("a")
        assert "a" not in mem
        with pytest.raises(VariableError):
            mem.free("a")

    def test_names_sorted(self, mem):
        mem.declare("b")
        mem.declare("a")
        assert mem.names() == ["a", "b"]

    def test_words_allocated(self, mem):
        assert mem.words_allocated() == 0
        mem.declare("a")
        mem.declare("b", "logical")
        assert mem.words_allocated() == 2
        assert len(mem) == 2
