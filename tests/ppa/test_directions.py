"""Direction geometry: axes, steps, opposites."""

import pytest

from repro.ppa.directions import Direction, opposite


class TestAxes:
    def test_north_south_move_along_rows(self):
        assert Direction.NORTH.axis == 0
        assert Direction.SOUTH.axis == 0

    def test_east_west_move_along_columns(self):
        assert Direction.EAST.axis == 1
        assert Direction.WEST.axis == 1


class TestSteps:
    def test_south_is_increasing_row(self):
        assert Direction.SOUTH.step == 1
        assert Direction.SOUTH.is_forward

    def test_east_is_increasing_column(self):
        assert Direction.EAST.step == 1
        assert Direction.EAST.is_forward

    def test_north_is_decreasing_row(self):
        assert Direction.NORTH.step == -1
        assert not Direction.NORTH.is_forward

    def test_west_is_decreasing_column(self):
        assert Direction.WEST.step == -1
        assert not Direction.WEST.is_forward


class TestOpposite:
    @pytest.mark.parametrize(
        "a,b",
        [
            (Direction.NORTH, Direction.SOUTH),
            (Direction.EAST, Direction.WEST),
        ],
    )
    def test_pairs(self, a, b):
        assert opposite(a) is b
        assert opposite(b) is a
        assert a.opposite() is b

    @pytest.mark.parametrize("d", list(Direction))
    def test_involution(self, d):
        assert opposite(opposite(d)) is d

    @pytest.mark.parametrize("d", list(Direction))
    def test_opposite_shares_axis_flips_step(self, d):
        o = opposite(d)
        assert o.axis == d.axis
        assert o.step == -d.step
