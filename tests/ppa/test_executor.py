"""Instruction executor semantics."""

import numpy as np
import pytest

from repro.errors import MachineError
from repro.ppa import Direction, PPAConfig, PPAMachine
from repro.ppa.assembler import assemble
from repro.ppa.executor import execute


def run(src, n=4, h=16, inputs=None, **kw):
    machine = PPAMachine(PPAConfig(n=n, word_bits=h))
    return execute(machine, assemble(src), inputs=inputs, **kw), machine


class TestDataMovement:
    def test_ldi_and_mov(self):
        state, _ = run("ldi r1, 7\nmov r2, r1\nhalt")
        assert (state.reg(2) == 7).all()

    def test_lds(self):
        state, _ = run("lds r1, s0\nhalt", inputs={"s0": 42})
        assert (state.reg(1) == 42).all()

    def test_row_col(self):
        state, _ = run("row r1\ncol r2\nhalt")
        assert state.reg(1)[2, 3] == 2 and state.reg(2)[2, 3] == 3

    def test_memory_roundtrip(self):
        state, _ = run("row r1\nst 2, r1\nld r3, 2\nhalt")
        assert np.array_equal(state.reg(3), state.reg(1))

    def test_inputs_grid_and_memory(self):
        grid = np.arange(16).reshape(4, 4)
        state, _ = run("ld r1, 0\nhalt", inputs={"m0": grid, "r2": grid})
        assert np.array_equal(state.reg(1), grid)
        assert np.array_equal(state.reg(2), grid)

    def test_bad_input_key(self):
        with pytest.raises(MachineError, match="unknown input key"):
            run("halt", inputs={"x1": 0})


class TestAlu:
    def test_add_saturates(self):
        state, _ = run(
            "ldi r1, 250\nldi r2, 10\nadd r3, r1, r2\nhalt", h=8
        )
        assert (state.reg(3) == 255).all()

    def test_sub_clamps_at_zero(self):
        state, _ = run("ldi r1, 3\nldi r2, 10\nsub r3, r1, r2\nhalt")
        assert (state.reg(3) == 0).all()

    def test_min_max(self):
        state, _ = run(
            "row r1\ncol r2\nmin r3, r1, r2\nmax r4, r1, r2\nhalt"
        )
        assert state.reg(3)[1, 3] == 1 and state.reg(4)[1, 3] == 3

    def test_compares_are_01(self):
        state, _ = run("row r1\ncol r2\ncmplt r3, r1, r2\nhalt")
        got = state.reg(3)
        assert set(np.unique(got)) <= {0, 1}
        assert got[0, 1] == 1 and got[1, 0] == 0

    def test_logical_not(self):
        state, _ = run("ldi r1, 5\nnot r2, r1\nnot r3, r2\nhalt")
        assert (state.reg(2) == 0).all() and (state.reg(3) == 1).all()

    def test_shifts_and_bits(self):
        state, _ = run(
            "ldi r1, 5\nshli r2, r1, 2\nshri r3, r2, 1\nbiti r4, r1, 2\nhalt"
        )
        assert (state.reg(2) == 20).all()
        assert (state.reg(3) == 10).all()
        assert (state.reg(4) == 1).all()

    def test_bits_dynamic_plane(self):
        state, _ = run(
            "ldi r1, 4\nsldi s1, 2\nbits r2, r1, s1\nhalt"
        )
        assert (state.reg(2) == 1).all()


class TestCommunication:
    def test_shift(self):
        state, _ = run("col r1\nshift r2, r1, EAST\nhalt")
        assert state.reg(2)[0].tolist() == [3, 0, 1, 2]

    def test_bcast(self):
        src = "row r1\ncol r2\nldi r3, 1\ncmpeq r4, r1, r3\n" \
              "bcast r5, r2, SOUTH, r4\nhalt"
        state, _ = run(src)
        # row 1 drives every column with its COL value
        assert np.array_equal(state.reg(5), np.tile(np.arange(4), (4, 1)))

    def test_wor(self):
        src = ("row r1\ncol r2\nldi r3, 0\ncmpeq r4, r2, r3\n"  # heads col 0
               "cmpeq r5, r1, r2\n"  # diagonal bits
               "wor r6, r5, EAST, r4\nhalt")
        state, _ = run(src)
        assert (state.reg(6) == 1).all()  # every row ring contains a 1

    def test_comm_counters_shared_with_machine(self):
        state, machine = run("ldi r1, 1\nbcast r2, r1, SOUTH, r1\nhalt")
        assert state.counters["broadcasts"] == 1
        assert machine.counters.broadcasts == 1


class TestMasksAndControl:
    def test_pushm_masks_stores(self):
        src = ("row r1\nldi r2, 1\ncmpeq r3, r1, r2\n"
               "pushm r3\nldi r4, 9\npopm\nhalt")
        state, _ = run(src)
        got = state.reg(4)
        assert (got[1] == 9).all() and got.sum() == 9 * 4

    def test_popm_underflow(self):
        with pytest.raises(MachineError, match="popm"):
            run("popm\nhalt")

    def test_mask_restored_after_error(self):
        _, machine = run("ldi r0, 1\nhalt")
        with pytest.raises(MachineError):
            execute(machine, assemble("pushm r0\njmp spin\nspin: jmp spin\nhalt"),
                    max_steps=50)
        assert machine.active_mask.all()  # no leaked mask frames

    def test_controller_loop(self):
        src = """
                sldi  s0, 4
                ldi   r1, 0
                ldi   r2, 1
        loop:   add   r1, r1, r2
                saddi s0, -1
                sjge  s0, loop
                halt
        """
        state, _ = run(src)
        assert (state.reg(1) == 5).all()
        assert state.sregs[0] == -1

    def test_gor_and_jnz(self):
        src = """
                row   r1
                ldi   r2, 0
        drain:  cmpne r3, r1, r2
                gor   r3
                jz    done
                ldi   r4, 1
                pushm r3
                sub   r1, r1, r4
                popm
                jmp   drain
        done:   halt
        """
        state, _ = run(src)
        assert not state.reg(1).any()

    def test_step_budget_enforced(self):
        with pytest.raises(MachineError, match="exceeded"):
            run("spin: jmp spin\nhalt", max_steps=10)

    def test_pc_runoff_detected(self):
        # jump beyond the last instruction (label at the very end)
        machine = PPAMachine(PPAConfig(n=2))
        prog = assemble("jmp end\nend: halt")
        # craft a runoff: execute from a program whose halt is skipped
        bad = assemble("jz skip\nhalt\nskip: ldi r0, 1\nhalt")
        execute(machine, bad)  # flag False -> jz taken -> ldi -> halt


class TestStateReporting:
    def test_steps_counted(self):
        state, _ = run("ldi r0, 1\nldi r1, 2\nhalt")
        assert state.steps == 3
        assert state.halted

    def test_counters_are_deltas(self):
        machine = PPAMachine(PPAConfig(n=4))
        machine.count_alu(100)
        state = execute(machine, assemble("ldi r0, 1\nhalt"))
        assert state.counters["alu_ops"] < 100


class TestExtendedAlu:
    def test_mul_saturates(self):
        state, _ = run("ldi r1, 20\nldi r2, 20\nmul r3, r1, r2\nhalt", h=8)
        assert (state.reg(3) == 255).all()

    def test_mul_normal(self):
        state, _ = run("ldi r1, 6\nldi r2, 7\nmul r3, r1, r2\nhalt")
        assert (state.reg(3) == 42).all()

    def test_div_mod(self):
        state, _ = run(
            "ldi r1, 17\nldi r2, 5\ndiv r3, r1, r2\nmod r4, r1, r2\nhalt"
        )
        assert (state.reg(3) == 3).all()
        assert (state.reg(4) == 2).all()

    def test_div_by_zero_traps(self):
        with pytest.raises(MachineError, match="division by zero"):
            run("ldi r1, 4\nldi r2, 0\ndiv r3, r1, r2\nhalt")

    def test_mod_by_zero_traps(self):
        with pytest.raises(MachineError, match="division by zero"):
            run("ldi r1, 4\nldi r2, 0\nmod r3, r1, r2\nhalt")


class TestScalarBranches:
    @pytest.mark.parametrize(
        "op,s0,imm,taken",
        [
            ("sblt", 2, 5, True), ("sblt", 5, 5, False),
            ("sbge", 5, 5, True), ("sbge", 4, 5, False),
            ("sbeq", 7, 7, True), ("sbeq", 7, 8, False),
            ("sbne", 7, 8, True), ("sbne", 7, 7, False),
        ],
    )
    def test_fused_compare_branch(self, op, s0, imm, taken):
        src = f"""
                sldi  s0, {s0}
                {op}  s0, {imm}, yes
                ldi   r1, 0
                halt
        yes:    ldi   r1, 1
                halt
        """
        state, _ = run(src)
        assert bool(state.reg(1).all()) is taken

    def test_counted_loop_with_sblt(self):
        src = """
                sldi  s0, 0
                ldi   r1, 0
                ldi   r2, 1
        loop:   add   r1, r1, r2
                saddi s0, 1
                sblt  s0, 6, loop
                halt
        """
        state, _ = run(src)
        assert (state.reg(1) == 6).all()
