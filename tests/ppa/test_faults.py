"""Switch fault injection and its observable effects."""

import numpy as np
import pytest

from repro.core import minimum_cost_path, validate_tree
from repro.errors import ConfigurationError, GraphError
from repro.ppa import Direction, PPAConfig, PPAMachine
from repro.ppa.faults import FaultKind, FaultPlan, SwitchFault
from repro.workloads import WeightSpec, gnp_digraph

INF16 = (1 << 16) - 1


def machine(n=4):
    return PPAMachine(PPAConfig(n=n, word_bits=16))


class TestFaultPlan:
    def test_add_and_len(self):
        plan = FaultPlan().add(1, 2, FaultKind.STUCK_OPEN)
        assert len(plan) == 1

    def test_bad_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="axis"):
            FaultPlan().add(0, 0, FaultKind.STUCK_OPEN, axis=2)

    def test_bad_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            FaultPlan().add(0, 0, "stuck-open")

    def test_out_of_grid_rejected_on_inject(self):
        plan = FaultPlan().add(9, 9, FaultKind.STUCK_OPEN)
        with pytest.raises(ConfigurationError, match="outside grid"):
            machine(4).inject_faults(plan)

    def test_apply_stuck_open_forces_true(self):
        plan = FaultPlan().add(1, 1, FaultKind.STUCK_OPEN)
        plane = np.zeros((3, 3), bool)
        out = plan.apply(plane, axis=1)
        assert out[1, 1] and out.sum() == 1
        assert not plane[1, 1]  # original untouched

    def test_apply_stuck_short_forces_false(self):
        plan = FaultPlan().add(2, 0, FaultKind.STUCK_SHORT)
        plane = np.ones((3, 3), bool)
        assert not plan.apply(plane, axis=0)[2, 0]

    def test_axis_scoping(self):
        fault = SwitchFault(0, 0, FaultKind.STUCK_OPEN, axis=1)
        assert fault.affects_axis(1) and not fault.affects_axis(0)
        both = SwitchFault(0, 0, FaultKind.STUCK_OPEN, axis=None)
        assert both.affects_axis(0) and both.affects_axis(1)


class TestFaultyBus:
    def test_stuck_open_splits_ring(self):
        m = machine()
        m.inject_faults(FaultPlan().add(0, 2, FaultKind.STUCK_OPEN, axis=1))
        out = m.broadcast(m.col_index, Direction.EAST, m.col_index == 0)
        # row 0: cols 2, 3 now hear the faulty head at col 2
        assert out[0].tolist() == [0, 0, 2, 2]
        assert out[1].tolist() == [0, 0, 0, 0]

    def test_stuck_short_silences_head(self):
        m = machine()
        m.inject_faults(FaultPlan().add(1, 0, FaultKind.STUCK_SHORT, axis=1))
        out = m.broadcast(m.col_index, Direction.EAST, m.col_index == 0)
        # ring 1 has no effective head: permissive identity
        assert out[1].tolist() == [0, 1, 2, 3]
        assert out[0].tolist() == [0, 0, 0, 0]

    def test_axis_isolation(self):
        m = machine()
        m.inject_faults(FaultPlan().add(0, 2, FaultKind.STUCK_OPEN, axis=0))
        out = m.broadcast(m.col_index, Direction.EAST, m.col_index == 0)
        assert (out == 0).all()  # row-bus traffic unaffected

    def test_clear_faults(self):
        m = machine()
        m.inject_faults(FaultPlan().add(0, 2, FaultKind.STUCK_OPEN))
        m.clear_faults()
        out = m.broadcast(m.col_index, Direction.EAST, m.col_index == 0)
        assert (out == 0).all()
        assert m.fault_plan is None

    def test_shift_unaffected_by_faults(self):
        m = machine()
        m.inject_faults(FaultPlan().add(0, 0, FaultKind.STUCK_OPEN))
        out = m.shift(m.col_index, Direction.EAST)
        assert out[0].tolist() == [3, 0, 1, 2]


class TestFaultyMCP:
    """Failure injection at algorithm level: faults corrupt results in ways
    the validation machinery catches."""

    def _corrupted_run(self, plan):
        W = gnp_digraph(8, 0.4, seed=3, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        healthy = minimum_cost_path(machine(8), W, 2)
        m = machine(8)
        m.inject_faults(plan)
        try:
            broken = minimum_cost_path(m, W, 2)
        except GraphError:
            return W, healthy, None  # diverged -> caught by iteration guard
        return W, healthy, broken

    def test_stuck_open_corrupts_or_is_caught(self):
        plan = FaultPlan().add(4, 4, FaultKind.STUCK_OPEN)
        W, healthy, broken = self._corrupted_run(plan)
        if broken is None:
            return  # non-convergence was detected
        corrupted = not np.array_equal(broken.sow, healthy.sow)
        if not corrupted:
            pytest.skip("fault site not exercised by this workload")
        with pytest.raises(GraphError):
            validate_tree(broken, W)

    def test_fault_on_unused_switch_is_harmless(self):
        # Column-bus switch of a PE whose column bus carries redundant
        # traffic for this destination: a stuck-short at the (already
        # Short) position never manifests.
        plan = FaultPlan().add(3, 5, FaultKind.STUCK_SHORT, axis=1)
        W, healthy, broken = self._corrupted_run(plan)
        # stuck-short at a non-head row-bus position: only matters when
        # (3,5) must head a row cluster; the MCP only heads rows at col n-1
        assert broken is not None
        assert np.array_equal(broken.sow, healthy.sow)
