"""Switch fault injection and its observable effects."""

import numpy as np
import pytest

from repro.core import minimum_cost_path, validate_tree
from repro.errors import ConfigurationError, GraphError
from repro.ppa import Direction, PPAConfig, PPAMachine
from repro.ppa.faults import FaultKind, FaultPlan, SwitchFault
from repro.workloads import WeightSpec, gnp_digraph

INF16 = (1 << 16) - 1


def machine(n=4):
    return PPAMachine(PPAConfig(n=n, word_bits=16))


class TestFaultPlan:
    def test_add_and_len(self):
        plan = FaultPlan().add(1, 2, FaultKind.STUCK_OPEN)
        assert len(plan) == 1

    def test_bad_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="axis"):
            FaultPlan().add(0, 0, FaultKind.STUCK_OPEN, axis=2)

    def test_bad_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            FaultPlan().add(0, 0, "stuck-open")

    def test_out_of_grid_rejected_on_inject(self):
        plan = FaultPlan().add(9, 9, FaultKind.STUCK_OPEN)
        with pytest.raises(ConfigurationError, match="outside grid"):
            machine(4).inject_faults(plan)

    def test_apply_stuck_open_forces_true(self):
        plan = FaultPlan().add(1, 1, FaultKind.STUCK_OPEN)
        plane = np.zeros((3, 3), bool)
        out = plan.apply(plane, axis=1)
        assert out[1, 1] and out.sum() == 1
        assert not plane[1, 1]  # original untouched

    def test_apply_stuck_short_forces_false(self):
        plan = FaultPlan().add(2, 0, FaultKind.STUCK_SHORT)
        plane = np.ones((3, 3), bool)
        assert not plan.apply(plane, axis=0)[2, 0]

    def test_axis_scoping(self):
        fault = SwitchFault(0, 0, FaultKind.STUCK_OPEN, axis=1)
        assert fault.affects_axis(1) and not fault.affects_axis(0)
        both = SwitchFault(0, 0, FaultKind.STUCK_OPEN, axis=None)
        assert both.affects_axis(0) and both.affects_axis(1)


class TestFaultyBus:
    def test_stuck_open_splits_ring(self):
        m = machine()
        m.inject_faults(FaultPlan().add(0, 2, FaultKind.STUCK_OPEN, axis=1))
        out = m.broadcast(m.col_index, Direction.EAST, m.col_index == 0)
        # row 0: cols 2, 3 now hear the faulty head at col 2
        assert out[0].tolist() == [0, 0, 2, 2]
        assert out[1].tolist() == [0, 0, 0, 0]

    def test_stuck_short_silences_head(self):
        m = machine()
        m.inject_faults(FaultPlan().add(1, 0, FaultKind.STUCK_SHORT, axis=1))
        out = m.broadcast(m.col_index, Direction.EAST, m.col_index == 0)
        # ring 1 has no effective head: permissive identity
        assert out[1].tolist() == [0, 1, 2, 3]
        assert out[0].tolist() == [0, 0, 0, 0]

    def test_axis_isolation(self):
        m = machine()
        m.inject_faults(FaultPlan().add(0, 2, FaultKind.STUCK_OPEN, axis=0))
        out = m.broadcast(m.col_index, Direction.EAST, m.col_index == 0)
        assert (out == 0).all()  # row-bus traffic unaffected

    def test_clear_faults(self):
        m = machine()
        m.inject_faults(FaultPlan().add(0, 2, FaultKind.STUCK_OPEN))
        m.clear_faults()
        out = m.broadcast(m.col_index, Direction.EAST, m.col_index == 0)
        assert (out == 0).all()
        assert m.fault_plan is None

    def test_shift_unaffected_by_faults(self):
        m = machine()
        m.inject_faults(FaultPlan().add(0, 0, FaultKind.STUCK_OPEN))
        out = m.shift(m.col_index, Direction.EAST)
        assert out[0].tolist() == [3, 0, 1, 2]


class TestFaultyMCP:
    """Failure injection at algorithm level: faults corrupt results in ways
    the validation machinery catches."""

    def _corrupted_run(self, plan):
        W = gnp_digraph(8, 0.4, seed=3, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        healthy = minimum_cost_path(machine(8), W, 2)
        m = machine(8)
        m.inject_faults(plan)
        try:
            broken = minimum_cost_path(m, W, 2)
        except GraphError:
            return W, healthy, None  # diverged -> caught by iteration guard
        return W, healthy, broken

    def test_stuck_open_corrupts_or_is_caught(self):
        plan = FaultPlan().add(4, 4, FaultKind.STUCK_OPEN)
        W, healthy, broken = self._corrupted_run(plan)
        if broken is None:
            return  # non-convergence was detected
        corrupted = not np.array_equal(broken.sow, healthy.sow)
        if not corrupted:
            pytest.skip("fault site not exercised by this workload")
        with pytest.raises(GraphError):
            validate_tree(broken, W)

    def test_fault_on_unused_switch_is_harmless(self):
        # Column-bus switch of a PE whose column bus carries redundant
        # traffic for this destination: a stuck-short at the (already
        # Short) position never manifests.
        plan = FaultPlan().add(3, 5, FaultKind.STUCK_SHORT, axis=1)
        W, healthy, broken = self._corrupted_run(plan)
        # stuck-short at a non-head row-bus position: only matters when
        # (3,5) must head a row cluster; the MCP only heads rows at col n-1
        assert broken is not None
        assert np.array_equal(broken.sow, healthy.sow)


class TestFaultPlanValidationEdges:
    """The stricter validate() surface behind the resilience campaigns."""

    def test_out_of_grid_intermittent_rejected_on_inject(self):
        plan = FaultPlan().add_intermittent(
            7, 1, FaultKind.STUCK_OPEN, probability=0.5)
        with pytest.raises(ConfigurationError, match="outside grid"):
            machine(4).inject_faults(plan)

    def test_out_of_grid_transient_rejected_on_inject(self):
        plan = FaultPlan().add_transient(1, 7, bit=0, probability=0.5)
        with pytest.raises(ConfigurationError, match="outside grid"):
            machine(4).inject_faults(plan)

    def test_duplicate_stuck_at_same_switch_same_axis(self):
        plan = (FaultPlan()
                .add(1, 2, FaultKind.STUCK_OPEN, axis=0)
                .add(1, 2, FaultKind.STUCK_SHORT, axis=0))
        with pytest.raises(ConfigurationError,
                           match="duplicate stuck-at"):
            plan.validate((4, 4))

    def test_duplicate_via_axis_none_overlap(self):
        # axis=None touches both switch-boxes, so it collides with any
        # single-axis stuck-at on the same PE.
        plan = (FaultPlan()
                .add(1, 2, FaultKind.STUCK_OPEN, axis=None)
                .add(1, 2, FaultKind.STUCK_OPEN, axis=1))
        with pytest.raises(ConfigurationError,
                           match="duplicate stuck-at"):
            plan.validate((4, 4))

    def test_permanent_and_intermittent_on_same_switch_conflict(self):
        plan = (FaultPlan()
                .add(1, 2, FaultKind.STUCK_OPEN, axis=0)
                .add_intermittent(1, 2, FaultKind.STUCK_SHORT,
                                  probability=0.5, axis=0))
        with pytest.raises(ConfigurationError,
                           match="duplicate stuck-at"):
            plan.validate((4, 4))

    def test_same_switch_different_axes_is_legal(self):
        plan = (FaultPlan()
                .add(1, 2, FaultKind.STUCK_OPEN, axis=0)
                .add(1, 2, FaultKind.STUCK_SHORT, axis=1))
        plan.validate((4, 4))
        assert len(plan) == 2

    def test_duplicate_transient_same_bit_rejected(self):
        plan = (FaultPlan()
                .add_transient(1, 2, bit=3, probability=0.5, axis=0)
                .add_transient(1, 2, bit=3, probability=0.9, axis=0))
        with pytest.raises(ConfigurationError,
                           match="duplicate transient"):
            plan.validate((4, 4))

    def test_transients_on_different_bits_are_legal(self):
        plan = (FaultPlan()
                .add_transient(1, 2, bit=3, probability=0.5, axis=0)
                .add_transient(1, 2, bit=4, probability=0.5, axis=0))
        plan.validate((4, 4), word_bits=16)

    def test_probability_zero_rejected(self):
        with pytest.raises(ConfigurationError, match=r"\(0, 1\]"):
            FaultPlan().add_intermittent(
                0, 0, FaultKind.STUCK_OPEN, probability=0.0)

    def test_probability_above_one_rejected(self):
        with pytest.raises(ConfigurationError, match=r"\(0, 1\]"):
            FaultPlan().add_transient(0, 0, bit=0, probability=1.5)

    def test_negative_bit_rejected(self):
        with pytest.raises(ConfigurationError, match="bit index"):
            FaultPlan().add_transient(0, 0, bit=-1, probability=0.5)

    def test_bit_outside_machine_word_rejected_on_inject(self):
        plan = FaultPlan().add_transient(0, 0, bit=16, probability=0.5)
        with pytest.raises(ConfigurationError, match="16-bit"):
            machine(4).inject_faults(plan)

    def test_is_static_and_len(self):
        assert FaultPlan().add(0, 0, FaultKind.STUCK_OPEN).is_static
        plan = (FaultPlan()
                .add(0, 0, FaultKind.STUCK_OPEN)
                .add_intermittent(1, 1, FaultKind.STUCK_SHORT,
                                  probability=0.5)
                .add_transient(2, 2, bit=0, probability=0.5))
        assert not plan.is_static
        assert len(plan) == 3

    def test_reseed_replays_the_activation_stream(self):
        def stream(plan):
            plane = np.zeros((4, 4), bool)
            return [plan.effective_plane(plane, 0).tobytes()
                    for _ in range(32)]

        plan = FaultPlan(seed=5).add_intermittent(
            1, 1, FaultKind.STUCK_OPEN, probability=0.5)
        first = stream(plan)
        assert first != stream(plan)  # the stream advances...
        plan.reseed()
        assert stream(plan) == first  # ...and reseed() rewinds it

    def test_draw_order_is_axis_independent(self):
        """One draw per intermittent per transaction regardless of which
        axis the transaction uses — the activation history cannot be
        perturbed by the direction sequence an algorithm issues."""
        mk = lambda: FaultPlan(seed=9).add_intermittent(  # noqa: E731
            1, 1, FaultKind.STUCK_OPEN, probability=0.5, axis=0)
        plane = np.zeros((4, 4), bool)

        a = mk()
        a.effective_plane(plane, 0)           # transaction 1 on axis 0
        second_a = a.effective_plane(plane, 0).tobytes()

        b = mk()
        b.effective_plane(plane, 1)           # transaction 1 on axis 1
        second_b = b.effective_plane(plane, 0).tobytes()
        assert second_a == second_b


class TestClearFaultsMidRun:
    def test_clear_restores_healthy_behaviour_and_plan_reuse(self):
        from repro.ppa.segments import (
            clear_plan_cache, plan_cache_stats, reset_plan_cache_stats,
        )

        clear_plan_cache()
        reset_plan_cache_stats()
        m = machine()
        heads = m.row_index == 0
        healthy = m.broadcast(m.row_index, Direction.SOUTH, heads)

        m.inject_faults(FaultPlan().add(2, 1, FaultKind.STUCK_OPEN, axis=0))
        corrupted = m.broadcast(m.row_index, Direction.SOUTH, heads)
        assert not np.array_equal(healthy, corrupted)

        m.clear_faults()
        after = m.broadcast(m.row_index, Direction.SOUTH, heads)
        assert np.array_equal(healthy, after)
        # The faultless plan is served from cache again: 2 misses total
        # (healthy + faulted), the post-clear transaction is a hit.
        stats = plan_cache_stats()
        assert (stats.broadcast_misses, stats.broadcast_hits) == (2, 1)
        clear_plan_cache()

    def test_clear_faults_between_mcp_runs(self):
        W = gnp_digraph(6, 0.4, seed=3, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        healthy = minimum_cost_path(machine(6), W, 2)
        m = machine(6)
        m.inject_faults(FaultPlan().add(2, 4, FaultKind.STUCK_SHORT, axis=0))
        m.clear_faults()
        again = minimum_cost_path(m, W, 2)
        assert np.array_equal(healthy.sow, again.sow)
        assert np.array_equal(healthy.ptn, again.ptn)
