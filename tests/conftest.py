"""Shared fixtures and hypothesis configuration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.ppa import PPAConfig, PPAMachine

# One moderate profile for the whole suite: the simulators are fast but a
# grid-shaped strategy still costs more than a scalar one.
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def machine8() -> PPAMachine:
    """Fresh default 8x8 machine (16-bit words)."""
    return PPAMachine(PPAConfig(n=8, word_bits=16))


@pytest.fixture
def machine4() -> PPAMachine:
    return PPAMachine(PPAConfig(n=4, word_bits=16))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running test")
