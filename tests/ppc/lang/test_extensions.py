"""Language extensions: break/continue and compound assignment."""

import numpy as np
import pytest

from repro.errors import PPCSyntaxError, PPCTypeError
from repro.ppa import PPAConfig, PPAMachine
from repro.ppc.lang import compile_ppc
from repro.ppc.lang.formatter import format_program
from repro.ppc.lang.parser import parse


def run(src, n=4, h=16, entry="main", globals=None):
    machine = PPAMachine(PPAConfig(n=n, word_bits=h))
    return compile_ppc(src).run(machine, entry, globals=globals)


class TestBreakContinue:
    def test_break_exits_while(self):
        res = run(
            "int f() { int j = 0;"
            "while (1) { j += 1; if (j == 5) break; } return j; }",
            entry="f",
        )
        assert res.value == 5

    def test_break_exits_for(self):
        res = run(
            "int f() { int j; int acc = 0;"
            "for (j = 0; j < 100; j += 1) { if (j == 4) break; acc += j; }"
            "return acc; }",
            entry="f",
        )
        assert res.value == 6

    def test_continue_skips_iteration(self):
        res = run(
            "int f() { int j; int acc = 0;"
            "for (j = 0; j < 6; j += 1) { if (j % 2 == 0) continue;"
            "acc += j; } return acc; }",
            entry="f",
        )
        assert res.value == 1 + 3 + 5

    def test_continue_in_while_reevaluates_condition(self):
        res = run(
            "int f() { int j = 0; int acc = 0;"
            "while (j < 5) { j += 1; if (j == 3) continue; acc += j; }"
            "return acc; }",
            entry="f",
        )
        assert res.value == 1 + 2 + 4 + 5

    def test_break_in_do_while(self):
        res = run(
            "int f() { int j = 0; do { j += 1; if (j > 2) break; }"
            "while (1); return j; }",
            entry="f",
        )
        assert res.value == 3

    def test_break_only_innermost_loop(self):
        res = run(
            "int f() { int i; int j; int acc = 0;"
            "for (i = 0; i < 3; i += 1)"
            "  for (j = 0; j < 100; j += 1) { if (j == 2) break; acc += 1; }"
            "return acc; }",
            entry="f",
        )
        assert res.value == 6  # 3 outer x 2 inner

    def test_break_outside_loop_rejected(self):
        with pytest.raises(PPCTypeError, match="outside any loop"):
            compile_ppc("void f() { break; }")

    def test_continue_outside_loop_rejected(self):
        with pytest.raises(PPCTypeError, match="outside any loop"):
            compile_ppc("void f() { if (1) continue; }")

    def test_break_does_not_escape_function_into_loop(self):
        with pytest.raises(PPCTypeError, match="outside any loop"):
            compile_ppc(
                "void g() { break; }"
                "void f() { while (1) g(); }"
            )


class TestCompoundAssignment:
    def test_scalar_ops(self):
        res = run(
            "int f() { int j = 10;"
            "j += 5; j -= 3; j *= 2; j /= 4; j %= 4; j <<= 3; j |= 1;"
            "return j; }",
            entry="f",
        )
        # 10+5=15, -3=12, *2=24, /4=6, %4=2, <<3=16, |1=17
        assert res.value == 17

    def test_parallel_plus_saturates(self):
        res = run(
            "parallel int X; void main() { X = MAXINT - 1; X += 100; }",
            h=8,
        )
        assert (res.globals["X"] == 255).all()

    def test_parallel_compound_respects_where(self):
        res = run(
            "parallel int X;"
            "void main() { X = 10; where (ROW == 1) X += 7; }",
        )
        X = res.globals["X"]
        assert (X[1] == 17).all() and (X[0] == 10).all()

    def test_bitwise_compound_on_parallel(self):
        res = run(
            "parallel int X; void main() { X = COL; X &= 1; X ^= 1; }"
        )
        X = res.globals["X"]
        assert np.array_equal(X[0], (np.arange(4) & 1) ^ 1)

    def test_compound_on_undeclared_rejected(self):
        with pytest.raises(PPCTypeError, match="undeclared"):
            compile_ppc("void f() { q += 1; }")

    def test_compound_parallel_into_scalar_rejected(self):
        with pytest.raises(PPCTypeError, match="parallel value"):
            compile_ppc("parallel int X; void f() { int j = 0; j += X; }")


class TestFormatterSupport:
    def test_roundtrip_new_constructs(self):
        src = (
            "int f() { int j = 0;"
            "while (1) { j += 2; if (j > 4) break; continue; }"
            "return j; }"
        )
        once = format_program(parse(src))
        assert "j += 2;" in once
        assert "break;" in once and "continue;" in once
        assert format_program(parse(once)) == once

    def test_for_clause_compound(self):
        src = "int f() { int j; for (j = 0; j < 4; j += 1) j = j; return j; }"
        out = format_program(parse(src))
        assert "j += 1" in out


class TestLexerEdge:
    def test_compound_tokens_not_split(self):
        from repro.ppc.lang.lexer import tokenize

        toks = [t.text for t in tokenize("a <<= 1; b <= 2;") if t.text]
        assert "<<=" in toks and "<=" in toks

    def test_shift_assign_parses(self):
        res = run("int f() { int j = 1; j <<= 4; j >>= 1; return j; }",
                  entry="f")
        assert res.value == 8
