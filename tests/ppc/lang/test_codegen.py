"""PPC → assembly compiler: semantics parity with the interpreter."""

import numpy as np
import pytest

from repro import PPAMachine, PPAConfig, minimum_cost_path, normalize_weights
from repro.ppc.lang import compile_ppc, programs
from repro.ppc.lang.codegen import CodegenError, compile_to_asm
from repro.workloads import WeightSpec, gnp_digraph

INF16 = (1 << 16) - 1


def machine(n=4, h=16):
    return PPAMachine(PPAConfig(n=n, word_bits=h))


def run(src, n=4, h=16, entry="main", g=None):
    prog = compile_to_asm(src, n, h, entry=entry)
    return prog.run(machine(n, h), globals=g or {})


def both(src, n=4, h=16, entry="main", g=None):
    """Run through the compiler and the interpreter; return both results."""
    compiled = run(src, n, h, entry=entry, g=dict(g or {}))
    interp = compile_ppc(src).run(machine(n, h), entry, globals=dict(g or {}))
    return compiled, interp


class TestExpressions:
    def test_arith_word_semantics(self):
        src = ("parallel int A, B, C, D;"
               "void main() { A = COL + 3; B = COL * COL; C = COL - 1;"
               "D = (COL + 1) % 3; }")
        c, i = both(src)
        for name in "ABCD":
            assert np.array_equal(c.globals[name], i.globals[name]), name

    def test_saturation_and_clamp(self):
        src = ("parallel int A, B;"
               "void main() { A = MAXINT; A = A + 9; B = COL; B = B - 2; }")
        c, i = both(src, h=8)
        assert (c.globals["A"] == 255).all()
        assert np.array_equal(c.globals["B"], i.globals["B"])
        assert c.globals["B"][0].tolist() == [0, 0, 0, 1]

    def test_logicals_and_comparisons(self):
        src = ("parallel logical F, G;"
               "void main() { F = (ROW == COL) && (COL != 0);"
               "G = !(ROW < COL) || (COL == 1); }")
        c, i = both(src)
        assert np.array_equal(c.globals["F"], i.globals["F"])
        assert np.array_equal(c.globals["G"], i.globals["G"])

    def test_bitwise_and_shifts(self):
        src = ("parallel int A;"
               "void main() { A = ((COL << 2) | 1) ^ (COL & 1); A = ~A; }")
        c, i = both(src)
        assert np.array_equal(c.globals["A"], i.globals["A"])

    def test_constant_folding(self):
        prog = compile_to_asm(
            "parallel int A; void main() { A = (N - 1) * h + MAXINT % 7; }",
            4, 16, entry="main",
        )
        # everything folds: exactly one ldi + one st + halt
        body = [l for l in prog.asm.splitlines() if l.strip() and not
                l.startswith(";")]
        assert any("ldi" in l for l in body)
        assert len(body) == 3

    def test_division_by_zero_traps(self):
        from repro.errors import MachineError

        with pytest.raises(MachineError, match="division by zero"):
            run("parallel int A; void main() { A = COL / ROW; }")


class TestCommunication:
    def test_broadcast_shift_or_bit(self):
        src = ("parallel int A, B; parallel logical F;"
               "void main() {"
               "A = broadcast(ROW * 4 + COL, SOUTH, ROW == 2);"
               "B = shift(COL, EAST);"
               "F = or(bit(COL, 0), EAST, COL == 0); }")
        c, i = both(src)
        for name in ("A", "B", "F"):
            assert np.array_equal(c.globals[name], i.globals[name]), name

    def test_builtin_min_matches(self):
        src = ("parallel int M;"
               "void main() { M = min(ROW * 4 + COL, WEST, COL == N - 1); }")
        c, i = both(src)
        assert np.array_equal(c.globals["M"], i.globals["M"])
        assert c.counters["reductions"] == i.counters["reductions"]
        assert c.counters["broadcasts"] == i.counters["broadcasts"]

    def test_selected_min_matches(self):
        src = ("parallel int M; parallel logical S;"
               "void main() { S = (COL % 2) == 0;"
               "M = selected_min(COL, WEST, COL == N - 1, S); }")
        c, i = both(src)
        assert np.array_equal(c.globals["M"], i.globals["M"])

    def test_opposite_folds(self):
        src = ("parallel int A;"
               "void main() { A = shift(shift(COL, EAST), opposite(EAST)); }")
        c, _ = both(src)
        assert np.array_equal(c.globals["A"], np.tile(np.arange(4), (4, 1)))


class TestMasking:
    def test_where_masks_store_not_evaluation(self):
        src = ("parallel int W; parallel int S; int d;"
               "void main() { where (ROW == d) "
               "S = broadcast(broadcast(W, EAST, COL == d), SOUTH, ROW == COL); }")
        W = np.arange(16).reshape(4, 4)
        c, i = both(src, g={"W": W, "d": 1})
        assert np.array_equal(c.globals["S"], i.globals["S"])
        assert np.array_equal(c.globals["S"][1], W[:, 1])

    def test_nested_where_and_elsewhere(self):
        src = ("parallel int X;"
               "void main() { where (ROW < 2) { where (COL == 0) X = 1;"
               "elsewhere X = 2; } elsewhere X = 3; }")
        c, i = both(src)
        assert np.array_equal(c.globals["X"], i.globals["X"])

    def test_compound_assign_under_mask(self):
        src = ("parallel int X;"
               "void main() { X = 10; where (ROW == 1) X += ROW + COL; }")
        c, i = both(src)
        assert np.array_equal(c.globals["X"], i.globals["X"])

    def test_declaration_inside_where_initialises_unmasked(self):
        src = ("parallel int OUT;"
               "void main() { where (ROW == 0) { parallel int t = 5;"
               "OUT = t; } }")
        c, i = both(src)
        assert np.array_equal(c.globals["OUT"], i.globals["OUT"])


class TestControlFlow:
    def test_for_loop_with_scalar_counter(self):
        src = ("parallel int X; void main() { int j; X = 0;"
               "for (j = 0; j < 5; j = j + 1) X = X + 1; }")
        c, i = both(src)
        assert (c.globals["X"] == 5).all()

    def test_while_any(self):
        src = ("parallel int X;"
               "void main() { X = ROW; while (any(X > 0)) "
               "{ where (X > 0) X = X - 1; } }")
        c, i = both(src)
        assert not c.globals["X"].any()
        assert c.counters["global_ors"] == i.counters["global_ors"]

    def test_do_while(self):
        src = ("parallel int X; void main() { int j = 0; X = 0;"
               "do { X = X + 1; j = j + 1; } while (j < 3); }")
        c, _ = both(src)
        assert (c.globals["X"] == 3).all()

    def test_break_continue(self):
        src = ("parallel int X; void main() { int j; X = 0;"
               "for (j = 0; j < 10; j += 1) {"
               "if (j == 2) continue; if (j == 5) break; X += 1; } }")
        c, i = both(src)
        assert np.array_equal(c.globals["X"], i.globals["X"])
        assert (c.globals["X"] == 4).all()

    def test_if_else_scalar(self):
        src = ("parallel int X; int d;"
               "void main() { if (d == 2) X = 1; else X = 9; }")
        c, _ = both(src, g={"d": 2})
        assert (c.globals["X"] == 1).all()
        c2 = run(src, g={"d": 3})
        assert (c2.globals["X"] == 9).all()


class TestInlining:
    def test_user_function_inlined(self):
        src = ("parallel int X;"
               "parallel int dbl(parallel int a) { return a + a; }"
               "void main() { X = dbl(dbl(COL)); }")
        c, i = both(src)
        assert np.array_equal(c.globals["X"], i.globals["X"])

    def test_pass_by_value(self):
        src = ("parallel int X;"
               "parallel int wipe(parallel int a) { a = 0; return a; }"
               "void main() { X = 7; wipe(X); }")
        c, _ = both(src)
        assert (c.globals["X"] == 7).all()

    def test_direction_parameter_binds_constant(self):
        src = ("parallel int X;"
               "parallel int go(parallel int a, int dir)"
               "{ return shift(a, dir); }"
               "void main() { X = go(COL, EAST); }")
        c, i = both(src)
        assert np.array_equal(c.globals["X"], i.globals["X"])

    def test_recursion_rejected(self):
        with pytest.raises(CodegenError, match="inline depth"):
            compile_to_asm(
                "int f(int a) { return f(a); } void main() { f(1); }",
                4, 16,
            )

    def test_early_return_rejected(self):
        with pytest.raises(CodegenError, match="last statement"):
            compile_to_asm(
                "parallel int X;"
                "parallel int f(parallel int a)"
                "{ where (a == 0) { return a; } return a; }"
                "void main() { X = f(X); }",
                4, 16,
            )


class TestSubsetErrors:
    def test_dynamic_direction_rejected(self):
        with pytest.raises(CodegenError, match="compile-time constant"):
            compile_to_asm(
                "parallel int X; int d;"
                "void main() { X = shift(X, d); }",
                4, 16,
            )

    def test_general_scalar_expr_rejected(self):
        with pytest.raises(CodegenError, match="scalar assignment"):
            compile_to_asm(
                "int a; int b; void main() { a = 1; b = 2; a = a * b; }",
                4, 16,
            )

    def test_uncompilable_condition_rejected(self):
        with pytest.raises(CodegenError, match="condition is not compilable"):
            compile_to_asm(
                "int a; int b; void main() { a = 1; b = 2;"
                "while (a < b) a = a + 1; }",
                4, 16,
            )

    def test_entry_with_params_rejected(self):
        with pytest.raises(CodegenError, match="no parameters"):
            compile_to_asm("void main(int x) { }", 4, 16)

    def test_injecting_initialised_global_rejected(self):
        prog = compile_to_asm("int d = 3; void main() { }", 4, 16)
        with pytest.raises(CodegenError, match="explicit initialiser"):
            prog.run(machine(), globals={"d": 9})

    def test_machine_geometry_checked(self):
        prog = compile_to_asm("void main() { }", 4, 16)
        with pytest.raises(CodegenError, match="compiled for n=4"):
            prog.run(machine(n=8))


class TestPaperListings:
    @pytest.mark.parametrize("seed", range(4))
    def test_compiled_mcp_matches_native(self, seed):
        n, h = 8, 16
        prog = compile_to_asm(programs.MCP_CODE, n, h,
                              entry="minimum_cost_path")
        W = gnp_digraph(n, 0.35, seed=seed, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        d = seed % n
        native = minimum_cost_path(machine(n, h), W, d)
        m = machine(n, h)
        res = prog.run(m, globals={"W": normalize_weights(W, m), "d": d})
        assert np.array_equal(res.globals["SOW"][d], native.sow)
        assert np.array_equal(res.globals["PTN"][d], native.ptn)

    def test_compiled_mcp_comm_parity_with_interpreter(self):
        n, h = 8, 16
        W = gnp_digraph(n, 0.3, seed=1, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        prog = compile_to_asm(programs.MCP_CODE, n, h,
                              entry="minimum_cost_path")
        m1 = machine(n, h)
        compiled = prog.run(m1, globals={"W": normalize_weights(W, m1), "d": 2})
        m2 = machine(n, h)
        interp = compile_ppc(programs.MCP_CODE).run(
            m2, "minimum_cost_path",
            globals={"W": normalize_weights(W, m2), "d": 2},
        )
        for key in ("broadcasts", "reductions", "global_ors"):
            assert compiled.counters[key] == interp.counters[key], key

    def test_compiled_distance_transform(self):
        from repro.apps import distance_transform, random_blobs

        img = random_blobs(8, blobs=2, radius=2, seed=3)
        prog = compile_to_asm(programs.DISTANCE_TRANSFORM_CODE, 8, 16,
                              entry="distance_transform")
        m = machine(8, 16)
        res = prog.run(m, globals={"IMG": img})
        native = distance_transform(machine(8, 16), img)
        assert np.array_equal(res.globals["DIST"], native.distances)

    def test_compiled_min_listing(self):
        src = (programs.MIN_CODE
               + "parallel int V; parallel int OUT;"
               "void main() { OUT = min(V, WEST, COL == N - 1); }")
        rng = np.random.default_rng(0)
        vals = rng.integers(0, 60000, size=(6, 6))
        prog = compile_to_asm(src, 6, 16, entry="main")
        res = prog.run(machine(6, 16), globals={"V": vals})
        assert np.array_equal(
            res.globals["OUT"],
            np.tile(vals.min(axis=1, keepdims=True), (1, 6)),
        )
