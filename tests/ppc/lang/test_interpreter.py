"""Interpreter semantics: values, masks, control flow, builtins."""

import numpy as np
import pytest

from repro.errors import PPCRuntimeError
from repro.ppa import PPAConfig, PPAMachine
from repro.ppc.lang import compile_ppc


def run(src: str, n=4, h=16, entry="main", globals=None, args=()):
    machine = PPAMachine(PPAConfig(n=n, word_bits=h))
    result = compile_ppc(src).run(machine, entry, args=args, globals=globals)
    return result, machine


class TestScalars:
    def test_arithmetic(self):
        res, _ = run("int f() { return (1 + 2) * 3 - 4 / 2; }", entry="f")
        assert res.value == 7

    def test_modulo_and_shifts(self):
        res, _ = run("int f() { return (7 % 4) + (1 << 3) + (16 >> 2); }", entry="f")
        assert res.value == 15

    def test_unary(self):
        res, _ = run("int f() { return -(3) + !0; }", entry="f")
        assert res.value == -2

    def test_division_by_zero(self):
        with pytest.raises(PPCRuntimeError, match="division by zero"):
            run("int f() { int j = 0; return 1 / j; }", entry="f")

    def test_short_circuit_and(self):
        # 1/j would trap; && must not evaluate it
        res, _ = run("int f() { int j = 0; return 0 && (1 / j); }", entry="f")
        assert res.value is False

    def test_short_circuit_or(self):
        res, _ = run("int f() { int j = 0; return 1 || (1 / j); }", entry="f")
        assert res.value is True


class TestParallel:
    def test_global_snapshot(self):
        res, _ = run(
            "parallel int X; void main() { X = ROW * 10 + COL; }",
        )
        assert res.globals["X"][2, 3] == 23

    def test_saturating_parallel_add(self):
        # MAXINT + 5 on the controller is plain arithmetic; the *parallel*
        # adder saturates at the word.
        res, _ = run(
            "parallel int X; void main() { X = MAXINT; X = X + 5; }", h=8
        )
        assert (res.globals["X"] == 255).all()

    def test_where_masks_assignment(self):
        res, _ = run(
            "parallel int X; void main() { where (ROW == 1) X = 7; }"
        )
        X = res.globals["X"]
        assert (X[1] == 7).all() and X.sum() == 28

    def test_elsewhere(self):
        res, _ = run(
            "parallel int X;"
            "void main() { where (ROW == 0) X = 1; elsewhere X = 2; }"
        )
        X = res.globals["X"]
        assert (X[0] == 1).all() and (X[1:] == 2).all()

    def test_nested_where(self):
        res, _ = run(
            "parallel int X;"
            "void main() { where (ROW == 1) where (COL == 2) X = 9; }"
        )
        X = res.globals["X"]
        assert X[1, 2] == 9 and X.sum() == 9

    def test_declaration_initialises_unmasked(self):
        res, _ = run(
            "parallel int OUT;"
            "void main() { where (ROW == 0) { parallel int t = 5; OUT = t; } }"
        )
        # OUT only written on row 0, but t was 5 everywhere
        assert (res.globals["OUT"][0] == 5).all()

    def test_scalar_vars_ignore_where(self):
        res, _ = run(
            "int j; parallel int X;"
            "void main() { where (ROW == 0) j = 5; X = j; }"
        )
        assert (res.globals["X"] == 5).all()

    def test_parallel_comparison_and_logical(self):
        res, _ = run(
            "parallel logical F;"
            "void main() { F = (ROW == COL) && (ROW != 0); }"
        )
        F = res.globals["F"]
        assert not F[0, 0] and F[1, 1] and not F[1, 2]


class TestControlFlow:
    def test_for_loop(self):
        res, _ = run(
            "int f() { int j; int acc = 0;"
            "for (j = 0; j < 5; j = j + 1) acc = acc + j; return acc; }",
            entry="f",
        )
        assert res.value == 10

    def test_while_loop(self):
        res, _ = run(
            "int f() { int j = 0; while (j < 8) j = j + 3; return j; }",
            entry="f",
        )
        assert res.value == 9

    def test_do_while_runs_once(self):
        res, _ = run(
            "int f() { int j = 100; do j = j + 1; while (j < 0); return j; }",
            entry="f",
        )
        assert res.value == 101

    def test_if_else(self):
        res, _ = run(
            "int f(int x) { if (x > 2) return 1; else return 2; }",
            entry="f",
            args=(5,),
        )
        assert res.value == 1

    def test_any_controls_loop(self):
        res, _ = run(
            "parallel int X; int iters;"
            "void main() { X = ROW; iters = 0;"
            "  while (any(X > 0)) { where (X > 0) X = X - 1; iters = iters + 1; } }"
        )
        assert res.globals["iters"] == 3  # max ROW on a 4x4
        assert not res.globals["X"].any()


class TestFunctions:
    def test_user_function_call(self):
        res, _ = run(
            "int dbl(int x) { return x * 2; } int f() { return dbl(21); }",
            entry="f",
        )
        assert res.value == 42

    def test_parallel_pass_by_value(self):
        res, _ = run(
            "parallel int X;"
            "parallel int wipe(parallel int a) { a = 0; return a; }"
            "void main() { X = 7; wipe(X); }"
        )
        assert (res.globals["X"] == 7).all()  # callee mutated its copy

    def test_recursion_depth_guard(self):
        with pytest.raises(PPCRuntimeError, match="call depth"):
            run("int f() { return f(); } int g() { return f(); }", entry="g")

    def test_missing_entry(self):
        with pytest.raises(PPCRuntimeError, match="no function 'nope'"):
            run("void main() { }", entry="nope")

    def test_entry_args(self):
        res, _ = run("int f(int a, int b) { return a + b; }", entry="f", args=(3, 4))
        assert res.value == 7


class TestBuiltins:
    def test_broadcast_and_shift(self):
        res, _ = run(
            "parallel int A, B;"
            "void main() {"
            "  A = broadcast(ROW * 4 + COL, SOUTH, ROW == 2);"
            "  B = shift(COL, EAST);"
            "}"
        )
        assert np.array_equal(res.globals["A"], np.tile(np.arange(8, 12), (4, 1)))
        assert res.globals["B"][0].tolist() == [3, 0, 1, 2]

    def test_bit_and_or(self):
        res, _ = run(
            "parallel logical F;"
            "void main() { F = or(bit(COL, 0), EAST, COL == 0); }"
        )
        # some column has bit0 set in every row ring -> all True
        assert res.globals["F"].all()

    def test_opposite(self):
        res, _ = run(
            "parallel int X;"
            "void main() { X = shift(shift(COL, EAST), opposite(EAST)); }"
        )
        assert np.array_equal(res.globals["X"], np.tile(np.arange(4), (4, 1)))

    def test_builtin_min(self):
        res, _ = run(
            "parallel int M;"
            "void main() { M = min(ROW * 4 + COL, WEST, COL == N - 1); }"
        )
        assert np.array_equal(res.globals["M"][:, 0], np.arange(4) * 4)

    def test_bit_scalar_index_required(self):
        with pytest.raises(PPCRuntimeError, match="must be a scalar"):
            run("parallel int X; void main() { X = bit(X, COL); }")

    def test_direction_argument_checked(self):
        with pytest.raises(PPCRuntimeError, match="must be a direction"):
            run("parallel int X; void main() { X = shift(X, 3); }")


class TestGlobalsInjection:
    def test_set_declared_global(self):
        res, _ = run(
            "parallel int W; void main() { W = W + 1; }",
            globals={"W": np.full((4, 4), 10, dtype=np.int64)},
        )
        assert (res.globals["W"] == 11).all()

    def test_unknown_global_rejected(self):
        with pytest.raises(PPCRuntimeError, match="no global"):
            run("void main() { }", globals={"Z": 1})

    def test_wrong_shape_rejected(self):
        with pytest.raises(PPCRuntimeError, match="does not fit machine"):
            run(
                "parallel int W; void main() { }",
                globals={"W": np.zeros((3, 3), dtype=np.int64)},
            )

    def test_scalar_global(self):
        res, _ = run("int d; int f() { return d * 2; }", entry="f",
                     globals={"d": 21})
        assert res.value == 42

    def test_counters_reported(self):
        res, _ = run(
            "parallel int X; void main() { X = broadcast(X, SOUTH, ROW == 0); }"
        )
        assert res.counters["broadcasts"] == 1
