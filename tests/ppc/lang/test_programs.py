"""The paper's embedded PPC sources against the native implementation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import PPAConfig, PPAMachine, minimum_cost_path, normalize_weights
from repro.ppa.directions import Direction
from repro.ppc.lang import compile_ppc, programs
from repro.ppc.reductions import ppa_min, ppa_selected_min
from repro.workloads import WeightSpec, gnp_digraph

INF16 = (1 << 16) - 1


def fresh(n=8):
    return PPAMachine(PPAConfig(n=n, word_bits=16))


class TestMinListing:
    """The K&R min() source vs the native bit-serial routine."""

    @given(
        st.lists(
            st.lists(st.integers(0, 60000), min_size=6, max_size=6),
            min_size=6,
            max_size=6,
        )
    )
    @settings(max_examples=20)
    def test_min_source_equals_native(self, rows):
        vals = np.array(rows, dtype=np.int64)
        prog = compile_ppc(
            programs.MIN_CODE
            + "parallel int V; parallel int OUT;"
            "void main() { OUT = min(V, WEST, COL == N - 1); }"
        )
        m = fresh(6)
        out = prog.run(m, "main", globals={"V": vals}).globals["OUT"]
        native = ppa_min(fresh(6), vals, Direction.WEST,
                         np.arange(6)[None, :] == 5)
        assert np.array_equal(out, native)

    def test_selected_min_source_equals_native(self):
        vals = np.array([[7, 3, 3, 9, 3, 8]] * 6, dtype=np.int64)
        sel = vals == 3
        prog = compile_ppc(
            programs.SELECTED_MIN_CODE
            + "parallel int V; parallel logical S; parallel int OUT;"
            "void main() { OUT = selected_min(COL, WEST, COL == N - 1, S); }"
        )
        m = fresh(6)
        out = prog.run(m, "main", globals={"V": vals, "S": sel}).globals["OUT"]
        native = ppa_selected_min(
            fresh(6), fresh(6).col_index, Direction.WEST,
            np.arange(6)[None, :] == 5, sel
        )
        assert np.array_equal(out, native)


class TestMCPListing:
    @pytest.mark.parametrize("src", [programs.MCP_CODE, programs.MCP_WITH_LIBRARY_MIN])
    @pytest.mark.parametrize("seed,p", [(0, 0.25), (3, 0.4), (9, 0.7)])
    def test_matches_native(self, src, seed, p):
        n = 8
        W = gnp_digraph(n, p, seed=seed, weights=WeightSpec(1, 9), inf_value=INF16)
        d = seed % n
        native = minimum_cost_path(fresh(n), W, d)
        m = fresh(n)
        run = compile_ppc(src).run(
            m, "minimum_cost_path",
            globals={"W": normalize_weights(W, m), "d": d},
        )
        assert np.array_equal(run.globals["SOW"][d], native.sow)
        assert np.array_equal(run.globals["PTN"][d], native.ptn)

    def test_same_reduction_count_as_native(self):
        """The interpreted listing issues the same wired-OR sequence."""
        n = 8
        W = gnp_digraph(n, 0.3, seed=1, weights=WeightSpec(1, 9), inf_value=INF16)
        native_m = fresh(n)
        native = minimum_cost_path(native_m, W, 0)
        m = fresh(n)
        run = compile_ppc(programs.MCP_CODE).run(
            m, "minimum_cost_path",
            globals={"W": normalize_weights(W, m), "d": 0},
        )
        assert run.counters["reductions"] == native.counters["reductions"]
        assert run.counters["global_ors"] == native.counters["global_ors"]

    def test_program_reusable_across_machines(self):
        prog = compile_ppc(programs.MCP_CODE)
        for n in (4, 8):
            W = gnp_digraph(n, 0.5, seed=2, weights=WeightSpec(1, 5),
                            inf_value=INF16)
            m = fresh(n)
            run = prog.run(
                m, "minimum_cost_path",
                globals={"W": normalize_weights(W, m), "d": 1},
            )
            native = minimum_cost_path(fresh(n), W, 1)
            assert np.array_equal(run.globals["SOW"][1], native.sow)


class TestDistanceTransformListing:
    """The PPC distance-transform program vs the native apps kernel."""

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_native(self, seed):
        from repro.apps import distance_transform, random_blobs

        img = random_blobs(10, blobs=2, radius=2, seed=seed)
        prog = compile_ppc(programs.DISTANCE_TRANSFORM_CODE)
        m = fresh(10)
        run = prog.run(m, "distance_transform", globals={"IMG": img})
        native = distance_transform(fresh(10), img)
        assert np.array_equal(run.globals["DIST"], native.distances)

    def test_empty_image_all_maxint(self):
        prog = compile_ppc(programs.DISTANCE_TRANSFORM_CODE)
        m = fresh(6)
        run = prog.run(
            m,
            "distance_transform",
            globals={"IMG": np.zeros((6, 6), dtype=bool)},
        )
        assert (run.globals["DIST"] == m.maxint).all()

    def test_no_torus_leak(self):
        """Feature on the west edge: the east edge must be n-1 away."""
        img = np.zeros((8, 8), dtype=bool)
        img[:, 0] = True
        prog = compile_ppc(programs.DISTANCE_TRANSFORM_CODE)
        run = prog.run(fresh(8), "distance_transform", globals={"IMG": img})
        assert (run.globals["DIST"][:, 7] == 7).all()
