"""Parser tests: declarations, functions (ANSI + K&R), statements, exprs."""

import pytest

from repro.errors import PPCSyntaxError
from repro.ppc.lang import ast_nodes as ast
from repro.ppc.lang.parser import parse


class TestGlobals:
    def test_parallel_int_global(self):
        prog = parse("parallel int W;")
        decl = prog.globals[0]
        assert decl.type == ast.TypeSpec("int", True)
        assert decl.declarators[0].name == "W"

    def test_scalar_with_init(self):
        prog = parse("int d = 3;")
        d = prog.globals[0].declarators[0]
        assert isinstance(d.init, ast.IntLiteral) and d.init.value == 3

    def test_multi_declarators(self):
        prog = parse("parallel logical a, b = 1, c;")
        names = [d.name for d in prog.globals[0].declarators]
        assert names == ["a", "b", "c"]

    def test_void_variable_rejected(self):
        with pytest.raises(PPCSyntaxError, match="void"):
            parse("void x;")

    def test_parallel_void_rejected(self):
        with pytest.raises(PPCSyntaxError, match="parallel void"):
            parse("parallel void f() { }")


class TestFunctions:
    def test_ansi_params(self):
        prog = parse("int f(parallel int x, int y) { return y; }")
        fn = prog.function("f")
        assert fn.params[0].type.parallel
        assert not fn.params[1].type.parallel

    def test_empty_params(self):
        fn = parse("void main() { }").function("main")
        assert fn.params == ()

    def test_knr_params(self):
        src = """
        parallel int min(src, orientation, L)
            parallel int src;
            enum {NORTH, EAST, SOUTH, WEST} orientation;
            parallel logical L;
        { return src; }
        """
        fn = parse(src).function("min")
        assert [p.name for p in fn.params] == ["src", "orientation", "L"]
        assert fn.params[0].type == ast.TypeSpec("int", True)
        assert fn.params[1].type == ast.TypeSpec("int", False)  # enum -> int
        assert fn.params[2].type == ast.TypeSpec("logical", True)

    def test_knr_missing_declaration_rejected(self):
        with pytest.raises(PPCSyntaxError, match="lacks a declaration"):
            parse("int f(a, b) int a; { return a; }")

    def test_knr_extra_declaration_rejected(self):
        with pytest.raises(PPCSyntaxError, match="non-parameters"):
            parse("int f(a) int a; int b; { return a; }")

    def test_knr_grouped_declaration(self):
        fn = parse("int f(a, b) int a, b; { return a; }").function("f")
        assert len(fn.params) == 2


class TestStatements:
    def get_stmt(self, body: str):
        prog = parse("parallel int X; parallel logical F; int j;"
                     f"void main() {{ {body} }}")
        return prog.function("main").body.statements[0]

    def test_assignment(self):
        stmt = self.get_stmt("X = 5;")
        assert isinstance(stmt, ast.Assign) and stmt.target == "X"

    def test_where_elsewhere(self):
        stmt = self.get_stmt("where (F) X = 1; elsewhere X = 2;")
        assert isinstance(stmt, ast.Where)
        assert stmt.otherwise is not None

    def test_where_without_elsewhere(self):
        stmt = self.get_stmt("where (F) { X = 1; }")
        assert isinstance(stmt, ast.Where) and stmt.otherwise is None

    def test_if_else(self):
        stmt = self.get_stmt("if (j > 0) j = 1; else j = 2;")
        assert isinstance(stmt, ast.If) and stmt.otherwise is not None

    def test_do_while(self):
        stmt = self.get_stmt("do { j = j + 1; } while (j < 3);")
        assert isinstance(stmt, ast.DoWhile)

    def test_while(self):
        stmt = self.get_stmt("while (j < 3) j = j + 1;")
        assert isinstance(stmt, ast.While)

    def test_for(self):
        stmt = self.get_stmt("for (j = 0; j < 4; j = j + 1) X = j;")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.Assign)

    def test_for_empty_clauses(self):
        stmt = self.get_stmt("for (;;) j = 1;")
        assert stmt.init is None and stmt.condition is None and stmt.step is None

    def test_return_value(self):
        prog = parse("int f() { return 3; }")
        ret = prog.function("f").body.statements[0]
        assert isinstance(ret, ast.Return) and ret.value.value == 3

    def test_return_void(self):
        prog = parse("void f() { return; }")
        assert prog.function("f").body.statements[0].value is None

    def test_local_declaration(self):
        stmt = self.get_stmt("parallel logical enable = 1;")
        assert isinstance(stmt, ast.VarDecl)

    def test_expression_statement(self):
        stmt = self.get_stmt("f();")
        assert isinstance(stmt, ast.ExprStatement)
        assert isinstance(stmt.expr, ast.Call)

    def test_unterminated_block(self):
        with pytest.raises(PPCSyntaxError, match="unterminated block"):
            parse("void f() { X = 1;")

    def test_missing_semicolon(self):
        with pytest.raises(PPCSyntaxError, match="expected ';'"):
            parse("void f() { int j j = 1; }")


class TestExpressions:
    def expr(self, text: str):
        prog = parse(f"int j; void main() {{ j = {text}; }}")
        return prog.function("main").body.statements[0].value

    def test_precedence_mul_over_add(self):
        e = self.expr("1 + 2 * 3")
        assert e.op == "+" and e.right.op == "*"

    def test_precedence_cmp_over_and(self):
        e = self.expr("1 < 2 && 3 == 3")
        assert e.op == "&&"
        assert e.left.op == "<" and e.right.op == "=="

    def test_parens_override(self):
        e = self.expr("(1 + 2) * 3")
        assert e.op == "*" and e.left.op == "+"

    def test_left_associativity(self):
        e = self.expr("8 - 4 - 2")
        assert e.op == "-" and e.left.op == "-"

    def test_unary_chain(self):
        e = self.expr("!!j")
        assert e.op == "!" and e.operand.op == "!"

    def test_call_args(self):
        e = self.expr("f(1, 2 + 3, g())")
        assert isinstance(e, ast.Call) and len(e.args) == 3
        assert isinstance(e.args[2], ast.Call)

    def test_hex_literal(self):
        assert self.expr("0xFF").value == 255

    def test_dangling_expression_error(self):
        with pytest.raises(PPCSyntaxError, match="expected an expression"):
            parse("void f() { int j; j = 1 + ; }")
