"""Pretty-printer: round-trip and idempotence."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PPCError
from repro.ppc.lang import ast_nodes as ast
from repro.ppc.lang import compile_ppc, programs
from repro.ppc.lang.formatter import (
    format_expression,
    format_program,
    format_statement,
)
from repro.ppc.lang.parser import parse


def strip_lines(node):
    """Structural form of an AST node with source positions erased."""
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        fields = {}
        for f in dataclasses.fields(node):
            if f.name == "line":
                continue
            fields[f.name] = strip_lines(getattr(node, f.name))
        return (type(node).__name__, tuple(sorted(fields.items())))
    if isinstance(node, tuple):
        return tuple(strip_lines(x) for x in node)
    return node


SOURCES = {
    "globals": "parallel int W; int d = 3; parallel logical F;",
    "arith": "int f() { return (1 + 2) * 3 - -4; }",
    "where": (
        "parallel int X;"
        "void main() { where (ROW == 0) X = 1; elsewhere { X = 2; } }"
    ),
    "loops": (
        "int f() { int j; int a = 0;"
        "for (j = 0; j < 4; j = j + 1) a = a + j;"
        "while (a > 10) a = a - 1;"
        "do a = a + 1; while (a < 5); return a; }"
    ),
    "calls": (
        "parallel int X;"
        "void main() { X = broadcast(X, SOUTH, (ROW == 0) && bit(X, 3)); }"
    ),
    "min_listing": programs.MIN_CODE,
    "mcp_listing": programs.MCP_CODE,
}


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(SOURCES))
    def test_reparse_equals_original(self, name):
        src = SOURCES[name]
        original = parse(src)
        rendered = format_program(original)
        assert strip_lines(parse(rendered)) == strip_lines(original)

    @pytest.mark.parametrize("name", sorted(SOURCES))
    def test_idempotent(self, name):
        once = format_program(parse(SOURCES[name]))
        assert format_program(parse(once)) == once

    def test_knr_normalised_to_ansi(self):
        rendered = format_program(parse(programs.MIN_CODE))
        assert "parallel int min(parallel int src, int orientation" in rendered

    def test_formatted_listing_still_runs(self):
        from repro import PPAConfig, PPAMachine, minimum_cost_path, normalize_weights
        from repro.workloads import gnp_digraph

        rendered = format_program(parse(programs.MCP_CODE))
        W = gnp_digraph(6, 0.4, seed=2, inf_value=(1 << 16) - 1)
        m = PPAMachine(PPAConfig(n=6, word_bits=16))
        run = compile_ppc(rendered).run(
            m, "minimum_cost_path",
            globals={"W": normalize_weights(W, m), "d": 1},
        )
        native = minimum_cost_path(PPAMachine(PPAConfig(n=6)), W, 1)
        assert np.array_equal(run.globals["SOW"][1], native.sow)


class TestPieces:
    def test_expression_parens_are_explicit(self):
        expr = parse("int f() { return 1 + 2 * 3; }").function("f")
        text = format_expression(expr.body.statements[0].value)
        assert text == "1 + (2 * 3)"

    def test_statement_indent(self):
        prog = parse("parallel int X; void f() { where (X == 0) X = 1; }")
        lines = format_statement(prog.function("f").body.statements[0], 1)
        assert lines[0].startswith("    where")
        assert lines[1].strip() == "X = 1;"

    def test_unknown_node_rejected(self):
        with pytest.raises(PPCError, match="cannot format"):
            format_expression(object())


# Random expression generator: format/parse round-trip as a property.
_idents = st.sampled_from(["a", "b", "c"])
_exprs = st.recursive(
    st.one_of(
        st.integers(0, 1000).map(ast.IntLiteral),
        _idents.map(ast.Identifier),
    ),
    lambda children: st.one_of(
        st.tuples(st.sampled_from(["!", "~", "-"]), children).map(
            lambda t: ast.Unary(t[0], t[1])
        ),
        st.tuples(
            st.sampled_from(["+", "-", "*", "/", "%", "<<", ">>",
                             "<", "<=", ">", ">=", "==", "!=",
                             "&", "|", "^", "&&", "||"]),
            children,
            children,
        ).map(lambda t: ast.Binary(t[0], t[1], t[2])),
    ),
    max_leaves=12,
)


@given(_exprs)
@settings(max_examples=60)
def test_property_expression_roundtrip(expr):
    src = f"int a, b, c; int f() {{ return {format_expression(expr)}; }}"
    reparsed = parse(src).function("f").body.statements[0].value
    assert strip_lines(reparsed) == strip_lines(expr)
