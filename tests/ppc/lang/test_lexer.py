"""Lexer tests."""

import pytest

from repro.errors import PPCSyntaxError
from repro.ppc.lang.lexer import tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src) if t.kind != "eof"]


class TestBasics:
    def test_empty_source(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind == "eof"

    def test_keywords_vs_idents(self):
        assert kinds("parallel int foo") == [
            ("keyword", "parallel"),
            ("keyword", "int"),
            ("ident", "foo"),
        ]

    def test_ident_with_underscores_digits(self):
        assert kinds("MIN_SOW2") == [("ident", "MIN_SOW2")]

    def test_keyword_prefix_is_ident(self):
        assert kinds("interior") == [("ident", "interior")]

    def test_numbers(self):
        assert kinds("0 42 0x1F") == [
            ("number", "0"),
            ("number", "42"),
            ("number", "0x1F"),
        ]

    def test_malformed_number(self):
        with pytest.raises(PPCSyntaxError, match="malformed number"):
            tokenize("12abc")

    def test_malformed_hex(self):
        with pytest.raises(PPCSyntaxError, match="hexadecimal"):
            tokenize("0x")


class TestSymbols:
    def test_two_char_ops_win(self):
        assert kinds("a<=b") == [("ident", "a"), ("symbol", "<="), ("ident", "b")]
        assert kinds("a==b!=c") == [
            ("ident", "a"),
            ("symbol", "=="),
            ("ident", "b"),
            ("symbol", "!="),
            ("ident", "c"),
        ]

    def test_logical_ops(self):
        assert [t for _, t in kinds("a&&b||!c")] == ["a", "&&", "b", "||", "!", "c"]

    def test_shifts(self):
        assert [t for _, t in kinds("a<<2>>1")] == ["a", "<<", "2", ">>", "1"]

    def test_unexpected_char(self):
        with pytest.raises(PPCSyntaxError, match="unexpected character"):
            tokenize("a $ b")


class TestCommentsAndPositions:
    def test_line_comment(self):
        assert kinds("a // comment\n b") == [("ident", "a"), ("ident", "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [("ident", "a"), ("ident", "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(PPCSyntaxError, match="unterminated"):
            tokenize("a /* oops")

    def test_line_numbers(self):
        toks = tokenize("a\n  b")
        assert toks[0].line == 1
        assert toks[1].line == 2 and toks[1].column == 3

    def test_line_numbers_after_block_comment(self):
        toks = tokenize("/* one\ntwo */ x")
        assert toks[0].line == 2
