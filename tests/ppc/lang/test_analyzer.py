"""Static analyzer: the mistakes a PPC compiler must reject."""

import pytest

from repro.errors import PPCTypeError
from repro.ppc.lang.analyzer import analyze
from repro.ppc.lang.parser import parse


def check(src: str):
    return analyze(parse(src))


class TestNames:
    def test_undeclared_identifier(self):
        with pytest.raises(PPCTypeError, match="undeclared identifier 'y'"):
            check("void f() { int x; x = y; }")

    def test_assignment_to_undeclared(self):
        with pytest.raises(PPCTypeError, match="undeclared 'x'"):
            check("void f() { x = 1; }")

    def test_duplicate_in_same_scope(self):
        with pytest.raises(PPCTypeError, match="redeclaration"):
            check("void f() { int x; int x; }")

    def test_shadowing_in_inner_scope_ok(self):
        check("int x; void f() { int x; x = 1; }")

    def test_duplicate_function(self):
        with pytest.raises(PPCTypeError, match="duplicate function"):
            check("void f() { } void f() { }")

    def test_duplicate_global(self):
        with pytest.raises(PPCTypeError, match="redeclaration"):
            check("int x; int x;")

    def test_assignment_to_constant(self):
        with pytest.raises(PPCTypeError, match="predefined constant"):
            check("void f() { N = 3; }")

    def test_block_scope_expires(self):
        with pytest.raises(PPCTypeError, match="undeclared"):
            check("void f() { { int x; } x = 1; }")

    def test_params_visible(self):
        check("int f(int a) { return a; }")


class TestKinds:
    def test_scalar_from_parallel_rejected(self):
        with pytest.raises(PPCTypeError, match="cannot assign a parallel"):
            check("parallel int X; void f() { int j; j = X; }")

    def test_scalar_init_from_parallel_rejected(self):
        with pytest.raises(PPCTypeError, match="cannot initialise scalar"):
            check("parallel int X; void f() { int j = X + 1; }")

    def test_parallel_from_scalar_ok(self):
        check("parallel int X; void f() { X = 3; }")

    def test_where_needs_parallel(self):
        with pytest.raises(PPCTypeError, match="'where' needs a parallel"):
            check("void f() { int j; where (j > 0) j = 1; }")

    def test_if_rejects_parallel(self):
        with pytest.raises(PPCTypeError, match="controller cannot branch"):
            check("parallel int X; void f() { if (X > 0) X = 1; }")

    def test_while_rejects_parallel(self):
        with pytest.raises(PPCTypeError, match="controller cannot branch"):
            check("parallel int X; void f() { while (X > 0) X = 1; }")

    def test_do_while_rejects_parallel(self):
        with pytest.raises(PPCTypeError, match="controller cannot branch"):
            check("parallel int X; void f() { do X = 1; while (X > 0); }")

    def test_for_rejects_parallel_condition(self):
        with pytest.raises(PPCTypeError, match="controller cannot branch"):
            check("parallel int X; void f() { for (; X > 0;) X = 1; }")

    def test_any_makes_condition_scalar(self):
        check("parallel int X; void f() { while (any(X > 0)) X = 0; }")

    def test_constants_have_kinds(self):
        check("parallel int X; void f() { where (ROW == COL) X = MAXINT; }")


class TestCalls:
    def test_unknown_function(self):
        with pytest.raises(PPCTypeError, match="unknown function 'nope'"):
            check("void f() { nope(); }")

    def test_user_function_arity(self):
        with pytest.raises(PPCTypeError, match="takes 2 argument"):
            check("int g(int a, int b) { return a; } void f() { g(1); }")

    def test_builtin_arity(self):
        with pytest.raises(PPCTypeError, match="broadcast\\(\\) takes 3"):
            check("parallel int X; void f() { X = broadcast(X, SOUTH); }")

    def test_parallel_arg_to_scalar_param(self):
        with pytest.raises(PPCTypeError, match="is scalar but a parallel"):
            check(
                "parallel int X; int g(int a) { return a; }"
                "void f() { int j; j = g(X); }"
            )

    def test_user_function_shadows_builtin(self):
        check(
            "parallel int min(parallel int a) { return a; }"
            "parallel int X; void f() { X = min(X); }"
        )

    def test_builtin_result_kinds(self):
        # any() is scalar, broadcast() is parallel
        check("parallel int X; int j; void f() { j = any(X > 0); }")
        with pytest.raises(PPCTypeError):
            check(
                "parallel int X; int j;"
                "void f() { j = broadcast(X, SOUTH, ROW == 0); }"
            )


class TestReturns:
    def test_void_returning_value(self):
        with pytest.raises(PPCTypeError, match="returns a value"):
            check("void f() { return 3; }")

    def test_nonvoid_returning_nothing(self):
        with pytest.raises(PPCTypeError, match="returns nothing"):
            check("int f() { return; }")

    def test_scalar_fn_returning_parallel(self):
        with pytest.raises(PPCTypeError, match="declared scalar"):
            check("parallel int X; int f() { return X; }")

    def test_parallel_fn_returning_parallel_ok(self):
        check("parallel int X; parallel int f() { return X + 1; }")
