"""Differential fuzzing: interpreter vs compiler+executor.

The interpreter (tree walker over numpy) and the compiler (codegen to the
ISA, run by the instruction executor) are independent implementations of
PPC semantics. Hypothesis builds random programs from the shared AST
grammar, renders them through the formatter (exercising it too), and
requires every global to come out identical on both paths.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ppa import PPAConfig, PPAMachine
from repro.ppc.lang import ast_nodes as ast
from repro.ppc.lang import compile_ppc
from repro.ppc.lang.codegen import compile_to_asm
from repro.ppc.lang.formatter import format_program

N = 4
H = 16

_GLOBALS = ("G0", "G1", "G2")
_DIRS = ("NORTH", "EAST", "SOUTH", "WEST")

# -- expression grammar -----------------------------------------------------
#
# Only word-safe operators: / and % are excluded (zero divisors), shifts use
# small constant amounts. Every generated expression is valid in both
# implementations by construction.

_leaf = st.one_of(
    st.integers(0, 200).map(ast.IntLiteral),
    st.sampled_from(_GLOBALS + ("ROW", "COL")).map(ast.Identifier),
)


def _binary(children):
    arith = st.tuples(
        st.sampled_from(["+", "-", "*", "&", "|", "^"]), children, children
    ).map(lambda t: ast.Binary(t[0], t[1], t[2]))
    cmp_ = st.tuples(
        st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
        children,
        children,
    ).map(lambda t: ast.Binary(t[0], t[1], t[2]))
    logic = st.tuples(
        st.sampled_from(["&&", "||"]), children, children
    ).map(lambda t: ast.Binary(t[0], t[1], t[2]))
    shift_const = st.tuples(
        st.sampled_from(["<<", ">>"]), children, st.integers(0, 3)
    ).map(lambda t: ast.Binary(t[0], t[1], ast.IntLiteral(t[2])))
    unary = st.tuples(st.sampled_from(["!", "~"]), children).map(
        lambda t: ast.Unary(t[0], t[1])
    )
    comm = st.one_of(
        st.tuples(children, st.sampled_from(_DIRS)).map(
            lambda t: ast.Call(
                "shift", (t[0], ast.Identifier(t[1]))
            )
        ),
        st.tuples(children, st.sampled_from(_DIRS), st.integers(0, N - 1)).map(
            lambda t: ast.Call(
                "broadcast",
                (
                    t[0],
                    ast.Identifier(t[1]),
                    ast.Binary(
                        "==",
                        ast.Identifier("COL" if t[1] in ("EAST", "WEST") else "ROW"),
                        ast.IntLiteral(t[2]),
                    ),
                ),
            )
        ),
    )
    return st.one_of(arith, cmp_, logic, shift_const, unary, comm)


_exprs = st.recursive(_leaf, _binary, max_leaves=8)


@st.composite
def _statement(draw, depth=0):
    kind = draw(st.sampled_from(
        ["assign", "assign", "assign", "where"] if depth < 2 else ["assign"]
    ))
    if kind == "assign":
        target = draw(st.sampled_from(_GLOBALS))
        return ast.Assign(target, draw(_exprs))
    cond = ast.Binary(
        draw(st.sampled_from(["==", "<", ">="])),
        ast.Identifier(draw(st.sampled_from(("ROW", "COL")))),
        ast.IntLiteral(draw(st.integers(0, N - 1))),
    )
    then = ast.Block(tuple(
        draw(_statement(depth=depth + 1))
        for _ in range(draw(st.integers(1, 2)))
    ))
    otherwise = None
    if draw(st.booleans()):
        otherwise = ast.Block((draw(_statement(depth=depth + 1)),))
    return ast.Where(cond, then, otherwise)


@st.composite
def _program(draw):
    body = tuple(draw(_statement()) for _ in range(draw(st.integers(1, 5))))
    globals_ = tuple(
        ast.VarDecl(ast.TypeSpec("int", True), (ast.Declarator(g),))
        for g in _GLOBALS
    )
    fn = ast.FunctionDef(
        "main", ast.TypeSpec("void"), (), ast.Block(body)
    )
    return ast.Program(globals_, (fn,))


def _inputs(seed: int) -> dict:
    rng = np.random.default_rng(seed)
    return {g: rng.integers(0, 1000, size=(N, N)) for g in _GLOBALS}


@given(prog=_program(), seed=st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_interpreter_equals_compiled(prog, seed):
    source = format_program(prog)
    inputs = _inputs(seed)

    interp = compile_ppc(source).run(
        PPAMachine(PPAConfig(n=N, word_bits=H)), "main",
        globals={k: v.copy() for k, v in inputs.items()},
    )
    compiled = compile_to_asm(source, N, H, entry="main").run(
        PPAMachine(PPAConfig(n=N, word_bits=H)),
        globals={k: v.copy() for k, v in inputs.items()},
    )
    for g in _GLOBALS:
        assert np.array_equal(interp.globals[g], compiled.globals[g]), (
            f"{g} diverged for program:\n{source}"
        )


@given(prog=_program(), seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_comm_counter_parity(prog, seed):
    """Both paths issue the same bus transactions for the same source."""
    source = format_program(prog)
    inputs = _inputs(seed)
    m1 = PPAMachine(PPAConfig(n=N, word_bits=H))
    interp = compile_ppc(source).run(
        m1, "main", globals={k: v.copy() for k, v in inputs.items()}
    )
    m2 = PPAMachine(PPAConfig(n=N, word_bits=H))
    compiled = compile_to_asm(source, N, H, entry="main").run(
        m2, globals={k: v.copy() for k, v in inputs.items()}
    )
    for key in ("broadcasts", "shifts", "reductions", "global_ors"):
        assert interp.counters[key] == compiled.counters[key], key
