"""Embedded PPC DSL: parallel variables, masking, primitives, accounting."""

import numpy as np
import pytest

from repro.errors import VariableError
from repro.ppa import Direction, PPAConfig, PPAMachine
from repro.ppc.dsl import ParallelInt, ParallelLogical, PPCEnvironment


@pytest.fixture
def env():
    return PPCEnvironment(PPAMachine(PPAConfig(n=4, word_bits=16)))


class TestDeclarations:
    def test_parallel_int_scalar_init(self, env):
        a = env.parallel_int(init=7)
        assert (a.value == 7).all()
        assert a.value.dtype == np.int64

    def test_parallel_int_grid_init(self, env):
        grid = np.arange(16).reshape(4, 4)
        assert np.array_equal(env.parallel_int(init=grid).value, grid)

    def test_parallel_logical(self, env):
        f = env.parallel_logical(init=True)
        assert f.value.all() and f.value.dtype == np.bool_

    def test_named_registration_shares_storage(self, env):
        a = env.parallel_int("A", init=1)
        a.assign(5)
        assert (env.machine.memory.read("A") == 5).all()

    def test_duplicate_name_rejected(self, env):
        env.parallel_int("A")
        with pytest.raises(VariableError):
            env.parallel_logical("A")

    def test_value_is_copy(self, env):
        a = env.parallel_int(init=1)
        a.value[0, 0] = 99
        assert a.value[0, 0] == 1


class TestArithmetic:
    def test_add_sub_mul(self, env):
        a = env.parallel_int(init=6)
        b = env.parallel_int(init=2)
        assert ((a + b).value == 8).all()
        assert ((a - b).value == 4).all()
        assert ((a * b).value == 12).all()
        assert ((a // b).value == 3).all()
        assert ((a % b).value == 0).all()

    def test_scalar_operands(self, env):
        a = env.parallel_int(init=5)
        assert ((a + 1).value == 6).all()
        assert ((1 + a).value == 6).all()
        assert ((10 - a).value == 5).all()
        assert ((2 * a).value == 10).all()

    def test_bitwise(self, env):
        a = env.parallel_int(init=0b1100)
        assert ((a & 0b1010).value == 0b1000).all()
        assert ((a | 0b0011).value == 0b1111).all()
        assert ((a ^ 0b1111).value == 0b0011).all()
        assert ((a << 1).value == 0b11000).all()
        assert ((a >> 2).value == 0b11).all()

    def test_sat_add(self, env):
        a = env.parallel_int(init=env.MAXINT)
        assert (a.sat_add(100).value == env.MAXINT).all()

    def test_bit(self, env):
        a = env.parallel_int(init=0b10)
        assert a.bit(1).value.all()
        assert not a.bit(0).value.any()

    def test_each_op_counts_one_alu(self, env):
        a = env.parallel_int(init=1)
        before = env.machine.counters.snapshot()
        _ = a + a
        _ = a * 2
        _ = a == 1
        assert env.machine.counters.diff(before)["alu_ops"] == 3


class TestComparisons:
    def test_comparison_returns_logical(self, env):
        a = env.parallel_int(init=env.machine.row_index)
        got = a < 2
        assert isinstance(got, ParallelLogical)
        assert got.value[:2].all() and not got.value[2:].any()

    def test_eq_ne(self, env):
        a = env.parallel_int(init=env.machine.col_index)
        assert (a == 1).value[:, 1].all()
        assert (a != 1).value[:, 0].all()

    def test_logical_ops(self, env):
        t = env.parallel_logical(init=True)
        f = env.parallel_logical(init=False)
        assert (t & f) .value.any() == False  # noqa: E712
        assert (t | f).value.all()
        assert (t ^ t).value.any() == False  # noqa: E712
        assert (~f).value.all()


class TestWhere:
    def test_assign_under_where(self, env):
        a = env.parallel_int(init=0)
        with env.where(env.ROW == 1):
            a.assign(9)
        assert (a.value[1] == 9).all() and a.value.sum() == 36

    def test_elsewhere(self, env):
        a = env.parallel_int(init=0)
        cond = env.ROW == 1
        with env.where(cond):
            a.assign(1)
        with env.elsewhere(cond):
            a.assign(2)
        assert (a.value[1] == 1).all()
        assert (a.value[0] == 2).all()

    def test_any(self, env):
        f = env.parallel_logical(init=False)
        assert env.any(f) is False
        with env.where((env.ROW == 0) & (env.COL == 0)):
            f.assign(True)
        assert env.any(f) is True


class TestCommunication:
    def test_broadcast(self, env):
        a = env.parallel_int(init=env.machine.row_index * 4 + env.machine.col_index)
        out = env.broadcast(a, Direction.SOUTH, env.ROW == 0)
        assert np.array_equal(out.value, np.tile(np.arange(4), (4, 1)))

    def test_broadcast_logical_payload(self, env):
        f = env.parallel_logical(init=env.machine.row_index == 2)
        out = env.broadcast(f, Direction.SOUTH, env.ROW == 2)
        assert isinstance(out, ParallelLogical)
        assert out.value.all()

    def test_shift(self, env):
        a = env.parallel_int(init=env.machine.col_index)
        assert env.shift(a, Direction.EAST).value[0].tolist() == [3, 0, 1, 2]

    def test_min_and_selected_min(self, env):
        vals = np.array([[7, 7, 1, 7]] * 4)
        a = env.parallel_int(init=vals)
        mn = env.min(a, Direction.WEST, env.COL == 3)
        assert (mn.value == 1).all()
        arg = env.selected_min(
            env.COL, Direction.WEST, env.COL == 3, mn == a
        )
        assert (arg.value == 2).all()

    def test_max(self, env):
        a = env.parallel_int(init=np.array([[7, 9, 1, 0]] * 4))
        assert (env.max(a, Direction.WEST, env.COL == 3).value == 9).all()

    def test_row_col_constants(self, env):
        assert np.array_equal(env.ROW.value, env.machine.row_index)
        assert np.array_equal(env.COL.value, env.machine.col_index)
        assert env.MAXINT == env.machine.maxint
