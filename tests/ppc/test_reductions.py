"""The paper's min()/selected_min() routines."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ppa import Direction, PPAConfig, PPAMachine
from repro.ppc.reductions import (
    ppa_max,
    ppa_min,
    ppa_selected_min,
    word_parallel_min,
)


def machine(n=4, h=8):
    return PPAMachine(PPAConfig(n=n, word_bits=h))


class TestPpaMin:
    def test_row_min_broadcast_to_all(self):
        m = machine()
        vals = np.array(
            [[9, 3, 7, 5], [1, 1, 1, 1], [200, 100, 150, 255], [0, 9, 9, 9]]
        )
        out = ppa_min(m, vals, Direction.WEST, m.col_index == 3)
        want = np.tile(vals.min(axis=1, keepdims=True), (1, 4))
        assert np.array_equal(out, want)

    def test_column_min(self):
        m = machine()
        vals = (m.row_index * 7 + m.col_index * 3) % 13
        out = ppa_min(m, vals, Direction.SOUTH, m.row_index == 0)
        want = np.tile(vals.min(axis=0, keepdims=True), (4, 1))
        assert np.array_equal(out, want)

    def test_multi_cluster(self):
        m = machine()
        vals = np.array([[5, 2, 8, 1]] * 4)
        L = (m.col_index == 0) | (m.col_index == 2)
        out = ppa_min(m, vals, Direction.EAST, L)
        # clusters {0,1} -> 2 and {2,3} -> 1
        assert out[0].tolist() == [2, 2, 1, 1]

    def test_cost_linear_in_h(self):
        for h in (8, 16):
            m = machine(h=h)
            before = m.counters.snapshot()
            ppa_min(m, m.new_parallel(1), Direction.WEST, m.col_index == 3)
            d = m.counters.diff(before)
            assert d["reductions"] == h  # one wired-OR per bit
            assert d["broadcasts"] == 2  # deliver + fan-out

    def test_head_surviving_cluster(self):
        """Regression: the cluster head itself holds the minimum."""
        m = machine()
        vals = np.array([[1, 9, 9, 9]] * 4)
        out = ppa_min(m, vals, Direction.EAST, m.col_index == 0)
        assert (out == 1).all()

    @given(
        st.lists(
            st.lists(st.integers(0, 255), min_size=5, max_size=5),
            min_size=5,
            max_size=5,
        )
    )
    def test_equals_numpy_row_min(self, rows):
        m = machine(n=5, h=8)
        vals = np.array(rows)
        out = ppa_min(m, vals, Direction.WEST, m.col_index == 4)
        assert np.array_equal(out, np.tile(vals.min(1, keepdims=True), (1, 5)))


class TestSelectedMin:
    def test_recovers_smallest_argmin(self):
        m = machine()
        vals = np.array([[4, 2, 2, 9]] * 4)
        sel = vals == 2
        out = ppa_selected_min(m, m.col_index, Direction.WEST, m.col_index == 3, sel)
        assert (out == 1).all()  # smallest column among achievers

    def test_single_selected(self):
        m = machine()
        sel = m.col_index == 2
        out = ppa_selected_min(
            m, m.col_index, Direction.WEST, m.col_index == 3, sel
        )
        assert (out == 2).all()

    @given(
        st.lists(
            st.lists(st.integers(0, 255), min_size=4, max_size=4),
            min_size=4,
            max_size=4,
        )
    )
    def test_argmin_matches_numpy(self, rows):
        m = machine(h=8)
        vals = np.array(rows)
        rowmin = ppa_min(m, vals, Direction.WEST, m.col_index == 3)
        arg = ppa_selected_min(
            m, m.col_index, Direction.WEST, m.col_index == 3, rowmin == vals
        )
        assert np.array_equal(arg[:, 0], vals.argmin(axis=1))


class TestMaxAndWordParallel:
    def test_ppa_max(self):
        m = machine()
        vals = np.array([[9, 3, 7, 5]] * 4)
        out = ppa_max(m, vals, Direction.WEST, m.col_index == 3)
        assert (out == 9).all()

    @given(
        st.lists(
            st.lists(st.integers(0, 255), min_size=4, max_size=4),
            min_size=4,
            max_size=4,
        )
    )
    def test_word_parallel_equals_bit_serial(self, rows):
        vals = np.array(rows)
        m1, m2 = machine(h=8), machine(h=8)
        a = ppa_min(m1, vals, Direction.WEST, m1.col_index == 3)
        b = word_parallel_min(m2, vals, Direction.WEST, m2.col_index == 3)
        assert np.array_equal(a, b)

    def test_word_parallel_single_transaction(self):
        m = machine()
        before = m.counters.snapshot()
        word_parallel_min(m, m.new_parallel(3), Direction.WEST, m.col_index == 3)
        assert m.counters.diff(before)["bus_cycles"] == 1


class TestDirectionsSymmetry:
    @pytest.mark.parametrize(
        "direction,open_sel",
        [
            (Direction.EAST, "col0"),
            (Direction.WEST, "col_last"),
            (Direction.SOUTH, "row0"),
            (Direction.NORTH, "row_last"),
        ],
    )
    def test_full_line_min_any_orientation(self, direction, open_sel):
        m = machine()
        vals = (3 * m.row_index + 5 * m.col_index + 1) % 17
        L = {
            "col0": m.col_index == 0,
            "col_last": m.col_index == 3,
            "row0": m.row_index == 0,
            "row_last": m.row_index == 3,
        }[open_sel]
        out = ppa_min(m, vals, direction, L)
        axis = direction.axis
        # axis == 1 -> reduce along columns (per row); axis == 0 -> per col
        want = (
            np.tile(vals.min(1, keepdims=True), (1, 4))
            if axis == 1
            else np.tile(vals.min(0, keepdims=True), (4, 1))
        )
        assert np.array_equal(out, want)


class TestDigitSerial:
    from repro.ppc.reductions import ppa_min_digit_serial  # noqa

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 8, 16])
    def test_equals_bit_serial(self, k):
        from repro.ppc.reductions import ppa_min_digit_serial

        rng = np.random.default_rng(k)
        vals = rng.integers(0, 65535, size=(6, 6))
        m1 = PPAMachine(PPAConfig(n=6, word_bits=16))
        m2 = PPAMachine(PPAConfig(n=6, word_bits=16))
        L = m1.col_index == 5
        a = ppa_min(m1, vals, Direction.WEST, L)
        b = ppa_min_digit_serial(m2, vals, Direction.WEST, L, k)
        assert np.array_equal(a, b)

    def test_transaction_count(self):
        from repro.ppc.reductions import ppa_min_digit_serial

        for k, expected in [(1, 16), (2, 8), (4, 4), (16, 1)]:
            m = PPAMachine(PPAConfig(n=4, word_bits=16))
            ppa_min_digit_serial(
                m, m.new_parallel(3), Direction.WEST, m.col_index == 3, k
            )
            assert m.counters.reductions == expected, k

    def test_k1_matches_paper_bit_cost(self):
        from repro.ppc.reductions import ppa_min_digit_serial

        m = PPAMachine(PPAConfig(n=4, word_bits=8))
        ppa_min_digit_serial(
            m, m.new_parallel(3), Direction.WEST, m.col_index == 3, 1
        )
        # h single-lane transactions + 2 word broadcasts
        assert m.counters.bit_cycles == 8 + 2 * 8

    def test_bad_digit_bits(self):
        from repro.ppc.reductions import ppa_min_digit_serial

        m = PPAMachine(PPAConfig(n=4, word_bits=8))
        with pytest.raises(ValueError, match="digit_bits"):
            ppa_min_digit_serial(
                m, m.new_parallel(0), Direction.WEST, m.col_index == 3, 0
            )
        with pytest.raises(ValueError, match="digit_bits"):
            ppa_min_digit_serial(
                m, m.new_parallel(0), Direction.WEST, m.col_index == 3, 9
            )

    @given(
        st.lists(
            st.lists(st.integers(0, 255), min_size=4, max_size=4),
            min_size=4,
            max_size=4,
        ),
        st.integers(1, 8),
    )
    def test_property_equals_numpy(self, rows, k):
        from repro.ppc.reductions import ppa_min_digit_serial

        m = PPAMachine(PPAConfig(n=4, word_bits=8))
        vals = np.array(rows)
        out = ppa_min_digit_serial(m, vals, Direction.WEST, m.col_index == 3, k)
        assert np.array_equal(out, np.tile(vals.min(1, keepdims=True), (1, 4)))
