"""Bit-plane decomposition and bit-serial arithmetic."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import WordWidthError
from repro.ppc.bitplane import (
    bit_compose,
    bit_decompose,
    bit_serial_add,
    bit_serial_less,
    bit_serial_min,
)

words8 = st.integers(0, 255)
grids8 = st.lists(st.lists(words8, min_size=3, max_size=3), min_size=2, max_size=2)


class TestDecompose:
    def test_planes_lsb_first(self):
        planes = bit_decompose(np.array([[0b101]]), 4)
        assert planes.shape == (4, 1, 1)
        assert planes[:, 0, 0].tolist() == [True, False, True, False]

    def test_rejects_negative(self):
        with pytest.raises(WordWidthError):
            bit_decompose(np.array([-1]), 8)

    def test_rejects_overflow(self):
        with pytest.raises(WordWidthError):
            bit_decompose(np.array([256]), 8)

    def test_accepts_maximum(self):
        planes = bit_decompose(np.array([255]), 8)
        assert planes.all()

    @given(grids8)
    def test_roundtrip(self, grid):
        arr = np.array(grid)
        assert np.array_equal(bit_compose(bit_decompose(arr, 8)), arr)


class TestSerialAdd:
    def test_simple(self):
        out = bit_serial_add(np.array([3]), np.array([4]), 8)
        assert out.tolist() == [7]

    def test_saturates(self):
        out = bit_serial_add(np.array([200]), np.array([100]), 8)
        assert out.tolist() == [255]

    def test_strict_overflow_raises(self):
        with pytest.raises(WordWidthError):
            bit_serial_add(np.array([200]), np.array([100]), 8, saturate=False)

    @given(grids8, grids8)
    def test_matches_numpy_saturating(self, a, b):
        a, b = np.array(a), np.array(b)
        want = np.minimum(a + b, 255)
        assert np.array_equal(bit_serial_add(a, b, 8), want)


class TestSerialCompare:
    def test_less_basic(self):
        out = bit_serial_less(np.array([3, 5, 5]), np.array([5, 3, 5]), 8)
        assert out.tolist() == [True, False, False]

    @given(grids8, grids8)
    def test_matches_numpy_less(self, a, b):
        a, b = np.array(a), np.array(b)
        assert np.array_equal(bit_serial_less(a, b, 8), a < b)

    @given(grids8, grids8)
    def test_min_matches_numpy(self, a, b):
        a, b = np.array(a), np.array(b)
        assert np.array_equal(bit_serial_min(a, b, 8), np.minimum(a, b))

    @given(grids8)
    def test_less_is_irreflexive(self, a):
        a = np.array(a)
        assert not bit_serial_less(a, a, 8).any()
