"""Row sorting algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.sorting import extract_min_sort_rows, odd_even_sort_rows
from repro.errors import GraphError
from repro.ppa import PPAConfig, PPAMachine


def machine(n, h=16):
    return PPAMachine(PPAConfig(n=n, word_bits=h))


SORTERS = [odd_even_sort_rows, extract_min_sort_rows]


class TestBothSorters:
    @pytest.mark.parametrize("sorter", SORTERS)
    def test_random_rows(self, sorter, rng):
        vals = rng.integers(0, 1000, size=(8, 8))
        res = sorter(machine(8), vals)
        assert np.array_equal(res.values, np.sort(vals, axis=1))

    @pytest.mark.parametrize("sorter", SORTERS)
    def test_duplicates(self, sorter):
        vals = np.array([[5, 3, 5, 3], [7, 7, 7, 7], [0, 9, 0, 9],
                         [1, 2, 3, 4]])
        res = sorter(machine(4), vals)
        assert np.array_equal(res.values, np.sort(vals, axis=1))

    @pytest.mark.parametrize("sorter", SORTERS)
    def test_already_sorted(self, sorter):
        vals = np.tile(np.arange(6), (6, 1))
        res = sorter(machine(6), vals)
        assert np.array_equal(res.values, vals)

    @pytest.mark.parametrize("sorter", SORTERS)
    def test_reverse_sorted(self, sorter):
        vals = np.tile(np.arange(6)[::-1], (6, 1))
        res = sorter(machine(6), vals)
        assert np.array_equal(res.values, np.sort(vals, axis=1))

    @pytest.mark.parametrize("sorter", SORTERS)
    def test_single_column(self, sorter):
        vals = np.array([[3]])
        assert sorter(machine(1), vals).values.tolist() == [[3]]

    @pytest.mark.parametrize("sorter", SORTERS)
    def test_shape_mismatch(self, sorter):
        with pytest.raises(GraphError):
            sorter(machine(4), np.zeros((3, 3), dtype=np.int64))

    @pytest.mark.parametrize("sorter", SORTERS)
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15)
    def test_property_matches_numpy(self, sorter, seed):
        rng = np.random.default_rng(seed)
        vals = rng.integers(0, 255, size=(5, 5))
        res = sorter(machine(5, h=8), vals)
        assert np.array_equal(res.values, np.sort(vals, axis=1))


class TestCostShapes:
    def test_odd_even_independent_of_h(self):
        vals = np.arange(36).reshape(6, 6)[:, ::-1].copy()
        a = odd_even_sort_rows(machine(6, h=8), vals)
        b = odd_even_sort_rows(machine(6, h=32), vals)
        assert a.counters["bus_cycles"] == b.counters["bus_cycles"]

    def test_extract_min_linear_in_h(self):
        vals = np.arange(36).reshape(6, 6)[:, ::-1].copy()
        a = extract_min_sort_rows(machine(6, h=8), vals)
        b = extract_min_sort_rows(machine(6, h=16), vals)
        # 2h wired-ORs per round dominate
        assert b.counters["bus_cycles"] - a.counters["bus_cycles"] == \
            pytest.approx(6 * 2 * 8, abs=6)

    def test_extract_min_rejects_maxint_keys(self):
        m = machine(4, h=8)
        vals = np.full((4, 4), m.maxint, dtype=np.int64)
        with pytest.raises(GraphError, match="below MAXINT"):
            extract_min_sort_rows(m, vals)

    def test_rounds_equal_n(self):
        vals = np.zeros((5, 5), dtype=np.int64)
        assert odd_even_sort_rows(machine(5), vals).rounds == 5
        assert extract_min_sort_rows(machine(5), vals).rounds == 5
