"""Shared workload for the resilience suite.

One small G(n, p) digraph plus its fault-free serial reference result,
computed once per session — every executor test compares against the
same golden answer, which is exactly the acceptance bar: a non-FAILED
resilient run must be bit-identical to the fault-free run of the same
logical problem.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import minimum_cost_path
from repro.ppa import PPAConfig, PPAMachine
from repro.workloads import WeightSpec, gnp_digraph

INF16 = (1 << 16) - 1
M, N_PHYS, DEST = 6, 8, 2


def machine(n: int = N_PHYS) -> PPAMachine:
    return PPAMachine(PPAConfig(n=n, word_bits=16))


@pytest.fixture(scope="session")
def graph() -> np.ndarray:
    return gnp_digraph(M, 0.4, seed=3, weights=WeightSpec(1, 9),
                      inf_value=INF16)


@pytest.fixture(scope="session")
def reference(graph):
    """Fault-free serial MCP results, one per destination."""
    return {d: minimum_cost_path(machine(M), graph, d) for d in range(M)}
