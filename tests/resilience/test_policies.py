"""Policy dataclass validation."""

import pytest

from repro.errors import ConfigurationError
from repro.resilience import (
    CheckpointPolicy,
    RemapPolicy,
    ResilienceConfig,
    RetryPolicy,
)


class TestDefaults:
    def test_config_defaults(self):
        cfg = ResilienceConfig()
        assert cfg.detect_every == 1
        assert cfg.structural_probe and cfg.invariant_monitor
        assert cfg.initial_diagnosis
        assert cfg.retry.max_retries == 3 and cfg.retry.escalate
        assert cfg.checkpoint.every == 4 and cfg.checkpoint.verify
        assert cfg.remap.enabled and cfg.remap.max_spares is None
        assert cfg.remap.quarantine_suspects

    def test_policies_are_frozen(self):
        with pytest.raises(AttributeError):
            RetryPolicy().max_retries = 5


class TestValidation:
    def test_negative_retries(self):
        with pytest.raises(ConfigurationError, match="max_retries"):
            RetryPolicy(max_retries=-1)

    def test_zero_retries_is_legal(self):
        assert RetryPolicy(max_retries=0).max_retries == 0

    def test_checkpoint_cadence(self):
        with pytest.raises(ConfigurationError, match="cadence"):
            CheckpointPolicy(every=0)

    def test_checkpoint_keep(self):
        with pytest.raises(ConfigurationError, match="keep"):
            CheckpointPolicy(keep=0)

    def test_remap_spares(self):
        with pytest.raises(ConfigurationError, match="max_spares"):
            RemapPolicy(max_spares=-1)
        assert RemapPolicy(max_spares=0).max_spares == 0

    def test_detect_every(self):
        with pytest.raises(ConfigurationError, match="detect_every"):
            ResilienceConfig(detect_every=0)
