"""Policy dataclass validation."""

import pytest

from repro.errors import ConfigurationError
from repro.resilience import (
    CheckpointPolicy,
    RemapPolicy,
    ResilienceConfig,
    RetryPolicy,
)


class TestDefaults:
    def test_config_defaults(self):
        cfg = ResilienceConfig()
        assert cfg.detect_every == 1
        assert cfg.structural_probe and cfg.invariant_monitor
        assert cfg.initial_diagnosis
        assert cfg.retry.max_retries == 3 and cfg.retry.escalate
        assert cfg.checkpoint.every == 4 and cfg.checkpoint.verify
        assert cfg.remap.enabled and cfg.remap.max_spares is None
        assert cfg.remap.quarantine_suspects

    def test_policies_are_frozen(self):
        with pytest.raises(AttributeError):
            RetryPolicy().max_retries = 5


class TestValidation:
    def test_negative_retries(self):
        with pytest.raises(ConfigurationError, match="max_retries"):
            RetryPolicy(max_retries=-1)

    def test_zero_retries_is_legal(self):
        assert RetryPolicy(max_retries=0).max_retries == 0

    def test_checkpoint_cadence(self):
        with pytest.raises(ConfigurationError, match="cadence"):
            CheckpointPolicy(every=0)

    def test_checkpoint_keep(self):
        with pytest.raises(ConfigurationError, match="keep"):
            CheckpointPolicy(keep=0)

    def test_remap_spares(self):
        with pytest.raises(ConfigurationError, match="max_spares"):
            RemapPolicy(max_spares=-1)
        assert RemapPolicy(max_spares=0).max_spares == 0

    def test_detect_every(self):
        with pytest.raises(ConfigurationError, match="detect_every"):
            ResilienceConfig(detect_every=0)


class TestBackoffPolicy:
    """Exponential backoff with seeded full jitter (the serving tier's
    retry schedule)."""

    def test_defaults(self):
        from repro.resilience import BackoffPolicy

        policy = BackoffPolicy()
        assert policy.base == 0.01
        assert policy.multiplier == 2.0
        assert policy.cap == 0.5
        assert policy.max_attempts == 2
        assert policy.jitter

    def test_ceiling_grows_exponentially_then_caps(self):
        from repro.resilience import BackoffPolicy

        policy = BackoffPolicy(base=0.1, multiplier=2.0, cap=0.5,
                               jitter=False)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.4)
        assert policy.delay(3) == pytest.approx(0.5)  # capped
        assert policy.delay(10) == pytest.approx(0.5)

    def test_jitter_is_seeded_and_bounded(self):
        import numpy as np

        from repro.resilience import BackoffPolicy

        policy = BackoffPolicy(base=0.1, multiplier=2.0, cap=0.5)
        a = [policy.delay(k, np.random.default_rng(42)) for k in range(4)]
        b = [policy.delay(k, np.random.default_rng(42)) for k in range(4)]
        assert a == b  # same seed, same schedule
        for k, d in enumerate(a):
            assert 0.0 <= d <= min(0.1 * 2.0 ** k, 0.5)

    def test_no_rng_means_full_ceiling(self):
        from repro.resilience import BackoffPolicy

        assert BackoffPolicy(base=0.2, jitter=True).delay(0) == \
            pytest.approx(0.2)

    def test_frozen_and_validated(self):
        from repro.resilience import BackoffPolicy

        with pytest.raises(AttributeError):
            BackoffPolicy().base = 1.0
        with pytest.raises(ConfigurationError):
            BackoffPolicy(base=-1)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(max_attempts=-1)
        with pytest.raises(ConfigurationError):
            BackoffPolicy().delay(-1)
