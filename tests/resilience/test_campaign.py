"""Quick T16 campaign smoke: the acceptance bar in miniature.

The full campaign (12 seeds per stochastic sweep) lives in
``benchmarks/bench_t16_resilience.py`` and is drift-guarded; this quick
variant (3 seeds) keeps the bar — zero silent corruption, >= 95 %
detected-or-benign — inside the tier-1 suite and the CI fault-campaign
smoke job.
"""

import pytest

from repro.analysis.experiments import run_t16, run_t16_campaign


@pytest.fixture(scope="module")
def campaign():
    return run_t16_campaign(quick=True)


class TestQuickCampaign:
    def test_zero_silent_corruption(self, campaign):
        silent = sum(sc["silent_wrong"] for sc in campaign["scenarios"])
        assert silent == 0

    def test_detected_or_benign_bar(self, campaign):
        total = sum(sc["runs"] for sc in campaign["scenarios"])
        silent = sum(sc["silent_wrong"] for sc in campaign["scenarios"])
        assert (total - silent) / total >= 0.95

    def test_fault_free_baseline_is_clean_and_free(self, campaign):
        base = campaign["scenarios"][0]
        assert base["label"] == "fault-free"
        assert base["status"]["clean"] == base["runs"]
        assert base["rollbacks"] == 0 and base["remaps"] == 0

    def test_midrun_permanent_is_absorbed_by_one_remap(self, campaign):
        sc = {s["label"]: s for s in campaign["scenarios"]}
        mid = sc["permanent short mid-run"]
        assert mid["status"]["degraded"] == mid["runs"]
        assert mid["remaps"] == mid["runs"]
        assert mid["silent_wrong"] == 0

    def test_every_scenario_quantifies_overhead(self, campaign):
        for sc in campaign["scenarios"][1:]:
            assert sc["overhead"].get("bus_cycles", 0) > 0, sc["label"]
            assert sc["counters"]["bus_cycles"] >= sc["overhead"]["bus_cycles"]

    def test_campaign_is_deterministic(self, campaign):
        again = run_t16_campaign(quick=True)
        assert again == campaign

    def test_table_renders(self, campaign):
        text = run_t16(campaign=campaign).render()
        assert "fault-free" in text
        assert "silent-wrong" in text
