"""Structural echo probe + relaxation-invariant monitor units."""

import numpy as np
import pytest

from repro.errors import BusError
from repro.ppa.directions import Direction
from repro.ppa.faults import FaultKind, FaultPlan
from repro.resilience import InvariantMonitor, StructuralProbe

from .conftest import machine


class TestProbeWiring:
    def test_probe_requires_physical_machine(self):
        with pytest.raises(BusError, match="physical"):
            StructuralProbe(machine(4).lanes(2))

    def test_monitor_requires_batched_view(self):
        with pytest.raises(BusError, match="batched"):
            InvariantMonitor(machine(4))

    def test_check_without_baseline_raises(self):
        with pytest.raises(BusError, match="baseline"):
            StructuralProbe(machine(4)).check()

    def test_capture_charges_four_transactions(self):
        m = machine(4)
        before = m.counters.snapshot()
        StructuralProbe(m).capture()
        diff = m.counters.diff(before)
        assert diff.get("broadcasts", 0) == StructuralProbe.TRANSACTIONS


class TestProbeDetection:
    def test_healthy_array_is_quiet(self):
        m = machine(6)
        probe = StructuralProbe(m)
        probe.rebaseline()
        assert probe.check() == set()

    @pytest.mark.parametrize("kind", [FaultKind.STUCK_OPEN,
                                      FaultKind.STUCK_SHORT])
    def test_new_permanent_fault_names_its_ring(self, kind):
        m = machine(6)
        probe = StructuralProbe(m)
        probe.rebaseline()
        m.inject_faults(FaultPlan().add(2, 4, kind, axis=0))
        devs = probe.check()
        assert (0, 4) in devs
        # The fault sits on an axis-0 (column bus) switch: no row ring
        # may be blamed.
        assert all(axis == 0 for axis, _ in devs)

    def test_axis1_fault_names_its_row_ring(self):
        m = machine(6)
        probe = StructuralProbe(m)
        probe.rebaseline()
        m.inject_faults(FaultPlan().add(3, 1, FaultKind.STUCK_OPEN, axis=1))
        devs = probe.check()
        assert (1, 3) in devs
        assert all(axis == 1 for axis, _ in devs)

    def test_ignored_ring_cannot_alarm(self):
        m = machine(6)
        probe = StructuralProbe(m)
        probe.rebaseline()
        m.inject_faults(FaultPlan().add(2, 4, FaultKind.STUCK_OPEN, axis=0))
        probe.set_ignore({4})
        assert probe.check() == set()

    def test_always_on_intermittent_keeps_alarming(self):
        m = machine(6)
        probe = StructuralProbe(m)
        probe.rebaseline()
        m.inject_faults(FaultPlan().add_intermittent(
            2, 4, FaultKind.STUCK_OPEN, probability=1.0, axis=0))
        assert (0, 4) in probe.check()
        assert (0, 4) in probe.check()  # confirm re-probe still sees it

    def test_rebaseline_absorbs_known_damage(self):
        m = machine(6)
        m.inject_faults(FaultPlan().add(2, 4, FaultKind.STUCK_OPEN, axis=0))
        probe = StructuralProbe(m)
        probe.rebaseline()  # differential: damage present at baseline
        assert probe.check() == set()


class TestInvariantMonitor:
    """Direct relaxation audit on hand-built planes (n = 3, dest = 0)."""

    def _setup(self):
        base = machine(3)
        view = base.lanes(1)
        INF = base.maxint
        W = np.array([[0, INF, INF],
                      [4, 0, INF],
                      [7, 3, 0]], dtype=np.int64)
        ROW, COL = view.row_index, view.col_index
        planes = dict(
            weights=W,
            row_d=(ROW == 0)[None, :, :],
            col_last=(COL == base.n - 1),
            real_diag=(ROW == COL),
        )
        # prev = init state SOW[j] = W[j, 0]; one relaxation leaves it
        # fixed on this graph (every candidate is already optimal).
        prev = np.zeros((1, 3, 3), dtype=np.int64)
        prev[0, 0, :] = W[:, 0]
        sow = prev.copy()
        ptn = np.zeros((1, 3, 3), dtype=np.int64)  # successor 0 achieves all
        return view, sow, ptn, prev, planes

    def _alarm(self, view, sow, ptn, prev, planes):
        return InvariantMonitor(view).check(
            sow, ptn, prev, planes["weights"], planes["row_d"],
            planes["col_last"], planes["real_diag"])

    def test_exact_relaxation_passes(self):
        view, sow, ptn, prev, planes = self._setup()
        assert not self._alarm(view, sow, ptn, prev, planes).any()

    def test_corrupted_sow_word_alarms(self):
        view, sow, ptn, prev, planes = self._setup()
        sow[0, 0, 1] += 1  # one flipped cost word in the carried row
        assert self._alarm(view, sow, ptn, prev, planes).all()

    def test_corrupted_ptn_word_alarms_with_intact_sow(self):
        view, sow, ptn, prev, planes = self._setup()
        ptn[0, 0, 1] = 2  # names a candidate that does not achieve the min
        assert self._alarm(view, sow, ptn, prev, planes).all()

    def test_wild_ptn_index_alarms(self):
        view, sow, ptn, prev, planes = self._setup()
        ptn[0, 0, 2] = 17  # outside the array: alarm, not an index error
        assert self._alarm(view, sow, ptn, prev, planes).all()

    def test_monitor_charges_counters(self):
        view, sow, ptn, prev, planes = self._setup()
        before = view.counters.snapshot()
        self._alarm(view, sow, ptn, prev, planes)
        diff = view.counters.diff(before)
        assert diff.get("broadcasts", 0) == 3
        assert diff.get("alu_ops", 0) >= 4
        assert diff.get("bus_cycles", 0) > 0
