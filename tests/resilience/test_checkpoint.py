"""Checkpoint immutability and store bookkeeping."""

import numpy as np
import pytest

from repro.errors import ResilienceError
from repro.resilience import Checkpoint, CheckpointStore


def _ckpt(rnd: int) -> Checkpoint:
    return Checkpoint(
        round=rnd,
        sow=np.array([[1, 2, 3]]),
        ptn=np.array([[0, 0, 1]]),
        iterations=np.array([rnd]),
        active=np.array([True]),
    )


class TestCheckpoint:
    def test_snapshot_is_a_copy(self):
        sow = np.array([[1, 2, 3]])
        c = Checkpoint(round=0, sow=sow, ptn=sow, iterations=np.array([0]),
                       active=np.array([True]))
        sow[0, 0] = 99
        assert c.sow[0, 0] == 1

    def test_snapshot_is_read_only(self):
        c = _ckpt(0)
        with pytest.raises(ValueError):
            c.sow[0, 0] = 99


class TestCheckpointStore:
    def test_latest_of_empty_store_raises(self):
        with pytest.raises(ResilienceError, match="empty"):
            CheckpointStore().latest()

    def test_keep_must_be_positive(self):
        with pytest.raises(ResilienceError):
            CheckpointStore(keep=0)

    def test_eviction_keeps_newest(self):
        store = CheckpointStore(keep=2)
        for r in range(5):
            store.commit(_ckpt(r))
        assert len(store) == 2
        assert store.latest().round == 4

    def test_lifetime_stats_survive_eviction(self):
        store = CheckpointStore(keep=1)
        for r in range(3):
            store.commit(_ckpt(r))
        store.latest()
        store.latest()
        assert store.commits == 3
        assert store.restores == 2
