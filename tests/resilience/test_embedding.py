"""ArrayEmbedding and quarantine geometry."""

import numpy as np
import pytest

from repro.errors import ResilienceError
from repro.ppa.faults import FaultKind, SwitchFault
from repro.resilience import ArrayEmbedding, quarantine_indices

INF = (1 << 16) - 1


class TestQuarantineIndices:
    def test_axis0_fault_retires_its_column(self):
        f = SwitchFault(2, 5, FaultKind.STUCK_OPEN, axis=0)
        assert quarantine_indices([f]) == {5}

    def test_axis1_fault_retires_its_row(self):
        f = SwitchFault(2, 5, FaultKind.STUCK_SHORT, axis=1)
        assert quarantine_indices([f]) == {2}

    def test_axis_none_retires_both(self):
        f = SwitchFault(2, 5, FaultKind.STUCK_OPEN, axis=None)
        assert quarantine_indices([f]) == {2, 5}

    def test_undiagnosable_rings_are_retired_whole(self):
        assert quarantine_indices([], [(0, 3), (1, 3), (1, 6)]) == {3, 6}


class TestBuild:
    def test_identity_when_healthy(self):
        e = ArrayEmbedding.build(8, 6)
        assert e.physical == (0, 1, 2, 3, 4, 5)
        assert e.is_identity
        assert e.spares_left == 2

    def test_skips_quarantined_indices_in_order(self):
        e = ArrayEmbedding.build(8, 6, {1, 4})
        assert e.physical == (0, 2, 3, 5, 6, 7)
        assert not e.is_identity
        assert e.spares_left == 0

    def test_exhausted_spares_raise(self):
        with pytest.raises(ResilienceError, match="spare capacity"):
            ArrayEmbedding.build(8, 6, {0, 1, 2})

    def test_problem_larger_than_array_raises(self):
        with pytest.raises(ResilienceError, match="cannot embed"):
            ArrayEmbedding.build(4, 5)

    def test_quarantined_index_outside_array_raises(self):
        with pytest.raises(ResilienceError, match="outside array"):
            ArrayEmbedding.build(4, 2, {4})

    def test_requarantine_accumulates(self):
        e = ArrayEmbedding.build(8, 6, {1})
        e2 = e.requarantine({2})
        assert e2.quarantined == frozenset({1, 2})
        assert e2.physical == (0, 3, 4, 5, 6, 7)
        # The original embedding is unchanged (frozen dataclass).
        assert e.quarantined == frozenset({1})


class TestGeometry:
    def test_inverse_marks_padding(self):
        e = ArrayEmbedding.build(5, 3, {1})
        inv = e.inverse()
        assert inv.tolist() == [0, -1, 1, 2, -1]

    def test_embed_weights_padding_is_maxint_off_diagonal(self):
        e = ArrayEmbedding.build(4, 2, {1})
        Wl = np.array([[0, 7], [3, 0]], dtype=np.int64)
        We = e.embed_weights(Wl, INF)
        assert We.shape == (4, 4)
        # Logical block lands on physical indices (0, 2).
        assert We[0, 2] == 7 and We[2, 0] == 3
        # Padding: zero diagonal, MAXINT elsewhere.
        assert We[1, 1] == 0 and We[3, 3] == 0
        assert We[1, 0] == INF and We[0, 1] == INF and We[3, 1] == INF

    def test_embed_weights_lane_stack(self):
        e = ArrayEmbedding.build(4, 2)
        Wl = np.zeros((3, 2, 2), dtype=np.int64)
        assert e.embed_weights(Wl, INF).shape == (3, 4, 4)

    def test_embed_weights_shape_mismatch_raises(self):
        e = ArrayEmbedding.build(4, 2)
        with pytest.raises(ResilienceError, match="do not match"):
            e.embed_weights(np.zeros((3, 3), dtype=np.int64), INF)

    def test_extract_round_trips_embed(self):
        e = ArrayEmbedding.build(6, 3, {0, 4})
        vec = np.full(6, -9, dtype=np.int64)
        vec[e.physical_array()] = [10, 11, 12]
        assert e.extract(vec).tolist() == [10, 11, 12]

    def test_to_logical_ptn_maps_physical_successors(self):
        e = ArrayEmbedding.build(6, 3, {0, 4})  # physical = (1, 2, 3)
        ptn_phys = np.array([[3, 1, 2]])
        dest = np.array([0])
        assert e.to_logical_ptn(ptn_phys, dest).tolist() == [[2, 0, 1]]

    def test_to_logical_ptn_padding_falls_back_to_destination(self):
        e = ArrayEmbedding.build(6, 3, {0, 4})
        ptn_phys = np.array([[4, 0, 5]])  # all padding indices
        dest = np.array([2])
        assert e.to_logical_ptn(ptn_phys, dest).tolist() == [[2, 2, 2]]
