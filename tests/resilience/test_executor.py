"""ResilientExecutor: detect → diagnose → recover → resume.

The acceptance bar throughout: every run whose status is not ``FAILED``
must be **bit-identical** to the fault-free serial reference on the same
logical graph — resilience may cost cycles, never correctness.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, GraphError, ResilienceError
from repro.ppa.faults import FaultKind, FaultPlan
from repro.resilience import (
    RemapPolicy,
    ResilienceConfig,
    ResilienceStatus,
    ResilientExecutor,
    RetryPolicy,
)

from .conftest import DEST, M, N_PHYS, machine


def _lane_matches(res, b, ref) -> bool:
    return bool(
        np.array_equal(res.sow[b], ref.sow)
        and np.array_equal(res.ptn[b], ref.ptn)
    )


def _inject_at(round_no: int, plan: FaultPlan):
    fired = {"done": False}

    def hook(k, base):
        if k == round_no and not fired["done"]:
            fired["done"] = True
            base.inject_faults(plan)

    return hook


class TestWiring:
    def test_rejects_batched_machine(self):
        with pytest.raises(ConfigurationError, match="unbatched"):
            ResilientExecutor(machine().lanes(2))

    def test_rejects_oversized_problem(self, graph):
        ex = ResilientExecutor(machine(4))
        with pytest.raises(GraphError, match="does not fit"):
            ex.run(graph, DEST)

    def test_rejects_bad_destination(self, graph):
        with pytest.raises(GraphError, match="outside"):
            ResilientExecutor(machine()).run(graph, M)

    def test_rejects_empty_destination_vector(self, graph):
        with pytest.raises(GraphError, match="non-empty"):
            ResilientExecutor(machine()).run_batched(graph, [])


class TestFaultFree:
    def test_single_lane_clean_and_bit_identical(self, graph, reference):
        res = ResilientExecutor(machine()).run(graph, DEST)
        assert res.status is ResilienceStatus.CLEAN
        assert res.trustworthy
        assert res.rollbacks == res.remaps == 0
        assert res.failure is None
        assert res.embedding.is_identity
        assert _lane_matches(res, 0, reference[DEST])

    def test_batched_all_destinations(self, graph, reference):
        res = ResilientExecutor(machine()).run_batched(graph, range(M))
        assert res.status is ResilienceStatus.CLEAN
        assert res.batch == M
        for d in range(M):
            assert _lane_matches(res, d, reference[d])
            lane = res.lane(d)
            assert lane.destination == d
            assert np.array_equal(lane.iterations, res.iterations[d])

    def test_identity_array_needs_no_spares(self, graph, reference):
        res = ResilientExecutor(machine(M)).run(graph, DEST)
        assert res.status is ResilienceStatus.CLEAN
        assert _lane_matches(res, 0, reference[DEST])

    def test_checkpoints_committed_on_cadence(self, graph):
        res = ResilientExecutor(machine()).run(graph, DEST)
        assert res.checkpoints >= 1 + res.rounds // 4  # round-0 + cadence

    def test_all_overhead_in_named_buckets(self, graph):
        res = ResilientExecutor(machine()).run(graph, DEST)
        assert set(res.overhead) == {
            "detection", "diagnosis", "checkpoint", "recovery"}
        assert res.overhead["detection"].get("broadcasts", 0) > 0
        assert res.overhead["diagnosis"].get("broadcasts", 0) > 0  # screen
        assert res.overhead["recovery"] == {}  # nothing to recover from
        # Buckets never exceed the run totals.
        for bucket in res.overhead.values():
            for k, v in bucket.items():
                assert 0 <= v <= res.counters.get(k, 0)

    def test_detectors_off_matches_plain_batched_algorithm(self, graph,
                                                           reference):
        """With every detector disabled and no faults, the resilient
        wrapper may only add host-side (bucketed) cost: subtracting the
        buckets from the totals leaves the plain batched MCP stream."""
        from repro.core import all_pairs_minimum_cost

        cfg = ResilienceConfig(structural_probe=False,
                               invariant_monitor=False,
                               initial_diagnosis=False)
        res = ResilientExecutor(machine(M), cfg).run_batched(graph, range(M))
        assert res.status is ResilienceStatus.CLEAN

        plain = all_pairs_minimum_cost(machine(M), graph)
        algo = dict(res.counters)
        for bucket in res.overhead.values():
            for k, v in bucket.items():
                algo[k] = algo.get(k, 0) - v
        for k, v in plain.machine_counters.items():
            assert algo.get(k, 0) == int(v), k


class TestPermanentFaults:
    def test_pre_existing_fault_is_screened_and_quarantined(
            self, graph, reference):
        m = machine()
        m.inject_faults(FaultPlan().add(3, 5, FaultKind.STUCK_OPEN, axis=1))
        res = ResilientExecutor(m).run(graph, DEST)
        assert res.status is ResilienceStatus.DEGRADED
        assert 3 in res.embedding.quarantined
        assert any(e.kind == "screen" for e in res.events)
        assert _lane_matches(res, 0, reference[DEST])

    def test_midrun_fault_detect_remap_replay(self, graph, reference):
        plan = FaultPlan().add(2, 4, FaultKind.STUCK_SHORT, axis=0)
        res = ResilientExecutor(machine()).run(
            graph, DEST, round_hook=_inject_at(3, plan))
        assert res.status is ResilienceStatus.DEGRADED
        assert res.detections >= 1
        assert res.remaps == 1
        assert 4 in res.embedding.quarantined
        assert res.replayed_rounds >= 1
        assert any(e.kind == "remap" for e in res.events)
        assert res.overhead["recovery"].get("broadcasts", 0) > 0
        assert _lane_matches(res, 0, reference[DEST])

    def test_midrun_fault_batched_lanes_all_recover(self, graph, reference):
        plan = FaultPlan().add(2, 4, FaultKind.STUCK_SHORT, axis=0)
        res = ResilientExecutor(machine()).run_batched(
            graph, range(M), round_hook=_inject_at(2, plan))
        assert res.status is ResilienceStatus.DEGRADED
        assert res.remaps == 1
        for d in range(M):
            assert _lane_matches(res, d, reference[d])

    def test_no_spares_left_fails_honestly(self, graph):
        plan = FaultPlan().add(2, 4, FaultKind.STUCK_SHORT, axis=0)
        ex = ResilientExecutor(machine(M))  # n_phys == m: zero slack
        with pytest.raises(ResilienceError):
            ex.run(graph, DEST, round_hook=_inject_at(3, plan))

    def test_no_spares_failure_is_reported_not_silent(self, graph,
                                                      reference):
        plan = FaultPlan().add(2, 4, FaultKind.STUCK_SHORT, axis=0)
        res = ResilientExecutor(machine(M)).run(
            graph, DEST, round_hook=_inject_at(3, plan),
            raise_on_failure=False)
        assert res.status is ResilienceStatus.FAILED
        assert not res.trustworthy
        assert res.failure is not None
        assert any(e.kind == "failed" for e in res.events)

    def test_remap_disabled_fails_on_new_damage(self, graph):
        cfg = ResilienceConfig(remap=RemapPolicy(enabled=False))
        plan = FaultPlan().add(2, 4, FaultKind.STUCK_SHORT, axis=0)
        res = ResilientExecutor(machine(), cfg).run(
            graph, DEST, round_hook=_inject_at(3, plan),
            raise_on_failure=False)
        assert res.status is ResilienceStatus.FAILED

    def test_screen_over_spare_budget_raises(self, graph):
        m = machine()
        m.inject_faults(FaultPlan()
                        .add(3, 5, FaultKind.STUCK_OPEN, axis=1)
                        .add(1, 2, FaultKind.STUCK_OPEN, axis=0))
        cfg = ResilienceConfig(remap=RemapPolicy(max_spares=1))
        with pytest.raises(ResilienceError, match="spare budget"):
            ResilientExecutor(m, cfg).run(graph, DEST)


class TestStochasticFaults:
    """Seeded sweeps: zero silent corruption, always."""

    @pytest.mark.parametrize("seed", range(4))
    def test_intermittent_open_sweep(self, graph, reference, seed):
        m = machine()
        m.inject_faults(FaultPlan(seed=seed).add_intermittent(
            2, 4, FaultKind.STUCK_OPEN, probability=0.3, axis=0))
        res = ResilientExecutor(m).run(graph, DEST, raise_on_failure=False)
        if res.trustworthy:
            assert _lane_matches(res, 0, reference[DEST])

    @pytest.mark.parametrize("seed", range(4))
    def test_transient_bitflip_sweep(self, graph, reference, seed):
        m = machine()
        m.inject_faults(FaultPlan(seed=seed)
                        .add_transient(2, 4, bit=3, probability=0.05, axis=0)
                        .add_transient(5, 1, bit=0, probability=0.05, axis=1))
        res = ResilientExecutor(m).run(graph, DEST, raise_on_failure=False)
        if res.trustworthy:
            assert _lane_matches(res, 0, reference[DEST])

    def test_transient_recovery_consumes_no_spares(self, graph, reference):
        """A pure glitch must be absorbed by rollback/replay alone."""
        hits = 0
        for seed in range(6):
            m = machine()
            m.inject_faults(FaultPlan(seed=seed).add_transient(
                2, 4, bit=3, probability=0.1, axis=0))
            res = ResilientExecutor(m).run(graph, DEST,
                                           raise_on_failure=False)
            if res.status is ResilienceStatus.RECOVERED:
                hits += 1
                assert res.rollbacks >= 1
                assert res.remaps == 0
                assert res.embedding.is_identity
                assert _lane_matches(res, 0, reference[DEST])
        assert hits >= 1  # the sweep exercises the rollback path

    def test_zero_retry_budget_still_honest(self, graph, reference):
        cfg = ResilienceConfig(retry=RetryPolicy(max_retries=0))
        m = machine()
        m.inject_faults(FaultPlan(seed=1).add_transient(
            2, 4, bit=3, probability=0.1, axis=0))
        res = ResilientExecutor(m, cfg).run(graph, DEST,
                                            raise_on_failure=False)
        if res.trustworthy:
            assert _lane_matches(res, 0, reference[DEST])


class TestInitCorruption:
    """An intermittent firing during the init broadcasts has no previous
    round to be checked against — the round-0 verification must catch
    it (the silent-corruption regression behind docs/robustness.md)."""

    @pytest.mark.parametrize("seed", [4, 5, 11])
    def test_init_glitch_seeds_stay_correct(self, graph, reference, seed):
        m = machine()
        m.inject_faults(FaultPlan(seed=seed).add_intermittent(
            2, 4, FaultKind.STUCK_OPEN, probability=0.3, axis=0))
        res = ResilientExecutor(m).run(graph, DEST, raise_on_failure=False)
        assert res.trustworthy
        assert _lane_matches(res, 0, reference[DEST])

    def test_init_verification_can_be_the_only_detection(self, graph):
        """Seed 4 historically corrupted init silently: the run must now
        log an init alarm (or recover some other way) and end correct."""
        m = machine()
        m.inject_faults(FaultPlan(seed=4).add_intermittent(
            2, 4, FaultKind.STUCK_OPEN, probability=0.3, axis=0))
        res = ResilientExecutor(m).run(graph, DEST, raise_on_failure=False)
        assert res.detections >= 1
