"""Command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.ppc.lang import programs


class TestMcpCommand:
    def test_generate_gnp(self, capsys):
        assert main(["mcp", "--generate", "gnp", "--n", "6", "--seed", "1",
                     "-d", "2"]) == 0
        out = capsys.readouterr().out
        assert "minimum cost paths to vertex 2 on ppa" in out
        assert "counters:" in out

    def test_paths_flag(self, capsys):
        main(["mcp", "--generate", "complete", "--n", "5", "-d", "0",
              "--paths"])
        out = capsys.readouterr().out
        assert "->" in out

    @pytest.mark.parametrize("arch", ["gcn", "mesh", "hypercube"])
    def test_other_architectures(self, arch, capsys):
        assert main(["mcp", "--generate", "gnp", "--n", "8", "--arch", arch]) == 0
        assert f"on {arch}" in capsys.readouterr().out

    def test_word_parallel_variant(self, capsys):
        assert main(["mcp", "--generate", "ring", "--n", "5",
                     "--word-parallel"]) == 0

    def test_word_parallel_rejected_for_mesh(self, capsys):
        assert main(["mcp", "--generate", "ring", "--n", "5", "--arch",
                     "mesh", "--word-parallel"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_graph_from_npy(self, tmp_path, capsys):
        W = np.array([[0, 3], [7, 0]], dtype=np.int64)
        path = tmp_path / "w.npy"
        np.save(path, W)
        assert main(["mcp", "--graph", str(path), "-d", "1"]) == 0
        out = capsys.readouterr().out
        assert "cost      3" in out

    def test_graph_from_txt_with_inf(self, tmp_path, capsys):
        path = tmp_path / "w.txt"
        path.write_text("0 2 inf\ninf 0 4\ninf inf 0\n")
        assert main(["mcp", "--graph", str(path), "-d", "2"]) == 0
        out = capsys.readouterr().out
        assert "cost      6" in out

    def test_missing_graph_file(self, capsys):
        assert main(["mcp", "--graph", "/nonexistent.npy"]) == 2

    def test_npz_needs_W(self, tmp_path, capsys):
        path = tmp_path / "w.npz"
        np.savez(path, other=np.zeros((2, 2)))
        assert main(["mcp", "--graph", str(path)]) == 2


class TestReportCommand:
    def test_quick_single_experiment(self, capsys):
        assert main(["report", "--quick", "F4"]) == 0
        assert "F4 - iterations" in capsys.readouterr().out


class TestPpcCommand:
    def test_run_program(self, tmp_path, capsys):
        src = tmp_path / "prog.ppc"
        src.write_text("int ans; void main() { ans = N * N; }")
        assert main(["ppc", str(src), "--n", "5"]) == 0
        assert "ans = 25" in capsys.readouterr().out

    def test_entry_and_set(self, tmp_path, capsys):
        src = tmp_path / "prog.ppc"
        src.write_text("int d; int f() { return d + 1; }")
        assert main(["ppc", str(src), "--entry", "f", "--set", "d=41"]) == 0
        assert "return value: 42" in capsys.readouterr().out

    def test_run_paper_listing_with_graph(self, tmp_path, capsys):
        src = tmp_path / "mcp.ppc"
        src.write_text(programs.MCP_CODE)
        W = np.array(
            [[0, 4, np.inf, np.inf],
             [np.inf, 0, 1, np.inf],
             [np.inf, np.inf, 0, 7],
             [2, np.inf, np.inf, 0]]
        )
        graph = tmp_path / "w.npy"
        np.save(graph, W)
        assert main(["ppc", str(src), "--entry", "minimum_cost_path",
                     "--n", "4", "--graph", str(graph), "--set", "d=3"]) == 0
        out = capsys.readouterr().out
        assert "SOW =" in out

    def test_format_mode(self, tmp_path, capsys):
        src = tmp_path / "prog.ppc"
        src.write_text("int f(  )   { return   1+2 ; }")
        assert main(["ppc", str(src), "--format"]) == 0
        assert "return 1 + 2;" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["ppc", "/nope.ppc"]) == 2

    def test_bad_set_syntax(self, tmp_path, capsys):
        src = tmp_path / "prog.ppc"
        src.write_text("void main() { }")
        assert main(["ppc", str(src), "--set", "oops"]) == 2


class TestSelftestCommand:
    def test_healthy(self, capsys):
        assert main(["selftest", "--n", "5"]) == 0
        assert "healthy" in capsys.readouterr().out

    def test_injected_fault_reported(self, capsys):
        assert main(["selftest", "--n", "5", "--fault", "1,2,open,1"]) == 1
        out = capsys.readouterr().out
        assert "stuck-open switch at (1, 2) on row bus" in out

    def test_fault_on_both_axes(self, capsys):
        assert main(["selftest", "--n", "5", "--fault", "2,2,short,both"]) == 1
        out = capsys.readouterr().out
        assert out.count("stuck-short switch at (2, 2)") == 2

    def test_bad_fault_spec(self, capsys):
        assert main(["selftest", "--fault", "1,2,banana"]) == 2


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])


class TestRmeshArch:
    def test_mcp_on_rmesh(self, capsys):
        from repro.cli import main as _main

        assert _main(["mcp", "--generate", "gnp", "--n", "6", "--seed", "2",
                      "--arch", "rmesh", "-d", "1"]) == 0
        assert "on rmesh" in capsys.readouterr().out

    def test_word_parallel_rejected_for_rmesh(self, capsys):
        from repro.cli import main as _main

        assert _main(["mcp", "--generate", "ring", "--n", "5",
                      "--arch", "rmesh", "--word-parallel"]) == 2


class TestPpcCompileModes:
    def test_compile_only_emits_asm(self, tmp_path, capsys):
        src = tmp_path / "prog.ppc"
        src.write_text("parallel int X; void main() { X = COL + 1; }")
        assert main(["ppc", str(src), "--compile", "--n", "4"]) == 0
        out = capsys.readouterr().out
        assert "compiled from PPC for n=4" in out
        assert "halt" in out

    def test_run_compiled(self, tmp_path, capsys):
        src = tmp_path / "prog.ppc"
        src.write_text("int out; parallel int X;"
                       "void main() { X = 1; where (ROW == 0) X = 5; }")
        assert main(["ppc", str(src), "--run-compiled", "--n", "4"]) == 0
        out = capsys.readouterr().out
        assert "X =" in out and "counters:" in out

    def test_run_compiled_paper_listing(self, tmp_path, capsys):
        src = tmp_path / "mcp.ppc"
        src.write_text(programs.MCP_CODE)
        W = np.array(
            [[0, 4, np.inf, np.inf],
             [np.inf, 0, 1, np.inf],
             [np.inf, np.inf, 0, 7],
             [2, np.inf, np.inf, 0]]
        )
        graph = tmp_path / "w.npy"
        np.save(graph, W)
        assert main(["ppc", str(src), "--entry", "minimum_cost_path",
                     "--n", "4", "--graph", str(graph), "--set", "d=3",
                     "--run-compiled"]) == 0
        out = capsys.readouterr().out
        assert "SOW =" in out

    def test_compile_error_surfaces(self, tmp_path, capsys):
        src = tmp_path / "bad.ppc"
        src.write_text("parallel int X; int d;"
                       "void main() { X = shift(X, d); }")
        assert main(["ppc", str(src), "--compile"]) == 2
        assert "error:" in capsys.readouterr().err
