"""Command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.ppc.lang import programs


class TestMcpCommand:
    def test_generate_gnp(self, capsys):
        assert main(["mcp", "--generate", "gnp", "--n", "6", "--seed", "1",
                     "-d", "2"]) == 0
        out = capsys.readouterr().out
        assert "minimum cost paths to vertex 2 on ppa" in out
        assert "counters:" in out

    def test_paths_flag(self, capsys):
        main(["mcp", "--generate", "complete", "--n", "5", "-d", "0",
              "--paths"])
        out = capsys.readouterr().out
        assert "->" in out

    @pytest.mark.parametrize("arch", ["gcn", "mesh", "hypercube"])
    def test_other_architectures(self, arch, capsys):
        assert main(["mcp", "--generate", "gnp", "--n", "8", "--arch", arch]) == 0
        assert f"on {arch}" in capsys.readouterr().out

    def test_word_parallel_variant(self, capsys):
        assert main(["mcp", "--generate", "ring", "--n", "5",
                     "--word-parallel"]) == 0

    def test_word_parallel_rejected_for_mesh(self, capsys):
        assert main(["mcp", "--generate", "ring", "--n", "5", "--arch",
                     "mesh", "--word-parallel"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_graph_from_npy(self, tmp_path, capsys):
        W = np.array([[0, 3], [7, 0]], dtype=np.int64)
        path = tmp_path / "w.npy"
        np.save(path, W)
        assert main(["mcp", "--graph", str(path), "-d", "1"]) == 0
        out = capsys.readouterr().out
        assert "cost      3" in out

    def test_graph_from_txt_with_inf(self, tmp_path, capsys):
        path = tmp_path / "w.txt"
        path.write_text("0 2 inf\ninf 0 4\ninf inf 0\n")
        assert main(["mcp", "--graph", str(path), "-d", "2"]) == 0
        out = capsys.readouterr().out
        assert "cost      6" in out

    def test_missing_graph_file(self, capsys):
        assert main(["mcp", "--graph", "/nonexistent.npy"]) == 2

    def test_npz_needs_W(self, tmp_path, capsys):
        path = tmp_path / "w.npz"
        np.savez(path, other=np.zeros((2, 2)))
        assert main(["mcp", "--graph", str(path)]) == 2


class TestMcpObservability:
    def test_profile_flag_writes_native_json(self, tmp_path, capsys):
        from repro.telemetry import load_profile

        path = tmp_path / "out.json"
        assert main(["mcp", "--generate", "gnp", "--n", "8", "--seed", "1",
                     "-d", "2", "--profile", str(path)]) == 0
        assert f"profile written to {path}" in capsys.readouterr().out
        profile = load_profile(path)
        assert profile.meta["command"] == "mcp"
        assert profile.find("mcp.iteration")
        # Profile totals equal the run's printed counters.
        assert profile.counters["bus_cycles"] > 0

    def test_profile_chrome_format(self, tmp_path, capsys):
        import json

        path = tmp_path / "out.chrome.json"
        assert main(["mcp", "--generate", "gnp", "--n", "8",
                     "--profile", str(path),
                     "--trace-format", "chrome"]) == 0
        data = json.loads(path.read_text())
        assert {e["ph"] for e in data["traceEvents"]} <= {"M", "X"}

    def test_profile_does_not_change_counters(self, tmp_path, capsys):
        argv = ["mcp", "--generate", "gnp", "--n", "8", "--seed", "3"]
        assert main(argv) == 0
        plain = [ln for ln in capsys.readouterr().out.splitlines()
                 if ln.startswith("counters:")]
        assert main(argv + ["--profile", str(tmp_path / "p.json")]) == 0
        traced = [ln for ln in capsys.readouterr().out.splitlines()
                  if ln.startswith("counters:")]
        assert plain == traced

    def test_trace_flag_summarises_bus(self, capsys):
        assert main(["mcp", "--generate", "gnp", "--n", "8", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "bus transactions:" in out
        assert "broadcast" in out and "reduce" in out

    def test_trace_rejected_off_ppa(self, capsys):
        assert main(["mcp", "--generate", "gnp", "--n", "8",
                     "--arch", "mesh", "--trace"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_profile_works_on_baselines(self, tmp_path, capsys):
        from repro.telemetry import load_profile

        path = tmp_path / "mesh.json"
        assert main(["mcp", "--generate", "gnp", "--n", "8",
                     "--arch", "mesh", "--profile", str(path)]) == 0
        assert load_profile(path).meta["arch"] == "mesh"


class TestApspCommand:
    def test_generate_gnp_batched_default(self, capsys):
        assert main(["apsp", "--generate", "gnp", "--n", "6", "--seed",
                     "1"]) == 0
        out = capsys.readouterr().out
        assert "all-pairs minimum cost on ppa" in out
        assert "batched lanes=6" in out
        assert "counters (serial-equivalent):" in out
        # batched mode also reports the amortised machine-stream cost
        assert "counters (batched machine):" in out

    def test_serial_flag(self, capsys):
        assert main(["apsp", "--generate", "gnp", "--n", "6", "--seed", "1",
                     "--serial"]) == 0
        out = capsys.readouterr().out
        assert "serial sweep" in out
        # serial sweep: machine counters == serial-equivalent, not reprinted
        assert "counters (batched machine):" not in out

    def test_batched_and_serial_report_same_totals(self, capsys):
        main(["apsp", "--generate", "gnp", "--n", "6", "--seed", "3"])
        batched = capsys.readouterr().out
        main(["apsp", "--generate", "gnp", "--n", "6", "--seed", "3",
              "--serial"])
        serial = capsys.readouterr().out
        pick = lambda s: next(  # noqa: E731
            ln for ln in s.splitlines() if "serial-equivalent" in ln
        )
        assert pick(batched) == pick(serial)

    def test_lanes_knob(self, capsys):
        assert main(["apsp", "--generate", "gnp", "--n", "6", "--lanes",
                     "2"]) == 0
        assert "batched lanes=2" in capsys.readouterr().out

    def test_matrix_flag(self, capsys):
        assert main(["apsp", "--generate", "complete", "--n", "5",
                     "--matrix"]) == 0
        out = capsys.readouterr().out
        assert "distance matrix" in out
        assert "reachable ordered pairs: 20/20" in out

    def test_word_parallel(self, capsys):
        assert main(["apsp", "--generate", "ring", "--n", "5",
                     "--word-parallel"]) == 0

    def test_graph_from_file(self, tmp_path, capsys):
        path = tmp_path / "w.txt"
        path.write_text("0 2 inf\ninf 0 4\n1 inf 0\n")
        assert main(["apsp", "--graph", str(path)]) == 0
        assert "reachable ordered pairs: 6/6" in capsys.readouterr().out

    def test_profile_export(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "apsp.json"
        assert main(["apsp", "--generate", "gnp", "--n", "6", "--profile",
                     str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["format"] == "repro-profile-v1"
        assert payload["meta"]["command"] == "apsp"
        assert payload["meta"]["serial"] is False
        top = payload["spans"][0]
        assert top["name"] == "apsp"
        assert top["attrs"]["lanes"] == 6
        assert {c["name"] for c in top["children"]} == {"apsp.batch"}

    def test_trace_summary(self, capsys):
        assert main(["apsp", "--generate", "gnp", "--n", "5",
                     "--trace"]) == 0
        assert "bus transactions:" in capsys.readouterr().out


class TestProfileCommand:
    def test_prints_phase_table(self, capsys):
        assert main(["profile", "--generate", "gnp", "--n", "8",
                     "--seed", "1", "-d", "2"]) == 0
        out = capsys.readouterr().out
        assert "Per-phase cost breakdown" in out
        assert "(total)" in out
        assert "mcp.min" in out
        assert "iterations:" in out

    def test_out_and_compare_round_trip(self, tmp_path, capsys):
        path = tmp_path / "prof.json"
        argv = ["profile", "--generate", "gnp", "--n", "8", "--seed", "1"]
        assert main(argv + ["--out", str(path)]) == 0
        capsys.readouterr()
        assert main(argv + ["--compare", str(path)]) == 0
        assert "no drift" in capsys.readouterr().out

    def test_compare_detects_drift(self, tmp_path, capsys):
        path = tmp_path / "prof.json"
        assert main(["profile", "--generate", "gnp", "--n", "8",
                     "--seed", "1", "--out", str(path)]) == 0
        capsys.readouterr()
        # A different workload must profile differently.
        assert main(["profile", "--generate", "complete", "--n", "8",
                     "--compare", str(path)]) == 1
        assert "drift against" in capsys.readouterr().out

    def test_other_architecture(self, capsys):
        assert main(["profile", "--generate", "gnp", "--n", "8",
                     "--arch", "hypercube"]) == 0
        assert "hypercube" in capsys.readouterr().out


class TestReportCommand:
    def test_quick_single_experiment(self, capsys):
        assert main(["report", "--quick", "F4"]) == 0
        assert "F4 - iterations" in capsys.readouterr().out


class TestPpcCommand:
    def test_run_program(self, tmp_path, capsys):
        src = tmp_path / "prog.ppc"
        src.write_text("int ans; void main() { ans = N * N; }")
        assert main(["ppc", str(src), "--n", "5"]) == 0
        assert "ans = 25" in capsys.readouterr().out

    def test_entry_and_set(self, tmp_path, capsys):
        src = tmp_path / "prog.ppc"
        src.write_text("int d; int f() { return d + 1; }")
        assert main(["ppc", str(src), "--entry", "f", "--set", "d=41"]) == 0
        assert "return value: 42" in capsys.readouterr().out

    def test_run_paper_listing_with_graph(self, tmp_path, capsys):
        src = tmp_path / "mcp.ppc"
        src.write_text(programs.MCP_CODE)
        W = np.array(
            [[0, 4, np.inf, np.inf],
             [np.inf, 0, 1, np.inf],
             [np.inf, np.inf, 0, 7],
             [2, np.inf, np.inf, 0]]
        )
        graph = tmp_path / "w.npy"
        np.save(graph, W)
        assert main(["ppc", str(src), "--entry", "minimum_cost_path",
                     "--n", "4", "--graph", str(graph), "--set", "d=3"]) == 0
        out = capsys.readouterr().out
        assert "SOW =" in out

    def test_format_mode(self, tmp_path, capsys):
        src = tmp_path / "prog.ppc"
        src.write_text("int f(  )   { return   1+2 ; }")
        assert main(["ppc", str(src), "--format"]) == 0
        assert "return 1 + 2;" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["ppc", "/nope.ppc"]) == 2

    def test_bad_set_syntax(self, tmp_path, capsys):
        src = tmp_path / "prog.ppc"
        src.write_text("void main() { }")
        assert main(["ppc", str(src), "--set", "oops"]) == 2


class TestSelftestCommand:
    def test_healthy(self, capsys):
        assert main(["selftest", "--n", "5"]) == 0
        assert "healthy" in capsys.readouterr().out

    def test_injected_fault_reported(self, capsys):
        assert main(["selftest", "--n", "5", "--fault", "1,2,open,1"]) == 1
        out = capsys.readouterr().out
        assert "stuck-open switch at (1, 2) on row bus" in out

    def test_fault_on_both_axes(self, capsys):
        assert main(["selftest", "--n", "5", "--fault", "2,2,short,both"]) == 1
        out = capsys.readouterr().out
        assert out.count("stuck-short switch at (2, 2)") == 2

    def test_bad_fault_spec(self, capsys):
        assert main(["selftest", "--fault", "1,2,banana"]) == 2

    def test_trace_flag(self, capsys):
        assert main(["selftest", "--n", "5", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "bus transactions: 6" in out  # the 6-probe diagnostic

    def test_profile_flag(self, tmp_path, capsys):
        from repro.telemetry import load_profile

        path = tmp_path / "selftest.json"
        assert main(["selftest", "--n", "5", "--profile", str(path)]) == 0
        profile = load_profile(path)
        assert profile.meta["command"] == "selftest"
        assert [s.attrs["axis"] for s in profile.find("selftest.axis")] == [0, 1]


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])


class TestRmeshArch:
    def test_mcp_on_rmesh(self, capsys):
        from repro.cli import main as _main

        assert _main(["mcp", "--generate", "gnp", "--n", "6", "--seed", "2",
                      "--arch", "rmesh", "-d", "1"]) == 0
        assert "on rmesh" in capsys.readouterr().out

    def test_word_parallel_rejected_for_rmesh(self, capsys):
        from repro.cli import main as _main

        assert _main(["mcp", "--generate", "ring", "--n", "5",
                      "--arch", "rmesh", "--word-parallel"]) == 2


class TestPpcCompileModes:
    def test_compile_only_emits_asm(self, tmp_path, capsys):
        src = tmp_path / "prog.ppc"
        src.write_text("parallel int X; void main() { X = COL + 1; }")
        assert main(["ppc", str(src), "--compile", "--n", "4"]) == 0
        out = capsys.readouterr().out
        assert "compiled from PPC for n=4" in out
        assert "halt" in out

    def test_run_compiled(self, tmp_path, capsys):
        src = tmp_path / "prog.ppc"
        src.write_text("int out; parallel int X;"
                       "void main() { X = 1; where (ROW == 0) X = 5; }")
        assert main(["ppc", str(src), "--run-compiled", "--n", "4"]) == 0
        out = capsys.readouterr().out
        assert "X =" in out and "counters:" in out

    def test_run_compiled_paper_listing(self, tmp_path, capsys):
        src = tmp_path / "mcp.ppc"
        src.write_text(programs.MCP_CODE)
        W = np.array(
            [[0, 4, np.inf, np.inf],
             [np.inf, 0, 1, np.inf],
             [np.inf, np.inf, 0, 7],
             [2, np.inf, np.inf, 0]]
        )
        graph = tmp_path / "w.npy"
        np.save(graph, W)
        assert main(["ppc", str(src), "--entry", "minimum_cost_path",
                     "--n", "4", "--graph", str(graph), "--set", "d=3",
                     "--run-compiled"]) == 0
        out = capsys.readouterr().out
        assert "SOW =" in out

    def test_compile_error_surfaces(self, tmp_path, capsys):
        src = tmp_path / "bad.ppc"
        src.write_text("parallel int X; int d;"
                       "void main() { X = shift(X, d); }")
        assert main(["ppc", str(src), "--compile"]) == 2
        assert "error:" in capsys.readouterr().err


class TestFaultFlags:
    def test_intermittent_fault_flag_on_selftest(self, capsys):
        # p = 1.0 fires on every transaction: diagnosed like a permanent.
        assert main(["selftest", "--n", "5",
                     "--fault-intermittent", "1,2,open,1.0,0"]) == 1
        assert "stuck-open" in capsys.readouterr().out

    def test_bad_intermittent_probability(self, capsys):
        assert main(["selftest", "--n", "5",
                     "--fault-intermittent", "1,2,open,2.0,0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_transient_spec(self, capsys):
        assert main(["mcp", "--generate", "gnp", "--n", "5",
                     "--fault-transient", "1,2,banana,0.5"]) == 2

    def test_fault_flags_rejected_off_ppa(self, capsys):
        assert main(["mcp", "--generate", "gnp", "--n", "5", "--arch",
                     "mesh", "--fault", "1,2,open,0"]) == 2
        assert "--arch ppa" in capsys.readouterr().err


class TestScreenFlag:
    def test_healthy_screen_passes(self, capsys):
        assert main(["mcp", "--generate", "gnp", "--n", "6", "--seed", "3",
                     "-d", "2", "--screen"]) == 0
        assert "healthy" in capsys.readouterr().out

    def test_screen_refuses_faulty_array(self, capsys):
        assert main(["mcp", "--generate", "gnp", "--n", "6", "--seed", "3",
                     "-d", "2", "--screen", "--fault", "2,4,short,0"]) == 2
        assert "pre-flight screen" in capsys.readouterr().err

    def test_screen_on_apsp(self, capsys):
        assert main(["apsp", "--generate", "gnp", "--n", "5", "--screen",
                     "--fault", "1,2,open,1"]) == 2
        assert "--resilient" in capsys.readouterr().err


class TestResilientFlag:
    def test_clean_resilient_run_matches_plain(self, capsys):
        assert main(["mcp", "--generate", "gnp", "--n", "6", "--seed", "3",
                     "-d", "2"]) == 0
        plain = capsys.readouterr().out
        assert main(["mcp", "--generate", "gnp", "--n", "6", "--seed", "3",
                     "-d", "2", "--resilient"]) == 0
        out = capsys.readouterr().out
        assert "resilience: status clean" in out
        # Same per-vertex cost lines, resilience banner aside.
        for line in plain.splitlines():
            if "next" in line:
                assert line in out

    def test_resilient_quarantines_pre_existing_fault(self, capsys):
        assert main(["mcp", "--generate", "gnp", "--n", "6", "--seed", "3",
                     "-d", "2", "--resilient", "--array-n", "8",
                     "--fault", "2,4,short,0"]) == 0
        out = capsys.readouterr().out
        assert "status degraded" in out
        assert "quarantined [4]" in out

    def test_resilient_apsp(self, capsys):
        assert main(["apsp", "--generate", "gnp", "--n", "5", "--seed", "1",
                     "--resilient", "--array-n", "6"]) == 0
        out = capsys.readouterr().out
        assert "resilience: status clean" in out
        assert "reachable ordered pairs" in out

    def test_resilient_apsp_rejects_serial(self, capsys):
        assert main(["apsp", "--generate", "gnp", "--n", "5", "--serial",
                     "--resilient"]) == 2
        assert "drop --serial" in capsys.readouterr().err

    def test_array_smaller_than_problem_rejected(self, capsys):
        assert main(["mcp", "--generate", "gnp", "--n", "6", "--resilient",
                     "--array-n", "4"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_resilient_rejected_off_ppa(self, capsys):
        assert main(["mcp", "--generate", "gnp", "--n", "5", "--arch",
                     "gcn", "--resilient"]) == 2

    def test_resilient_with_transient_sweep(self, capsys):
        assert main(["mcp", "--generate", "gnp", "--n", "6", "--seed", "3",
                     "-d", "2", "--resilient", "--array-n", "8",
                     "--fault-transient", "2,4,3,0.05,0",
                     "--fault-seed", "1"]) == 0
        assert "resilience: status" in capsys.readouterr().out

    def test_policy_knobs_accepted(self, capsys):
        assert main(["mcp", "--generate", "gnp", "--n", "6", "--seed", "3",
                     "-d", "2", "--resilient", "--checkpoint-every", "2",
                     "--max-retries", "1", "--detect-every", "2"]) == 0


class TestEngineFlag:
    """``--engine {auto,cycle,fused}`` on mcp/apsp/profile."""

    def _counters_line(self, out):
        return [ln for ln in out.splitlines() if ln.startswith("counters:")]

    @pytest.mark.parametrize("engine", ["auto", "cycle", "fused"])
    def test_mcp_accepts_every_engine(self, engine, capsys):
        assert main(["mcp", "--generate", "gnp", "--n", "6", "--seed", "1",
                     "-d", "2", "--engine", engine]) == 0
        out = capsys.readouterr().out
        assert "minimum cost paths to vertex 2 on ppa" in out

    def test_mcp_engines_report_identical_counters(self, capsys):
        argv = ["mcp", "--generate", "gnp", "--n", "7", "--seed", "5", "-d", "1"]
        main(argv + ["--engine", "cycle"])
        cycle = self._counters_line(capsys.readouterr().out)
        main(argv + ["--engine", "fused"])
        fused = self._counters_line(capsys.readouterr().out)
        assert cycle == fused

    def test_mcp_unknown_engine_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["mcp", "--generate", "gnp", "--n", "6", "--engine", "warp"])
        assert "invalid choice" in capsys.readouterr().err

    def test_fused_with_trace_downgrades_with_note(self, capsys):
        assert main(["mcp", "--generate", "gnp", "--n", "6", "--seed", "1",
                     "-d", "0", "--engine", "fused", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "note: engine 'fused' unavailable" in out
        assert "results are identical" in out
        assert "bus transactions:" in out  # the cycle run really traced

    def test_fused_with_faults_downgrades_with_note(self, capsys):
        assert main(["mcp", "--generate", "gnp", "--n", "6", "--seed", "1",
                     "--engine", "fused", "--fault", "1,1,open"]) == 0
        assert "note: engine 'fused' unavailable" in capsys.readouterr().out

    def test_fused_with_resilient_downgrades_with_note(self, capsys):
        assert main(["mcp", "--generate", "gnp", "--n", "6", "--seed", "3",
                     "-d", "2", "--resilient", "--engine", "fused"]) == 0
        assert "note: engine 'fused' unavailable" in capsys.readouterr().out

    def test_fused_with_profile_downgrades_with_note(self, tmp_path, capsys):
        path = tmp_path / "prof.json"
        assert main(["mcp", "--generate", "gnp", "--n", "6", "--seed", "1",
                     "--engine", "fused", "--profile", str(path)]) == 0
        out = capsys.readouterr().out
        assert "note: engine 'fused' unavailable" in out
        assert path.exists()

    def test_fused_off_ppa_downgrades_with_note(self, capsys):
        assert main(["mcp", "--generate", "gnp", "--n", "6", "--arch", "mesh",
                     "--engine", "fused"]) == 0
        out = capsys.readouterr().out
        assert "note: engine 'fused' unavailable" in out
        assert "PPA only" in out

    def test_fused_with_word_parallel_downgrades_with_note(self, capsys):
        assert main(["mcp", "--generate", "ring", "--n", "5",
                     "--word-parallel", "--engine", "fused"]) == 0
        assert "note: engine 'fused' unavailable" in capsys.readouterr().out

    @pytest.mark.parametrize("engine", ["cycle", "fused"])
    def test_apsp_accepts_engine(self, engine, capsys):
        assert main(["apsp", "--generate", "gnp", "--n", "6", "--seed", "2",
                     "--engine", engine]) == 0
        assert "all-pairs minimum cost" in capsys.readouterr().out

    def test_apsp_engines_report_identical_counters(self, capsys):
        argv = ["apsp", "--generate", "gnp", "--n", "6", "--seed", "2"]
        main(argv + ["--engine", "cycle"])
        cycle = self._counters_line(capsys.readouterr().out)
        main(argv + ["--engine", "fused"])
        fused = self._counters_line(capsys.readouterr().out)
        assert cycle == fused

    def test_profile_command_downgrades_fused_with_note(self, capsys):
        assert main(["profile", "--generate", "gnp", "--n", "6", "--seed", "1",
                     "--engine", "fused"]) == 0
        out = capsys.readouterr().out
        assert "note: engine 'fused' unavailable" in out
        assert "span tracer" in out
