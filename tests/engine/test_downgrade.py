"""Engine auto-downgrade: every blocker, silent fallback, CLI notes.

For each condition that makes the analytic tiers ineligible, three
things must hold: :func:`fused_block_reason` /
:func:`compiled_block_reason` name it, ``engine="auto"`` falls back to
the cycle engine *silently with bit-identical results*, and the CLI
surfaces the downgrade as a note (never an error). The serving ladder
builds on the same helpers via :func:`degrade_engine`.
"""

import numpy as np
import pytest

from repro.core import minimum_cost_path
from repro.engine import (
    ENGINE_DEGRADE_ORDER,
    compiled_block_reason,
    degrade_engine,
    fused_block_reason,
    resolve_engine,
)
from repro.cli import main
from repro.errors import EngineError
from repro.ppa import FaultKind, FaultPlan, PPAConfig, PPAMachine
from repro.ppc.reductions import ppa_min, ppa_selected_min


def _wrapped_min(*args, **kwargs):
    """Same semantics as the default, but a different callable — the
    engine policy must treat any non-default routine as blocking."""
    return ppa_min(*args, **kwargs)


def _wrapped_selected_min(*args, **kwargs):
    return ppa_selected_min(*args, **kwargs)


def _graph(n, seed=3):
    rng = np.random.default_rng(seed)
    maxint = (1 << 16) - 1
    W = rng.integers(1, 9, size=(n, n)).astype(np.int64)
    W[rng.random((n, n)) < 0.6] = maxint
    np.fill_diagonal(W, 0)
    return W


def _fault_plan():
    return FaultPlan().add(2, 3, FaultKind.STUCK_OPEN, axis=0)


# Every blocker: (id, machine mutation, routine kwargs, reason fragment)
BLOCKERS = [
    (
        "fault-plan",
        lambda m: m.inject_faults(_fault_plan()),
        {},
        "fault plan",
    ),
    (
        "span-tracer",
        lambda m: m.telemetry.enable(),
        {},
        "span tracer",
    ),
    (
        "bus-trace",
        lambda m: setattr(m.trace, "enabled", True),
        {},
        "bus trace",
    ),
    (
        "custom-min",
        lambda m: None,
        {"min_routine": _wrapped_min},
        "non-default min routine",
    ),
    (
        "custom-selected-min",
        lambda m: None,
        {"selected_min_routine": _wrapped_selected_min},
        "non-default selected_min routine",
    ),
]
BLOCKER_IDS = [b[0] for b in BLOCKERS]


@pytest.mark.parametrize("_, mutate, routines, fragment", BLOCKERS,
                         ids=BLOCKER_IDS)
class TestEveryBlocker:
    def test_both_tiers_report_the_reason(self, _, mutate, routines,
                                          fragment):
        machine = PPAMachine(PPAConfig(n=8, word_bits=16))
        mutate(machine)
        fused = fused_block_reason(machine, **routines)
        compiled = compiled_block_reason(machine, **routines)
        assert fused is not None and fragment in fused
        assert compiled == fused  # same eligibility conditions

    def test_auto_falls_back_silently_and_identically(self, _, mutate,
                                                      routines, fragment):
        """auto on a blocked machine = cycle results, bit for bit."""
        W = _graph(8)
        clean = PPAMachine(PPAConfig(n=8, word_bits=16))
        reference = minimum_cost_path(clean, W, 0, engine="cycle")

        blocked = PPAMachine(PPAConfig(n=8, word_bits=16))
        mutate(blocked)
        choice = resolve_engine(blocked, "auto", **routines)
        assert choice.name == "cycle"
        assert fragment in choice.reason
        if "fault" in _:
            return  # a faulted machine computes *corrupted* answers by
            # design — engine selection is all that can be asserted
        result = minimum_cost_path(blocked, W, 0, engine="auto", **{
            k: v for k, v in routines.items()
        })
        np.testing.assert_array_equal(result.sow, reference.sow)
        np.testing.assert_array_equal(result.ptn, reference.ptn)
        assert result.iterations == reference.iterations

    def test_forcing_analytic_tier_raises(self, _, mutate, routines,
                                          fragment):
        machine = PPAMachine(PPAConfig(n=8, word_bits=16))
        mutate(machine)
        for engine in ("fused", "compiled"):
            with pytest.raises(EngineError, match="unavailable"):
                resolve_engine(machine, engine, **routines)


class TestDegradeOrder:
    def test_order_is_compiled_fused_cycle(self):
        assert ENGINE_DEGRADE_ORDER == ("compiled", "fused", "cycle")

    def test_degrade_steps_walk_the_order(self):
        assert degrade_engine("compiled") == "fused"
        assert degrade_engine("fused") == "cycle"
        assert degrade_engine("cycle") is None

    def test_auto_degrades_like_compiled(self):
        assert degrade_engine("auto") == "fused"

    def test_unknown_engine_rejected(self):
        with pytest.raises(EngineError, match="unknown engine"):
            degrade_engine("turbo")


class TestCliDowngradeNotes:
    """The CLI surfaces every silent downgrade as a note, exit code 0."""

    def test_fused_with_fault_prints_note(self, capsys):
        rc = main(["mcp", "--generate", "gnp", "--n", "6", "-d", "0",
                   "--engine", "fused", "--fault", "1,2,open,0"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "note: engine 'fused' unavailable" in out
        assert "fault plan" in out

    def test_fused_with_resilient_prints_note(self, capsys):
        rc = main(["mcp", "--generate", "gnp", "--n", "6", "-d", "0",
                   "--engine", "fused", "--resilient"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "note: engine 'fused' unavailable" in out

    def test_profile_notes_fused_downgrade(self, capsys):
        rc = main(["profile", "--generate", "gnp", "--n", "6",
                   "--engine", "fused"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "note: engine 'fused' unavailable" in out

    def test_apsp_workers_blocked_prints_note(self, capsys):
        rc = main(["apsp", "--generate", "gnp", "--n", "6",
                   "--workers", "2", "--serial"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "note: --workers 2 unavailable" in out

    def test_eligible_run_prints_no_note(self, capsys):
        rc = main(["mcp", "--generate", "gnp", "--n", "6", "-d", "0",
                   "--engine", "fused"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "note:" not in out
