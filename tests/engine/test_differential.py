"""Differential cross-validation: fused == cycle, bit for bit.

The fused engine's contract is *exact* equivalence with the cycle engine —
SOW, PTN, iteration counts, the scalar counter book, and (batched) every
lane's serial-equivalent ledger. These property tests drive both engines
over random graphs, word widths, lane counts and convergence patterns and
compare everything. A second group pins *plan-cache independence*: warm or
cold bus-plan/cost-vector caches never change any ledger.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import all_pairs_minimum_cost, minimum_cost_path
from repro.core.batched import batched_minimum_cost_path
from repro.engine import clear_cost_cache
from repro.errors import GraphError
from repro.ppa import PPAConfig, PPAMachine
from repro.ppa.segments import clear_plan_cache


@st.composite
def graph_case(draw):
    n = draw(st.integers(2, 9))
    word_bits = draw(st.sampled_from([10, 12, 16]))
    maxint = (1 << word_bits) - 1
    density = draw(st.floats(0.0, 1.0))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    W = rng.integers(1, 9, size=(n, n)).astype(np.int64)
    W[rng.random((n, n)) >= density] = maxint
    np.fill_diagonal(W, 0)
    d = draw(st.integers(0, n - 1))
    return n, word_bits, W, d


def _run_pair(n, word_bits, W, d):
    cycle = minimum_cost_path(
        PPAMachine(PPAConfig(n=n, word_bits=word_bits)), W, d, engine="cycle"
    )
    fused = minimum_cost_path(
        PPAMachine(PPAConfig(n=n, word_bits=word_bits)), W, d, engine="fused"
    )
    return cycle, fused


class TestSerialEquivalence:
    @given(graph_case())
    @settings(max_examples=60)
    def test_sow_ptn_iterations_counters(self, case):
        n, word_bits, W, d = case
        cycle, fused = _run_pair(n, word_bits, W, d)
        assert np.array_equal(cycle.sow, fused.sow)
        assert np.array_equal(cycle.ptn, fused.ptn)
        assert cycle.iterations == fused.iterations
        assert cycle.counters == fused.counters

    def test_edgeless_graph(self):
        n = 6
        machine = PPAMachine(PPAConfig(n=n, word_bits=16))
        W = np.full((n, n), machine.maxint, dtype=np.int64)
        np.fill_diagonal(W, 0)
        cycle, fused = _run_pair(n, 16, W, 2)
        assert cycle.iterations == fused.iterations == 1
        assert cycle.counters == fused.counters

    def test_zero_diagonal_set_mode(self):
        rng = np.random.default_rng(3)
        W = rng.integers(1, 9, size=(5, 5)).astype(np.int64)
        a = minimum_cost_path(
            PPAMachine(PPAConfig(n=5, word_bits=16)), W, 1,
            zero_diagonal="set", engine="cycle",
        )
        b = minimum_cost_path(
            PPAMachine(PPAConfig(n=5, word_bits=16)), W, 1,
            zero_diagonal="set", engine="fused",
        )
        assert np.array_equal(a.sow, b.sow)
        assert np.array_equal(a.ptn, b.ptn)
        assert a.counters == b.counters

    def test_max_iterations_error_parity(self):
        # A 2-hop chain needs two relaxation rounds; cap at one.
        maxint = (1 << 16) - 1
        W = np.full((3, 3), maxint, dtype=np.int64)
        np.fill_diagonal(W, 0)
        W[1, 0] = 1
        W[2, 1] = 1
        for engine in ("cycle", "fused"):
            with pytest.raises(GraphError, match="did not converge"):
                minimum_cost_path(
                    PPAMachine(PPAConfig(n=3, word_bits=16)),
                    W, 0, max_iterations=1, engine=engine,
                )

    def test_smallest_index_tie_break(self):
        """Two equal-cost successors: both engines must pick the smaller
        column index (the bit-serial selected_min semantics)."""
        maxint = (1 << 16) - 1
        W = np.full((4, 4), maxint, dtype=np.int64)
        np.fill_diagonal(W, 0)
        W[3, 1] = 2
        W[3, 2] = 2
        W[1, 0] = 5
        W[2, 0] = 5
        cycle, fused = _run_pair(4, 16, W, 0)
        assert np.array_equal(cycle.ptn, fused.ptn)
        assert cycle.ptn[3] == 1  # not 2


@st.composite
def batched_case(draw):
    n = draw(st.integers(2, 7))
    B = draw(st.integers(1, 9))
    word_bits = draw(st.sampled_from([12, 16]))
    maxint = (1 << word_bits) - 1
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    per_lane = draw(st.booleans())
    shape = (B, n, n) if per_lane else (n, n)
    W = rng.integers(1, 9, size=shape).astype(np.int64)
    W[rng.random(shape) >= draw(st.floats(0.1, 1.0))] = maxint
    if per_lane:
        for b in range(B):
            np.fill_diagonal(W[b], 0)
    else:
        np.fill_diagonal(W, 0)
    dest = rng.integers(0, n, size=B)
    return n, B, word_bits, W, dest


class TestBatchedEquivalence:
    @given(batched_case())
    @settings(max_examples=40)
    def test_all_ledgers_lane_for_lane(self, case):
        n, B, word_bits, W, dest = case
        rc = batched_minimum_cost_path(
            PPAMachine(PPAConfig(n=n, word_bits=word_bits), batch=B),
            W, dest, engine="cycle",
        )
        rf = batched_minimum_cost_path(
            PPAMachine(PPAConfig(n=n, word_bits=word_bits), batch=B),
            W, dest, engine="fused",
        )
        assert np.array_equal(rc.sow, rf.sow)
        assert np.array_equal(rc.ptn, rf.ptn)
        assert np.array_equal(rc.iterations, rf.iterations)
        assert rc.counters == rf.counters
        assert set(rc.lane_counters) == set(rf.lane_counters)
        for name in rc.lane_counters:
            assert np.array_equal(
                rc.lane_counters[name], rf.lane_counters[name]
            ), name

    def test_fused_lane_ledger_matches_serial_runs(self):
        """Lane b of the fused batched ledger == a serial run of lane b —
        the same invariant the batched cycle engine guarantees."""
        rng = np.random.default_rng(11)
        n = 6
        maxint = (1 << 16) - 1
        W = rng.integers(1, 9, size=(n, n)).astype(np.int64)
        W[rng.random((n, n)) < 0.5] = maxint
        np.fill_diagonal(W, 0)
        res = batched_minimum_cost_path(
            PPAMachine(PPAConfig(n=n, word_bits=16), batch=n),
            W, np.arange(n), engine="fused",
        )
        for b in range(n):
            serial = minimum_cost_path(
                PPAMachine(PPAConfig(n=n, word_bits=16)), W, b,
                engine="cycle",
            )
            lane = res.lane(b)
            assert np.array_equal(lane.sow, serial.sow)
            assert np.array_equal(lane.ptn, serial.ptn)
            assert lane.iterations == serial.iterations
            assert lane.counters == serial.counters

    def test_unbatched_machine_gets_lanes_view(self):
        rng = np.random.default_rng(4)
        W = rng.integers(1, 9, size=(4, 4)).astype(np.int64)
        np.fill_diagonal(W, 0)
        machine = PPAMachine(PPAConfig(n=4, word_bits=16))
        res = batched_minimum_cost_path(machine, W, [0, 2], engine="fused")
        assert res.batch == 2
        # scalar book shared with the caller's machine
        assert machine.counters.snapshot() != {}

    def test_batched_max_iterations_error_parity(self):
        maxint = (1 << 16) - 1
        W = np.full((3, 3), maxint, dtype=np.int64)
        np.fill_diagonal(W, 0)
        W[1, 0] = 1
        W[2, 1] = 1
        for engine in ("cycle", "fused"):
            with pytest.raises(GraphError, match="did not converge"):
                batched_minimum_cost_path(
                    PPAMachine(PPAConfig(n=3, word_bits=16), batch=2),
                    W, [0, 1], max_iterations=1, engine=engine,
                )


class TestApspEquivalence:
    @pytest.mark.parametrize("lanes", [None, 3])
    def test_apsp_matrices_and_books(self, lanes):
        rng = np.random.default_rng(21)
        n = 7
        maxint = (1 << 16) - 1
        W = rng.integers(1, 9, size=(n, n)).astype(np.int64)
        W[rng.random((n, n)) < 0.5] = maxint
        np.fill_diagonal(W, 0)
        rc = all_pairs_minimum_cost(
            PPAMachine(PPAConfig(n=n, word_bits=16)), W,
            lanes=lanes, engine="cycle",
        )
        rf = all_pairs_minimum_cost(
            PPAMachine(PPAConfig(n=n, word_bits=16)), W,
            lanes=lanes, engine="fused",
        )
        assert np.array_equal(rc.dist, rf.dist)
        assert np.array_equal(rc.succ, rf.succ)
        assert np.array_equal(rc.iterations, rf.iterations)
        assert rc.counters == rf.counters
        assert rc.machine_counters == rf.machine_counters
        for name in rc.lane_counters:
            assert np.array_equal(
                rc.lane_counters[name], rf.lane_counters[name]
            )

    def test_serial_sweep_engine_flag_flows(self):
        rng = np.random.default_rng(22)
        n = 5
        W = rng.integers(1, 9, size=(n, n)).astype(np.int64)
        np.fill_diagonal(W, 0)
        rc = all_pairs_minimum_cost(
            PPAMachine(PPAConfig(n=n, word_bits=16)), W,
            serial=True, engine="cycle",
        )
        rf = all_pairs_minimum_cost(
            PPAMachine(PPAConfig(n=n, word_bits=16)), W,
            serial=True, engine="fused",
        )
        assert np.array_equal(rc.dist, rf.dist)
        assert rc.counters == rf.counters


class TestPlanCacheIndependence:
    """Host-side cache state (bus plans, digests, cost vectors) must never
    leak into any counter ledger."""

    def test_cold_vs_warm_caches_identical_books(self):
        rng = np.random.default_rng(31)
        n = 6
        maxint = (1 << 16) - 1
        W = rng.integers(1, 9, size=(n, n)).astype(np.int64)
        W[rng.random((n, n)) < 0.4] = maxint
        np.fill_diagonal(W, 0)

        def run(engine):
            res = batched_minimum_cost_path(
                PPAMachine(PPAConfig(n=n, word_bits=16), batch=n),
                W, np.arange(n), engine=engine,
            )
            return res.counters, {
                k: v.copy() for k, v in res.lane_counters.items()
            }

        clear_plan_cache()
        clear_cost_cache()
        cold_cycle = run("cycle")
        warm_cycle = run("cycle")
        cold_fused = run("fused")  # cost cache cold: probes here
        warm_fused = run("fused")
        assert cold_cycle[0] == warm_cycle[0] == cold_fused[0] == warm_fused[0]
        for name in cold_cycle[1]:
            ref = cold_cycle[1][name]
            for book in (warm_cycle[1], cold_fused[1], warm_fused[1]):
                assert np.array_equal(book[name], ref), name

    def test_fused_probe_may_warm_plan_caches_harmlessly(self, machine8):
        """The cost probe replays a cycle run, warming the module-wide bus
        plan caches; the caller's counters must be untouched by that."""
        clear_plan_cache()
        clear_cost_cache()
        rng = np.random.default_rng(32)
        W = rng.integers(1, 9, size=(8, 8)).astype(np.int64)
        np.fill_diagonal(W, 0)
        res = minimum_cost_path(machine8, W, 0, engine="fused")
        assert res.counters == machine8.counters.snapshot()
