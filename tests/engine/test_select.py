"""Engine selection policy: eligibility, fallback reasons, hard requests."""

import numpy as np
import pytest

from repro.engine import (
    COMPILED_AUTO_MIN_N,
    ENGINE_NAMES,
    EngineChoice,
    compiled_block_reason,
    fused_block_reason,
    resolve_engine,
)
from repro.errors import EngineError
from repro.ppa import FaultKind, FaultPlan, PPAConfig, PPAMachine
from repro.ppc.reductions import ppa_min, ppa_selected_min, word_parallel_min


class TestEligibility:
    def test_plain_machine_is_eligible(self, machine8):
        assert fused_block_reason(machine8) is None

    def test_fault_plan_blocks(self, machine8):
        plan = FaultPlan()
        plan.add(1, 1, FaultKind.STUCK_OPEN)
        machine8.inject_faults(plan)
        assert "fault plan" in fused_block_reason(machine8)
        machine8.clear_faults()
        assert fused_block_reason(machine8) is None

    def test_telemetry_blocks(self, machine8):
        machine8.telemetry.enable()
        assert "span tracer" in fused_block_reason(machine8)

    def test_bus_trace_blocks(self, machine8):
        machine8.trace.enabled = True
        assert "bus trace" in fused_block_reason(machine8)

    def test_non_default_min_routine_blocks(self, machine8):
        assert "min routine" in fused_block_reason(
            machine8, min_routine=word_parallel_min
        )
        assert fused_block_reason(machine8, min_routine=ppa_min) is None

    def test_non_default_selected_min_blocks(self, machine8):
        sentinel = lambda *a: None  # noqa: E731
        reason = fused_block_reason(machine8, selected_min_routine=sentinel)
        assert "selected_min" in reason
        assert (
            fused_block_reason(machine8, selected_min_routine=ppa_selected_min)
            is None
        )

    def test_tiny_grid_blocks(self):
        machine = PPAMachine(PPAConfig(n=1, word_bits=8))
        assert "grid side" in fused_block_reason(machine)

    def test_batched_machine_is_eligible(self):
        machine = PPAMachine(PPAConfig(n=4, word_bits=16), batch=3)
        assert fused_block_reason(machine) is None

    def test_lanes_view_inherits_blockers(self, machine8):
        machine8.trace.enabled = True
        view = machine8.lanes(4)
        assert "bus trace" in fused_block_reason(view)


    def test_compiled_blockers_match_fused(self, machine8):
        assert compiled_block_reason(machine8) is None
        machine8.trace.enabled = True
        assert compiled_block_reason(machine8) == fused_block_reason(machine8)


class TestResolve:
    def test_auto_upgrades_when_eligible(self, machine8):
        choice = resolve_engine(machine8, "auto")
        assert choice == EngineChoice(
            "fused", "auto", "machine eligible for fused execution"
        )
        assert choice.fused and choice.analytic and not choice.compiled

    def test_auto_prefers_compiled_on_large_grids(self):
        machine = PPAMachine(PPAConfig(n=COMPILED_AUTO_MIN_N, word_bits=16))
        choice = resolve_engine(machine, "auto")
        assert choice.name == "compiled"
        assert choice.compiled and choice.analytic and not choice.fused
        assert "large grid" in choice.reason

    def test_auto_large_grid_still_falls_back_when_blocked(self):
        machine = PPAMachine(PPAConfig(n=COMPILED_AUTO_MIN_N, word_bits=16))
        machine.trace.enabled = True
        choice = resolve_engine(machine, "auto")
        assert choice.name == "cycle" and not choice.analytic

    def test_auto_falls_back_with_reason(self, machine8):
        machine8.trace.enabled = True
        choice = resolve_engine(machine8, "auto")
        assert choice.name == "cycle" and not choice.fused
        assert "bus trace" in choice.reason

    def test_cycle_always_honoured(self, machine8):
        assert resolve_engine(machine8, "cycle").name == "cycle"
        machine8.telemetry.enable()
        assert resolve_engine(machine8, "cycle").name == "cycle"

    def test_fused_raises_when_blocked(self, machine8):
        machine8.telemetry.enable()
        with pytest.raises(EngineError, match="span tracer"):
            resolve_engine(machine8, "fused")

    def test_compiled_raises_when_blocked(self, machine8):
        machine8.telemetry.enable()
        with pytest.raises(EngineError, match="span tracer"):
            resolve_engine(machine8, "compiled")

    def test_fused_honoured_when_eligible(self, machine8):
        choice = resolve_engine(machine8, "fused")
        assert choice.name == "fused" and choice.requested == "fused"

    def test_compiled_honoured_when_eligible(self, machine8):
        choice = resolve_engine(machine8, "compiled")
        assert choice.name == "compiled" and choice.requested == "compiled"
        assert choice.compiled and choice.analytic

    def test_unknown_engine_rejected(self, machine8):
        with pytest.raises(EngineError, match="unknown engine"):
            resolve_engine(machine8, "warp")

    def test_engine_names_constant(self):
        assert ENGINE_NAMES == ("auto", "cycle", "fused", "compiled")


class TestDispatchEntryPoints:
    """The public MCP entry points honour engine= end to end."""

    def test_minimum_cost_path_rejects_unknown_engine(self, machine4):
        from repro.core import minimum_cost_path

        W = np.zeros((4, 4), dtype=np.int64)
        with pytest.raises(EngineError, match="unknown engine"):
            minimum_cost_path(machine4, W, 0, engine="warp")

    def test_fused_request_on_traced_machine_raises(self, machine4):
        from repro.core import minimum_cost_path

        machine4.trace.enabled = True
        W = np.zeros((4, 4), dtype=np.int64)
        with pytest.raises(EngineError, match="bus trace"):
            minimum_cost_path(machine4, W, 0, engine="fused")

    def test_fused_entry_points_revalidate(self, machine4):
        from repro.engine import (
            fused_batched_minimum_cost_path,
            fused_minimum_cost_path,
        )

        machine4.trace.enabled = True
        W = np.zeros((4, 4), dtype=np.int64)
        with pytest.raises(EngineError, match="bus trace"):
            fused_minimum_cost_path(machine4, W, 0)
        with pytest.raises(EngineError, match="bus trace"):
            fused_batched_minimum_cost_path(machine4, W, np.arange(4))

    def test_compiled_entry_points_revalidate(self, machine4):
        from repro.engine import (
            compiled_batched_minimum_cost_path,
            compiled_minimum_cost_path,
        )

        machine4.trace.enabled = True
        W = np.zeros((4, 4), dtype=np.int64)
        with pytest.raises(EngineError, match="bus trace"):
            compiled_minimum_cost_path(machine4, W, 0)
        with pytest.raises(EngineError, match="bus trace"):
            compiled_batched_minimum_cost_path(machine4, W, np.arange(4))
