"""Worker-pool fault tolerance: crashes, stalls, errors, shm hygiene.

The hardened shard supervisor must never hang and never leak: a killed
worker is respawned (once) and its shard recomputed, a second failure
falls back to an inline recompute in the parent, a stalled worker is
killed at ``shard_timeout``, and every path — success, crash, timeout,
error — releases all shared-memory blocks. Results stay bit-identical
to the inline sweep through every recovery path, and every absorbed
failure is recorded as a structured :class:`ShardFailure` in
``shard_report``.
"""

import os

import numpy as np
import pytest

from repro.core import all_pairs_minimum_cost
from repro.engine import (
    DEFAULT_SHARD_TIMEOUT,
    ShardFailure,
    clear_shard_chaos,
    set_shard_chaos,
    sharded_all_pairs,
)
from repro.ppa import PPAConfig, PPAMachine


def _graph(n, seed=7, density=0.35):
    rng = np.random.default_rng(seed)
    maxint = (1 << 16) - 1
    W = rng.integers(1, 9, size=(n, n)).astype(np.int64)
    W[rng.random((n, n)) < 1.0 - density] = maxint
    np.fill_diagonal(W, 0)
    return W


def _machine(n=10):
    return PPAMachine(PPAConfig(n=n, word_bits=16))


def _list_shm():
    try:
        return set(os.listdir("/dev/shm"))
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        return set()


@pytest.fixture(autouse=True)
def _no_chaos_leftovers():
    clear_shard_chaos()
    yield
    clear_shard_chaos()


@pytest.fixture()
def inline_result():
    W = _graph(10)
    return W, all_pairs_minimum_cost(_machine(), W, workers=None)


def _assert_same_answers(res, ref):
    np.testing.assert_array_equal(res.dist, ref.dist)
    np.testing.assert_array_equal(res.succ, ref.succ)
    np.testing.assert_array_equal(res.iterations, ref.iterations)
    assert res.counters == ref.counters


class TestCrashRecovery:
    def test_killed_worker_is_respawned(self, inline_result):
        W, ref = inline_result
        set_shard_chaos(kill_shards={0: 1})  # first attempt of shard 0 dies
        res = sharded_all_pairs(_machine(), W, workers=2)
        _assert_same_answers(res, ref)
        failures = res.shard_report["failures"]
        assert len(failures) == 1
        assert failures[0]["kind"] == "crash"
        assert failures[0]["shard"] == 0
        assert failures[0]["recovered"] == "respawn"

    def test_twice_killed_shard_recomputed_inline(self, inline_result):
        W, ref = inline_result
        set_shard_chaos(kill_shards={0: 2})  # both attempts die
        res = sharded_all_pairs(_machine(), W, workers=2)
        _assert_same_answers(res, ref)
        failures = res.shard_report["failures"]
        assert [f["kind"] for f in failures] == ["crash", "crash"]
        assert failures[-1]["recovered"] == "inline"

    def test_all_workers_killed_still_completes(self, inline_result):
        W, ref = inline_result
        set_shard_chaos(kill_shards={0: 2, 1: 2})
        res = sharded_all_pairs(_machine(), W, workers=2)
        _assert_same_answers(res, ref)
        recovered = {f["recovered"] for f in res.shard_report["failures"]
                     if f["recovered"]}
        assert recovered == {"inline"}


class TestTimeouts:
    def test_stalled_worker_is_killed_and_retried(self, inline_result):
        W, ref = inline_result
        set_shard_chaos(slow_shards={1: 1}, slow_seconds=30.0)
        res = sharded_all_pairs(_machine(), W, workers=2,
                                shard_timeout=0.3)
        _assert_same_answers(res, ref)
        failures = res.shard_report["failures"]
        assert failures[0]["kind"] == "timeout"
        assert failures[0]["shard"] == 1
        assert res.shard_report["shard_timeout"] == 0.3

    def test_timeout_default_and_env_override(self, monkeypatch):
        assert DEFAULT_SHARD_TIMEOUT == 120.0
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "7.5")
        W = _graph(10)
        res = sharded_all_pairs(_machine(), W, workers=2)
        assert res.shard_report["shard_timeout"] == 7.5


class TestWorkerErrors:
    def test_raising_worker_recorded_and_recovered(self, inline_result):
        W, ref = inline_result
        set_shard_chaos(raise_shards={0: 2})
        res = sharded_all_pairs(_machine(), W, workers=2)
        _assert_same_answers(res, ref)
        failures = res.shard_report["failures"]
        assert failures[0]["kind"] == "error"
        assert "injected worker exception" in failures[0]["detail"]

    def test_shard_failure_to_dict_roundtrip(self):
        failure = ShardFailure(shard=1, destinations=(5, 10),
                               kind="crash", detail="exitcode -9",
                               attempt=0, recovered="respawn")
        d = failure.to_dict()
        assert d == {"shard": 1, "destinations": [5, 10], "kind": "crash",
                     "detail": "exitcode -9", "attempt": 0,
                     "recovered": "respawn"}


class TestShmHygiene:
    """No shared-memory segment survives any recovery path."""

    @pytest.mark.parametrize("chaos", [
        {},
        {"kill_shards": {0: 1}},
        {"kill_shards": {0: 2, 1: 2}},
        {"raise_shards": {0: 2}},
    ], ids=["clean", "kill-once", "kill-all", "raise"])
    def test_no_dev_shm_leak(self, chaos):
        W = _graph(10)
        before = _list_shm()
        if chaos:
            set_shard_chaos(**chaos)
        sharded_all_pairs(_machine(), W, workers=2)
        clear_shard_chaos()
        leaked = _list_shm() - before
        assert not leaked, f"leaked shared memory segments: {leaked}"

    def test_no_leak_on_timeout(self):
        W = _graph(10)
        before = _list_shm()
        set_shard_chaos(slow_shards={0: 1}, slow_seconds=30.0)
        sharded_all_pairs(_machine(), W, workers=2, shard_timeout=0.3)
        clear_shard_chaos()
        leaked = _list_shm() - before
        assert not leaked, f"leaked shared memory segments: {leaked}"


class TestApiPlumbing:
    def test_shard_timeout_flows_through_all_pairs(self, inline_result):
        W, ref = inline_result
        res = all_pairs_minimum_cost(_machine(), W, workers=2,
                                     shard_timeout=11.0)
        _assert_same_answers(res, ref)
        assert res.shard_report["shard_timeout"] == 11.0

    def test_clean_run_reports_no_failures(self, inline_result):
        W, ref = inline_result
        res = sharded_all_pairs(_machine(), W, workers=2)
        _assert_same_answers(res, ref)
        assert "failures" not in res.shard_report
