"""The analytic cost vector: replay correctness and cache behaviour."""

import numpy as np
import pytest

from repro.core import minimum_cost_path
from repro.engine import (
    clear_cost_cache,
    cost_cache_size,
    cost_cache_stats,
    mcp_cost_vector,
    reset_cost_cache_stats,
)
from repro.engine.costs import _COST_CACHE_SIZE
from repro.ppa import BusCostModel, PPAConfig, PPAMachine
from repro.workloads import WeightSpec, gnp_digraph


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cost_cache()
    reset_cost_cache_stats()
    yield
    clear_cost_cache()


class TestVector:
    def test_probe_verifies_two_rounds_when_possible(self):
        vec = mcp_cost_vector(PPAConfig(n=8, word_bits=16))
        assert vec.probe_iterations == 2

    def test_probe_falls_back_to_one_round_on_n2(self):
        vec = mcp_cost_vector(PPAConfig(n=2, word_bits=8))
        assert vec.probe_iterations == 1

    def test_total_is_init_plus_k_iterations(self):
        vec = mcp_cost_vector(PPAConfig(n=5, word_bits=16))
        k = 7
        for name, value in vec.total(k).items():
            assert value == vec.init[name] + k * vec.iteration[name]

    @pytest.mark.parametrize("word_bits", [8, 12, 16])
    def test_replay_matches_cycle_run_exactly(self, word_bits):
        """init + iterations * iteration == an arbitrary cycle run's
        counter delta (the whole point of the replay)."""
        config = PPAConfig(n=8, word_bits=word_bits)
        vec = mcp_cost_vector(config)
        machine = PPAMachine(config)
        W = gnp_digraph(8, 0.4, seed=9, weights=WeightSpec(1, 9),
                        inf_value=machine.maxint)
        res = minimum_cost_path(machine, W, 3, engine="cycle")
        assert vec.total(res.iterations) == res.counters

    def test_vector_depends_on_bus_cost_model(self):
        unit = mcp_cost_vector(PPAConfig(n=6, word_bits=16))
        linear = mcp_cost_vector(
            PPAConfig(n=6, word_bits=16, bus_cost_model=BusCostModel.LINEAR)
        )
        assert unit.iteration["bus_cycles"] < linear.iteration["bus_cycles"]
        # Instruction issue counts are model-independent.
        assert unit.iteration["instructions"] == linear.iteration["instructions"]

    def test_vector_scales_with_word_width(self):
        h8 = mcp_cost_vector(PPAConfig(n=6, word_bits=8))
        h16 = mcp_cost_vector(PPAConfig(n=6, word_bits=16))
        # The bit-serial min dominates: 2h wired-ORs per iteration.
        assert h16.iteration["reductions"] - h8.iteration["reductions"] == 16


class TestCache:
    def test_hit_miss_accounting(self):
        config = PPAConfig(n=5, word_bits=16)
        mcp_cost_vector(config)
        assert cost_cache_stats() == {"hits": 0, "misses": 1}
        again = mcp_cost_vector(PPAConfig(n=5, word_bits=16))
        assert cost_cache_stats() == {"hits": 1, "misses": 1}
        assert again.config == config
        assert cost_cache_size() == 1

    def test_distinct_configs_probe_separately(self):
        mcp_cost_vector(PPAConfig(n=5, word_bits=16))
        mcp_cost_vector(PPAConfig(n=5, word_bits=8))
        mcp_cost_vector(PPAConfig(n=6, word_bits=16))
        assert cost_cache_stats()["misses"] == 3
        assert cost_cache_size() == 3

    def test_clear_cache_forces_reprobe(self):
        config = PPAConfig(n=4, word_bits=16)
        first = mcp_cost_vector(config)
        clear_cost_cache()
        assert cost_cache_size() == 0
        second = mcp_cost_vector(config)
        assert cost_cache_stats()["misses"] == 2
        assert first.init == second.init
        assert first.iteration == second.iteration

    def test_lru_stays_bounded(self):
        for n in range(2, 2 + _COST_CACHE_SIZE + 8):
            mcp_cost_vector(PPAConfig(n=n, word_bits=16))
        assert cost_cache_size() == _COST_CACHE_SIZE

    def test_probe_counters_never_leak_into_caller(self, machine8):
        """Probing runs on a scratch machine: the caller's books and the
        module-wide probe must not interact."""
        before = machine8.counters.snapshot()
        mcp_cost_vector(machine8.config)
        assert machine8.counters.snapshot() == before
