"""Warm-started analytic solves must be bit-identical to cold solves.

The serving tier's incremental re-solve path seeds `run_analytic_mcp`
with certified upper bounds (`warm_sow`). The contract (proved in
`repro/engine/_loop.py`): for ANY seed that is an entrywise-sound upper
bound, the returned SOW, PTN and iteration count are byte-for-byte what
the cold run returns. A seed that is NOT a sound upper bound (claims a
cost below the true fixpoint) must be detected and rejected, never
silently served.
"""

import numpy as np
import pytest

from repro.core.apsp import all_pairs_minimum_cost
from repro.core.batched import batched_minimum_cost_path
from repro.core.mcp import minimum_cost_path
from repro.errors import GraphError
from repro.ppa.machine import PPAMachine
from repro.ppa.topology import PPAConfig
from repro.serve.delta import (
    apply_edge_delta,
    certify_warm_column,
    certify_warm_plane,
)

ENGINES = ("fused", "compiled")


def machine(n, word_bits=16):
    return PPAMachine(PPAConfig(n=n, word_bits=word_bits))


def random_grid(n, rng, density=0.4, maxint=(1 << 16) - 1):
    W = np.full((n, n), maxint, dtype=np.int64)
    mask = rng.random((n, n)) < density
    W[mask] = rng.integers(1, 10, size=int(mask.sum()))
    np.fill_diagonal(W, 0)
    return W


class TestWarmEqualsCold:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_certified_seed_reproduces_cold_run_exactly(self, engine):
        rng = np.random.default_rng(11)
        for trial in range(15):
            n = int(rng.integers(5, 14))
            m = machine(n)
            W_old = random_grid(n, rng)
            cold_old = {
                d: minimum_cost_path(m, W_old, d, engine=engine)
                for d in range(n)
            }
            # perturb a few edges, certify old answers as warm seeds
            edges = []
            for _ in range(int(rng.integers(1, 4))):
                u = int(rng.integers(0, n))
                v = int(rng.integers(0, n - 1))
                v += v >= u
                w = None if rng.random() < 0.3 else int(rng.integers(1, 10))
                edges.append((u, v, m.maxint if w is None else w))
            W_new = apply_edge_delta(W_old, edges, m.maxint)
            for d in range(n):
                seed = certify_warm_column(
                    W_new, cold_old[d].sow, cold_old[d].ptn, d, m.maxint
                )
                cold = minimum_cost_path(m, W_new, d, engine=engine)
                warm = minimum_cost_path(m, W_new, d, engine=engine,
                                         warm_sow=seed)
                np.testing.assert_array_equal(warm.sow, cold.sow)
                np.testing.assert_array_equal(warm.ptn, cold.ptn)
                assert warm.iterations == cold.iterations

    @pytest.mark.parametrize("engine", ENGINES)
    def test_exact_fixpoint_seed_reproduces_cold_run(self, engine):
        # the tightest sound seed there is: the answer itself
        rng = np.random.default_rng(23)
        n = 10
        m = machine(n)
        W = random_grid(n, rng)
        for d in range(n):
            cold = minimum_cost_path(m, W, d, engine=engine)
            warm = minimum_cost_path(m, W, d, engine=engine,
                                     warm_sow=cold.sow.copy())
            np.testing.assert_array_equal(warm.sow, cold.sow)
            np.testing.assert_array_equal(warm.ptn, cold.ptn)
            assert warm.iterations == cold.iterations

    @pytest.mark.parametrize("engine", ENGINES)
    def test_batched_warm_plane_matches_cold(self, engine):
        rng = np.random.default_rng(31)
        n = 9
        m = machine(n)
        W_old = random_grid(n, rng)
        res_old = all_pairs_minimum_cost(m, W_old, engine=engine)
        edges = [(0, 1, 1), (3, 4, m.maxint)]
        W_new = apply_edge_delta(W_old, edges, m.maxint)
        dests = np.arange(n, dtype=np.int64)
        warm_plane = certify_warm_plane(
            W_new, res_old.dist, res_old.succ, dests, m.maxint
        )
        cold = batched_minimum_cost_path(m.lanes(n), W_new, dests,
                                         engine=engine)
        warm = batched_minimum_cost_path(
            m.lanes(n), W_new, dests, engine=engine,
            warm_sow=np.ascontiguousarray(warm_plane.T),
        )
        np.testing.assert_array_equal(warm.sow, cold.sow)
        np.testing.assert_array_equal(warm.ptn, cold.ptn)
        np.testing.assert_array_equal(warm.iterations, cold.iterations)

    def test_apsp_sweep_accepts_warm_plane(self):
        rng = np.random.default_rng(47)
        n = 8
        m = machine(n)
        W = random_grid(n, rng)
        cold = all_pairs_minimum_cost(m, W, engine="fused")
        warm = all_pairs_minimum_cost(m, W, engine="fused",
                                      warm_sow=cold.dist)
        np.testing.assert_array_equal(warm.dist, cold.dist)
        np.testing.assert_array_equal(warm.succ, cold.succ)
        np.testing.assert_array_equal(warm.iterations, cold.iterations)


class TestUnsoundSeedRejected:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_lying_seed_raises_instead_of_serving_wrong_cost(self, engine):
        rng = np.random.default_rng(5)
        n = 8
        m = machine(n)
        W = random_grid(n, rng)
        cold = minimum_cost_path(m, W, 0, engine=engine)
        finite = np.flatnonzero(
            (cold.sow > 0) & (cold.sow < m.maxint)
        )
        assert finite.size, "graph too sparse for the test to bite"
        lying = cold.sow.copy()
        lying[finite[0]] -= 1  # claims a cost below the true fixpoint
        with pytest.raises(GraphError):
            minimum_cost_path(m, W, 0, engine=engine, warm_sow=lying)

    def test_cycle_engine_ignores_warm_seed(self):
        # the simulator is ground truth: it always runs cold, so even a
        # lying seed changes nothing
        rng = np.random.default_rng(7)
        n = 7
        m = machine(n)
        W = random_grid(n, rng)
        cold = minimum_cost_path(m, W, 0, engine="cycle")
        lying = np.zeros(n, dtype=np.int64)
        warm = minimum_cost_path(m, W, 0, engine="cycle", warm_sow=lying)
        np.testing.assert_array_equal(warm.sow, cold.sow)
        np.testing.assert_array_equal(warm.ptn, cold.ptn)
        assert warm.iterations == cold.iterations
