"""Sharded APSP workers: worker-count invariance, gating, cost shipping.

The sharding layer must be invisible in every result a recorded
experiment could consume: ``dist``/``succ``/``iterations``, the
serial-equivalent ``counters`` and the per-destination ``lane_counters``
are bit-identical across worker counts and engines. ``machine_counters``
legitimately depend on the shard/lane chunking (exactly as the inline
sweep's depend on ``lanes=``), so they are validated structurally — the
parent machine must be charged the merged worker delta.
"""

import numpy as np
import pytest

from repro.core import all_pairs_minimum_cost
from repro.engine import (
    MCPCostVector,
    clear_cost_cache,
    cost_cache_size,
    destination_shards,
    export_cost_cache,
    install_cost_cache,
    mcp_cost_vector,
    sharded_all_pairs,
    workers_block_reason,
)
from repro.errors import EngineError
from repro.ppa import FaultKind, FaultPlan, PPAConfig, PPAMachine
from repro.ppc.reductions import word_parallel_min


def _graph(n, seed=7, density=0.3):
    rng = np.random.default_rng(seed)
    maxint = (1 << 16) - 1
    W = rng.integers(1, 9, size=(n, n)).astype(np.int64)
    W[rng.random((n, n)) < 1.0 - density] = maxint
    np.fill_diagonal(W, 0)
    return W


def _assert_equal(a, b, context=""):
    assert np.array_equal(a.dist, b.dist), context
    assert np.array_equal(a.succ, b.succ), context
    assert np.array_equal(a.iterations, b.iterations), context
    assert a.counters == b.counters, context
    for name in a.lane_counters:
        assert np.array_equal(
            a.lane_counters[name], b.lane_counters[name]
        ), f"{context}: {name}"


class TestWorkerInvariance:
    @pytest.mark.parametrize("workers", [2, 3, 5])
    def test_results_and_serial_ledgers(self, workers):
        n = 13
        W = _graph(n)
        base = all_pairs_minimum_cost(PPAMachine(PPAConfig(n=n)), W)
        res = all_pairs_minimum_cost(
            PPAMachine(PPAConfig(n=n)), W, workers=workers
        )
        _assert_equal(base, res, f"workers={workers}")
        assert res.shard_report["workers"] == workers

    @pytest.mark.parametrize("engine", ["cycle", "fused", "compiled"])
    def test_every_engine_shards_identically(self, engine):
        n = 9
        W = _graph(n, seed=3)
        base = all_pairs_minimum_cost(
            PPAMachine(PPAConfig(n=n)), W, engine="cycle"
        )
        res = all_pairs_minimum_cost(
            PPAMachine(PPAConfig(n=n)), W, engine=engine, workers=2
        )
        _assert_equal(base, res, engine)
        assert res.shard_report["engine"] == engine

    def test_lane_cap_composes_with_workers(self):
        n = 11
        W = _graph(n, seed=5)
        base = all_pairs_minimum_cost(PPAMachine(PPAConfig(n=n)), W)
        res = all_pairs_minimum_cost(
            PPAMachine(PPAConfig(n=n)), W, workers=2, lanes=3
        )
        _assert_equal(base, res, "lanes=3")
        assert res.shard_report["lane_cap"] == 3

    def test_workers_clamped_to_n(self):
        n = 3
        W = _graph(n, seed=1, density=0.9)
        res = all_pairs_minimum_cost(
            PPAMachine(PPAConfig(n=n)), W, workers=8
        )
        assert res.shard_report["workers"] == n
        assert res.shard_report["requested_workers"] == 8

    def test_parent_machine_charged_merged_delta(self):
        n = 8
        W = _graph(n, seed=2)
        machine = PPAMachine(PPAConfig(n=n))
        before = machine.counters.snapshot()
        res = all_pairs_minimum_cost(machine, W, workers=2)
        assert machine.counters.diff(before) == res.machine_counters
        assert sum(res.machine_counters.values()) > 0


class TestCostCacheShipping:
    def test_workers_hit_never_probe(self):
        n = 10
        W = _graph(n, seed=9)
        res = all_pairs_minimum_cost(
            PPAMachine(PPAConfig(n=n)), W, workers=2, engine="fused"
        )
        stats = [w["cost_cache"] for w in res.shard_report["worker_stats"]]
        assert len(stats) == 2
        for s in stats:
            assert s["misses"] == 0, "worker re-probed a shipped cost vector"
            assert s["hits"] >= 1

    def test_export_round_trips_through_install(self):
        config = PPAConfig(n=5, word_bits=12)
        vector = mcp_cost_vector(config)
        exported = export_cost_cache()
        assert vector in exported
        clear_cost_cache()
        assert cost_cache_size() == 0
        install_cost_cache(exported)
        assert cost_cache_size() == len(exported)
        assert mcp_cost_vector(config) == vector  # a hit, not a re-probe

    def test_exported_vectors_pickle(self):
        import pickle

        mcp_cost_vector(PPAConfig(n=4, word_bits=16))
        exported = export_cost_cache()
        restored = pickle.loads(pickle.dumps(exported))
        assert restored == exported
        assert all(isinstance(v, MCPCostVector) for v in restored)

    def test_install_rejects_foreign_objects(self):
        with pytest.raises(EngineError, match="MCPCostVector"):
            install_cost_cache([{"init": {}, "iteration": {}}])


class TestGating:
    def test_serial_request_blocks(self, machine8):
        assert "serial" in workers_block_reason(machine8, serial=True)

    def test_fault_plan_blocks(self, machine8):
        plan = FaultPlan()
        plan.add(1, 1, FaultKind.STUCK_OPEN)
        machine8.inject_faults(plan)
        assert "fault plan" in workers_block_reason(machine8)

    def test_tracer_blocks(self, machine8):
        machine8.telemetry.enable()
        assert "span tracer" in workers_block_reason(machine8)

    def test_bus_trace_blocks(self, machine8):
        machine8.trace.enabled = True
        assert "bus trace" in workers_block_reason(machine8)

    def test_word_parallel_blocks(self, machine8):
        assert "word-parallel" in workers_block_reason(
            machine8, word_parallel=True
        )

    def test_custom_routines_block(self, machine8):
        assert "min routine" in workers_block_reason(
            machine8, min_routine=word_parallel_min
        )
        sentinel = lambda *a: None  # noqa: E731
        assert "selected_min" in workers_block_reason(
            machine8, selected_min_routine=sentinel
        )

    def test_batched_machine_blocks(self):
        machine = PPAMachine(PPAConfig(n=4, word_bits=16), batch=3)
        assert "already batched" in workers_block_reason(machine)

    def test_plain_machine_clears(self, machine8):
        assert workers_block_reason(machine8) is None

    def test_blocked_request_falls_back_inline_with_reason(self):
        n = 6
        W = _graph(n, seed=4)
        machine = PPAMachine(PPAConfig(n=n))
        machine.trace.enabled = True
        base = all_pairs_minimum_cost(PPAMachine(PPAConfig(n=n)), W)
        res = all_pairs_minimum_cost(machine, W, workers=4)
        assert np.array_equal(base.dist, res.dist)
        assert res.shard_report["workers"] == 1
        assert "bus trace" in res.shard_report["blocked"]

    def test_direct_entry_raises_when_blocked(self, machine8):
        machine8.telemetry.enable()
        with pytest.raises(EngineError, match="span tracer"):
            sharded_all_pairs(machine8, np.zeros((8, 8)), workers=2)


class TestShardLayout:
    def test_contiguous_cover(self):
        shards = destination_shards(10, 3)
        assert shards == [(0, 4), (4, 7), (7, 10)]
        assert shards[0][0] == 0 and shards[-1][1] == 10
        for (a, b), (c, _) in zip(shards, shards[1:]):
            assert b == c

    def test_clamps_and_validates(self):
        assert destination_shards(2, 99) == [(0, 1), (1, 2)]
        with pytest.raises(EngineError, match="workers"):
            destination_shards(4, 0)
