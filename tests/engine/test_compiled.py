"""Differential cross-validation: compiled == fused == cycle, bit for bit.

The compiled tier's contract is identical to the fused engine's — exact
equivalence with the cycle engine on SOW/PTN, iteration counts, the scalar
counter book and every per-lane serial-equivalent ledger — computed
through cache-blocked kernels instead of whole-array temporaries. The
property tests here drive all three engines over random graphs, word
widths and lane counts, and additionally sweep the block size (including
degenerate 1-row tiles) to pin the cross-tile argmin tie-break.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import minimum_cost_path
from repro.core.batched import batched_minimum_cost_path
from repro.engine import blocked_relax, compiled_kernel_info, row_block
from repro.engine.compiled import _relax_numpy_blocked
from repro.engine.fused import _relax
from repro.errors import GraphError
from repro.ppa import PPAConfig, PPAMachine

from tests.engine.test_differential import batched_case, graph_case


def _run_three(n, word_bits, W, d):
    return {
        engine: minimum_cost_path(
            PPAMachine(PPAConfig(n=n, word_bits=word_bits)), W, d,
            engine=engine,
        )
        for engine in ("cycle", "fused", "compiled")
    }


class TestSerialEquivalence:
    @given(graph_case())
    @settings(max_examples=60)
    def test_sow_ptn_iterations_counters(self, case):
        n, word_bits, W, d = case
        runs = _run_three(n, word_bits, W, d)
        ref = runs["cycle"]
        for engine in ("fused", "compiled"):
            res = runs[engine]
            assert np.array_equal(ref.sow, res.sow), engine
            assert np.array_equal(ref.ptn, res.ptn), engine
            assert ref.iterations == res.iterations, engine
            assert ref.counters == res.counters, engine

    def test_block_size_sweep_is_bit_identical(self, monkeypatch):
        """Every tile size — including 1-row tiles, which maximise the
        number of cross-tile argmin merges — gives the same answer."""
        rng = np.random.default_rng(9)
        n = 17  # prime: tiles never divide evenly
        maxint = (1 << 16) - 1
        W = rng.integers(1, 9, size=(n, n)).astype(np.int64)
        W[rng.random((n, n)) < 0.55] = maxint
        np.fill_diagonal(W, 0)
        ref = minimum_cost_path(
            PPAMachine(PPAConfig(n=n, word_bits=16)), W, 3, engine="fused"
        )
        for block in ("1", "2", "5", "16", "1000"):
            monkeypatch.setenv("REPRO_COMPILED_BLOCK", block)
            res = minimum_cost_path(
                PPAMachine(PPAConfig(n=n, word_bits=16)), W, 3,
                engine="compiled",
            )
            assert np.array_equal(ref.sow, res.sow), block
            assert np.array_equal(ref.ptn, res.ptn), block
            assert ref.counters == res.counters, block

    def test_smallest_index_tie_break_across_tiles(self, monkeypatch):
        """Equal-cost successors in different tiles: the blocked kernel
        must keep numpy's first-occurrence (smallest-index) winner."""
        monkeypatch.setenv("REPRO_COMPILED_BLOCK", "1")
        maxint = (1 << 16) - 1
        W = np.full((4, 4), maxint, dtype=np.int64)
        np.fill_diagonal(W, 0)
        W[3, 1] = 2
        W[3, 2] = 2
        W[1, 0] = 5
        W[2, 0] = 5
        res = minimum_cost_path(
            PPAMachine(PPAConfig(n=4, word_bits=16)), W, 0,
            engine="compiled",
        )
        assert res.ptn[3] == 1  # not 2

    def test_max_iterations_error_parity(self):
        maxint = (1 << 16) - 1
        W = np.full((3, 3), maxint, dtype=np.int64)
        np.fill_diagonal(W, 0)
        W[1, 0] = 1
        W[2, 1] = 1
        with pytest.raises(GraphError, match="did not converge"):
            minimum_cost_path(
                PPAMachine(PPAConfig(n=3, word_bits=16)),
                W, 0, max_iterations=1, engine="compiled",
            )


class TestBatchedEquivalence:
    @given(batched_case())
    @settings(max_examples=40)
    def test_all_ledgers_lane_for_lane(self, case):
        n, B, word_bits, W, dest = case
        rf = batched_minimum_cost_path(
            PPAMachine(PPAConfig(n=n, word_bits=word_bits), batch=B),
            W, dest, engine="fused",
        )
        rc = batched_minimum_cost_path(
            PPAMachine(PPAConfig(n=n, word_bits=word_bits), batch=B),
            W, dest, engine="compiled",
        )
        assert np.array_equal(rf.sow, rc.sow)
        assert np.array_equal(rf.ptn, rc.ptn)
        assert np.array_equal(rf.iterations, rc.iterations)
        assert rf.counters == rc.counters
        assert set(rf.lane_counters) == set(rc.lane_counters)
        for name in rf.lane_counters:
            assert np.array_equal(
                rf.lane_counters[name], rc.lane_counters[name]
            ), name

    def test_compiled_lane_ledger_matches_serial_cycle_runs(self):
        rng = np.random.default_rng(11)
        n = 6
        maxint = (1 << 16) - 1
        W = rng.integers(1, 9, size=(n, n)).astype(np.int64)
        W[rng.random((n, n)) < 0.5] = maxint
        np.fill_diagonal(W, 0)
        res = batched_minimum_cost_path(
            PPAMachine(PPAConfig(n=n, word_bits=16), batch=n),
            W, np.arange(n), engine="compiled",
        )
        for b in range(n):
            serial = minimum_cost_path(
                PPAMachine(PPAConfig(n=n, word_bits=16)), W, b,
                engine="cycle",
            )
            lane = res.lane(b)
            assert np.array_equal(lane.sow, serial.sow)
            assert np.array_equal(lane.ptn, serial.ptn)
            assert lane.iterations == serial.iterations
            assert lane.counters == serial.counters


class TestKernel:
    """The relaxation kernel itself, independent of the MCP loop."""

    @given(st.integers(1, 6), st.integers(2, 12), st.integers(0, 2**31 - 1))
    @settings(max_examples=40)
    def test_blocked_matches_whole_array(self, B, n, seed):
        rng = np.random.default_rng(seed)
        maxint = (1 << 12) - 1
        sow = rng.integers(0, maxint + 1, size=(B, n)).astype(np.int64)
        W = rng.integers(0, maxint + 1, size=(n, n)).astype(np.int64)
        ref = _relax(sow, W, maxint)
        got = _relax_numpy_blocked(sow, W, maxint)
        assert np.array_equal(ref[0], got[0])
        assert np.array_equal(ref[1], got[1])

    def test_serial_shape_round_trip(self):
        rng = np.random.default_rng(1)
        maxint = (1 << 16) - 1
        sow = rng.integers(0, 50, size=7).astype(np.int64)
        W = rng.integers(0, 50, size=(7, 7)).astype(np.int64)
        ref = _relax(sow, W, maxint)
        got = blocked_relax(sow, W, maxint)
        assert got[0].shape == (7,) and got[1].shape == (7,)
        assert np.array_equal(ref[0], got[0])
        assert np.array_equal(ref[1], got[1])

    def test_per_lane_weights(self):
        rng = np.random.default_rng(2)
        maxint = (1 << 16) - 1
        sow = rng.integers(0, 50, size=(3, 5)).astype(np.int64)
        W = rng.integers(0, 50, size=(3, 5, 5)).astype(np.int64)
        ref = _relax(sow, W, maxint)
        got = blocked_relax(sow, W, maxint)
        assert np.array_equal(ref[0], got[0])
        assert np.array_equal(ref[1], got[1])

    def test_saturation_before_argmin(self):
        """Clipping must happen before the argmin: two candidates that
        both saturate to MAXINT tie, and the smaller index must win."""
        maxint = 100
        sow = np.array([[90, 95, 0]], dtype=np.int64)
        W = np.array([[50, 60, maxint]] * 3, dtype=np.int64)
        best, arg = blocked_relax(sow, W, maxint)
        assert best[0, 0] == maxint
        assert arg[0, 0] == 0  # 140 and 155 both clip to 100; index 0 wins

    def test_row_block_sizing(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMPILED_BLOCK", raising=False)
        assert row_block(1, 16) == 16  # capped at n
        assert row_block(1, 1024) == 128  # 1 MiB / (1024 * 8)
        assert row_block(64, 4096) >= 16  # floored
        monkeypatch.setenv("REPRO_COMPILED_BLOCK", "40")
        assert row_block(1, 1024) == 40
        assert row_block(1, 8) == 8  # override still capped at n

    def test_kernel_info_reports_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NUMBA", "1")
        info = compiled_kernel_info()
        assert info["numba_active"] is False
        assert info["backend"] == "numpy-blocked"
        assert isinstance(info["numba_installed"], bool)

    def test_disable_env_forces_numpy_path(self, monkeypatch):
        """REPRO_DISABLE_NUMBA must not change any result (CI runs the
        whole suite under it on numba-equipped hosts)."""
        rng = np.random.default_rng(4)
        n = 9
        maxint = (1 << 16) - 1
        W = rng.integers(1, 9, size=(n, n)).astype(np.int64)
        W[rng.random((n, n)) < 0.4] = maxint
        np.fill_diagonal(W, 0)
        ref = minimum_cost_path(
            PPAMachine(PPAConfig(n=n, word_bits=16)), W, 1, engine="fused"
        )
        monkeypatch.setenv("REPRO_DISABLE_NUMBA", "1")
        res = minimum_cost_path(
            PPAMachine(PPAConfig(n=n, word_bits=16)), W, 1, engine="compiled"
        )
        assert np.array_equal(ref.sow, res.sow)
        assert np.array_equal(ref.ptn, res.ptn)
        assert ref.counters == res.counters
