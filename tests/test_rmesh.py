"""Reconfigurable Mesh substrate and its constant-time algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BusError, ConfigurationError, GraphError
from repro.ppa import PPAConfig, PPAMachine
from repro.rmesh import (
    CONFIGS,
    Port,
    RMeshMachine,
    count_ones,
    global_or_one_step,
    leftmost_one,
    parity,
    partition_of,
    ppa_count_ones_row,
    prefix_or,
)
from repro.rmesh.switches import ALL_PARTITIONS


class TestSwitchConfigs:
    def test_fifteen_partitions(self):
        assert len(ALL_PARTITIONS) == 15
        assert len({p for p in ALL_PARTITIONS}) == 15

    def test_every_partition_covers_all_ports(self):
        for p in ALL_PARTITIONS:
            assert set().union(*p) == {"N", "E", "S", "W"}

    def test_named_configs_resolve(self):
        assert CONFIGS["ROW"].fuses("E", "W")
        assert not CONFIGS["ROW"].fuses("N", "E")
        assert CONFIGS["ALL"].fuses("N", "W")
        assert CONFIGS["STAIR_DOWN"].fuses("W", "S")
        assert CONFIGS["STAIR_DOWN"].fuses("N", "E")
        assert not CONFIGS["STAIR_DOWN"].fuses("W", "N")
        assert CONFIGS["ISOLATE"].blocks == tuple(
            sorted((frozenset({p}) for p in "NESW"), key=sorted)
        )

    def test_ids_distinct(self):
        ids = [c.id for c in CONFIGS.values()]
        assert len(ids) == len(set(ids))

    def test_partition_of_bounds(self):
        partition_of(0)
        partition_of(14)
        with pytest.raises(ValueError):
            partition_of(15)


def naive_bus_labels(machine: RMeshMachine) -> np.ndarray:
    """BFS reference for bus resolution."""
    n = machine.n
    adj: dict[tuple, set] = {}

    def add(a, b):
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set()).add(a)

    for r in range(n):
        for c in range(n):
            if c < n - 1:
                add((r, c, int(Port.E)), (r, c + 1, int(Port.W)))
            if r < n - 1:
                add((r, c, int(Port.S)), (r + 1, c, int(Port.N)))
            for block in partition_of(int(machine._config[r, c])):
                ports = sorted(block)
                for a, b in zip(ports, ports[1:]):
                    add((r, c, "NESW".index(a)), (r, c, "NESW".index(b)))
    labels = -np.ones((n, n, 4), dtype=int)
    next_id = 0
    for r in range(n):
        for c in range(n):
            for p in range(4):
                if labels[r, c, p] >= 0:
                    continue
                stack = [(r, c, p)]
                labels[r, c, p] = next_id
                while stack:
                    node = stack.pop()
                    for nb in adj.get(node, ()):
                        if labels[nb] < 0:
                            labels[nb] = next_id
                            stack.append(nb)
                next_id += 1
    return labels


def same_partition(a: np.ndarray, b: np.ndarray) -> bool:
    pairs = {}
    for x, y in zip(a.ravel(), b.ravel()):
        if pairs.setdefault(int(x), int(y)) != int(y):
            return False
    return len(set(pairs.values())) == len(pairs)


class TestBusResolution:
    def test_isolate_rows_of_buses(self):
        m = RMeshMachine(3)
        m.set_config_named("ROW")
        labels = m.bus_labels()
        # each row one bus; N/S ports pair up between rows
        assert labels[0, 0, Port.E] == labels[0, 2, Port.W]
        assert labels[0, 0, Port.E] != labels[1, 0, Port.E]

    def test_all_single_bus(self):
        m = RMeshMachine(4)
        m.set_config_named("ALL")
        labels = m.bus_labels()
        assert len(np.unique(labels)) == 1

    @given(st.integers(0, 10_000))
    @settings(max_examples=20)
    def test_matches_naive_reference(self, seed):
        rng = np.random.default_rng(seed)
        m = RMeshMachine(4)
        m.set_config(rng.integers(0, 15, size=(4, 4)))
        assert same_partition(m.bus_labels(), naive_bus_labels(m))

    def test_reconfigure_invalidates_labels(self):
        m = RMeshMachine(3)
        m.set_config_named("ROW")
        a = m.bus_labels()
        m.set_config_named("COL")
        b = m.bus_labels()
        assert not same_partition(a, b) or not np.array_equal(a, b)

    def test_bad_config_id(self):
        with pytest.raises(ConfigurationError):
            RMeshMachine(3).set_config(99)


class TestSignalsAndBroadcast:
    def test_signal_propagates_on_row_bus(self):
        m = RMeshMachine(4)
        m.set_config_named("ROW")
        drivers = np.zeros((4, 4, 4), dtype=bool)
        drivers[2, 0, Port.E] = True
        signal = m.bus_signal(drivers)
        assert signal[2, 3, Port.W]
        assert not signal[1, 3, Port.W]

    def test_signal_shape_checked(self):
        m = RMeshMachine(3)
        with pytest.raises(BusError, match="shape"):
            m.bus_signal(np.zeros((3, 3), dtype=bool))

    def test_broadcast_word(self):
        m = RMeshMachine(4)
        m.set_config_named("ROW")
        values = np.zeros((4, 4), dtype=np.int64)
        values[1, 2] = 77
        drivers = np.zeros((4, 4, 4), dtype=bool)
        drivers[1, 2, Port.E] = True
        out = m.broadcast(values, drivers)
        assert out[1, 0, Port.E] == 77
        assert out[0, 0, Port.E] == 0  # undriven bus

    def test_broadcast_conflict(self):
        m = RMeshMachine(4)
        m.set_config_named("ROW")
        values = np.arange(16).reshape(4, 4)
        drivers = np.zeros((4, 4, 4), dtype=bool)
        drivers[0, 0, Port.E] = drivers[0, 3, Port.W] = True
        with pytest.raises(BusError, match="conflicting"):
            m.broadcast(values, drivers)

    def test_counters(self):
        m = RMeshMachine(4)
        m.set_config_named("ALL")
        m.bus_signal(np.zeros((4, 4, 4), dtype=bool))
        assert m.counters.bus_cycles == 1
        assert m.counters.bit_cycles == 1


class TestCountOnes:
    @pytest.mark.parametrize("pattern", [
        [], [1], [0, 0, 0], [1, 1, 1], [1, 0, 1, 0, 1], [0, 1, 1, 0],
    ])
    def test_hand_cases(self, pattern):
        m = RMeshMachine(8)
        assert count_ones(m, np.array(pattern, dtype=bool)) == sum(pattern)

    def test_single_bus_cycle(self):
        m = RMeshMachine(8)
        count_ones(m, np.ones(7, dtype=bool))
        assert m.counters.bus_cycles == 1

    def test_too_many_bits(self):
        with pytest.raises(GraphError, match="at most"):
            count_ones(RMeshMachine(4), np.ones(4, dtype=bool))

    @given(seed=st.integers(0, 10_000), n=st.integers(2, 10))
    @settings(max_examples=30)
    def test_property_matches_sum(self, seed, n):
        rng = np.random.default_rng(seed)
        bits = rng.random(n - 1) < 0.5
        assert count_ones(RMeshMachine(n), bits) == int(bits.sum())

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=10)
    def test_parity(self, seed):
        rng = np.random.default_rng(seed)
        bits = rng.random(7) < 0.5
        assert parity(RMeshMachine(8), bits) == int(bits.sum()) % 2


class TestPriorityPrimitives:
    def test_prefix_or(self):
        m = RMeshMachine(6)
        bits = np.array([0, 1, 0, 1, 0, 0], dtype=bool)
        got = prefix_or(m, bits)
        assert got.tolist() == [False, False, True, True, True, True]

    def test_prefix_or_single_cycle(self):
        m = RMeshMachine(6)
        prefix_or(m, np.ones(6, dtype=bool))
        assert m.counters.bus_cycles == 1

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=20)
    def test_leftmost_one(self, seed):
        rng = np.random.default_rng(seed)
        bits = rng.random(8) < 0.3
        got = leftmost_one(RMeshMachine(8), bits)
        want = int(np.argmax(bits)) if bits.any() else None
        assert got == want

    def test_global_or(self):
        m = RMeshMachine(5)
        assert global_or_one_step(m, np.zeros((5, 5), bool)) is False
        flags = np.zeros((5, 5), bool)
        flags[4, 4] = True
        assert global_or_one_step(m, flags) is True


class TestPowerSeparation:
    def test_rmesh_constant_vs_ppa_linear(self):
        """The Section-4 claim: counting is O(1) on RMESH, Θ(n) on PPA."""
        rng = np.random.default_rng(1)
        for n in (8, 16, 32):
            bits = rng.random(n - 1) < 0.5
            rm = RMeshMachine(n)
            want = int(bits.sum())
            assert count_ones(rm, bits) == want
            assert rm.counters.bus_cycles == 1

            ppa = PPAMachine(PPAConfig(n=n))
            got, cycles = ppa_count_ones_row(ppa, bits)
            assert got == want
            assert cycles >= n - 1  # the fold is Theta(n) hops

    def test_ppa_count_rejects_overflow_row(self):
        with pytest.raises(GraphError, match="at most"):
            ppa_count_ones_row(PPAMachine(PPAConfig(n=4)), np.ones(5))


class TestRMeshMCP:
    """The PPA algorithm ported to RMESH row/column configurations."""

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_oracle(self, seed):
        from repro.baselines.sequential import bellman_ford
        from repro.rmesh import rmesh_mcp
        from repro.workloads import WeightSpec, gnp_digraph

        inf = (1 << 16) - 1
        W = gnp_digraph(8, 0.35, seed=seed, weights=WeightSpec(1, 9),
                        inf_value=inf)
        d = seed % 8
        res = rmesh_mcp(RMeshMachine(8), W, d)
        bf = bellman_ford(W, d, maxint=inf)
        assert np.array_equal(res.sow, bf.sow)
        assert res.iterations == bf.iterations

    def test_same_iteration_count_as_ppa(self):
        from repro import minimum_cost_path
        from repro.rmesh import rmesh_mcp
        from repro.workloads import gnp_digraph

        inf = (1 << 16) - 1
        W = gnp_digraph(8, 0.4, seed=3, inf_value=inf)
        ppa = minimum_cost_path(PPAMachine(PPAConfig(n=8)), W, 2)
        rm = rmesh_mcp(RMeshMachine(8), W, 2)
        assert np.array_equal(rm.sow, ppa.sow)
        assert np.array_equal(rm.ptn, ppa.ptn)
        assert rm.iterations == ppa.iterations

    def test_cost_is_o_ph(self):
        """Same complexity class as the PPA: ~2h wired-ORs per iteration."""
        from repro.rmesh import rmesh_mcp
        from repro.workloads import complete_graph, WeightSpec

        inf = (1 << 16) - 1
        W = complete_graph(8, seed=2, weights=WeightSpec(1, 9), inf_value=inf)
        res = rmesh_mcp(RMeshMachine(8, word_bits=16), W, 0)
        per_iter = res.counters["bus_cycles"] / res.iterations
        assert 2 * 16 <= per_iter <= 2 * 16 + 10

    def test_destination_validation(self):
        from repro.rmesh import rmesh_mcp

        W = np.zeros((4, 4), dtype=np.int64)
        with pytest.raises(GraphError, match="destination"):
            rmesh_mcp(RMeshMachine(4), W, 9)

    def test_size_mismatch(self):
        from repro.errors import MaskError
        from repro.rmesh import rmesh_mcp

        with pytest.raises(MaskError, match="requires"):
            rmesh_mcp(RMeshMachine(4), np.zeros((5, 5), dtype=np.int64), 0)


class TestStaircaseRouting:
    """Port-level signal routing through the corner configurations."""

    def test_stair_down_routes_w_to_s(self):
        m = RMeshMachine(3)
        m.set_config_named("STAIR_DOWN")
        drivers = np.zeros((3, 3, 4), dtype=bool)
        drivers[0, 0, Port.W] = True
        sig = m.bus_signal(drivers)
        # W fuses to S: the signal dives immediately and then goes east one
        # per row (N fuses to E below)
        assert sig[0, 0, Port.S]
        assert sig[1, 0, Port.N] and sig[1, 0, Port.E]
        assert not sig[0, 0, Port.E]

    def test_stair_up_routes_w_to_n(self):
        m = RMeshMachine(3)
        m.set_config_named("STAIR_UP")
        drivers = np.zeros((3, 3, 4), dtype=bool)
        drivers[2, 0, Port.W] = True
        sig = m.bus_signal(drivers)
        assert sig[2, 0, Port.N]
        assert sig[1, 0, Port.S] and sig[1, 0, Port.E]

    def test_cross_keeps_row_and_column_separate(self):
        m = RMeshMachine(3)
        m.set_config_named("CROSS")
        drivers = np.zeros((3, 3, 4), dtype=bool)
        drivers[1, 0, Port.E] = True  # drive row 1's bus
        sig = m.bus_signal(drivers)
        assert sig[1, 2, Port.W]
        assert not sig[0, 1, Port.S]  # column buses stay silent

    def test_mixed_configuration_snake(self):
        """A bus that turns two corners: row 0 east, down column 2, row 2."""
        m = RMeshMachine(4)
        ids = np.full((4, 4), CONFIGS["ISOLATE"].id)
        ids[0, 0] = ids[0, 1] = CONFIGS["ROW"].id
        ids[0, 2] = CONFIGS["SW"].id          # arrives W, leaves S
        ids[1, 2] = CONFIGS["COL"].id
        ids[2, 2] = CONFIGS["NW"].id          # arrives N, leaves W
        ids[2, 0] = ids[2, 1] = CONFIGS["ROW"].id
        m.set_config(ids)
        drivers = np.zeros((4, 4, 4), dtype=bool)
        drivers[0, 0, Port.W] = True
        sig = m.bus_signal(drivers)
        assert sig[0, 2, Port.W]
        assert sig[2, 2, Port.N]
        assert sig[2, 0, Port.W]
        assert not sig[3, 2, Port.N]  # snake ends at the NW elbow
