"""End-to-end attribution exactness and the zero-overhead guarantee.

Two properties back the telemetry subsystem's claims:

1. **Exactness** — per-phase counter attribution is a partition of the
   run's totals: every span's inclusive counters equal its exclusive
   counters plus the sum of its children's, the per-iteration phases sum
   exactly to the iteration, and the root span equals the run's
   ``MCPResult.counters``.
2. **Zero overhead** — enabling the tracer changes *no* counter: the same
   run traced and untraced produces bit-identical counter dictionaries,
   and the untraced counters match the golden values recorded from the
   pre-telemetry seed (the CI guard).
"""

import numpy as np
import pytest

from repro.baselines import GCNMachine, HypercubeMachine, MeshMachine
from repro.core import minimum_cost_path
from repro.core.apsp import all_pairs_minimum_cost
from repro.core.asm_mcp import minimum_cost_path_asm
from repro.core.mst import boruvka_mst
from repro.ppa import PPAConfig, PPAMachine
from repro.telemetry import RunProfile, aggregate_phases
from repro.workloads import WeightSpec, gnp_digraph

#: The acceptance workload: 16x16 gnp graph, seed 1, destination 3.
_N, _SEED, _D, _H = 16, 1, 3, 16
_INF = (1 << _H) - 1

#: Counter totals of the untraced seed implementation on the acceptance
#: workload — recorded before the telemetry subsystem existed. Telemetry
#: must never move these.
GOLDEN_PPA_COUNTERS = {
    "instructions": 647,
    "broadcasts": 23,
    "reductions": 96,
    "shifts": 0,
    "alu_ops": 525,
    "global_ors": 3,
    "bus_cycles": 125,
    "bit_cycles": 470,
}

ITERATION_PHASES = {
    "mcp.broadcast", "mcp.min", "mcp.selected_min", "mcp.writeback",
    "mcp.convergence",
}


def _graph():
    return gnp_digraph(
        _N, 0.3, seed=_SEED, weights=WeightSpec(1, 9), inf_value=_INF
    )


def _machine():
    return PPAMachine(PPAConfig(n=_N, word_bits=_H))


def _sum_counters(spans):
    totals: dict[str, int] = {}
    for s in spans:
        for k, v in s.counters.items():
            totals[k] = totals.get(k, 0) + v
    return totals


@pytest.fixture(scope="module")
def traced_run():
    machine = _machine()
    with machine.telemetry.capture():
        result = minimum_cost_path(machine, _graph(), _D)
    profile = RunProfile.from_tracer(machine.telemetry, arch="ppa", n=_N, d=_D)
    return machine, result, profile


class TestZeroOverhead:
    def test_untraced_matches_golden(self):
        result = minimum_cost_path(_machine(), _graph(), _D)
        assert result.counters == GOLDEN_PPA_COUNTERS
        assert result.iterations == 3

    def test_traced_matches_golden(self, traced_run):
        _, result, _ = traced_run
        assert result.counters == GOLDEN_PPA_COUNTERS

    def test_traced_and_untraced_sow_identical(self, traced_run):
        _, traced, _ = traced_run
        untraced = minimum_cost_path(_machine(), _graph(), _D)
        assert np.array_equal(traced.sow, untraced.sow)
        assert np.array_equal(traced.ptn, untraced.ptn)

    @pytest.mark.parametrize("cls", [GCNMachine, HypercubeMachine, MeshMachine])
    def test_baselines_unperturbed(self, cls):
        W = _graph()
        plain = cls(_N, word_bits=_H).mcp(W, _D)
        m = cls(_N, word_bits=_H)
        with m.telemetry.capture():
            traced = m.mcp(W, _D)
        assert traced.counters == plain.counters

    def test_rmesh_unperturbed(self):
        from repro.rmesh import RMeshMachine, rmesh_mcp

        W = _graph()
        plain = rmesh_mcp(RMeshMachine(_N, word_bits=_H), W, _D)
        m = RMeshMachine(_N, word_bits=_H)
        with m.telemetry.capture():
            traced = rmesh_mcp(m, W, _D)
        assert traced.counters == plain.counters

    def test_asm_unperturbed(self):
        W = _graph()
        plain = minimum_cost_path_asm(_machine(), W, _D)
        m = _machine()
        with m.telemetry.capture():
            traced = minimum_cost_path_asm(m, W, _D)
        assert traced.counters == plain.counters


class TestExactness:
    """Acceptance criterion: attribution partitions the totals exactly."""

    def test_root_equals_run_counters(self, traced_run):
        _, result, profile = traced_run
        (root,) = profile.spans
        assert root.name == "mcp"
        assert root.counters == result.counters
        assert profile.counters == result.counters

    def test_inclusive_equals_self_plus_children_everywhere(self, traced_run):
        _, _, profile = traced_run
        for span in profile.walk():
            rebuilt = dict(span.self_counters)
            for child in span.children:
                for k, v in child.counters.items():
                    rebuilt[k] = rebuilt.get(k, 0) + v
            assert {k: v for k, v in rebuilt.items() if v} == {
                k: v for k, v in span.counters.items() if v
            }, span.name

    def test_iteration_children_are_the_five_phases(self, traced_run):
        _, result, profile = traced_run
        iterations = profile.find("mcp.iteration")
        assert len(iterations) == result.iterations == 3
        for it in iterations:
            assert [c.name for c in it.children] == sorted(
                ITERATION_PHASES,
                key=["mcp.broadcast", "mcp.min", "mcp.selected_min",
                     "mcp.writeback", "mcp.convergence"].index,
            )

    def test_phases_sum_exactly_to_iteration(self, traced_run):
        _, _, profile = traced_run
        for it in profile.find("mcp.iteration"):
            phase_sum = _sum_counters(it.children)
            itself = it.self_counters
            for k, v in it.counters.items():
                assert phase_sum.get(k, 0) + itself.get(k, 0) == v

    def test_phase_attribution_sums_to_run_totals(self, traced_run):
        """broadcast + min + selected_min (+ writeback + convergence + init)
        attributions sum exactly to the run's CycleCounters totals."""
        _, result, profile = traced_run
        spans = [
            s for s in profile.walk()
            if s.name in ITERATION_PHASES or s.name == "mcp.init"
        ]
        totals = _sum_counters(spans)
        (root,) = profile.spans
        leftovers = root.self_counters  # instructions outside any phase
        for k, v in result.counters.items():
            assert totals.get(k, 0) + leftovers.get(k, 0) == v, k

    def test_aggregate_phases_partitions_totals(self, traced_run):
        _, result, profile = traced_run
        agg = aggregate_phases(profile)
        for k, v in result.counters.items():
            assert sum(b.get(k, 0) for b in agg.values()) == v, k

    def test_bit_slices_nested_under_min(self, traced_run):
        _, _, profile = traced_run
        # h bit-slices per elimination, one elimination per min and one per
        # selected_min, per iteration.
        assert len(profile.find("min.bit_slice")) == 2 * 3 * _H
        for parent in profile.find("min") + profile.find("selected_min"):
            slices = [c for c in parent.children if c.name == "min.bit_slice"]
            assert len(slices) == _H
            assert [c.attrs["j"] for c in slices] == list(range(_H - 1, -1, -1))


class TestExecutorOpcodes:
    def test_opcode_histogram_recorded(self):
        m = _machine()
        with m.telemetry.capture():
            minimum_cost_path_asm(m, _graph(), _D)
        (root,) = m.telemetry.roots
        assert root.name == "asm_mcp.execute"
        assert root.opcodes  # per-opcode execution histogram
        assert root.opcodes["HALT"] == 1
        # Communication opcodes agree with the machine's transaction
        # counters one-for-one.
        assert root.opcodes["BCAST"] == root.counters["broadcasts"]
        assert root.opcodes["WOR"] == root.counters["reductions"]
        assert root.opcodes["GOR"] == root.counters["global_ors"]


class TestExtensions:
    def test_apsp_span_tree(self):
        # Batched by default: all n destinations ride as lanes of one
        # "apsp.batch" span; the profile's counters are the batched-stream
        # deltas (res.machine_counters), while res.counters keeps the
        # serial-equivalent sum.
        n = 8
        W = gnp_digraph(n, 0.4, seed=2, weights=WeightSpec(1, 9),
                        inf_value=_INF)
        m = PPAMachine(PPAConfig(n=n, word_bits=_H))
        with m.telemetry.capture():
            res = all_pairs_minimum_cost(m, W)
        profile = RunProfile.from_tracer(m.telemetry)
        (root,) = profile.spans
        assert root.name == "apsp"
        assert root.attrs["lanes"] == n
        batches = profile.find("apsp.batch")
        assert [s.attrs["first"] for s in batches] == [0]
        assert batches[0].attrs["lanes"] == n
        (mcp_span,) = profile.find("mcp.batched")
        assert mcp_span.attrs["lanes"] == n
        assert profile.counters == res.machine_counters
        # Serial-equivalent totals are preserved and strictly larger than
        # the batched stream actually paid.
        assert res.counters["bus_cycles"] > res.machine_counters["bus_cycles"]

    def test_apsp_serial_span_tree(self):
        # serial=True keeps the literal host-controller sweep and its
        # per-destination span shape.
        n = 8
        W = gnp_digraph(n, 0.4, seed=2, weights=WeightSpec(1, 9),
                        inf_value=_INF)
        m = PPAMachine(PPAConfig(n=n, word_bits=_H))
        with m.telemetry.capture():
            res = all_pairs_minimum_cost(m, W, serial=True)
        profile = RunProfile.from_tracer(m.telemetry)
        (root,) = profile.spans
        assert root.name == "apsp"
        destinations = profile.find("apsp.destination")
        assert [s.attrs["d"] for s in destinations] == list(range(n))
        assert profile.counters == res.counters
        assert res.machine_counters == res.counters

    def test_mst_span_tree(self):
        n = 8
        rng = np.random.default_rng(5)
        w = rng.permutation(n * (n - 1) // 2) + 1
        W = np.full((n, n), _INF, dtype=np.int64)
        k = 0
        for i in range(n):
            W[i, i] = 0
            for j in range(i + 1, n):
                W[i, j] = W[j, i] = w[k]
                k += 1
        m = PPAMachine(PPAConfig(n=n, word_bits=_H))
        with m.telemetry.capture():
            res = boruvka_mst(m, W)
        profile = RunProfile.from_tracer(m.telemetry)
        (root,) = profile.spans
        assert root.name == "mst"
        rounds = profile.find("mst.round")
        assert len(rounds) == res.rounds
        for r in rounds:
            names = [c.name for c in r.children]
            assert names == ["mst.labels", "mst.vertex_min",
                             "mst.component_min"]
        assert profile.counters == res.counters

    def test_selftest_span_tree(self):
        from repro.ppa.selftest import diagnose_switches

        m = PPAMachine(PPAConfig(n=8, word_bits=_H))
        with m.telemetry.capture():
            report = diagnose_switches(m)
        profile = RunProfile.from_tracer(m.telemetry)
        (root,) = profile.spans
        assert root.name == "selftest"
        assert [s.attrs["axis"] for s in profile.find("selftest.axis")] == [0, 1]
        assert profile.counters["bus_cycles"] == report.transactions
