"""Span tracer mechanics: nesting, attribution, zero-allocation disabled path."""

import pytest

from repro.ppa.counters import CycleCounters
from repro.telemetry import NULL_SPAN, Span, Tracer


class TestDisabled:
    def test_disabled_returns_shared_null_span(self):
        t = Tracer()
        assert t.span("anything") is NULL_SPAN
        assert t.span("other", k=1) is NULL_SPAN  # same object every call

    def test_disabled_records_nothing(self):
        t = Tracer()
        with t.span("mcp"):
            with t.span("mcp.iteration", k=1):
                pass
        assert len(t) == 0
        assert t.roots == []

    def test_null_span_yields_none(self):
        t = Tracer()
        with t.span("x") as span:
            assert span is None

    def test_add_opcode_noop_when_disabled(self):
        t = Tracer()
        t.add_opcode("ADD")
        assert t.orphan_opcodes == {}


class TestRecording:
    def test_nesting_structure(self):
        t = Tracer()
        t.enable()
        with t.span("a"):
            with t.span("b"):
                pass
            with t.span("b"):
                with t.span("c"):
                    pass
        assert [r.name for r in t.roots] == ["a"]
        a = t.roots[0]
        assert [c.name for c in a.children] == ["b", "b"]
        assert [c.name for c in a.children[1].children] == ["c"]

    def test_yields_live_span_with_attrs(self):
        t = Tracer()
        t.enable()
        with t.span("mcp.iteration", k=3) as span:
            assert isinstance(span, Span)
            assert span.attrs == {"k": 3}
        assert t.roots[0] is span

    def test_current_tracks_innermost(self):
        t = Tracer()
        t.enable()
        assert t.current is None
        with t.span("a") as a:
            assert t.current is a
            with t.span("b") as b:
                assert t.current is b
            assert t.current is a
        assert t.current is None

    def test_counter_attribution(self):
        c = CycleCounters()
        t = Tracer(c)
        t.enable()
        with t.span("outer"):
            c.instructions += 2
            with t.span("inner"):
                c.instructions += 5
            c.instructions += 1
        outer = t.roots[0]
        inner = outer.children[0]
        assert outer.counters["instructions"] == 8
        assert inner.counters["instructions"] == 5
        assert outer.self_counters["instructions"] == 3

    def test_tracing_never_perturbs_counters(self):
        c = CycleCounters()
        c.bus_cycles = 9
        t = Tracer(c)
        t.enable()
        with t.span("a"):
            with t.span("b"):
                pass
        assert c.snapshot() == CycleCounters.from_snapshot(c.snapshot()).snapshot()
        assert c.bus_cycles == 9
        assert all(
            v == 0 for k, v in c.snapshot().items() if k != "bus_cycles"
        )

    def test_counterless_tracer_records_walltime_only(self):
        t = Tracer(None, clock=iter([10.0, 12.5]).__next__)
        t.enable()
        with t.span("a") as a:
            pass
        assert a.counters == {}
        assert a.start == 0.0 and a.end == 2.5  # epoch-relative

    def test_exception_still_closes_span(self):
        c = CycleCounters()
        t = Tracer(c)
        t.enable()
        with pytest.raises(RuntimeError):
            with t.span("a"):
                c.alu_ops += 1
                raise RuntimeError
        assert t.current is None
        assert t.roots[0].counters["alu_ops"] == 1

    def test_clear_resets_everything(self):
        t = Tracer()
        t.enable()
        with t.span("a"):
            t.add_opcode("MOV")
        t.clear()
        assert t.roots == [] and t.orphan_opcodes == {}

    def test_capture_restores_prior_state(self):
        t = Tracer()
        with t.capture():
            assert t.enabled
            with t.span("a"):
                pass
        assert not t.enabled
        assert len(t) == 1


class TestOpcodes:
    def test_opcode_goes_to_innermost_span(self):
        t = Tracer()
        t.enable()
        with t.span("a") as a:
            with t.span("b") as b:
                t.add_opcode("ADD")
                t.add_opcode("ADD")
            t.add_opcode("MOV")
        assert b.opcodes == {"ADD": 2}
        assert a.opcodes == {"MOV": 1}

    def test_orphan_opcodes_outside_spans(self):
        t = Tracer()
        t.enable()
        t.add_opcode("HALT")
        assert t.orphan_opcodes == {"HALT": 1}


class TestInvariants:
    def test_self_counters_partition(self):
        c = CycleCounters()
        t = Tracer(c)
        t.enable()
        with t.span("root"):
            c.instructions += 1
            for _ in range(3):
                with t.span("child"):
                    c.instructions += 4
        root = t.roots[0]
        total = root.counters["instructions"]
        assert total == 13
        reconstructed = root.self_counters["instructions"] + sum(
            ch.counters["instructions"] for ch in root.children
        )
        assert reconstructed == total

    def test_span_jsonable_round_trip(self):
        c = CycleCounters()
        t = Tracer(c, clock=iter([float(i) for i in range(10)]).__next__)
        t.enable()
        with t.span("root", d=2):
            c.broadcasts += 1
            with t.span("leaf"):
                t.add_opcode("WOR")
        back = Span.from_jsonable(t.roots[0].to_jsonable())
        assert back.name == "root" and back.attrs == {"d": 2}
        assert back.counters == t.roots[0].counters
        assert back.children[0].opcodes == {"WOR": 1}
        assert back.children[0].start == t.roots[0].children[0].start
