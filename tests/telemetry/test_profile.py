"""RunProfile serialisation, aggregation, persistence and diffing."""

import json

import pytest

from repro.errors import ReproError
from repro.ppa.counters import CycleCounters
from repro.telemetry import (
    PROFILE_FORMAT,
    RunProfile,
    Tracer,
    aggregate_phases,
    compare_profiles,
    load_profile,
    phase_table,
    save_profile,
)


def make_profile() -> RunProfile:
    """Deterministic synthetic profile (fixed fake clock, hand-set counts)."""
    c = CycleCounters()
    t = Tracer(c, clock=iter([float(i) for i in range(20)]).__next__)
    t.enable()
    with t.span("mcp", arch="ppa", n=4, d=1):
        with t.span("mcp.init"):
            c.instructions += 2
            c.bus_cycles += 1
        for k in (1, 2):
            with t.span("mcp.iteration", k=k):
                with t.span("mcp.broadcast"):
                    c.instructions += 1
                    c.broadcasts += 1
                    c.bus_cycles += 1
                with t.span("mcp.min"):
                    c.instructions += 4
                    c.reductions += 4
                    c.bus_cycles += 4
    return RunProfile.from_tracer(t, arch="ppa", n=4, d=1, recorded_at="T")


GOLDEN = {
    "format": "repro-profile-v1",
    "meta": {"arch": "ppa", "n": 4, "d": 1, "recorded_at": "T"},
    "counters": {
        "instructions": 12, "broadcasts": 2, "reductions": 8, "shifts": 0,
        "alu_ops": 0, "global_ors": 0, "bus_cycles": 11, "bit_cycles": 0,
    },
    "spans": [
        {
            "name": "mcp",
            "start": 0.0,
            "end": 15.0,
            "counters": {
                "instructions": 12, "broadcasts": 2, "reductions": 8,
                "shifts": 0, "alu_ops": 0, "global_ors": 0,
                "bus_cycles": 11, "bit_cycles": 0,
            },
            "attrs": {"arch": "ppa", "n": 4, "d": 1},
            "children": [
                {
                    "name": "mcp.init",
                    "start": 1.0,
                    "end": 2.0,
                    "counters": {
                        "instructions": 2, "broadcasts": 0, "reductions": 0,
                        "shifts": 0, "alu_ops": 0, "global_ors": 0,
                        "bus_cycles": 1, "bit_cycles": 0,
                    },
                },
                {
                    "name": "mcp.iteration",
                    "start": 3.0,
                    "end": 8.0,
                    "counters": {
                        "instructions": 5, "broadcasts": 1, "reductions": 4,
                        "shifts": 0, "alu_ops": 0, "global_ors": 0,
                        "bus_cycles": 5, "bit_cycles": 0,
                    },
                    "attrs": {"k": 1},
                    "children": [
                        {
                            "name": "mcp.broadcast",
                            "start": 4.0,
                            "end": 5.0,
                            "counters": {
                                "instructions": 1, "broadcasts": 1,
                                "reductions": 0, "shifts": 0, "alu_ops": 0,
                                "global_ors": 0, "bus_cycles": 1,
                                "bit_cycles": 0,
                            },
                        },
                        {
                            "name": "mcp.min",
                            "start": 6.0,
                            "end": 7.0,
                            "counters": {
                                "instructions": 4, "broadcasts": 0,
                                "reductions": 4, "shifts": 0, "alu_ops": 0,
                                "global_ors": 0, "bus_cycles": 4,
                                "bit_cycles": 0,
                            },
                        },
                    ],
                },
                {
                    "name": "mcp.iteration",
                    "start": 9.0,
                    "end": 14.0,
                    "counters": {
                        "instructions": 5, "broadcasts": 1, "reductions": 4,
                        "shifts": 0, "alu_ops": 0, "global_ors": 0,
                        "bus_cycles": 5, "bit_cycles": 0,
                    },
                    "attrs": {"k": 2},
                    "children": [
                        {
                            "name": "mcp.broadcast",
                            "start": 10.0,
                            "end": 11.0,
                            "counters": {
                                "instructions": 1, "broadcasts": 1,
                                "reductions": 0, "shifts": 0, "alu_ops": 0,
                                "global_ors": 0, "bus_cycles": 1,
                                "bit_cycles": 0,
                            },
                        },
                        {
                            "name": "mcp.min",
                            "start": 12.0,
                            "end": 13.0,
                            "counters": {
                                "instructions": 4, "broadcasts": 0,
                                "reductions": 4, "shifts": 0, "alu_ops": 0,
                                "global_ors": 0, "bus_cycles": 4,
                                "bit_cycles": 0,
                            },
                        },
                    ],
                },
            ],
        }
    ],
}


class TestGoldenSerialisation:
    """The native JSON schema is frozen: byte-level drift is an API break."""

    def test_matches_golden(self):
        payload = make_profile().to_jsonable()
        # Root span wall-times depend only on the injected clock.
        assert payload == GOLDEN

    def test_golden_round_trips(self):
        back = RunProfile.from_jsonable(GOLDEN)
        assert back.to_jsonable() == GOLDEN

    def test_json_stable_under_dumps(self):
        a = json.dumps(make_profile().to_jsonable(), sort_keys=True)
        b = json.dumps(GOLDEN, sort_keys=True)
        assert a == b


class TestRunProfile:
    def test_totals_are_root_inclusive(self):
        p = make_profile()
        assert p.counters["instructions"] == 12
        assert p.counters["bus_cycles"] == 11

    def test_find_and_walk(self):
        p = make_profile()
        assert len(p.find("mcp.iteration")) == 2
        assert len(list(p.walk())) == 8

    def test_from_jsonable_rejects_other_format(self):
        with pytest.raises(ReproError, match="not a repro-profile"):
            RunProfile.from_jsonable({"format": "something-else"})


class TestChromeTrace:
    def test_valid_trace_event_json(self):
        trace = make_profile().to_chrome_trace()
        events = trace["traceEvents"]
        # One metadata event plus one "X" event per span.
        assert events[0]["ph"] == "M"
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 8
        for e in xs:
            assert set(e) >= {"name", "ph", "ts", "dur", "pid", "tid", "args"}
            assert e["dur"] >= 0
        # Microsecond conversion: mcp.init ran [1.0 s, 2.0 s].
        init = next(e for e in xs if e["name"] == "mcp.init")
        assert init["ts"] == 1_000_000.0 and init["dur"] == 1_000_000.0
        # Counter deltas ride in args.
        assert init["args"]["instructions"] == 2
        json.dumps(trace)  # must be JSON-serialisable as-is

    def test_iteration_attrs_in_args(self):
        trace = make_profile().to_chrome_trace()
        its = [e for e in trace["traceEvents"] if e["name"] == "mcp.iteration"]
        assert [e["args"]["k"] for e in its] == [1, 2]


class TestAggregation:
    def test_exclusive_sums_to_totals(self):
        p = make_profile()
        agg = aggregate_phases(p)
        for key in ("instructions", "bus_cycles", "broadcasts", "reductions"):
            assert sum(b.get(key, 0) for b in agg.values()) == p.counters[key]

    def test_span_counts(self):
        agg = aggregate_phases(make_profile())
        assert agg["mcp.iteration"]["spans"] == 2
        assert agg["mcp.min"]["spans"] == 2

    def test_phase_table_total_row(self):
        p = make_profile()
        table = phase_table(p)
        total = table.rows[-1]
        assert total[0] == "(total)"
        assert total[2] == p.counters["instructions"]
        assert total[4] == p.counters["bus_cycles"]
        # Phase rows sum exactly to the total row, column by column.
        for col in range(1, len(table.headers)):
            assert sum(r[col] for r in table.rows[:-1]) == total[col]


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        p = make_profile()
        path = tmp_path / "prof.json"
        save_profile(p, path)
        back = load_profile(path)
        assert back.to_jsonable() == p.to_jsonable()

    def test_save_chrome_format(self, tmp_path):
        path = tmp_path / "prof.chrome.json"
        save_profile(make_profile(), path, trace_format="chrome")
        data = json.loads(path.read_text())
        assert "traceEvents" in data

    def test_save_unknown_format(self, tmp_path):
        with pytest.raises(ReproError, match="unknown trace format"):
            save_profile(make_profile(), tmp_path / "x", trace_format="xml")

    def test_load_missing_file(self):
        with pytest.raises(ReproError, match="not found"):
            load_profile("/nonexistent/prof.json")

    def test_load_rejects_chrome_file(self, tmp_path):
        path = tmp_path / "prof.chrome.json"
        save_profile(make_profile(), path, trace_format="chrome")
        with pytest.raises(ReproError, match=PROFILE_FORMAT):
            load_profile(path)


class TestCompare:
    def test_identical(self):
        assert compare_profiles(make_profile(), make_profile()) == []

    def test_counter_drift_reported(self):
        a, b = make_profile(), make_profile()
        b.find("mcp.init")[0].counters["bus_cycles"] += 1
        diffs = compare_profiles(a, b)
        assert any("mcp.init.bus_cycles: 1 -> 2" in d for d in diffs)

    def test_phase_only_in_one(self):
        a, b = make_profile(), make_profile()
        b.spans[0].children[0].name = "mcp.setup"
        diffs = compare_profiles(a, b)
        assert "mcp.init: only in the old profile" in diffs
        assert "mcp.setup: only in the new profile" in diffs

    def test_walltime_drift_ignored(self):
        a, b = make_profile(), make_profile()
        for s in b.walk():
            s.start += 5.0
            s.end += 9.0
        assert compare_profiles(a, b) == []
