"""PTN path reconstruction and tree validation."""

import numpy as np
import pytest

from repro.core.path import extract_path, path_cost, validate_tree
from repro.core.result import MCPResult
from repro.errors import GraphError

MAXINT = 255


def result(sow, ptn, d=0):
    return MCPResult(
        destination=d,
        sow=np.array(sow),
        ptn=np.array(ptn),
        iterations=1,
        maxint=MAXINT,
    )


class TestExtractPath:
    def test_chain(self):
        res = result([0, 1, 2, 3], [0, 0, 1, 2])
        assert extract_path(res, 3) == [3, 2, 1, 0]

    def test_destination_itself(self):
        res = result([0, 1], [0, 0])
        assert extract_path(res, 0) == [0]

    def test_out_of_range_source(self):
        res = result([0, 1], [0, 0])
        with pytest.raises(GraphError, match="outside"):
            extract_path(res, 5)

    def test_unreachable_source(self):
        res = result([0, MAXINT], [0, 0])
        with pytest.raises(GraphError, match="unreachable"):
            extract_path(res, 1)

    def test_cycle_detected(self):
        res = result([0, 1, 2], [0, 2, 1])  # 1 <-> 2 never reach 0
        with pytest.raises(GraphError, match="did not reach"):
            extract_path(res, 1)


class TestPathCost:
    def test_sums_edges(self):
        W = np.array([[0, 2, MAXINT], [MAXINT, 0, 3], [MAXINT, MAXINT, 0]])
        assert path_cost(W, [0, 1, 2], MAXINT) == 5

    def test_missing_edge_rejected(self):
        W = np.full((3, 3), MAXINT)
        np.fill_diagonal(W, 0)
        with pytest.raises(GraphError, match="missing edge"):
            path_cost(W, [0, 1], MAXINT)

    def test_trivial_path(self):
        W = np.zeros((2, 2), dtype=np.int64)
        assert path_cost(W, [1], MAXINT) == 0


class TestValidateTree:
    def w(self):
        W = np.full((3, 3), MAXINT, dtype=np.int64)
        np.fill_diagonal(W, 0)
        W[1, 0] = 4
        W[2, 1] = 5
        return W

    def test_valid_tree_passes(self):
        validate_tree(result([0, 4, 9], [0, 0, 1]), self.w())

    def test_nonzero_dest_cost_rejected(self):
        with pytest.raises(GraphError, match="expected 0"):
            validate_tree(result([1, 4, 9], [0, 0, 1]), self.w())

    def test_dest_pointer_must_self_loop(self):
        with pytest.raises(GraphError, match="ptn\\[d\\]"):
            validate_tree(result([0, 4, 9], [1, 0, 1]), self.w())

    def test_bellman_violation_rejected(self):
        with pytest.raises(GraphError, match="Bellman condition"):
            validate_tree(result([0, 4, 8], [0, 0, 1]), self.w())

    def test_pointer_to_missing_edge_rejected(self):
        with pytest.raises(GraphError, match="missing"):
            validate_tree(result([0, 4, 9], [0, 0, 0]), self.w())

    def test_pointer_to_unreachable_rejected(self):
        W = self.w()
        res = result([0, MAXINT, MAXINT], [0, 0, 1])
        validate_tree(res, W)  # unreachable vertices are skipped
