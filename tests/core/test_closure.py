"""Transitive closure / reachability extension."""

import numpy as np
import pytest

from repro import PPAConfig, PPAMachine
from repro.core.closure import reachable_set, transitive_closure
from repro.errors import GraphError

INF16 = (1 << 16) - 1


def machine(n):
    return PPAMachine(PPAConfig(n=n, word_bits=16))


def closure_oracle(adj):
    n = adj.shape[0]
    reach = adj.astype(bool) | np.eye(n, dtype=bool)
    for _ in range(n):
        reach = reach | (reach @ reach)
    return reach


class TestReachableSet:
    def test_chain_hop_counts(self):
        adj = np.zeros((4, 4), dtype=bool)
        adj[1, 0] = adj[2, 1] = adj[3, 2] = True
        res = reachable_set(machine(4), adj, 0)
        assert res.sow.tolist() == [0, 1, 2, 3]

    def test_disconnected(self):
        adj = np.zeros((3, 3), dtype=bool)
        res = reachable_set(machine(3), adj, 1)
        assert res.reachable.tolist() == [False, True, False]

    def test_non_square_rejected(self):
        with pytest.raises(GraphError, match="square"):
            reachable_set(machine(3), np.zeros((2, 3), dtype=bool), 0)

    def test_self_loops_ignored(self):
        adj = np.eye(3, dtype=bool)
        res = reachable_set(machine(3), adj, 0)
        assert res.reachable.tolist() == [True, False, False]


class TestClosure:
    @pytest.mark.parametrize("seed,density", [(0, 0.15), (1, 0.3), (2, 0.5)])
    def test_matches_oracle(self, seed, density):
        rng = np.random.default_rng(seed)
        adj = rng.random((8, 8)) < density
        np.fill_diagonal(adj, False)
        clo = transitive_closure(machine(8), adj)
        assert np.array_equal(clo.closure, closure_oracle(adj))

    def test_hops_are_bfs_levels(self):
        adj = np.zeros((5, 5), dtype=bool)
        adj[0, 1] = adj[1, 2] = adj[0, 3] = adj[3, 2] = True
        clo = transitive_closure(machine(5), adj)
        assert clo.hops[0, 2] == 2
        assert clo.hops[0, 1] == 1
        assert clo.hops[2, 0] == clo.unreached

    def test_reaches_helper(self):
        adj = np.zeros((3, 3), dtype=bool)
        adj[0, 1] = True
        clo = transitive_closure(machine(3), adj)
        assert clo.reaches(0, 1)
        assert not clo.reaches(1, 0)
        assert clo.reaches(2, 2)

    def test_integer_adjacency_accepted(self):
        adj = np.zeros((3, 3), dtype=int)
        adj[0, 1] = 1
        clo = transitive_closure(machine(3), adj)
        assert clo.reaches(0, 1)
