"""Weight-matrix normalisation and validation."""

import numpy as np
import pytest

from repro import INF, PPAConfig, PPAMachine
from repro.core.graph import max_finite_weight, normalize_weights
from repro.errors import GraphError, MachineError, WordWidthError


def machine(n=4, h=16):
    return PPAMachine(PPAConfig(n=n, word_bits=h))


class TestShapes:
    def test_non_square_rejected(self):
        with pytest.raises(GraphError, match="square"):
            normalize_weights(np.zeros((3, 4)), machine())

    def test_size_mismatch_rejected(self):
        with pytest.raises(MachineError, match="requires"):
            normalize_weights(np.zeros((5, 5)), machine(4))

    def test_returns_fresh_int64(self):
        W = np.zeros((4, 4), dtype=np.int64)
        out = normalize_weights(W, machine())
        assert out.dtype == np.int64
        out[0, 1] = 7
        assert W[0, 1] == 0


class TestFloatSentinels:
    def test_inf_maps_to_maxint(self):
        m = machine()
        W = np.full((4, 4), INF)
        np.fill_diagonal(W, 0)
        out = normalize_weights(W, m)
        off_diag = out[~np.eye(4, dtype=bool)]
        assert (off_diag == m.maxint).all()

    def test_fractional_weight_rejected(self):
        W = np.zeros((4, 4))
        W[0, 1] = 2.5
        with pytest.raises(GraphError, match="integers"):
            normalize_weights(W, machine())

    def test_negative_float_rejected(self):
        W = np.zeros((4, 4))
        W[0, 1] = -3.0
        with pytest.raises(GraphError, match="non-negative"):
            normalize_weights(W, machine())

    def test_whole_floats_accepted(self):
        W = np.zeros((4, 4))
        W[0, 1] = 5.0
        assert normalize_weights(W, machine())[0, 1] == 5


class TestIntInputs:
    def test_negative_int_rejected(self):
        W = np.zeros((4, 4), dtype=np.int64)
        W[1, 0] = -1
        with pytest.raises(GraphError, match="non-negative"):
            normalize_weights(W, machine())

    def test_weight_beyond_maxint_rejected(self):
        m = machine(h=8)
        W = np.zeros((4, 4), dtype=np.int64)
        W[0, 1] = 300
        with pytest.raises(WordWidthError, match="exceed MAXINT"):
            normalize_weights(W, m)

    def test_bool_adjacency_accepted(self):
        W = np.zeros((4, 4), dtype=bool)
        out = normalize_weights(W, machine())
        assert (out == 0).all()

    def test_object_dtype_rejected(self):
        with pytest.raises(GraphError, match="unsupported weight dtype"):
            normalize_weights(np.zeros((4, 4), dtype=object), machine())


class TestDiagonal:
    def test_nonzero_diagonal_rejected_by_default(self):
        W = np.zeros((4, 4), dtype=np.int64)
        W[2, 2] = 3
        with pytest.raises(GraphError, match="diagonal must be zero"):
            normalize_weights(W, machine())

    def test_set_mode_normalises(self):
        W = np.full((4, 4), 5, dtype=np.int64)
        out = normalize_weights(W, machine(), zero_diagonal="set")
        assert (np.diag(out) == 0).all()

    def test_keep_mode_trusts_caller(self):
        W = np.zeros((4, 4), dtype=np.int64)
        W[1, 1] = 9
        out = normalize_weights(W, machine(), zero_diagonal="keep")
        assert out[1, 1] == 9

    def test_unknown_mode_rejected(self):
        with pytest.raises(GraphError, match="unknown zero_diagonal"):
            normalize_weights(np.zeros((4, 4), dtype=np.int64), machine(),
                              zero_diagonal="maybe")


class TestHeadroom:
    def test_saturating_range_rejected(self):
        m = machine(h=8)  # maxint 255
        W = np.full((4, 4), 100, dtype=np.int64)
        np.fill_diagonal(W, 0)
        # a 3-edge path could cost 300 >= 255
        with pytest.raises(WordWidthError, match="increase word_bits"):
            normalize_weights(W, m)

    def test_headroom_check_can_be_disabled(self):
        m = machine(h=8)
        W = np.full((4, 4), 100, dtype=np.int64)
        np.fill_diagonal(W, 0)
        normalize_weights(W, m, check_headroom=False)

    def test_safe_range_accepted(self):
        m = machine(h=8)
        W = np.full((4, 4), 10, dtype=np.int64)
        np.fill_diagonal(W, 0)
        normalize_weights(W, m)


class TestMaxFiniteWeight:
    def test_ignores_sentinel(self):
        W = np.array([[0, 5], [65535, 0]], dtype=np.int64)
        assert max_finite_weight(W, 65535) == 5

    def test_edgeless_graph(self):
        W = np.full((3, 3), 255, dtype=np.int64)
        assert max_finite_weight(W, 255) == 0
