"""Batched multi-lane MCP: lane-for-lane equivalence with serial runs.

The headline satellite lives here: a hypothesis property test pinning the
batched driver to the serial :func:`repro.core.mcp.minimum_cost_path`
**lane for lane** — same ``sow``, same ``ptn``, same per-lane
``iterations``, and the same per-lane *counter deltas*. The counter half
is the strong claim: one MCP iteration issues a fixed instruction
sequence, so a lane's ledger on the batched machine must price exactly
what its own serial run would have priced.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import PPAConfig, PPAMachine, minimum_cost_path
from repro.core import (
    BatchedMCPResult,
    batched_mcp_on_new_machine,
    batched_minimum_cost_path,
)
from repro.core.result import MCPResult
from repro.errors import GraphError
from repro.ppc.reductions import word_parallel_min
from repro.workloads import WeightSpec, gnp_digraph, layered_graph, ring_graph

INF16 = (1 << 16) - 1


def serial_run(W, d, h=16, **kwargs):
    n = W.shape[0]
    return minimum_cost_path(
        PPAMachine(PPAConfig(n=n, word_bits=h)), W, d, **kwargs
    )


def assert_lane_equals_serial(res: BatchedMCPResult, b: int, serial: MCPResult):
    """Full lane-for-lane contract: data planes AND counter deltas."""
    lane = res.lane(b)
    assert lane.destination == serial.destination
    assert np.array_equal(lane.sow, serial.sow)
    assert np.array_equal(lane.ptn, serial.ptn)
    assert lane.iterations == serial.iterations
    assert lane.counters == serial.counters


class TestPropertyBatchedVsSerial:
    """The satellite: batched == serial, lane for lane, counters included."""

    @given(
        n=st.integers(2, 7),
        density=st.floats(0.0, 1.0),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_all_destinations_shared_graph(self, n, density, seed):
        W = gnp_digraph(n, density, seed=seed, weights=WeightSpec(0, 12),
                        inf_value=INF16)
        dests = np.arange(n)
        res = batched_mcp_on_new_machine(W, dests)
        for b, d in enumerate(dests):
            assert_lane_equals_serial(res, b, serial_run(W, int(d)))
        # per-lane ledgers partition the serial sweep totals exactly
        serial_totals = {}
        for d in dests:
            for k, v in serial_run(W, int(d)).counters.items():
                serial_totals[k] = serial_totals.get(k, 0) + v
        assert res.lane_counter_totals() == serial_totals

    @given(
        n=st.integers(2, 6),
        batch=st.integers(1, 5),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_per_lane_weight_stacks(self, n, batch, seed):
        """Sweep form: every lane is its own graph + destination."""
        rng = np.random.default_rng(seed)
        W_stack = np.stack([
            gnp_digraph(n, float(rng.uniform(0.1, 0.9)),
                        seed=int(rng.integers(1 << 30)),
                        weights=WeightSpec(1, 9), inf_value=INF16)
            for _ in range(batch)
        ])
        dests = rng.integers(0, n, size=batch)
        res = batched_mcp_on_new_machine(W_stack, dests)
        for b in range(batch):
            assert_lane_equals_serial(
                res, b, serial_run(W_stack[b], int(dests[b]))
            )


class TestConvergenceMasking:
    def test_layered_graph_lanes_converge_at_different_depths(self):
        """Shallow lanes freeze early; every lane's iteration count and
        frozen planes still match its serial run."""
        W, deep = layered_graph(6, 2, seed=0, weights=WeightSpec(1, 5),
                                inf_value=INF16)
        n = W.shape[0]
        dests = np.arange(n)
        res = batched_mcp_on_new_machine(W, dests)
        serials = [serial_run(W, d) for d in range(n)]
        assert res.iterations.min() < res.iterations.max()  # masking exercised
        assert int(res.iterations[deep]) == max(s.iterations for s in serials)
        for b in range(n):
            assert_lane_equals_serial(res, b, serials[b])

    def test_converged_lane_stops_accruing(self):
        W, deep = layered_graph(5, 2, seed=1, weights=WeightSpec(1, 5),
                                inf_value=INF16)
        n = W.shape[0]
        res = batched_mcp_on_new_machine(W, np.arange(n))
        shallow = int(np.argmin(res.iterations))
        assert (
            res.lane_counters["bus_cycles"][shallow]
            < res.lane_counters["bus_cycles"][deep]
        )

    def test_duplicate_destinations_allowed(self):
        W = gnp_digraph(5, 0.5, seed=7, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        res = batched_mcp_on_new_machine(W, np.array([2, 2, 0]))
        serial2 = serial_run(W, 2)
        assert_lane_equals_serial(res, 0, serial2)
        assert_lane_equals_serial(res, 1, serial2)
        assert_lane_equals_serial(res, 2, serial_run(W, 0))


class TestMachineForms:
    def test_unbatched_machine_gets_a_lanes_view(self):
        """Passing an unbatched machine works and attributes the batched
        stream's cost to the caller's scalar counters."""
        W = gnp_digraph(5, 0.4, seed=3, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        m = PPAMachine(PPAConfig(n=5))
        res = batched_minimum_cost_path(m, W, np.arange(5))
        assert m.counters.snapshot() == {
            k: res.counters[k] for k in m.counters.snapshot()
        }
        assert_lane_equals_serial(res, 1, serial_run(W, 1))

    def test_prebatched_machine(self):
        W = gnp_digraph(4, 0.5, seed=2, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        m = PPAMachine(PPAConfig(n=4), batch=4)
        res = batched_minimum_cost_path(m, W, np.arange(4))
        assert_lane_equals_serial(res, 3, serial_run(W, 3))

    def test_batch_mismatch_raises(self):
        W = ring_graph(4, seed=0, inf_value=INF16)
        m = PPAMachine(PPAConfig(n=4), batch=3)
        with pytest.raises(GraphError, match="batch=3 but 4 destinations"):
            batched_minimum_cost_path(m, W, np.arange(4))

    def test_scalar_counters_amortise_over_lanes(self):
        """The batched stream's machine cost is far below the per-lane
        serial-equivalent totals — that is the point of batching."""
        W = gnp_digraph(8, 0.3, seed=4, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        res = batched_mcp_on_new_machine(W, np.arange(8))
        totals = res.lane_counter_totals()
        assert res.counters["bus_cycles"] * 4 < totals["bus_cycles"]
        assert res.counters["broadcasts"] * 4 < totals["broadcasts"]


class TestValidationAndErrors:
    def test_empty_destinations(self):
        W = ring_graph(4, seed=0, inf_value=INF16)
        with pytest.raises(GraphError, match="non-empty"):
            batched_mcp_on_new_machine(W, np.array([], dtype=np.int64))

    def test_non_vector_destinations(self):
        W = ring_graph(4, seed=0, inf_value=INF16)
        with pytest.raises(GraphError, match="1-D vector"):
            batched_mcp_on_new_machine(W, np.array([[0, 1]]))

    def test_destination_out_of_range(self):
        W = ring_graph(4, seed=0, inf_value=INF16)
        with pytest.raises(GraphError, match=r"destination 7 outside"):
            batched_mcp_on_new_machine(W, np.array([0, 7]))

    def test_weight_stack_lane_mismatch(self):
        W = np.stack([ring_graph(4, seed=s, inf_value=INF16) for s in (0, 1)])
        with pytest.raises(GraphError, match="2 lanes but 3 destinations"):
            batched_mcp_on_new_machine(W, np.array([0, 1, 2]))

    def test_weight_rank_rejected(self):
        with pytest.raises(GraphError, match=r"\(n, n\) or \(B, n, n\)"):
            batched_mcp_on_new_machine(
                np.zeros((2, 2, 2, 2)), np.array([0, 1])
            )

    def test_max_iterations_guard(self):
        W = ring_graph(8, seed=0, inf_value=INF16)
        with pytest.raises(GraphError, match="did not converge"):
            batched_mcp_on_new_machine(W, np.arange(8), max_iterations=2)

    def test_nonzero_diagonal_rejected_per_lane(self):
        W = np.stack([ring_graph(4, seed=s, inf_value=INF16) for s in (0, 1)])
        W[1, 2, 2] = 5
        with pytest.raises(GraphError, match="diagonal"):
            batched_mcp_on_new_machine(W, np.array([0, 1]))


class TestInjectableRoutines:
    def test_word_parallel_min_matches_serial_variant(self):
        """The A7 ablation routine threads through the batched driver and
        still matches its own serial counterpart lane for lane."""
        W = gnp_digraph(6, 0.4, seed=5, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        res = batched_mcp_on_new_machine(
            W, np.arange(6), min_routine=word_parallel_min
        )
        for d in range(6):
            serial = serial_run(W, d, min_routine=word_parallel_min)
            assert_lane_equals_serial(res, d, serial)


class TestResultContainer:
    def test_shapes_and_metadata(self):
        W = gnp_digraph(5, 0.5, seed=1, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        res = batched_mcp_on_new_machine(W, np.array([4, 0, 2]))
        assert res.batch == 3
        assert res.n == 5
        assert res.sow.shape == res.ptn.shape == (3, 5)
        assert res.iterations.shape == (3,)
        assert res.maxint == INF16
        assert res.destinations.tolist() == [4, 0, 2]

    def test_lane_accessor_returns_mcp_result(self):
        W = gnp_digraph(5, 0.5, seed=1, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        res = batched_mcp_on_new_machine(W, np.array([4, 0]))
        lane = res.lane(0)
        assert isinstance(lane, MCPResult)
        assert lane.destination == 4
        assert lane.path(4) == [4]

    def test_lane_planes_are_copies(self):
        W = ring_graph(4, seed=0, inf_value=INF16)
        res = batched_mcp_on_new_machine(W, np.array([0, 1]))
        res.lane(0).sow[0] = -99
        assert res.sow[0, 0] != -99

    def test_shape_validation(self):
        with pytest.raises(GraphError, match="equal shape"):
            BatchedMCPResult(
                destinations=np.array([0]),
                sow=np.zeros((1, 4)),
                ptn=np.zeros((1, 5)),
                iterations=np.array([1]),
                maxint=INF16,
            )
