"""The assembly MCP program vs the native implementation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import PPAConfig, PPAMachine, minimum_cost_path, validate_tree
from repro.core.asm_mcp import mcp_assembly, minimum_cost_path_asm
from repro.errors import GraphError
from repro.ppa.assembler import assemble
from repro.workloads import WeightSpec, gnp_digraph, ring_graph

INF16 = (1 << 16) - 1


def machine(n, h=16):
    return PPAMachine(PPAConfig(n=n, word_bits=h))


class TestProgramText:
    def test_assembles(self):
        program = assemble(mcp_assembly(8, 16))
        assert len(program) > 40

    def test_parameterised_by_n_and_h(self):
        a = mcp_assembly(4, 8)
        b = mcp_assembly(16, 32)
        assert "ldi   r10, 3" in a and "sldi  s1, 7" in a
        assert "ldi   r10, 15" in b and "sldi  s1, 31" in b


class TestParity:
    @pytest.mark.parametrize("seed", range(6))
    def test_values_match_native(self, seed):
        n = 8
        W = gnp_digraph(n, 0.35, seed=seed, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        d = seed % n
        native = minimum_cost_path(machine(n), W, d)
        asm = minimum_cost_path_asm(machine(n), W, d)
        assert np.array_equal(asm.sow, native.sow)
        assert np.array_equal(asm.ptn, native.ptn)
        assert asm.iterations == native.iterations
        validate_tree(asm, W)

    def test_exact_communication_counter_parity(self):
        """The instruction stream issues exactly the bus operations the
        high-level implementation does."""
        W = gnp_digraph(8, 0.4, seed=2, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        native = minimum_cost_path(machine(8), W, 3)
        asm = minimum_cost_path_asm(machine(8), W, 3)
        for key in ("broadcasts", "reductions", "global_ors", "bus_cycles"):
            assert asm.counters[key] == native.counters[key], key

    def test_other_word_width(self):
        inf8 = (1 << 8) - 1
        W = gnp_digraph(6, 0.5, seed=1, weights=WeightSpec(1, 5),
                        inf_value=inf8)
        native = minimum_cost_path(machine(6, 8), W, 0)
        asm = minimum_cost_path_asm(machine(6, 8), W, 0)
        assert np.array_equal(asm.sow, native.sow)

    def test_worst_case_ring(self):
        n = 6
        W = ring_graph(n, seed=0, weights=WeightSpec(1, 5), inf_value=INF16)
        asm = minimum_cost_path_asm(machine(n), W, 0)
        assert asm.iterations == n - 1

    @given(seed=st.integers(0, 3000), density=st.floats(0.1, 0.9))
    @settings(max_examples=15)
    def test_property_matches_native(self, seed, density):
        n = 6
        W = gnp_digraph(n, density, seed=seed, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        d = seed % n
        native = minimum_cost_path(machine(n), W, d)
        asm = minimum_cost_path_asm(machine(n), W, d)
        assert np.array_equal(asm.sow, native.sow)
        assert np.array_equal(asm.ptn, native.ptn)


class TestValidation:
    def test_destination_range(self):
        W = ring_graph(4, inf_value=INF16)
        with pytest.raises(GraphError, match="destination"):
            minimum_cost_path_asm(machine(4), W, 9)

    def test_weight_validation_applies(self):
        W = ring_graph(4, inf_value=INF16)
        W[0, 0] = 5
        with pytest.raises(GraphError, match="diagonal"):
            minimum_cost_path_asm(machine(4), W, 0)
