"""All-pairs extension."""

import numpy as np
import pytest

from repro import PPAConfig, PPAMachine
from repro.baselines.sequential import bellman_ford
from repro.core.apsp import all_pairs_minimum_cost
from repro.errors import GraphError
from repro.workloads import WeightSpec, gnp_digraph

INF16 = (1 << 16) - 1


@pytest.fixture
def setup():
    W = gnp_digraph(7, 0.35, seed=4, weights=WeightSpec(1, 9), inf_value=INF16)
    m = PPAMachine(PPAConfig(n=7, word_bits=16))
    return W, m, all_pairs_minimum_cost(m, W)


class TestAPSP:
    def test_columns_match_single_destination(self, setup):
        W, m, apsp = setup
        for d in range(7):
            bf = bellman_ford(W, d, maxint=INF16)
            assert np.array_equal(apsp.dist[:, d], bf.sow)

    def test_diagonal_zero(self, setup):
        _, _, apsp = setup
        assert (np.diag(apsp.dist) == 0).all()

    def test_triangle_inequality(self, setup):
        _, _, apsp = setup
        D = apsp.dist.astype(np.int64)
        n = D.shape[0]
        for k in range(n):
            via = np.minimum(D[:, k, None] + D[None, k, :], INF16)
            assert (D <= via).all()

    def test_path_reconstruction(self, setup):
        W, _, apsp = setup
        for i in range(7):
            for j in range(7):
                if apsp.dist[i, j] >= INF16:
                    with pytest.raises(GraphError):
                        apsp.path(i, j)
                    continue
                p = apsp.path(i, j)
                assert p[0] == i and p[-1] == j
                cost = sum(int(W[a, b]) for a, b in zip(p, p[1:]))
                assert cost == int(apsp.dist[i, j])

    def test_counters_accumulate(self, setup):
        _, _, apsp = setup
        assert apsp.counters["bus_cycles"] > 0
        assert apsp.iterations.shape == (7,)

    def test_word_parallel_matches(self, setup):
        W, _, apsp = setup
        m = PPAMachine(PPAConfig(n=7, word_bits=16))
        fast = all_pairs_minimum_cost(m, W, word_parallel=True)
        assert np.array_equal(fast.dist, apsp.dist)


class TestBatchedSweep:
    """The default sweep runs all destinations as lanes of one batched
    pass; ``serial=True`` is the literal host-controller loop. The two
    must be bit-identical in results AND serial-equivalent counters."""

    def test_batched_equals_serial_bit_for_bit(self, setup):
        W, _, batched = setup
        serial = all_pairs_minimum_cost(
            PPAMachine(PPAConfig(n=7, word_bits=16)), W, serial=True
        )
        assert np.array_equal(batched.dist, serial.dist)
        assert np.array_equal(batched.succ, serial.succ)
        assert np.array_equal(batched.iterations, serial.iterations)
        assert batched.counters == serial.counters

    def test_serial_sweep_machine_counters_equal_totals(self, setup):
        W, _, _ = setup
        serial = all_pairs_minimum_cost(
            PPAMachine(PPAConfig(n=7, word_bits=16)), W, serial=True
        )
        assert serial.machine_counters == serial.counters
        assert serial.lane_counters == {}

    def test_batched_machine_counters_amortise(self, setup):
        _, _, batched = setup
        # one SIMD stream serves 7 lanes: far fewer actual bus cycles
        assert (
            batched.machine_counters["bus_cycles"] * 3
            < batched.counters["bus_cycles"]
        )

    def test_lane_counters_partition_totals(self, setup):
        _, _, batched = setup
        for name, total in batched.counters.items():
            assert int(batched.lane_counters[name].sum()) == total
            assert batched.lane_counters[name].shape == (7,)

    def test_lane_column_matches_single_destination_run(self, setup):
        from repro import minimum_cost_path

        W, _, batched = setup
        for d in (0, 3, 6):
            res = minimum_cost_path(
                PPAMachine(PPAConfig(n=7, word_bits=16)), W, d
            )
            lane = {
                k: int(v[d]) for k, v in batched.lane_counters.items()
            }
            assert lane == res.counters
            assert batched.iterations[d] == res.iterations

    @pytest.mark.parametrize("lanes", [1, 2, 3, 7, 99])
    def test_lanes_chunking_invariant(self, setup, lanes):
        """Any lane cap gives the same matrices and the same
        serial-equivalent totals — chunking is purely a memory knob."""
        W, _, full = setup
        res = all_pairs_minimum_cost(
            PPAMachine(PPAConfig(n=7, word_bits=16)), W, lanes=lanes
        )
        assert np.array_equal(res.dist, full.dist)
        assert np.array_equal(res.succ, full.succ)
        assert res.counters == full.counters
        for name in full.lane_counters:
            assert np.array_equal(
                res.lane_counters[name], full.lane_counters[name]
            )

    def test_word_parallel_batched_equals_word_parallel_serial(self, setup):
        W, _, _ = setup
        fast_b = all_pairs_minimum_cost(
            PPAMachine(PPAConfig(n=7, word_bits=16)), W, word_parallel=True
        )
        fast_s = all_pairs_minimum_cost(
            PPAMachine(PPAConfig(n=7, word_bits=16)), W,
            word_parallel=True, serial=True,
        )
        assert np.array_equal(fast_b.dist, fast_s.dist)
        assert fast_b.counters == fast_s.counters

    def test_caller_machine_attribution(self, setup):
        """Batched passes run through lanes() views, so the caller's
        scalar counters see exactly the batched-stream cost."""
        W, _, _ = setup
        m = PPAMachine(PPAConfig(n=7, word_bits=16))
        res = all_pairs_minimum_cost(m, W)
        assert m.counters.snapshot() == {
            k: res.machine_counters[k] for k in m.counters.snapshot()
        }
