"""All-pairs extension."""

import numpy as np
import pytest

from repro import PPAConfig, PPAMachine
from repro.baselines.sequential import bellman_ford
from repro.core.apsp import all_pairs_minimum_cost
from repro.errors import GraphError
from repro.workloads import WeightSpec, gnp_digraph

INF16 = (1 << 16) - 1


@pytest.fixture
def setup():
    W = gnp_digraph(7, 0.35, seed=4, weights=WeightSpec(1, 9), inf_value=INF16)
    m = PPAMachine(PPAConfig(n=7, word_bits=16))
    return W, m, all_pairs_minimum_cost(m, W)


class TestAPSP:
    def test_columns_match_single_destination(self, setup):
        W, m, apsp = setup
        for d in range(7):
            bf = bellman_ford(W, d, maxint=INF16)
            assert np.array_equal(apsp.dist[:, d], bf.sow)

    def test_diagonal_zero(self, setup):
        _, _, apsp = setup
        assert (np.diag(apsp.dist) == 0).all()

    def test_triangle_inequality(self, setup):
        _, _, apsp = setup
        D = apsp.dist.astype(np.int64)
        n = D.shape[0]
        for k in range(n):
            via = np.minimum(D[:, k, None] + D[None, k, :], INF16)
            assert (D <= via).all()

    def test_path_reconstruction(self, setup):
        W, _, apsp = setup
        for i in range(7):
            for j in range(7):
                if apsp.dist[i, j] >= INF16:
                    with pytest.raises(GraphError):
                        apsp.path(i, j)
                    continue
                p = apsp.path(i, j)
                assert p[0] == i and p[-1] == j
                cost = sum(int(W[a, b]) for a, b in zip(p, p[1:]))
                assert cost == int(apsp.dist[i, j])

    def test_counters_accumulate(self, setup):
        _, _, apsp = setup
        assert apsp.counters["bus_cycles"] > 0
        assert apsp.iterations.shape == (7,)

    def test_word_parallel_matches(self, setup):
        W, _, apsp = setup
        m = PPAMachine(PPAConfig(n=7, word_bits=16))
        fast = all_pairs_minimum_cost(m, W, word_parallel=True)
        assert np.array_equal(fast.dist, apsp.dist)
