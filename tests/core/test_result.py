"""MCPResult container."""

import numpy as np
import pytest

from repro.core.result import MCPResult
from repro.errors import GraphError


def res():
    return MCPResult(
        destination=1,
        sow=np.array([5, 0, 255]),
        ptn=np.array([1, 1, 1]),
        iterations=2,
        maxint=255,
        counters={"bus_cycles": 10},
    )


class TestResult:
    def test_n(self):
        assert res().n == 3

    def test_reachable_mask(self):
        assert res().reachable.tolist() == [True, True, False]

    def test_cost_finite(self):
        assert res().cost(0) == 5

    def test_cost_infinite(self):
        assert res().cost(2) == float("inf")

    def test_costs_dict_skips_unreachable(self):
        assert res().costs_dict() == {0: 5, 1: 0}

    def test_path_delegation(self):
        assert res().path(0) == [0, 1]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(GraphError):
            MCPResult(
                destination=0,
                sow=np.array([1, 2]),
                ptn=np.array([0]),
                iterations=1,
                maxint=255,
            )

    def test_2d_sow_rejected(self):
        with pytest.raises(GraphError):
            MCPResult(
                destination=0,
                sow=np.zeros((2, 2)),
                ptn=np.zeros((2, 2)),
                iterations=1,
                maxint=255,
            )

    def test_arrays_coerced_to_int64(self):
        r = MCPResult(
            destination=0,
            sow=np.array([0.0, 3.0]),
            ptn=np.array([0, 0]),
            iterations=1,
            maxint=255,
        )
        assert r.sow.dtype == np.int64

    def test_repr_mentions_destination(self):
        assert "d=1" in repr(res())
