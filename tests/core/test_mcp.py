"""The faithful MCP algorithm: correctness, convergence, edge cases."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    INF,
    PPAConfig,
    PPAMachine,
    minimum_cost_path,
    validate_tree,
)
from repro.baselines.sequential import bellman_ford, dijkstra
from repro.core.mcp import mcp_on_new_machine
from repro.errors import GraphError
from repro.workloads import (
    WeightSpec,
    complete_graph,
    gnp_digraph,
    grid_graph,
    layered_graph,
    ring_graph,
)

INF16 = (1 << 16) - 1


def machine(n, h=16):
    return PPAMachine(PPAConfig(n=n, word_bits=h))


class TestHandBuilt:
    def test_paper_style_small_graph(self):
        W = np.array(
            [
                [0, 4, INF, INF],
                [INF, 0, 1, INF],
                [INF, INF, 0, 7],
                [2, INF, INF, 0],
            ]
        )
        res = minimum_cost_path(machine(4), W, 3)
        assert res.sow.tolist() == [12, 8, 7, 0]
        assert res.path(0) == [0, 1, 2, 3]
        assert res.ptn[3] == 3

    def test_destination_cost_zero(self):
        W = ring_graph(5, seed=0, inf_value=INF16)
        res = minimum_cost_path(machine(5), W, 2)
        assert res.cost(2) == 0
        assert res.path(2) == [2]

    def test_direct_edge_beats_detour(self):
        W = np.array(
            [
                [0, 1, 5],
                [INF, 0, 1],
                [INF, INF, 0],
            ]
        )
        res = minimum_cost_path(machine(3), W, 2)
        assert res.cost(0) == 2  # 0 -> 1 -> 2 beats direct 5
        assert res.path(0) == [0, 1, 2]

    def test_unreachable_vertices(self):
        W = np.full((4, 4), INF)
        np.fill_diagonal(W, 0)
        W[0, 1] = 3
        res = minimum_cost_path(machine(4), W, 1)
        assert res.reachable.tolist() == [True, True, False, False]
        assert res.cost(2) == float("inf")
        with pytest.raises(GraphError, match="unreachable"):
            res.path(2)

    def test_edgeless_graph(self):
        W = np.full((4, 4), INF)
        np.fill_diagonal(W, 0)
        res = minimum_cost_path(machine(4), W, 0)
        assert res.reachable.sum() == 1
        assert res.iterations == 1

    def test_single_vertex(self):
        res = minimum_cost_path(machine(1), np.zeros((1, 1)), 0)
        assert res.cost(0) == 0 and res.path(0) == [0]

    def test_zero_weight_edges(self):
        W = np.array([[0, 0, INF], [INF, 0, 0], [INF, INF, 0]])
        res = minimum_cost_path(machine(3), W, 2)
        assert res.sow.tolist() == [0, 0, 0]
        assert res.path(0) == [0, 1, 2]

    def test_tie_breaks_to_smallest_successor(self):
        # two equal-cost routes 0->1->3 and 0->2->3
        W = np.array(
            [
                [0, 2, 2, INF],
                [INF, 0, INF, 2],
                [INF, INF, 0, 2],
                [INF, INF, INF, 0],
            ]
        )
        res = minimum_cost_path(machine(4), W, 3)
        assert res.cost(0) == 4
        assert res.ptn[0] == 1  # selected_min picks the smaller column


class TestValidationAndErrors:
    def test_destination_out_of_range(self):
        W = ring_graph(4, inf_value=INF16)
        with pytest.raises(GraphError, match="destination"):
            minimum_cost_path(machine(4), W, 7)

    def test_negative_destination(self):
        W = ring_graph(4, inf_value=INF16)
        with pytest.raises(GraphError, match="destination"):
            minimum_cost_path(machine(4), W, -1)

    def test_nonzero_diagonal_rejected(self):
        W = ring_graph(4, inf_value=INF16)
        W[1, 1] = 2
        with pytest.raises(GraphError, match="diagonal"):
            minimum_cost_path(machine(4), W, 0)

    def test_zero_diagonal_set_mode(self):
        W = ring_graph(4, inf_value=INF16)
        W[1, 1] = 2
        res = minimum_cost_path(machine(4), W, 0, zero_diagonal="set")
        assert res.cost(0) == 0

    def test_max_iterations_guard(self):
        W = ring_graph(8, inf_value=INF16)
        with pytest.raises(GraphError, match="did not converge"):
            minimum_cost_path(machine(8), W, 0, max_iterations=2)

    def test_convenience_wrapper(self):
        W = ring_graph(4, seed=1, inf_value=INF16)
        res = mcp_on_new_machine(W, 0)
        bf = bellman_ford(W, 0, maxint=INF16)
        assert np.array_equal(res.sow, bf.sow)


class TestConvergence:
    @pytest.mark.parametrize("p_len", [1, 2, 3, 5, 8])
    def test_iterations_equal_longest_path(self, p_len):
        W, d = layered_graph(p_len, 2, seed=1, inf_value=INF16)
        res = minimum_cost_path(machine(W.shape[0]), W, d)
        assert res.iterations == p_len

    def test_ring_needs_n_minus_1_productive_rounds(self):
        n = 6
        W = ring_graph(n, seed=0, inf_value=INF16)
        res = minimum_cost_path(machine(n), W, 0)
        # longest MCP to 0 has n-1 edges -> n-1 iterations
        assert res.iterations == n - 1

    def test_complete_graph_converges_fast(self):
        W = complete_graph(8, seed=0, weights=WeightSpec(1, 9), inf_value=INF16)
        res = minimum_cost_path(machine(8), W, 0)
        assert res.iterations <= 3

    def test_monotone_costs_across_runs(self):
        """Rerunning on the same machine gives identical results."""
        W = gnp_digraph(8, 0.3, seed=5, inf_value=INF16)
        m = machine(8)
        a = minimum_cost_path(m, W, 2)
        b = minimum_cost_path(m, W, 2)
        assert np.array_equal(a.sow, b.sow)
        assert a.iterations == b.iterations


class TestAgainstOracles:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("density", [0.15, 0.45, 0.9])
    def test_gnp_graphs(self, seed, density):
        n = 9
        W = gnp_digraph(n, density, seed=seed, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        d = seed % n
        res = minimum_cost_path(machine(n), W, d)
        bf = bellman_ford(W, d, maxint=INF16)
        dj = dijkstra(W, d, maxint=INF16)
        assert np.array_equal(res.sow, bf.sow)
        assert np.array_equal(res.sow, dj.sow)
        assert res.iterations == bf.iterations
        validate_tree(res, W)

    def test_grid_graph(self):
        W = grid_graph(4, seed=3, weights=WeightSpec(1, 9), inf_value=INF16)
        res = minimum_cost_path(machine(16), W, 5)
        dj = dijkstra(W, 5, maxint=INF16)
        assert np.array_equal(res.sow, dj.sow)
        validate_tree(res, W)

    @given(
        n=st.integers(2, 7),
        density=st.floats(0.0, 1.0),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=30)
    def test_property_random_graphs(self, n, density, seed):
        W = gnp_digraph(n, density, seed=seed, weights=WeightSpec(0, 12),
                        inf_value=INF16)
        d = seed % n
        res = minimum_cost_path(machine(n), W, d)
        bf = bellman_ford(W, d, maxint=INF16)
        assert np.array_equal(res.sow, bf.sow)
        validate_tree(res, W)


class TestWordWidths:
    @pytest.mark.parametrize("h", [8, 12, 24, 32])
    def test_result_independent_of_word_width(self, h):
        inf = (1 << h) - 1
        W = gnp_digraph(6, 0.4, seed=2, weights=WeightSpec(1, 7), inf_value=inf)
        res = minimum_cost_path(machine(6, h), W, 1)
        bf = bellman_ford(W, 1, maxint=inf)
        assert np.array_equal(res.sow, bf.sow)

    def test_bus_cost_scales_with_h(self):
        runs = {}
        for h in (8, 16):
            inf = (1 << h) - 1
            W = gnp_digraph(6, 0.4, seed=2, weights=WeightSpec(1, 7),
                            inf_value=inf)
            res = minimum_cost_path(machine(6, h), W, 1)
            runs[h] = res.counters["bus_cycles"] / res.iterations
        # 2h wired-ORs dominate: doubling h nearly doubles per-iter cost
        assert runs[16] > 1.5 * runs[8] / 2 + runs[8] / 2  # strictly increasing
        assert runs[16] - runs[8] == pytest.approx(16, abs=2)


class TestCountersAndResult:
    def test_counters_are_deltas(self):
        W = gnp_digraph(6, 0.4, seed=0, inf_value=INF16)
        m = machine(6)
        first = minimum_cost_path(m, W, 0)
        second = minimum_cost_path(m, W, 0)
        assert first.counters["bus_cycles"] == second.counters["bus_cycles"]

    def test_result_metadata(self):
        W = gnp_digraph(6, 0.4, seed=0, inf_value=INF16)
        res = minimum_cost_path(machine(6), W, 3)
        assert res.destination == 3
        assert res.n == 6
        assert res.maxint == INF16
        assert set(res.costs_dict()) <= set(range(6))
