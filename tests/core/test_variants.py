"""Word-parallel variant and batched destinations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import PPAConfig, PPAMachine, minimum_cost_path
from repro.core.variants import minimum_cost_path_multi, minimum_cost_path_word
from repro.workloads import WeightSpec, gnp_digraph

INF16 = (1 << 16) - 1


def machine(n):
    return PPAMachine(PPAConfig(n=n, word_bits=16))


class TestWordVariant:
    @pytest.mark.parametrize("seed", range(5))
    def test_identical_outputs(self, seed):
        W = gnp_digraph(8, 0.35, seed=seed, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        a = minimum_cost_path(machine(8), W, 2)
        b = minimum_cost_path_word(machine(8), W, 2)
        assert np.array_equal(a.sow, b.sow)
        assert np.array_equal(a.ptn, b.ptn)
        assert a.iterations == b.iterations

    def test_fewer_bus_transactions(self):
        W = gnp_digraph(8, 0.35, seed=1, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        serial = minimum_cost_path(machine(8), W, 2)
        word = minimum_cost_path_word(machine(8), W, 2)
        assert word.counters["bus_cycles"] < serial.counters["bus_cycles"] / 3

    @given(seed=st.integers(0, 500), n=st.integers(2, 6))
    @settings(max_examples=20)
    def test_property_equivalence(self, seed, n):
        W = gnp_digraph(n, 0.5, seed=seed, weights=WeightSpec(0, 9),
                        inf_value=INF16)
        a = minimum_cost_path(machine(n), W, seed % n)
        b = minimum_cost_path_word(machine(n), W, seed % n)
        assert np.array_equal(a.sow, b.sow)
        assert np.array_equal(a.ptn, b.ptn)


class TestMulti:
    def test_all_destinations_covered(self):
        W = gnp_digraph(6, 0.4, seed=3, inf_value=INF16)
        results = minimum_cost_path_multi(machine(6), W, [0, 2, 4])
        assert sorted(results) == [0, 2, 4]
        for d, res in results.items():
            single = minimum_cost_path(machine(6), W, d)
            assert np.array_equal(res.sow, single.sow)

    def test_word_parallel_flag(self):
        W = gnp_digraph(6, 0.4, seed=3, inf_value=INF16)
        results = minimum_cost_path_multi(
            machine(6), W, [1], word_parallel=True
        )
        single = minimum_cost_path(machine(6), W, 1)
        assert np.array_equal(results[1].sow, single.sow)

    def test_counters_are_per_destination(self):
        W = gnp_digraph(6, 0.4, seed=3, inf_value=INF16)
        results = minimum_cost_path_multi(machine(6), W, [0, 0])
        a, = {r.counters["bus_cycles"] for r in [results[0]]}
        assert a > 0


class TestSourceOriented:
    def test_costs_from_source(self):
        from repro.core.variants import minimum_cost_path_from

        W = gnp_digraph(8, 0.4, seed=6, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        res = minimum_cost_path_from(machine(8), W, 2)
        # oracle: Bellman-Ford toward 2 on the transposed matrix
        from repro.baselines.sequential import bellman_ford

        bf = bellman_ford(W.T, 2, maxint=INF16)
        assert np.array_equal(res.sow, bf.sow)

    def test_predecessor_chain_reconstructs_forward_path(self):
        from repro.core.variants import minimum_cost_path_from

        W = gnp_digraph(8, 0.5, seed=7, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        res = minimum_cost_path_from(machine(8), W, 0)
        for v in range(8):
            if not res.reachable[v] or v == 0:
                continue
            # walk predecessors back to the source, summing forward edges
            chain = [v]
            while chain[-1] != 0:
                chain.append(int(res.ptn[chain[-1]]))
                assert len(chain) <= 8
            chain.reverse()
            cost = sum(int(W[a, b]) for a, b in zip(chain, chain[1:]))
            assert cost == int(res.sow[v])

    def test_source_cost_zero(self):
        from repro.core.variants import minimum_cost_path_from

        W = gnp_digraph(5, 0.5, seed=1, inf_value=INF16)
        res = minimum_cost_path_from(machine(5), W, 3)
        assert res.cost(3) == 0
