"""Borůvka MST on the PPA vs networkx."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mst import boruvka_mst
from repro.errors import GraphError
from repro.ppa import PPAConfig, PPAMachine

INF16 = (1 << 16) - 1


def machine(n, h=16):
    return PPAMachine(PPAConfig(n=n, word_bits=h))


def random_graph(n, density, seed, *, connected=False):
    """Symmetric weight matrix with distinct weights."""
    rng = np.random.default_rng(seed)
    W = np.full((n, n), INF16, dtype=np.int64)
    np.fill_diagonal(W, 0)
    weights = rng.permutation(n * n) + 1  # distinct
    k = 0
    for i in range(n):
        for j in range(i + 1, n):
            if connected and j == i + 1:
                pass  # chain edge guarantees connectivity
            elif rng.random() >= density:
                continue
            W[i, j] = W[j, i] = int(weights[k])
            k += 1
    return W


def nx_mst_weight(W):
    G = nx.Graph()
    n = W.shape[0]
    G.add_nodes_from(range(n))
    for i in range(n):
        for j in range(i + 1, n):
            if W[i, j] < INF16:
                G.add_edge(i, j, weight=int(W[i, j]))
    forest = nx.minimum_spanning_edges(G, data=True)
    return sum(d["weight"] for _, _, d in forest)


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_networkx_weight(self, seed):
        W = random_graph(8, 0.5, seed, connected=True)
        res = boruvka_mst(machine(8), W)
        assert res.total_weight == nx_mst_weight(W)
        assert res.is_spanning_tree
        assert len(res.edges) == 7

    def test_edges_form_spanning_tree(self):
        W = random_graph(10, 0.6, 3, connected=True)
        res = boruvka_mst(machine(10), W)
        G = nx.Graph((u, v) for u, v, _ in res.edges)
        G.add_nodes_from(range(10))
        assert nx.is_tree(G)

    def test_edge_weights_reported_correctly(self):
        W = random_graph(6, 0.8, 1, connected=True)
        res = boruvka_mst(machine(6), W)
        for u, v, w in res.edges:
            assert u < v
            assert int(W[u, v]) == w

    def test_forest_on_disconnected_graph(self):
        W = np.full((6, 6), INF16, dtype=np.int64)
        np.fill_diagonal(W, 0)
        # two triangles with distinct weights
        for (i, j, w) in [(0, 1, 3), (1, 2, 5), (0, 2, 7),
                          (3, 4, 2), (4, 5, 4), (3, 5, 6)]:
            W[i, j] = W[j, i] = w
        res = boruvka_mst(machine(6), W)
        assert not res.is_spanning_tree
        assert len(res.edges) == 4
        assert res.total_weight == 3 + 5 + 2 + 4
        assert len(np.unique(res.components)) == 2

    def test_edgeless_graph(self):
        W = np.full((4, 4), INF16, dtype=np.int64)
        np.fill_diagonal(W, 0)
        res = boruvka_mst(machine(4), W)
        assert res.edges == ()
        assert len(np.unique(res.components)) == 4

    def test_single_edge(self):
        W = np.full((3, 3), INF16, dtype=np.int64)
        np.fill_diagonal(W, 0)
        W[0, 2] = W[2, 0] = 9
        res = boruvka_mst(machine(3), W)
        assert res.edges == ((0, 2, 9),)

    @given(seed=st.integers(0, 5000), n=st.integers(3, 9))
    @settings(max_examples=25)
    def test_property_weight_matches_networkx(self, seed, n):
        W = random_graph(n, 0.5, seed)
        res = boruvka_mst(machine(n), W)
        assert res.total_weight == nx_mst_weight(W)


class TestValidationAndCost:
    def test_asymmetric_rejected(self):
        W = np.full((4, 4), INF16, dtype=np.int64)
        np.fill_diagonal(W, 0)
        W[0, 1] = 3
        with pytest.raises(GraphError, match="symmetric"):
            boruvka_mst(machine(4), W)

    def test_duplicate_weights_rejected(self):
        W = np.full((4, 4), INF16, dtype=np.int64)
        np.fill_diagonal(W, 0)
        W[0, 1] = W[1, 0] = 5
        W[2, 3] = W[3, 2] = 5
        with pytest.raises(GraphError, match="distinct"):
            boruvka_mst(machine(4), W)

    def test_logarithmic_rounds(self):
        # a path graph maximises Boruvka rounds: ceil(log2 n)
        n = 16
        W = np.full((n, n), INF16, dtype=np.int64)
        np.fill_diagonal(W, 0)
        rng = np.random.default_rng(0)
        weights = rng.permutation(n) + 1
        for i in range(n - 1):
            W[i, i + 1] = W[i + 1, i] = int(weights[i])
        res = boruvka_mst(machine(n), W)
        assert res.is_spanning_tree
        assert res.rounds <= int(np.ceil(np.log2(n))) + 1

    def test_counters_scale_with_h(self):
        Wa = random_graph(8, 0.6, 5, connected=True)
        m8 = machine(8, h=16)
        r16 = boruvka_mst(m8, Wa)
        assert r16.counters["bus_cycles"] > 0
        per_round = r16.counters["reductions"] / r16.rounds
        # four bit-serial scans per round (min+selected twice) ~ 4h
        assert per_round == pytest.approx(4 * 16, abs=1)
