"""Experiment harness: every artefact regenerates and shows the paper's shape."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    ALL_EXPERIMENTS,
    run_a7,
    run_a8,
    run_f2,
    run_f3,
    run_f4,
    run_t1,
    run_t5,
    run_t6,
    run_t9,
)
from repro.metrics import linear_fit, loglog_slope


class TestT1:
    def test_all_rows_agree_with_oracles(self):
        table = run_t1(quick=True)
        assert len(table.rows) >= 5
        for row in table.rows:
            assert row[4] is True  # sow = Bellman-Ford
            assert row[5] is True  # sow = Dijkstra
            assert row[6] is True  # word variant
            assert row[7] is True  # PTN tree valid


class TestF2:
    def test_ppa_flat_mesh_linear(self):
        series = run_f2(quick=True)
        ppa_order = loglog_slope(series.x, series.ys["ppa_bus_per_iter"])
        mesh_order = loglog_slope(series.x, series.ys["mesh_bus_per_iter"])
        assert abs(ppa_order) < 0.15
        assert 0.8 < mesh_order < 1.2

    def test_gcn_also_flat(self):
        series = run_f2(quick=True)
        assert abs(loglog_slope(series.x, series.ys["gcn_bus_per_iter"])) < 0.15


class TestF3:
    def test_linear_in_h(self):
        series = run_f3(quick=True)
        fit = linear_fit(series.x, series.ys["bus_per_iter"])
        assert fit.r2 > 0.999
        assert 1.8 < fit.slope < 2.3  # ~2 bus transactions per bit

    def test_iterations_unaffected_by_h(self):
        series = run_f3(quick=True)
        assert len(set(series.ys["iterations"])) == 1


class TestF4:
    def test_iterations_equal_p(self):
        series = run_f4(quick=True)
        assert series.ys["iterations"] == list(series.x)
        assert series.ys["bellman_rounds"] == list(series.x)

    def test_total_cycles_linear_in_p(self):
        series = run_f4(quick=True)
        fit = linear_fit(series.x, series.ys["total_bus"])
        assert fit.r2 > 0.999


class TestT5:
    def test_every_architecture_correct(self):
        table = run_t5(quick=True)
        assert all(row[5] is True for row in table.rows)

    def test_ordering_holds(self):
        table = run_t5(quick=True)
        by_arch = {}
        for n, arch, iters, trans, bits, ok in table.rows:
            if n == 16:
                by_arch[arch] = (trans, bits)
        # mesh worst in both metrics; hypercube fewest transactions but
        # more bit-cycles than the bit-serial machines
        assert by_arch["mesh"][0] > by_arch["ppa"][0]
        assert by_arch["mesh"][1] > by_arch["hypercube"][1]
        assert by_arch["hypercube"][0] < by_arch["ppa"][0]
        assert by_arch["hypercube"][1] > by_arch["ppa"][1]
        assert abs(by_arch["gcn"][0] - by_arch["ppa"][0]) < 0.2 * by_arch["ppa"][0]


class TestT5P:
    def test_phase_rows_sum_to_t5_totals(self):
        """Each architecture's phase rows partition its whole-run counters."""
        from repro.analysis.experiments import run_t5, run_t5p

        t5 = {(n, arch): (trans, bits)
              for n, arch, _, trans, bits, _ in run_t5(quick=True).rows}
        sums: dict[tuple, list[int]] = {}
        for n, arch, phase, spans, bus, bits, alu in run_t5p(quick=True).rows:
            acc = sums.setdefault((n, arch), [0, 0])
            acc[0] += bus
            acc[1] += bits
        for key, (bus, bits) in sums.items():
            if key not in t5:
                continue  # T5P quick sweeps fewer sizes than T5 quick
            assert (bus, bits) == t5[key], key

    def test_ppa_has_selected_min_phase(self):
        from repro.analysis.experiments import run_t5p

        table = run_t5p(quick=True)
        phases_by_arch: dict[str, set] = {}
        for n, arch, phase, *rest in table.rows:
            phases_by_arch.setdefault(arch, set()).add(phase)
        assert "mcp.selected_min" in phases_by_arch["ppa"]
        assert "mcp.min" in phases_by_arch["mesh"]


class TestT6:
    def test_parity(self):
        table = run_t6(quick=True)
        assert len(table.rows) == 5
        for row in table.rows:
            assert row[1] is True and row[2] is True
        # interpreter with builtin min and the hand-written assembly match
        # the native transaction counts exactly; the compiled PPC source
        # matches the interpreter of the same source
        native, paper, builtin, asm, compiled = table.rows
        assert builtin[3] == native[3]
        assert paper[4] == native[4]
        assert asm[3] == native[3] and asm[5] == native[5]
        assert compiled[3] == paper[3] and compiled[4] == paper[4]


class TestA7:
    def test_ratio_grows_with_h(self):
        table = run_a7(quick=True)
        assert all(row[5] is True for row in table.rows)
        ratios = {(r[0], r[1]): r[4] for r in table.rows}
        assert ratios[(8, 16)] > ratios[(8, 8)]


class TestA8:
    def test_linear_model_degenerates(self):
        series = run_a8(quick=True)
        unit_order = loglog_slope(series.x, series.ys["unit_bus"])
        linear_order = loglog_slope(series.x, series.ys["linear_bus"])
        assert abs(unit_order) < 0.15  # flat per-iteration cost
        assert linear_order > 0.9


class TestT9:
    def test_extensions_correct(self):
        table = run_t9(quick=True)
        for row in table.rows:
            assert row[2] is True and row[3] is True


class TestA11:
    def test_partitions_agree_and_buses_win(self):
        from repro.analysis.experiments import run_a11

        table = run_a11(quick=True)
        assert all(row[5] is True for row in table.rows)
        for row in table.rows:
            assert row[3] <= row[4]  # buses never need more iterations
        frame = next(r for r in table.rows if r[0].startswith("frame"))
        assert frame[3] < frame[4] / 3  # and win big on elongated shapes


class TestA12:
    def test_sorters_agree_and_bus_pays_h(self):
        from repro.analysis.experiments import run_a12

        table = run_a12(quick=True)
        for row in table.rows:
            assert row[5] is True
            assert row[4] > 1  # extract-min always costs more bus cycles


class TestA13:
    def test_k1_is_lane_optimal_and_all_equal(self):
        from repro.analysis.experiments import run_a13

        table = run_a13()
        assert all(row[4] is True for row in table.rows)
        lane_cycles = table.column("lane-cycles")
        ks = table.column("digit bits k")
        assert lane_cycles[0] == min(lane_cycles)  # k = 1 wins
        # transactions strictly decrease with k
        trans = table.column("transactions")
        assert all(a > b for a, b in zip(trans, trans[1:]))
        assert ks[0] == 1


class TestT13:
    def test_constant_vs_linear(self):
        from repro.analysis.experiments import run_t13

        table = run_t13()
        assert all(row[4] is True for row in table.rows)
        rmesh = table.column("rmesh bus cycles")
        ppa = table.column("ppa bus cycles")
        assert set(rmesh) == {1}
        ns = table.column("n")
        assert all(c >= n - 1 for n, c in zip(ns, ppa))


class TestT14:
    def test_full_selftest_coverage_no_silent_corruption_unflagged(self):
        from repro.analysis.experiments import run_t14

        table = run_t14(quick=True)
        assert len(table.rows) == 2
        for row in table.rows:
            injections = row[1]
            benign, caught, silent = row[2], row[3], row[4]
            assert benign + caught + silent == injections
            local = row[5]
            assert local == f"{injections}/{injections}"  # full localisation


class TestT15:
    def test_mst_correct_and_logarithmic(self):
        from repro.analysis.experiments import run_t15

        table = run_t15()
        for row in table.rows:
            assert row[4] is True
            n = row[0]
            assert row[2] <= int(np.ceil(np.log2(n))) + 1


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(ALL_EXPERIMENTS) == {
            "T1", "F2", "F3", "F4", "T5", "T5P", "T6", "A7", "A8", "T9",
            "A11", "A12", "A13", "T13", "T14", "T15", "T16",
        }
