"""Report driver."""

import pytest

from repro.analysis.report import main, render_report, run_all


class TestRunAll:
    def test_subset(self):
        results = run_all(quick=True, only=["F4"])
        assert list(results) == ["F4"]

    def test_order_follows_registry(self):
        results = run_all(quick=True, only=["T6", "F4"])
        assert list(results) == ["F4", "T6"]


class TestRender:
    def test_text(self):
        out = render_report(run_all(quick=True, only=["F4"]))
        assert "F4" in out and "iterations" in out

    def test_markdown(self):
        out = render_report(run_all(quick=True, only=["F4"]), markdown=True)
        assert out.startswith("**")
        assert "|" in out


class TestCli:
    def test_main_quick_subset(self, capsys):
        assert main(["--quick", "F4"]) == 0
        out = capsys.readouterr().out
        assert "F4 - iterations" in out

    def test_main_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["--quick", "ZZ"])


class TestChartFlag:
    def test_chart_renders_series_as_bars(self, capsys):
        assert main(["--quick", "--chart", "F4"]) == 0
        out = capsys.readouterr().out
        assert "#" in out  # bar glyphs
        assert "| iterations" in out

    def test_chart_leaves_tables_alone(self, capsys):
        assert main(["--quick", "--chart", "T6"]) == 0
        out = capsys.readouterr().out
        assert "implementation" in out  # still a table
