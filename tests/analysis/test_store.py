"""Experiment result persistence and regression diffing."""

import pytest

from repro.analysis.report import main, run_all
from repro.analysis.store import (
    compare_results,
    from_jsonable,
    load_results,
    save_results,
    to_jsonable,
)
from repro.errors import ReproError
from repro.metrics.tables import Series, Table
from repro.ppa.counters import CycleCounters
from repro.telemetry import RunProfile, Tracer


def sample_table():
    t = Table("Sample", ["a", "b"])
    t.add_row(1, True)
    t.add_row(2, 3.5)
    t.note("a note")
    return t


def sample_series():
    s = Series("Sweep", "n")
    s.add_point(4, y=1.0)
    s.add_point(8, y=2.0)
    return s


def sample_profile():
    c = CycleCounters()
    t = Tracer(c, clock=iter([float(i) for i in range(8)]).__next__)
    t.enable()
    with t.span("mcp", n=4):
        with t.span("mcp.init"):
            c.instructions += 2
        with t.span("mcp.iteration", k=1):
            c.bus_cycles += 5
    return RunProfile.from_tracer(t, arch="ppa", n=4, recorded_at="T")


class TestRoundTrip:
    def test_table(self):
        t = sample_table()
        back = from_jsonable(to_jsonable(t))
        assert back.headers == t.headers
        assert back.rows == t.rows
        assert back.notes == t.notes

    def test_series(self):
        s = sample_series()
        back = from_jsonable(to_jsonable(s))
        assert back.x == s.x and back.ys == s.ys

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "run.json"
        save_results({"T": sample_table(), "S": sample_series()}, path)
        loaded = load_results(path)
        assert set(loaded) == {"T", "S"}
        assert loaded["T"].rows == sample_table().rows

    def test_missing_file(self):
        with pytest.raises(ReproError, match="not found"):
            load_results("/nonexistent.json")

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "other"}')
        with pytest.raises(ReproError, match="not a repro-experiments"):
            load_results(path)

    def test_unknown_kind(self):
        with pytest.raises(ReproError, match="unknown artefact kind"):
            from_jsonable({"kind": "chart"})

    def test_profile(self):
        p = sample_profile()
        back = from_jsonable(to_jsonable(p))
        assert isinstance(back, RunProfile)
        assert back.to_jsonable() == p.to_jsonable()

    def test_profile_file_roundtrip(self, tmp_path):
        """Profiles persist alongside tables in one results file."""
        path = tmp_path / "run.json"
        save_results({"T": sample_table(), "P": sample_profile()}, path)
        loaded = load_results(path)
        assert isinstance(loaded["P"], RunProfile)
        assert loaded["P"].counters == sample_profile().counters
        assert loaded["T"].rows == sample_table().rows


class TestCompare:
    def test_identical(self):
        a = {"T": sample_table()}
        b = {"T": sample_table()}
        assert compare_results(a, b) == []

    def test_cell_change_reported(self):
        a = {"T": sample_table()}
        changed = sample_table()
        changed.rows[0][0] = 99
        diffs = compare_results(a, {"T": changed})
        assert len(diffs) == 1 and "row 0 col 0: 1 -> 99" in diffs[0]

    def test_float_tolerance(self):
        a = {"S": sample_series()}
        b = {"S": sample_series()}
        b["S"].ys["y"][0] += 1e-12
        assert compare_results(a, b) == []
        b["S"].ys["y"][0] += 0.5
        assert compare_results(a, b)

    def test_missing_experiment(self):
        diffs = compare_results({"A": sample_table()}, {})
        assert diffs == ["A: only in the old run"]
        diffs = compare_results({}, {"B": sample_table()})
        assert diffs == ["B: only in the new run"]

    def test_row_count_change(self):
        a = {"T": sample_table()}
        longer = sample_table()
        longer.add_row(3, False)
        diffs = compare_results(a, {"T": longer})
        assert "row count 2 -> 3" in diffs[0]

    def test_arity_change_reported(self):
        a = {"T": sample_table()}
        wider = sample_table()
        wider.rows[1] = [2, 3.5, "extra"]
        diffs = compare_results(a, {"T": wider})
        assert diffs == ["T row 1: arity changed"]

    def test_profiles_identical(self):
        a = {"P": sample_profile()}
        b = {"P": sample_profile()}
        assert compare_results(a, b) == []

    def test_profile_counter_drift_reported(self):
        a = {"P": sample_profile()}
        drifted = sample_profile()
        drifted.find("mcp.iteration")[0].counters["bus_cycles"] += 1
        diffs = compare_results(a, {"P": drifted})
        assert diffs and all(d.startswith("P ") for d in diffs)

    def test_profile_walltime_drift_ignored(self):
        a = {"P": sample_profile()}
        slower = sample_profile()
        for s in slower.walk():
            s.end += 100.0
        assert compare_results(a, {"P": slower}) == []

    def test_profile_new_phase_changes_row_count(self):
        a = {"P": sample_profile()}
        extra = sample_profile()
        child = extra.spans[0].children[1]
        child.name = "mcp.round"  # renamed phase -> different row set
        diffs = compare_results(a, {"P": extra})
        assert diffs


class TestReportIntegration:
    def test_save_then_compare_matches(self, tmp_path, capsys):
        path = tmp_path / "f4.json"
        assert main(["--quick", "F4", "--json", str(path)]) == 0
        assert path.exists()
        assert main(["--quick", "F4", "--compare", str(path)]) == 0

    def test_compare_detects_drift(self, tmp_path, capsys):
        path = tmp_path / "f4.json"
        results = run_all(quick=True, only=["F4"])
        results["F4"].ys["iterations"][0] += 1  # simulate drift
        save_results(results, path)
        assert main(["--quick", "F4", "--compare", str(path)]) == 1
        out = capsys.readouterr().out
        assert "DIFF" in out
