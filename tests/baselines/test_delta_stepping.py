"""Δ-stepping baseline — validated against Dijkstra as the oracle."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    DeltaAPSPResult,
    default_delta,
    delta_stepping,
    delta_stepping_all_pairs,
)
from repro.baselines.sequential import dijkstra
from repro.errors import GraphError
from repro.workloads import WeightSpec, gnp_digraph

INF16 = (1 << 16) - 1


class TestAgainstDijkstra:
    @given(
        n=st.integers(2, 20),
        seed=st.integers(0, 10_000),
        density=st.floats(0.05, 0.9),
        delta=st.one_of(st.none(), st.integers(1, 50)),
    )
    @settings(max_examples=40)
    def test_sow_exact_for_any_delta(self, n, seed, density, delta):
        W = gnp_digraph(n, density, seed=seed, weights=WeightSpec(0, 40),
                        inf_value=INF16)
        d = seed % n
        ref = dijkstra(W, d, maxint=INF16)
        got = delta_stepping(W, d, maxint=INF16, delta=delta)
        assert np.array_equal(got.sow, ref.sow)

    @given(n=st.integers(2, 12), seed=st.integers(0, 1000))
    @settings(max_examples=30)
    def test_ptn_is_cost_consistent(self, n, seed):
        W = gnp_digraph(n, 0.4, seed=seed, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        d = seed % n
        res = delta_stepping(W, d, maxint=INF16)
        for i in range(n):
            if i == d or res.sow[i] >= INF16:
                continue
            s = int(res.ptn[i])
            assert res.sow[i] == W[i, s] + res.sow[s], (i, s)

    def test_degenerate_deltas_agree(self):
        """delta=1 (Dijkstra-like) and a huge delta (Bellman-Ford-like)
        bracket the heuristic default; all must give the same costs."""
        W = gnp_digraph(15, 0.3, seed=3, weights=WeightSpec(1, 20),
                        inf_value=INF16)
        ref = dijkstra(W, 4, maxint=INF16).sow
        for delta in (1, default_delta(W, maxint=INF16), 10_000):
            got = delta_stepping(W, 4, maxint=INF16, delta=delta)
            assert np.array_equal(got.sow, ref), delta

    def test_edgeless_graph(self):
        W = np.full((5, 5), INF16, dtype=np.int64)
        np.fill_diagonal(W, 0)
        res = delta_stepping(W, 2, maxint=INF16)
        expect = np.full(5, INF16, dtype=np.int64)
        expect[2] = 0
        assert np.array_equal(res.sow, expect)
        assert default_delta(W, maxint=INF16) == 1

    def test_phase_count_positive(self):
        W = gnp_digraph(8, 0.5, seed=1, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        assert delta_stepping(W, 0, maxint=INF16).iterations >= 1


class TestValidation:
    def test_delta_below_one_rejected(self):
        W = np.zeros((3, 3), dtype=np.int64)
        with pytest.raises(GraphError, match="delta"):
            delta_stepping(W, 0, maxint=INF16, delta=0)

    def test_input_checks_delegate_to_sequential(self):
        W = np.zeros((3, 3), dtype=np.int64)
        with pytest.raises(GraphError):
            delta_stepping(W, 5, maxint=INF16)  # destination out of range


class TestAllPairs:
    def _W(self, n=11, seed=7):
        return gnp_digraph(n, 0.3, seed=seed, weights=WeightSpec(1, 9),
                           inf_value=INF16)

    def test_matches_per_destination_runs(self):
        W = self._W()
        res = delta_stepping_all_pairs(W, maxint=INF16)
        for d in range(W.shape[0]):
            single = delta_stepping(W, d, maxint=INF16, delta=res.delta)
            assert np.array_equal(res.dist[:, d], single.sow)
            assert res.phases[d] == single.iterations

    @pytest.mark.parametrize("workers", [2, 3])
    def test_worker_invariance(self, workers):
        W = self._W(seed=9)
        base = delta_stepping_all_pairs(W, maxint=INF16)
        res = delta_stepping_all_pairs(W, maxint=INF16, workers=workers)
        assert np.array_equal(base.dist, res.dist)
        assert np.array_equal(base.succ, res.succ)
        assert np.array_equal(base.phases, res.phases)
        assert res.workers == workers

    def test_result_fields(self):
        W = self._W(n=4, seed=2)
        res = delta_stepping_all_pairs(W, maxint=INF16, workers=8)
        assert isinstance(res, DeltaAPSPResult)
        assert res.maxint == INF16
        assert res.delta == default_delta(W, maxint=INF16)
        assert res.workers == 4  # clamped to n
        assert res.dist.shape == (4, 4)
        assert np.array_equal(np.diag(res.dist), np.zeros(4, dtype=np.int64))
