"""Sequential oracles — validated against networkx as the independent truth."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.sequential import bellman_ford, dijkstra
from repro.errors import GraphError
from repro.workloads import WeightSpec, gnp_digraph, ring_graph

INF16 = (1 << 16) - 1


def nx_costs_to(W, d, maxint):
    """Shortest path costs from every vertex to d, via networkx."""
    G = nx.DiGraph()
    n = W.shape[0]
    G.add_nodes_from(range(n))
    for i in range(n):
        for j in range(n):
            if i != j and W[i, j] < maxint:
                G.add_edge(i, j, weight=int(W[i, j]))
    lengths = nx.single_source_dijkstra_path_length(G.reverse(copy=True), d)
    out = np.full(n, maxint, dtype=np.int64)
    for v, c in lengths.items():
        out[v] = c
    return out


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(6))
    def test_bellman_ford(self, seed):
        W = gnp_digraph(10, 0.3, seed=seed, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        d = seed % 10
        got = bellman_ford(W, d, maxint=INF16)
        assert np.array_equal(got.sow, nx_costs_to(W, d, INF16))

    @pytest.mark.parametrize("seed", range(6))
    def test_dijkstra(self, seed):
        W = gnp_digraph(10, 0.3, seed=seed, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        d = (seed * 3) % 10
        got = dijkstra(W, d, maxint=INF16)
        assert np.array_equal(got.sow, nx_costs_to(W, d, INF16))


class TestMutualAgreement:
    @given(n=st.integers(2, 8), seed=st.integers(0, 1000),
           density=st.floats(0, 1))
    @settings(max_examples=30)
    def test_bf_equals_dijkstra(self, n, seed, density):
        W = gnp_digraph(n, density, seed=seed, weights=WeightSpec(0, 15),
                        inf_value=INF16)
        d = seed % n
        bf = bellman_ford(W, d, maxint=INF16)
        dj = dijkstra(W, d, maxint=INF16)
        assert np.array_equal(bf.sow, dj.sow)


class TestStructure:
    def test_bf_successors_satisfy_bellman(self):
        W = gnp_digraph(9, 0.4, seed=7, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        bf = bellman_ford(W, 0, maxint=INF16)
        for i in range(9):
            if i == 0 or not bf.reachable[i]:
                continue
            j = int(bf.ptn[i])
            assert bf.sow[i] == W[i, j] + bf.sow[j]

    def test_bf_iterations_on_ring(self):
        W = ring_graph(7, seed=0, inf_value=INF16)
        bf = bellman_ford(W, 0, maxint=INF16)
        assert bf.iterations == 6

    def test_unreachable_coded_maxint(self):
        W = np.full((3, 3), INF16, dtype=np.int64)
        np.fill_diagonal(W, 0)
        bf = bellman_ford(W, 0, maxint=INF16)
        assert bf.sow.tolist() == [0, INF16, INF16]
        assert bf.reachable.tolist() == [True, False, False]


class TestValidation:
    def test_destination_range(self):
        W = ring_graph(4, inf_value=INF16)
        with pytest.raises(GraphError):
            bellman_ford(W, 4, maxint=INF16)
        with pytest.raises(GraphError):
            dijkstra(W, -1, maxint=INF16)

    def test_negative_weight_rejected(self):
        W = ring_graph(4, inf_value=INF16)
        W[0, 1] = -2
        with pytest.raises(GraphError, match="non-negative"):
            bellman_ford(W, 0, maxint=INF16)

    def test_nonzero_diagonal_rejected(self):
        W = ring_graph(4, inf_value=INF16)
        W[2, 2] = 1
        with pytest.raises(GraphError, match="diagonal"):
            dijkstra(W, 0, maxint=INF16)

    def test_non_square_rejected(self):
        with pytest.raises(GraphError, match="square"):
            bellman_ford(np.zeros((2, 3), dtype=np.int64), 0, maxint=INF16)
