"""ComparatorMachine shared plumbing."""

import numpy as np
import pytest

from repro.baselines.common import ComparatorMachine
from repro.errors import ConfigurationError, MaskError


class TestComparatorMachine:
    def test_reuses_config_validation(self):
        with pytest.raises(ConfigurationError):
            ComparatorMachine(0)
        with pytest.raises(ConfigurationError):
            ComparatorMachine(4, word_bits=1)

    def test_maxint(self):
        assert ComparatorMachine(4, word_bits=8).maxint == 255

    def test_square_fit(self):
        m = ComparatorMachine(4)
        m.require_square_fit(4)
        with pytest.raises(MaskError):
            m.require_square_fit(3)

    def test_comm_counting(self):
        m = ComparatorMachine(4)
        m._count_comm(3, 16)
        assert m.counters.bus_cycles == 3
        assert m.counters.bit_cycles == 48
        assert m.counters.instructions == 3

    def test_sat_add(self):
        m = ComparatorMachine(4, word_bits=8)
        out = m.sat_add(np.array([250]), np.array([10]))
        assert out.tolist() == [255]
        assert m.counters.alu_ops == 1
