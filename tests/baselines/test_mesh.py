"""Plain mesh baseline: correctness and Θ(n) communication scaling."""

import numpy as np
import pytest

from repro.baselines.mesh import MeshMachine
from repro.baselines.sequential import bellman_ford
from repro.core.path import validate_tree
from repro.workloads import WeightSpec, complete_graph, gnp_digraph

INF16 = (1 << 16) - 1


class TestPrimitives:
    def test_row_to_all(self):
        m = MeshMachine(4)
        vals = np.arange(16).reshape(4, 4)
        out = m.row_to_all(vals, 2)
        assert np.array_equal(out, np.tile(vals[2], (4, 1)))

    def test_diag_to_all_south(self):
        m = MeshMachine(4)
        vals = np.arange(16).reshape(4, 4)
        out = m.diag_to_all_south(vals)
        assert np.array_equal(out, np.tile(np.diag(vals), (4, 1)))

    def test_row_min_argmin(self):
        m = MeshMachine(4)
        vals = np.array([[5, 2, 9, 2]] * 4)
        args = np.tile(np.arange(4), (4, 1))
        mv, ma = m.row_min_argmin(vals, args)
        assert (mv == 2).all()
        assert (ma == 1).all()  # smallest index on tie

    def test_shift_costs_words(self):
        m = MeshMachine(4)
        before = m.counters.snapshot()
        m.shift_south(np.zeros((4, 4), dtype=np.int64))
        d = m.counters.diff(before)
        assert d["bus_cycles"] == 1 and d["bit_cycles"] == m.word_bits


class TestMCP:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_oracle(self, seed):
        W = gnp_digraph(8, 0.35, seed=seed, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        d = seed % 8
        res = MeshMachine(8).mcp(W, d)
        bf = bellman_ford(W, d, maxint=INF16)
        assert np.array_equal(res.sow, bf.sow)
        assert res.iterations == bf.iterations
        validate_tree(res, W)

    def test_communication_linear_in_n(self):
        per_iter = {}
        for n in (8, 16, 32):
            W = complete_graph(n, seed=2, weights=WeightSpec(1, 9),
                               inf_value=INF16)
            res = MeshMachine(n).mcp(W, 0)
            per_iter[n] = res.counters["bus_cycles"] / res.iterations
        assert per_iter[16] / per_iter[8] == pytest.approx(2.0, rel=0.2)
        assert per_iter[32] / per_iter[16] == pytest.approx(2.0, rel=0.2)

    def test_unreachable(self):
        W = np.full((4, 4), INF16, dtype=np.int64)
        np.fill_diagonal(W, 0)
        res = MeshMachine(4).mcp(W, 0)
        assert res.reachable.sum() == 1
