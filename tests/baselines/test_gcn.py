"""Gated Connection Network baseline."""

import numpy as np
import pytest

from repro.baselines.gcn import GCNMachine
from repro.baselines.sequential import bellman_ford
from repro.core.path import validate_tree
from repro.errors import BusError
from repro.workloads import WeightSpec, gnp_digraph

INF16 = (1 << 16) - 1


class TestLinePrimitives:
    def test_line_or_whole_row(self):
        m = GCNMachine(4)
        bits = np.zeros((4, 4), dtype=bool)
        bits[2, 1] = True
        out = m.line_or(bits, axis=1)
        assert out[2].all() and not out[0].any()

    def test_line_or_with_cut(self):
        m = GCNMachine(4)
        bits = np.zeros((4, 4), dtype=bool)
        bits[0, 0] = True
        cuts = np.zeros((4, 4), dtype=bool)
        cuts[:, 2] = True  # gate open before column 2
        out = m.line_or(bits, axis=1, cuts=cuts)
        assert out[0, :2].all() and not out[0, 2:].any()

    def test_line_broadcast_single_driver(self):
        m = GCNMachine(4)
        vals = np.arange(16).reshape(4, 4)
        drivers = np.zeros((4, 4), dtype=bool)
        drivers[:, 2] = True
        out = m.line_broadcast(vals, drivers, axis=1)
        assert np.array_equal(out, np.tile(vals[:, 2:3], (1, 4)))

    def test_conflicting_drivers_rejected(self):
        m = GCNMachine(4)
        vals = np.arange(16).reshape(4, 4)
        drivers = np.zeros((4, 4), dtype=bool)
        drivers[0, 0] = drivers[0, 3] = True
        with pytest.raises(BusError, match="conflicting drivers"):
            m.line_broadcast(vals, drivers, axis=1)

    def test_agreeing_drivers_allowed(self):
        m = GCNMachine(4)
        vals = np.full((4, 4), 7, dtype=np.int64)
        drivers = np.ones((4, 4), dtype=bool)
        out = m.line_broadcast(vals, drivers, axis=1)
        assert (out == 7).all()

    def test_undriven_segment_keeps_values(self):
        m = GCNMachine(4)
        vals = np.arange(16).reshape(4, 4)
        out = m.line_broadcast(vals, np.zeros((4, 4), bool), axis=1)
        assert np.array_equal(out, vals)

    def test_line_min(self):
        m = GCNMachine(4)
        vals = np.array([[9, 2, 5, 2]] * 4)
        mv, ma = m.line_min(vals, axis=1, args=np.tile(np.arange(4), (4, 1)))
        assert (mv == 2).all()
        assert (ma == 1).all()

    def test_line_min_cost_linear_in_h(self):
        for h in (8, 16):
            m = GCNMachine(4, word_bits=h)
            before = m.counters.snapshot()
            m.line_min(np.ones((4, 4), dtype=np.int64), axis=1)
            d = m.counters.diff(before)
            assert d["bus_cycles"] == h + 1  # h wired-ORs + 1 broadcast


class TestMCP:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("n", [6, 9])
    def test_matches_oracle(self, seed, n):
        W = gnp_digraph(n, 0.35, seed=seed, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        d = seed % n
        res = GCNMachine(n).mcp(W, d)
        bf = bellman_ford(W, d, maxint=INF16)
        assert np.array_equal(res.sow, bf.sow)
        assert res.iterations == bf.iterations
        validate_tree(res, W)

    def test_cost_independent_of_n(self):
        per_iter = {}
        for n in (8, 16, 32):
            from repro.workloads import complete_graph

            W = complete_graph(n, seed=2, weights=WeightSpec(1, 9),
                               inf_value=INF16)
            res = GCNMachine(n).mcp(W, 0)
            per_iter[n] = res.counters["bus_cycles"] / res.iterations
        # Constant per-iteration cost; only the fixed init overhead,
        # amortised over slightly different iteration counts, may wiggle.
        assert max(per_iter.values()) - min(per_iter.values()) <= 2


class TestGatedSegments:
    """The gating machinery beyond the MCP's whole-line usage."""

    def test_column_line_with_cut(self):
        m = GCNMachine(4)
        vals = np.arange(16).reshape(4, 4)
        drivers = np.zeros((4, 4), dtype=bool)
        drivers[0, :] = True  # row 0 drives every column line
        cuts = np.zeros((4, 4), dtype=bool)
        cuts[2, :] = True  # gate open before row 2
        out = m.line_broadcast(vals, drivers, axis=0, cuts=cuts)
        assert np.array_equal(out[:2], np.tile(vals[0], (2, 1)))
        assert np.array_equal(out[2:], vals[2:])  # undriven segment

    def test_two_segments_two_drivers(self):
        m = GCNMachine(6)
        vals = np.zeros((6, 6), dtype=np.int64)
        vals[0, 1] = 11
        vals[0, 4] = 44
        drivers = np.zeros((6, 6), dtype=bool)
        drivers[0, 1] = drivers[0, 4] = True
        cuts = np.zeros((6, 6), dtype=bool)
        cuts[:, 3] = True
        out = m.line_broadcast(vals, drivers, axis=1, cuts=cuts)
        assert out[0, :3].tolist() == [11, 11, 11]
        assert out[0, 3:].tolist() == [44, 44, 44]

    def test_line_min_with_cuts(self):
        m = GCNMachine(6)
        vals = np.array([[9, 2, 7, 1, 8, 3]] * 6)
        cuts = np.zeros((6, 6), dtype=bool)
        cuts[:, 3] = True
        mv, _ = m.line_min(vals, axis=1, cuts=cuts)
        assert mv[0, :3].tolist() == [2, 2, 2]
        assert mv[0, 3:].tolist() == [1, 1, 1]

    def test_first_position_cut_ignored(self):
        m = GCNMachine(4)
        bits = np.zeros((4, 4), dtype=bool)
        bits[0, 0] = True
        cuts = np.ones((4, 4), dtype=bool)  # col 0 cut must be ignored
        out = m.line_or(bits, axis=1, cuts=cuts)
        assert out[0, 0] and not out[0, 1]
