"""Hypercube (Connection Machine) baseline."""

import numpy as np
import pytest

from repro.baselines.hypercube import HypercubeMachine
from repro.baselines.sequential import bellman_ford
from repro.core.path import validate_tree
from repro.errors import ConfigurationError
from repro.workloads import WeightSpec, complete_graph, gnp_digraph

INF16 = (1 << 16) - 1


class TestConstruction:
    def test_requires_power_of_two(self):
        with pytest.raises(ConfigurationError, match="power of two"):
            HypercubeMachine(6)

    @pytest.mark.parametrize("n,dim", [(2, 1), (8, 3), (32, 5)])
    def test_dimension(self, n, dim):
        assert HypercubeMachine(n).dim == dim


class TestCollectives:
    def test_one_to_all_row_subcube(self):
        m = HypercubeMachine(8)
        vals = np.arange(64).reshape(8, 8)
        out = m.one_to_all(vals, root=3, axis=1)
        assert np.array_equal(out, np.tile(vals[:, 3:4], (1, 8)))

    def test_one_to_all_column_subcube(self):
        m = HypercubeMachine(8)
        vals = np.arange(64).reshape(8, 8)
        out = m.one_to_all(vals, root=5, axis=0)
        assert np.array_equal(out, np.tile(vals[5], (8, 1)))

    def test_allreduce_min(self):
        m = HypercubeMachine(8)
        vals = (np.arange(64).reshape(8, 8) * 7) % 23
        args = np.tile(np.arange(8), (8, 1))
        mv, ma = m.allreduce_min(vals, args, axis=1)
        assert np.array_equal(mv, np.tile(vals.min(1, keepdims=True), (1, 8)))
        assert np.array_equal(ma[:, 0], vals.argmin(axis=1))

    def test_diag_to_all(self):
        m = HypercubeMachine(4)
        vals = np.arange(16).reshape(4, 4)
        out = m._diag_to_all(vals)
        assert np.array_equal(out, np.tile(np.diag(vals), (4, 1)))

    def test_collective_cost_logarithmic(self):
        costs = {}
        for n in (8, 16, 32):
            m = HypercubeMachine(n)
            before = m.counters.snapshot()
            m.one_to_all(np.zeros((n, n), dtype=np.int64), 0, axis=0)
            costs[n] = m.counters.diff(before)["bus_cycles"]
        assert costs[8] == 3 and costs[16] == 4 and costs[32] == 5


class TestMCP:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_oracle(self, seed):
        W = gnp_digraph(8, 0.35, seed=seed, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        d = seed % 8
        res = HypercubeMachine(8).mcp(W, d)
        bf = bellman_ford(W, d, maxint=INF16)
        assert np.array_equal(res.sow, bf.sow)
        assert res.iterations == bf.iterations
        validate_tree(res, W)

    def test_communication_logarithmic_in_n(self):
        per_iter = {}
        for n in (8, 16, 32):
            W = complete_graph(n, seed=2, weights=WeightSpec(1, 9),
                               inf_value=INF16)
            res = HypercubeMachine(n).mcp(W, 0)
            per_iter[n] = res.counters["bus_cycles"] / res.iterations
        # log2 growth: +constant per doubling
        d1 = per_iter[16] - per_iter[8]
        d2 = per_iter[32] - per_iter[16]
        assert d1 == pytest.approx(d2, abs=3)
        assert per_iter[32] < 2 * per_iter[8]

    def test_larger_grid(self):
        W = gnp_digraph(16, 0.25, seed=9, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        res = HypercubeMachine(16).mcp(W, 11)
        bf = bellman_ford(W, 11, maxint=INF16)
        assert np.array_equal(res.sow, bf.sow)
