"""Golden diagnostics for the ISA-stream verifier, pc-accurate, plus the
clean bill for the assembly MCP and for compiled PPC streams."""

import pytest

from repro.core.asm_mcp import mcp_assembly
from repro.ppa.assembler import assemble
from repro.ppa.topology import PPAConfig
from repro.ppc.lang import programs
from repro.ppc.lang.codegen import compile_to_asm
from repro.verify import Severity, analyze_isa, verify_isa

CFG = PPAConfig(n=8, word_bits=16)


def run(asm, **kwargs):
    return verify_isa(assemble(asm), CFG, **kwargs)


def one(report, rule):
    found = report.by_rule(rule)
    assert len(found) == 1, report.render()
    return found[0]


# ---------------------------------------------------------------------------
# bus-race geometry
# ---------------------------------------------------------------------------


def test_bcast_undriven_ring_is_error():
    rep = run(
        """
        row   r4
        ldi   r10, 8
        cmpeq r6, r4, r10    ; ROW == 8 is false everywhere
        ldi   r1, 5
        bcast r2, r1, SOUTH, r6
        halt
"""
    )
    d = one(rep, "isa-bus-undriven")
    assert d.severity is Severity.ERROR
    assert d.pc == 4  # the bcast


def test_bcast_multi_driver_disagreeing_is_error():
    rep = run(
        """
        row   r4
        ldi   r10, 2
        cmplt r6, r4, r10    ; rows 0 and 1 Open on every column
        bcast r2, r4, SOUTH, r6
        halt
"""
    )
    d = one(rep, "isa-bus-multi-driver")
    assert d.severity is Severity.ERROR
    assert d.pc == 3


def test_bcast_multi_driver_equal_values_is_clean():
    rep = run(
        """
        row   r4
        ldi   r10, 2
        cmplt r6, r4, r10
        ldi   r1, 9          ; every driver injects the same constant
        bcast r2, r1, SOUTH, r6
        halt
"""
    )
    assert rep.ok, rep.render()


def test_bcast_unknown_plane_is_silent():
    rep = run(
        """
        ldi   r1, 3
        bcast r2, r1, EAST, r0   ; r0 is an input: plane unknown
        halt
""",
        inputs={"r0": None},
    )
    assert not rep.by_rule("isa-bus-undriven")
    assert not rep.by_rule("isa-bus-multi-driver")


def test_wor_multi_driver_is_not_a_race():
    # wired-OR combines all cluster members by design
    rep = run(
        """
        row   r4
        ldi   r10, 2
        cmplt r6, r4, r10
        wor   r2, r4, SOUTH, r6
        halt
"""
    )
    assert rep.ok, rep.render()


# ---------------------------------------------------------------------------
# dataflow / structural checks
# ---------------------------------------------------------------------------


def test_uninit_preg_read_is_warning():
    rep = run(
        """
        add   r1, r2, r3
        halt
"""
    )
    d = one(rep, "isa-uninit-read")
    assert d.severity is Severity.WARNING and d.pc == 0
    assert "r2" in d.message and "r3" in d.message


def test_declared_inputs_are_not_uninit():
    rep = run(
        """
        add   r1, r2, r3
        halt
""",
        inputs={"r2": None, "r3": 7},
    )
    assert not rep.by_rule("isa-uninit-read")


def test_uninit_memory_read_is_warning():
    rep = run(
        """
        ld    r1, 3
        halt
"""
    )
    d = one(rep, "isa-uninit-read")
    assert "memory word 3" in d.message


def test_flag_branch_before_gor_is_warning():
    rep = run(
        """
        jnz   end
end:    halt
"""
    )
    d = one(rep, "isa-flag-before-gor")
    assert d.severity is Severity.WARNING and d.pc == 0


def test_popm_underflow_is_error():
    rep = run(
        """
        popm
        halt
"""
    )
    d = one(rep, "isa-mask-underflow")
    assert d.severity is Severity.ERROR and d.pc == 0


def test_mask_leak_at_halt_is_warning():
    rep = run(
        """
        ldi   r1, 1
        pushm r1
        halt
"""
    )
    d = one(rep, "isa-mask-leak")
    assert d.severity is Severity.WARNING


def test_halt_unreached_on_executed_path_is_error():
    # the assembler requires a halt *somewhere*; this one is jumped over
    rep = run(
        """
        jmp   skip
        halt
skip:   ldi   r1, 1
"""
    )
    d = one(rep, "isa-pc-range")
    assert d.severity is Severity.ERROR
    assert "halt" in d.message


# ---------------------------------------------------------------------------
# width / arithmetic checks
# ---------------------------------------------------------------------------


def test_ldi_immediate_outside_word_is_warning():
    rep = run(
        """
        ldi   r1, 70000
        halt
"""
    )
    d = one(rep, "isa-width-imm")
    assert d.severity is Severity.WARNING and d.pc == 0


def test_bit_index_outside_word_is_error():
    rep = run(
        """
        ldi   r1, 3
        biti  r2, r1, 20
        halt
"""
    )
    d = one(rep, "isa-width-bit-index")
    assert d.severity is Severity.ERROR and d.pc == 1


def test_bits_dynamic_index_checked_against_concrete_sreg():
    rep = run(
        """
        ldi   r1, 3
        sldi  s1, 16
        bits  r2, r1, s1
        halt
"""
    )
    d = one(rep, "isa-width-bit-index")
    assert d.pc == 2


def test_guaranteed_shli_truncation_is_error():
    rep = run(
        """
        ldi   r1, 40000
        shli  r2, r1, 2
        halt
"""
    )
    d = one(rep, "isa-width-shift")
    assert d.severity is Severity.ERROR and d.pc == 1


def test_div_by_statically_zero_plane_is_error():
    rep = run(
        """
        ldi   r1, 4
        ldi   r2, 0
        div   r3, r1, r2
        halt
"""
    )
    d = one(rep, "isa-div-zero")
    assert d.severity is Severity.ERROR and d.pc == 2


# ---------------------------------------------------------------------------
# bundled streams are clean
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("n,word_bits", [(6, 16), (8, 12), (5, 8)])
def test_assembly_mcp_is_clean(n, word_bits):
    config = PPAConfig(n=n, word_bits=word_bits)
    program = assemble(mcp_assembly(n, word_bits))
    for d in (0, n // 2, n - 1):
        rep = verify_isa(
            program, config, inputs={"r0": None, "s0": d},
            source_name=f"asm-mcp d={d}",
        )
        assert not rep.diagnostics, rep.render()


def test_compiled_ppc_mcp_passes_isa_checks():
    n, h = 8, 16
    compiled = compile_to_asm(
        programs.MCP_CODE, n, h, entry="minimum_cost_path"
    )
    program = assemble(compiled.asm)
    config = PPAConfig(n=n, word_bits=h)
    # layout maps globals to their locations; W and d are the inputs
    for d in (0, 3, n - 1):
        rep = verify_isa(
            program, config, inputs={"m0": None, "s0": d},
            source_name="compiled-mcp",
        )
        assert not rep.diagnostics, rep.render()


def test_analysis_reaches_every_instruction_of_asm_mcp():
    n, h = 6, 16
    config = PPAConfig(n=n, word_bits=h)
    program = assemble(mcp_assembly(n, h))
    result = analyze_isa(
        program, config, inputs={"r0": None, "s0": 0},
        flag_schedule=(True, False),
    )
    assert result.halted
    assert (result.pc_counts > 0).all(), "unreached instructions"
