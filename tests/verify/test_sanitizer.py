"""Unit coverage for the runtime leak sanitizer.

Exercises the three censuses (pending tasks, open shm, held slots) in
isolation and through ``PathQueryService(sanitize=True)``: a clean
service stops clean, and each planted leak makes ``stop()`` raise
:class:`SanitizerViolation` naming the leaked resource. The
static-clean ⇒ sanitizer-clean bridge across the chaos campaign lives
in test_sanitizer_bridge.py.
"""

import asyncio

import pytest

from repro.verify import sanitizer
from repro.verify.sanitizer import (
    HostSanitizer,
    LeakCensus,
    SanitizerViolation,
    note_shm_create,
    note_shm_release,
    open_shm_census,
)


@pytest.fixture(autouse=True)
def _clean_registry():
    """Every test starts and ends with an empty shm registry."""
    sanitizer._open_shm.clear()
    yield
    sanitizer._open_shm.clear()


class TestShmRegistry:
    def test_disarmed_hooks_are_noops(self):
        note_shm_create("psm_x", "test")
        assert open_shm_census() == {}

    def test_armed_registry_tracks_create_and_release(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        note_shm_create("psm_x", "test")
        assert open_shm_census() == {"psm_x": "test"}
        note_shm_release("psm_x")
        assert open_shm_census() == {}

    def test_sharded_apsp_leaves_registry_empty(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        import numpy as np

        from repro.engine.shard import sharded_all_pairs
        from repro.ppa.machine import PPAMachine
        from repro.ppa.topology import PPAConfig
        from repro.workloads import WeightSpec, gnp_digraph

        n = 6
        W = gnp_digraph(n, 0.5, seed=4, weights=WeightSpec(1, 9),
                        inf_value=(1 << 16) - 1)
        sharded_all_pairs(PPAMachine(PPAConfig(n=n)), W, workers=2)
        assert open_shm_census() == {}


class TestHostSanitizer:
    def test_task_census_sees_pending_tasks(self):
        async def main():
            san = HostSanitizer()
            san.arm(asyncio.get_running_loop())
            try:
                done = asyncio.create_task(asyncio.sleep(0),
                                           name="done-task")
                pending = asyncio.create_task(asyncio.sleep(30),
                                              name="leaky-task")
                await done
                census = san.pending_task_census()
                assert "leaky-task" in census
                assert "done-task" not in census
                pending.cancel()
                await asyncio.gather(pending, return_exceptions=True)
                assert san.pending_task_census() == []
            finally:
                san.disarm()

        asyncio.run(main())

    def test_check_shutdown_raises_with_description(self):
        async def main():
            san = HostSanitizer()
            san.arm(asyncio.get_running_loop())
            try:
                task = asyncio.create_task(asyncio.sleep(30),
                                           name="leaky-task")
                with pytest.raises(SanitizerViolation) as err:
                    san.check_shutdown()
                assert "leaky-task" in str(err.value)
                assert not err.value.census.clean
                task.cancel()
                await asyncio.gather(task, return_exceptions=True)
            finally:
                san.disarm()

        asyncio.run(main())

    def test_arm_is_idempotent_and_restores_factory(self):
        async def main():
            loop = asyncio.get_running_loop()
            before = loop.get_task_factory()
            san = HostSanitizer()
            san.arm(loop)
            san.arm(loop)
            assert san.armed
            san.disarm()
            san.disarm()
            assert loop.get_task_factory() is before

        asyncio.run(main())

    def test_census_to_dict_shape(self):
        census = LeakCensus(pending_tasks=["t"], open_shm={"s": "o"},
                            held_slots=1, queued_waiters=2)
        body = census.to_dict()
        assert body == {
            "clean": False,
            "pending_tasks": ["t"],
            "open_shm": {"s": "o"},
            "held_slots": 1,
            "queued_waiters": 2,
        }
        assert "pending task" in census.describe()
        assert "shm segment" in census.describe()


class TestServiceIntegration:
    @staticmethod
    def _service():
        from repro.serve.service import PathQueryService, ServiceConfig

        return PathQueryService(ServiceConfig(verify=False),
                                sanitize=True)

    WIRE = [[0, 2, None], [None, 0, 3], [1, None, 0]]

    async def _put(self, service):
        put = await service.handle_request({
            "id": "g", "op": "put_graph", "graph": "g",
            "weights": self.WIRE, "word_bits": 16,
        })
        assert put.status == "ok", put.error

    def test_clean_service_stops_clean(self):
        async def main():
            service = self._service()
            await self._put(service)
            resp = await service.handle_request({
                "id": "1", "op": "point", "graph": "g",
                "source": 0, "dest": 2,
            })
            assert resp.status == "ok"
            await service.stop()
            assert service.last_census is not None
            assert service.last_census.clean
            assert service.stats()["sanitizer"]["last_census"]["clean"]

        asyncio.run(main())

    def test_orphan_task_trips_shutdown(self):
        async def main():
            service = self._service()
            await self._put(service)
            leak = asyncio.create_task(asyncio.sleep(30),
                                       name="planted-orphan")
            try:
                with pytest.raises(SanitizerViolation) as err:
                    await service.stop()
                assert "planted-orphan" in str(err.value)
            finally:
                leak.cancel()
                await asyncio.gather(leak, return_exceptions=True)

        asyncio.run(main())

    def test_held_slot_trips_shutdown(self):
        async def main():
            service = self._service()
            await self._put(service)
            await service.admission.acquire()
            with pytest.raises(SanitizerViolation) as err:
                await service.stop()
            assert err.value.census.held_slots == 1
            service.admission.release()

        asyncio.run(main())

    def test_leaked_shm_trips_shutdown(self):
        async def main():
            service = self._service()
            await self._put(service)
            note_shm_create("psm_planted", "test")
            try:
                with pytest.raises(SanitizerViolation) as err:
                    await service.stop()
                assert "psm_planted" in str(err.value)
            finally:
                note_shm_release("psm_planted")

        asyncio.run(main())

    def test_sanitize_off_records_nothing(self):
        from repro.serve.service import PathQueryService, ServiceConfig

        async def main():
            service = PathQueryService(ServiceConfig(verify=False),
                                       sanitize=False)
            await self._put(service)
            await service.stop()
            assert service.sanitizer is None
            assert service.stats()["sanitizer"] is None

        asyncio.run(main())

    def test_env_flag_arms_service(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        from repro.serve.service import PathQueryService, ServiceConfig

        service = PathQueryService(ServiceConfig(verify=False))
        assert service.sanitizer is not None
