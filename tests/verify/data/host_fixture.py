"""Golden fixture for ``repro lint --host --json``.

Deliberately trips exactly one error (host-blocking-sleep) and one
warning (host-suppression-unjustified). Do not edit lightly: the JSON
payload for this file is pinned byte-for-byte (modulo the source path)
by tests/verify/data/lint_host_golden.json — a schema change must bump
``LINT_SCHEMA_VERSION`` in repro/cli.py and regenerate the golden.
"""

import asyncio
import time


async def stall() -> None:
    time.sleep(1)
    await asyncio.sleep(0)


async def hushed() -> None:
    time.sleep(2)  # host-ok[host-blocking-sleep]:
