"""Golden trip/no-trip fixtures for every ``host-*`` rule.

Each rule gets at least one minimal source that must trip it and one
adjacent source that must stay clean — the same pinning style as the
PPC/ISA rule suites (test_ppc_rules.py / test_isa_rules.py). The
fixtures double as the rule-semantics documentation: if a change to
:mod:`repro.verify.host_checks` moves any of these, it changes the
contract in docs/static-analysis.md.
"""

import textwrap

from repro.verify.host_checks import HOST_RULES, analyze_host_source


def _analyze(src: str):
    return analyze_host_source(textwrap.dedent(src), source_name="fixture")


def _rules(src: str) -> list:
    return [d.rule for d in _analyze(src).diagnostics]


def trips(src: str, rule: str) -> None:
    report = _analyze(src)
    hits = report.by_rule(rule)
    assert hits, (
        f"expected {rule} to trip; got "
        f"{[d.rule for d in report.diagnostics]}\n{report.render()}"
    )


def clean(src: str, rule: str | None = None) -> None:
    report = _analyze(src)
    found = report.by_rule(rule) if rule else report.diagnostics
    assert not found, report.render()


class TestUnawaitedCoroutine:
    def test_trips_on_bare_asyncio_sleep(self):
        trips(
            """
            import asyncio

            async def go():
                asyncio.sleep(1)
            """,
            "host-unawaited-coroutine",
        )

    def test_trips_on_bare_local_coroutine_call(self):
        trips(
            """
            async def work():
                pass

            async def main():
                work()
            """,
            "host-unawaited-coroutine",
        )

    def test_trips_on_bare_self_method(self):
        trips(
            """
            class S:
                async def flush(self):
                    pass

                async def stop(self):
                    self.flush()
            """,
            "host-unawaited-coroutine",
        )

    def test_awaited_call_is_clean(self):
        clean(
            """
            import asyncio

            async def go():
                await asyncio.sleep(1)
            """
        )

    def test_name_collision_on_foreign_receiver_is_clean(self):
        # `writer.close()` is StreamWriter.close (sync) even though the
        # module defines an `async def close` — only self/cls receivers
        # match by name (the ServeClient.close false positive).
        clean(
            """
            async def close(writer):
                writer.close()
            """
        )

    def test_asyncio_run_of_nested_run_is_clean(self):
        # the `asyncio.run(run())` shape from _cmd_serve: the bare call
        # is asyncio.run (sync entry point), not the nested coroutine.
        clean(
            """
            import asyncio

            def main():
                async def run():
                    pass

                asyncio.run(run())
            """
        )


class TestOrphanTask:
    def test_trips_on_discarded_create_task(self):
        trips(
            """
            import asyncio

            async def work():
                pass

            async def go():
                asyncio.create_task(work())
            """,
            "host-orphan-task",
        )

    def test_kept_reference_is_clean(self):
        clean(
            """
            import asyncio

            async def work():
                pass

            async def go():
                task = asyncio.create_task(work())
                await task
            """
        )


class TestBlockingSleep:
    def test_trips_inside_async_def(self):
        trips(
            """
            import time

            async def go():
                time.sleep(0.5)
            """,
            "host-blocking-sleep",
        )

    def test_trips_in_nested_sync_helper(self):
        # nested sync defs run inline on the loop when called from the
        # coroutine (the chaos.py expect_column shape)
        trips(
            """
            import time

            async def go():
                def helper():
                    time.sleep(0.5)
                helper()
            """,
            "host-blocking-sleep",
        )

    def test_trips_through_from_import(self):
        trips(
            """
            from time import sleep

            async def go():
                sleep(1)
            """,
            "host-blocking-sleep",
        )

    def test_sync_function_is_clean(self):
        clean(
            """
            import time

            def go():
                time.sleep(0.5)
            """
        )


class TestBlockingIO:
    def test_trips_on_open_in_async_def(self):
        trips(
            """
            async def go(path):
                open(path).read()
            """,
            "host-blocking-io",
        )

    def test_trips_on_blocking_shutdown(self):
        trips(
            """
            async def stop(self):
                self._executor.shutdown(wait=True)
            """,
            "host-blocking-io",
        )

    def test_trips_on_pathlib_read_text(self):
        trips(
            """
            async def go(path):
                return path.read_text()
            """,
            "host-blocking-io",
        )

    def test_trips_on_bare_future_result(self):
        trips(
            """
            async def go(fut):
                return fut.result()
            """,
            "host-blocking-io",
        )

    def test_lambda_payload_is_clean(self):
        # lambdas inside async defs are thread dispatch / callbacks,
        # not inline execution
        clean(
            """
            import asyncio

            async def go(path):
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(
                    None, lambda: open(path).read())
            """
        )

    def test_nonblocking_shutdown_is_clean(self):
        clean(
            """
            async def stop(self):
                self._executor.shutdown(wait=False)
            """
        )


class TestBlockingCompute:
    def test_trips_on_oracle_kernel_in_async_def(self):
        trips(
            """
            from repro.serve.oracle import bellman_reference

            async def check(grid, dest, maxint):
                return bellman_reference(grid, dest, maxint)
            """,
            "host-blocking-compute",
        )

    def test_executor_dispatch_is_clean(self):
        # passing the kernel as a run_in_executor argument is the fix,
        # not a call on the loop
        clean(
            """
            import asyncio
            from repro.serve.oracle import bellman_reference

            async def check(grid, dest, maxint):
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(
                    None, bellman_reference, grid, dest, maxint)
            """
        )


class TestShmCreateLeak:
    def test_trips_without_finally(self):
        trips(
            """
            from multiprocessing import shared_memory

            def alloc(n):
                shm = shared_memory.SharedMemory(create=True, size=n)
                return shm.name
            """,
            "host-shm-create-leak",
        )

    def test_try_finally_is_clean(self):
        clean(
            """
            from multiprocessing import shared_memory

            def alloc(n):
                shm = shared_memory.SharedMemory(create=True, size=n)
                try:
                    return bytes(shm.buf)
                finally:
                    shm.close()
                    shm.unlink()
            """
        )

    def test_append_to_released_list_is_clean(self):
        # the sharded_all_pairs idiom: a nested allocator appends into a
        # list the outer function's finally releases
        clean(
            """
            from multiprocessing import shared_memory

            def run(n):
                blocks = []

                def alloc(size):
                    shm = shared_memory.SharedMemory(create=True,
                                                     size=size)
                    blocks.append(shm)
                    return shm.name

                try:
                    return [alloc(n), alloc(n)]
                finally:
                    release_blocks(blocks)
            """
        )


class TestShmAttachLeak:
    def test_trips_inside_comprehension(self):
        # the _run_shard partial-failure leak: a failing attach strands
        # every earlier handle in the comprehension
        trips(
            """
            from multiprocessing import shared_memory

            def attach_all(names):
                handles = [shared_memory.SharedMemory(name=n)
                           for n in names]
                try:
                    return [h.buf for h in handles]
                finally:
                    for h in handles:
                        h.close()
            """,
            "host-shm-attach-leak",
        )

    def test_loop_append_with_finally_is_clean(self):
        clean(
            """
            from multiprocessing import shared_memory

            def attach_all(names):
                handles = []
                try:
                    for n in names:
                        handles.append(shared_memory.SharedMemory(name=n))
                    return [h.buf for h in handles]
                finally:
                    for h in handles:
                        h.close()
            """
        )

    def test_returning_helper_is_clean_but_caller_is_checked(self):
        # a helper that returns the handle transfers ownership; an
        # unprotected *caller* of that helper trips instead
        report = _analyze(
            """
            from multiprocessing import shared_memory

            def attach(name):
                return shared_memory.SharedMemory(name=name)

            def use(name):
                shm = attach(name)
                return bytes(shm.buf)
            """
        )
        hits = report.by_rule("host-shm-attach-leak")
        assert len(hits) == 1 and hits[0].function == "use", \
            report.render()


class TestSlotLeak:
    def test_trips_without_finally(self):
        trips(
            """
            async def query(self):
                await self.admission.acquire()
                return compute()
            """,
            "host-slot-leak",
        )

    def test_enclosing_try_finally_is_clean(self):
        clean(
            """
            async def query(self):
                try:
                    await self.admission.acquire()
                    return compute()
                finally:
                    self.admission.release()
            """
        )

    def test_following_try_finally_is_clean(self):
        # the service.py _query shape: acquire, a line of bookkeeping,
        # then the try whose finally (conditionally) releases — the
        # sanitizer owns the residual acquire-to-try gap dynamically
        clean(
            """
            async def query(self):
                await self.admission.acquire()
                queued_ms = 1.0
                release = True
                try:
                    return compute(queued_ms)
                finally:
                    if release:
                        self.admission.release()
            """
        )

    def test_wrapped_in_wait_for_still_checked(self):
        trips(
            """
            import asyncio

            async def query(self):
                await asyncio.wait_for(self.admission.acquire(), 1.0)
                return compute()
            """,
            "host-slot-leak",
        )

    def test_async_with_is_clean(self):
        clean(
            """
            async def query(self, sem):
                async with sem:
                    return compute()
            """
        )


class TestForkGlobal:
    def test_trips_when_parent_reads_worker_write(self):
        trips(
            """
            import multiprocessing as mp

            _COUNT = {}

            def _work():
                _COUNT["n"] = 1

            def run():
                p = mp.Process(target=_work)
                p.start()
                p.join()
                return _COUNT.get("n")
            """,
            "host-fork-global",
        )

    def test_worker_private_global_is_clean(self):
        # the shard.py _worker_ctx shape: only the worker tree ever
        # reads the global it initialises
        clean(
            """
            import multiprocessing as mp

            _CTX = {}

            def _init(payload):
                _CTX.update(payload)

            def _work():
                _init({"n": 1})
                return _CTX["n"]

            def run():
                p = mp.Process(target=_work)
                p.start()
                p.join()
            """
        )


class TestUnseededRandom:
    def test_trips_on_bare_default_rng(self):
        trips(
            """
            import numpy as np

            def draw():
                return np.random.default_rng().integers(10)
            """,
            "host-unseeded-random",
        )

    def test_trips_on_legacy_numpy_global_draw(self):
        trips(
            """
            import numpy as np

            def draw():
                return np.random.randint(10)
            """,
            "host-unseeded-random",
        )

    def test_trips_on_stdlib_global_draw(self):
        trips(
            """
            import random

            def draw():
                return random.random()
            """,
            "host-unseeded-random",
        )

    def test_trips_on_unseeded_random_instance(self):
        trips(
            """
            import random

            def make():
                return random.Random()
            """,
            "host-unseeded-random",
        )

    def test_seeded_generators_are_clean(self):
        clean(
            """
            import random

            import numpy as np

            def draw(seed):
                rng = np.random.default_rng(seed)
                r = random.Random(seed)
                return rng.integers(10) + r.randint(0, 9)
            """
        )


class TestSuppressions:
    TRIP = """
    import time

    async def go():
        time.sleep(1){comment}
    """

    def test_justified_suppression_drops_finding(self):
        report = _analyze(self.TRIP.format(
            comment="  # host-ok[host-blocking-sleep]: test fixture "
                    "needs a real stall"))
        assert not report.diagnostics, report.render()

    def test_unjustified_suppression_warns(self):
        report = _analyze(self.TRIP.format(
            comment="  # host-ok[host-blocking-sleep]:"))
        assert not report.by_rule("host-blocking-sleep")
        assert report.by_rule("host-suppression-unjustified")
        assert not report.errors and report.warnings

    def test_wildcard_suppression(self):
        report = _analyze(self.TRIP.format(
            comment="  # host-ok: deliberate blocking fixture"))
        assert not report.diagnostics, report.render()

    def test_wrong_rule_id_does_not_suppress(self):
        report = _analyze(self.TRIP.format(
            comment="  # host-ok[host-slot-leak]: wrong rule"))
        assert report.by_rule("host-blocking-sleep")


class TestHarness:
    def test_parse_error_is_reported_not_raised(self):
        report = analyze_host_source("def broken(:\n", source_name="x")
        assert report.by_rule("host-parse-error")
        assert not report.ok

    def test_every_rule_has_catalogue_entry(self):
        assert all(isinstance(v, str) and v for v in HOST_RULES.values())

    def test_clean_source_reports_source_name(self):
        report = analyze_host_source("x = 1\n", source_name="unit.py")
        assert report.source == "unit.py" and report.ok
