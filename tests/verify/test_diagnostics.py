"""Report/Diagnostic mechanics: dedup, rendering, JSON round-trip."""

import json

from repro.verify.diagnostics import Diagnostic, Report, Severity


def test_add_deduplicates_on_rule_and_location():
    rep = Report(source="unit")
    for _ in range(3):
        rep.add("ppc-dead-write", Severity.WARNING, "dup", line=4)
    rep.add("ppc-dead-write", Severity.WARNING, "other site", line=9)
    assert len(rep.diagnostics) == 2
    assert [d.line for d in rep.diagnostics] == [4, 9]


def test_severity_partition_and_ok():
    rep = Report()
    assert rep.ok
    rep.add("a", Severity.WARNING, "w")
    assert rep.ok and len(rep.warnings) == 1
    rep.add("b", Severity.ERROR, "e")
    assert not rep.ok and len(rep.errors) == 1


def test_render_includes_rule_location_and_summary():
    rep = Report(source="prog")
    rep.add("ppc-bus-undriven", Severity.ERROR, "boom", line=7, function="main")
    text = rep.render()
    assert "prog:line 7" in text
    assert "[ppc-bus-undriven]" in text
    assert "(in main)" in text
    assert "1 error(s), 0 warning(s)" in text


def test_clean_render():
    assert "clean" in Report(source="x").render()


def test_json_round_trip():
    rep = Report(source="p")
    rep.add("r1", Severity.ERROR, "m1", pc=12, line=3)
    data = json.loads(rep.to_json())
    assert data["errors"] == 1
    assert data["diagnostics"][0]["pc"] == 12
    assert data["diagnostics"][0]["severity"] == "error"


def test_extend_merges_without_duplicates():
    a = Report(source="a")
    a.add("r", Severity.ERROR, "m", line=1)
    b = Report(source="b")
    b.add("r", Severity.ERROR, "m", line=1)  # same key
    b.add("r", Severity.ERROR, "m", line=2)
    a.extend(b)
    assert len(a.diagnostics) == 2


def test_pc_location_rendering():
    d = Diagnostic("r", Severity.WARNING, "m", pc=5, source="s")
    assert d.location == "s:pc=5"
