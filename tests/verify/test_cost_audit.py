"""The three-way cost audit: static prediction == analytic vector ==
real cycle-engine counters, plus the non-affine failure mode."""

import numpy as np
import pytest

from repro.core.asm_mcp import mcp_assembly, minimum_cost_path_asm
from repro.engine.costs import mcp_cost_vector
from repro.ppa.assembler import assemble
from repro.ppa.machine import PPAMachine
from repro.ppa.topology import BusCostModel, PPAConfig
from repro.verify import Severity, audit_mcp_cost, fit_affine_cost
from repro.verify.cost_audit import ANALYTIC_FIELDS
from repro.verify.isa_checks import COUNTER_FIELDS


@pytest.mark.parametrize(
    "config",
    [
        PPAConfig(n=6, word_bits=16),
        PPAConfig(n=8, word_bits=12),
        PPAConfig(n=5, word_bits=16, bus_cost_model=BusCostModel.LINEAR),
        PPAConfig(n=4, word_bits=8),
    ],
    ids=lambda c: f"n{c.n}h{c.word_bits}{c.bus_cost_model.name}",
)
def test_three_way_audit_is_clean(config):
    report = audit_mcp_cost(config)
    assert not report.diagnostics, report.render()


def test_affine_fit_matches_analytic_on_communication_ledger():
    config = PPAConfig(n=7, word_bits=16)
    program = assemble(mcp_assembly(config.n, config.word_bits))
    init, iteration, runs, report = fit_affine_cost(
        program, config, inputs={"r0": None, "s0": 0}
    )
    assert report.ok, report.render()
    assert all(r.halted for r in runs)
    vector = mcp_cost_vector(config)
    for k in ANALYTIC_FIELDS:
        assert iteration[k] == vector.iteration[k], k
        assert init[k] == vector.init[k], k


def test_prediction_matches_real_run_on_all_counters():
    config = PPAConfig(n=7, word_bits=16)
    program = assemble(mcp_assembly(config.n, config.word_bits))
    init, iteration, _, report = fit_affine_cost(
        program, config, inputs={"r0": None, "s0": 2}
    )
    assert report.ok

    rng = np.random.default_rng(7)
    W = rng.integers(1, 40, size=(config.n, config.n)).astype(np.int64)
    np.fill_diagonal(W, 0)
    machine = PPAMachine(config)
    result = minimum_cost_path_asm(machine, W, 2)
    for k in COUNTER_FIELDS:
        predicted = init[k] + result.iterations * iteration[k]
        assert predicted == result.counters[k], (
            f"{k}: predicted {predicted}, actual {result.counters[k]}"
        )


def test_round_dependent_stream_is_flagged_non_affine():
    # one extra add on every other round: cost(k) is not affine in k
    program = assemble(
        """
        ldi   r1, 1
        sldi  s1, 0
loop:
        sbne  s1, 0, skip
        add   r2, r1, r1
        sldi  s1, 1
        jmp   tail
skip:
        sldi  s1, 0
tail:
        gor   r1
        jnz   loop
        halt
"""
    )
    config = PPAConfig(n=4, word_bits=16)
    _, _, _, report = fit_affine_cost(program, config)
    found = report.by_rule("cost-audit-nonaffine")
    assert len(found) == 1, report.render()
    diag = found[0]
    assert diag.severity is Severity.ERROR
    assert diag.pc is not None
    assert "instructions" in diag.message or "alu_ops" in diag.message


def test_affine_stream_with_constant_rounds_is_clean():
    program = assemble(
        """
        ldi   r1, 1
loop:
        add   r2, r1, r1
        gor   r1
        jnz   loop
        halt
"""
    )
    config = PPAConfig(n=4, word_bits=16)
    init, iteration, _, report = fit_affine_cost(program, config)
    assert report.ok, report.render()
    # one add + one gor per round
    assert iteration["alu_ops"] == 2
    assert iteration["global_ors"] == 1
