"""Golden diagnostics for the PPC verifier: one fixture per lint rule,
pinning rule id, severity and source line — plus the clean bill of health
for every bundled paper listing."""

import pytest

from repro.errors import PPCVerifyError
from repro.ppc.lang import compile_ppc, programs
from repro.verify import Severity, verify_ppc_source


def one(report, rule):
    found = report.by_rule(rule)
    assert len(found) == 1, report.render()
    return found[0]


# ---------------------------------------------------------------------------
# bus-race geometry
# ---------------------------------------------------------------------------


def test_bus_undriven_ring_is_error():
    rep = verify_ppc_source(
        """
parallel int X, Y;
void main() { Y = broadcast(X, SOUTH, ROW == N); }
""",
        source_name="fixture",
    )
    d = one(rep, "ppc-bus-undriven")
    assert d.severity is Severity.ERROR
    assert d.line == 3
    assert "no Open driver" in d.message


def test_bus_multi_driver_unknown_values_is_error():
    rep = verify_ppc_source(
        """
parallel int X, Y;
void main() { Y = broadcast(X, SOUTH, ROW < 2); }
"""
    )
    d = one(rep, "ppc-bus-multi-driver")
    assert d.severity is Severity.ERROR
    assert d.line == 3


def test_bus_multi_driver_equal_values_is_clean():
    # every Open driver provably injects the same constant: the paper's
    # legitimate wired-OR survivor idiom
    rep = verify_ppc_source(
        """
parallel int Y;
void main() {
    parallel int X;
    X = 7;
    Y = broadcast(X, SOUTH, ROW < 2);
}
"""
    )
    assert not rep.by_rule("ppc-bus-multi-driver"), rep.render()


def test_bus_single_driver_is_clean():
    rep = verify_ppc_source(
        """
parallel int X, Y;
void main() { Y = broadcast(X, SOUTH, ROW == 0); }
"""
    )
    assert rep.ok, rep.render()


def test_bus_data_dependent_plane_is_silent():
    # the plane depends on input data: statically unknown, deferred to
    # the dynamic check_bus_conflicts machine mode
    rep = verify_ppc_source(
        """
parallel int X, Y;
void main() { Y = broadcast(X, SOUTH, X > 3); }
"""
    )
    assert rep.ok, rep.render()


# ---------------------------------------------------------------------------
# mask-aware dataflow
# ---------------------------------------------------------------------------


def test_use_before_def_through_where_is_error():
    rep = verify_ppc_source(
        """
parallel int B;
void main() {
    parallel int T;
    where (ROW == 0) { T = 1; }
    B = T + 1;
}
"""
    )
    d = one(rep, "ppc-use-before-def")
    assert d.severity is Severity.ERROR
    assert d.line == 6
    assert "'T'" in d.message


def test_where_elsewhere_pair_fully_defines():
    rep = verify_ppc_source(
        """
parallel int B;
void main() {
    parallel int T;
    where (ROW == 0) { T = 1; }
    elsewhere { T = 2; }
    B = T + 1;
}
"""
    )
    assert rep.ok, rep.render()


def test_dead_write_is_warning():
    rep = verify_ppc_source(
        """
parallel int X;
void main() {
    X = 1;
    X = 2;
}
"""
    )
    d = one(rep, "ppc-dead-write")
    assert d.severity is Severity.WARNING
    assert d.line == 4  # the overwritten store


def test_unreachable_elsewhere_is_warning():
    rep = verify_ppc_source(
        """
parallel int X;
void main() {
    where (ROW >= 0) { X = 1; }
    elsewhere { X = 2; }
}
"""
    )
    d = one(rep, "ppc-unreachable-elsewhere")
    assert d.severity is Severity.WARNING


# ---------------------------------------------------------------------------
# width / overflow analysis
# ---------------------------------------------------------------------------


def test_guaranteed_store_overflow_is_error():
    rep = verify_ppc_source(
        """
parallel int X;
void main() { X = MAXINT + 1; }
"""
    )
    d = one(rep, "ppc-width-store")
    assert d.severity is Severity.ERROR
    assert d.line == 3
    assert "65535" in d.message


def test_saturating_parallel_add_never_flags():
    # parallel '+' saturates at MAXINT by the machine definition; the
    # sentinel arithmetic of the paper must stay silent
    rep = verify_ppc_source(
        """
parallel int X, Y;
void main() { Y = X + MAXINT; }
"""
    )
    assert rep.ok, rep.render()


def test_guaranteed_shift_truncation_is_error():
    rep = verify_ppc_source(
        """
parallel int X, Y;
void main() {
    X = 40000;
    Y = X << 2;
}
"""
    )
    d = one(rep, "ppc-width-shift")
    assert d.severity is Severity.ERROR
    assert d.line == 5


def test_bit_index_outside_word_is_error():
    rep = verify_ppc_source(
        """
parallel int X;
parallel logical B;
void main() { B = bit(X, 20); }
"""
    )
    d = one(rep, "ppc-width-bit-index")
    assert d.severity is Severity.ERROR
    assert d.line == 4
    assert "20" in d.message


def test_word_width_is_parametric():
    source = """
parallel int X;
void main() { X = 1000; }
"""
    assert verify_ppc_source(source, word_bits=16).ok
    rep = verify_ppc_source(source, word_bits=8)
    assert one(rep, "ppc-width-store").severity is Severity.ERROR


# ---------------------------------------------------------------------------
# front-end failures become diagnostics
# ---------------------------------------------------------------------------


def test_parse_error_diagnostic():
    rep = verify_ppc_source("void main( {")
    d = one(rep, "ppc-parse")
    assert d.severity is Severity.ERROR and d.line == 1


def test_type_error_diagnostic():
    rep = verify_ppc_source("void main() { X = 1; }")
    d = one(rep, "ppc-type")
    assert d.severity is Severity.ERROR
    assert "undeclared" in d.message


# ---------------------------------------------------------------------------
# bundled paper listings are clean
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "name",
    [
        "MIN_CODE",
        "SELECTED_MIN_CODE",
        "MCP_CODE",
        "MCP_WITH_LIBRARY_MIN",
        "DISTANCE_TRANSFORM_CODE",
    ],
)
@pytest.mark.parametrize("n,word_bits", [(8, 16), (4, 8), (12, 16)])
def test_bundled_listings_are_clean(name, n, word_bits):
    rep = verify_ppc_source(
        getattr(programs, name), n=n, word_bits=word_bits, source_name=name
    )
    assert not rep.diagnostics, rep.render()


# ---------------------------------------------------------------------------
# compile_ppc(verify=...) wiring
# ---------------------------------------------------------------------------

_BAD = """
parallel int X, Y;
void main() { Y = broadcast(X, SOUTH, ROW < 2); }
"""


def test_compile_verify_off_by_default():
    program = compile_ppc(_BAD)
    assert program.verify_report is None


def test_compile_verify_warn_attaches_report():
    program = compile_ppc(_BAD, verify="warn")
    assert program.verify_report is not None
    assert not program.verify_report.ok


def test_compile_verify_error_raises_with_report():
    with pytest.raises(PPCVerifyError) as exc:
        compile_ppc(_BAD, verify="error")
    assert exc.value.report is not None
    assert exc.value.report.by_rule("ppc-bus-multi-driver")


def test_compile_verify_error_passes_clean_program():
    program = compile_ppc(programs.MCP_CODE, verify="error")
    assert program.verify_report.ok


def test_compile_verify_reports_are_memoized():
    a = compile_ppc(programs.MIN_CODE, verify="warn").verify_report
    b = compile_ppc(programs.MIN_CODE, verify="warn").verify_report
    assert a is b


def test_compile_verify_rejects_unknown_mode():
    with pytest.raises(ValueError):
        compile_ppc(_BAD, verify="loud")
