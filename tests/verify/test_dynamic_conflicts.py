"""The dynamic bus-race detector: unit fixtures for every geometry the
checker distinguishes, the machine-flag wiring, and the bridge property —
programs the static verifier passes never trip the runtime detector."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.sequential import bellman_ford
from repro.core.asm_mcp import minimum_cost_path_asm
from repro.core.mcp import minimum_cost_path
from repro.errors import BusConflictError
from repro.ppa.directions import Direction
from repro.ppa.machine import PPAMachine, check_broadcast_conflicts
from repro.ppa.topology import PPAConfig

N = 4


def plane(rows):
    return np.array(rows, dtype=bool)


# ---------------------------------------------------------------------------
# check_broadcast_conflicts unit geometry
# ---------------------------------------------------------------------------


def test_single_driver_per_ring_is_fine():
    src = np.arange(N * N, dtype=np.int64).reshape(N, N)
    L = np.zeros((N, N), dtype=bool)
    L[0, :] = True  # one Open per column
    check_broadcast_conflicts(src, L, Direction.SOUTH)


def test_all_open_identity_is_fine():
    # every PE its own cluster head: the identity configuration
    src = np.arange(N * N, dtype=np.int64).reshape(N, N)
    L = np.ones((N, N), dtype=bool)
    check_broadcast_conflicts(src, L, Direction.SOUTH)
    check_broadcast_conflicts(src, L, Direction.EAST)


def test_undriven_ring_is_not_reported_here():
    # zero Opens is strict_bus territory, not a write race
    src = np.ones((N, N), dtype=np.int64)
    L = np.zeros((N, N), dtype=bool)
    check_broadcast_conflicts(src, L, Direction.SOUTH)


def test_multi_driver_equal_values_is_fine():
    # the paper's min() survivor idiom: several Opens, same value
    src = np.full((N, N), 9, dtype=np.int64)
    L = plane([[1, 0, 0, 0], [1, 0, 0, 0], [0, 0, 0, 0], [1, 1, 1, 1]])
    check_broadcast_conflicts(src, L, Direction.SOUTH)


def test_multi_driver_disagreeing_raises():
    src = np.arange(N * N, dtype=np.int64).reshape(N, N)
    L = np.zeros((N, N), dtype=bool)
    L[0, 2] = L[1, 2] = True  # two Opens on column 2, values 2 and 6
    with pytest.raises(BusConflictError) as exc:
        check_broadcast_conflicts(src, L, Direction.SOUTH)
    msg = str(exc.value)
    assert "column 2" in msg
    assert "2 Open" in msg
    assert "[2, 6]" in msg


def test_axis_follows_direction():
    # same plane: a race along rows (EAST) but not along columns (SOUTH)
    src = np.arange(N * N, dtype=np.int64).reshape(N, N)
    L = np.zeros((N, N), dtype=bool)
    L[1, 0] = L[1, 3] = True  # two Opens on row 1; one per column
    check_broadcast_conflicts(src, L, Direction.SOUTH)
    with pytest.raises(BusConflictError, match="row 1"):
        check_broadcast_conflicts(src, L, Direction.EAST)


def test_boolean_src_is_coerced():
    src = np.zeros((N, N), dtype=bool)
    src[0, 0] = True
    L = np.zeros((N, N), dtype=bool)
    L[0, 0] = L[1, 0] = True
    with pytest.raises(BusConflictError):
        check_broadcast_conflicts(src, L, Direction.SOUTH)


def test_batched_stack_reports_lane():
    src = np.arange(N * N, dtype=np.int64).reshape(N, N)
    stack = np.stack([src, src])
    L = np.zeros((2, N, N), dtype=bool)
    L[0, 0, :] = True  # lane 0 clean: single driver per column
    L[1, 0, 1] = L[1, 2, 1] = True  # lane 1 races on column 1
    with pytest.raises(BusConflictError, match=r"lane 1"):
        check_broadcast_conflicts(stack, L, Direction.SOUTH)


# ---------------------------------------------------------------------------
# machine flag wiring
# ---------------------------------------------------------------------------


def test_machine_flag_off_by_default():
    machine = PPAMachine(PPAConfig(n=N))
    src = np.arange(N * N, dtype=np.int64).reshape(N, N)
    L = np.zeros((N, N), dtype=bool)
    L[0, 1] = L[2, 1] = True
    machine.broadcast(src, Direction.SOUTH, L)  # silent race, by default


def test_machine_flag_detects_race():
    machine = PPAMachine(PPAConfig(n=N), check_bus_conflicts=True)
    src = np.arange(N * N, dtype=np.int64).reshape(N, N)
    L = np.zeros((N, N), dtype=bool)
    L[0, 1] = L[2, 1] = True
    with pytest.raises(BusConflictError):
        machine.broadcast(src, Direction.SOUTH, L)


def test_machine_flag_passes_clean_broadcast():
    machine = PPAMachine(PPAConfig(n=N), check_bus_conflicts=True)
    src = np.arange(N * N, dtype=np.int64).reshape(N, N)
    L = np.zeros((N, N), dtype=bool)
    L[0, :] = True
    out = machine.broadcast(src, Direction.SOUTH, L)
    assert np.array_equal(out, np.broadcast_to(src[0], (N, N)))


# ---------------------------------------------------------------------------
# the bridge: statically-clean programs never trip the dynamic detector
# ---------------------------------------------------------------------------

_graphs = st.integers(0, 2**32 - 1).flatmap(
    lambda seed: st.tuples(st.just(seed), st.integers(0, 7))
)


@given(_graphs)
def test_static_pass_mcp_never_races_dynamically(params):
    seed, d = params
    config = PPAConfig(n=8, word_bits=16)
    rng = np.random.default_rng(seed)
    W = rng.integers(1, 50, size=(8, 8)).astype(np.int64)
    W[rng.random((8, 8)) < 0.3] = config.maxint  # some missing edges
    np.fill_diagonal(W, 0)

    checked = PPAMachine(config, check_bus_conflicts=True)
    res = minimum_cost_path(checked, W, d)  # must not raise
    bf = bellman_ford(W, d, maxint=config.maxint)
    assert np.array_equal(res.sow, bf.sow)


@given(st.integers(0, 2**32 - 1))
def test_static_pass_asm_mcp_never_races_dynamically(seed):
    config = PPAConfig(n=6, word_bits=16)
    rng = np.random.default_rng(seed)
    W = rng.integers(1, 30, size=(6, 6)).astype(np.int64)
    np.fill_diagonal(W, 0)
    d = int(rng.integers(0, 6))

    checked = PPAMachine(config, check_bus_conflicts=True)
    res = minimum_cost_path_asm(checked, W, d)  # must not raise
    bf = bellman_ford(W, d, maxint=config.maxint)
    assert np.array_equal(res.sow, bf.sow)
