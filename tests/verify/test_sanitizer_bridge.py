"""The static-clean ⇒ sanitizer-clean bridge property.

PR 5 pinned its verifier with a property in this shape: programs the
static pass certifies clean execute with zero runtime bus conflicts.
This suite states the host-side analogue, the tentpole contract of the
``host-*`` rules:

    every module of the serving/engine tier is statically clean under
    ``repro lint --host``, AND running the seeded chaos campaign —
    including the worker-kill and update-storm kinds — with the runtime
    sanitizer armed records a clean shutdown census (zero pending
    tasks, zero open shm segments, zero held slots) for every scenario.

If a future change breaks either half, this is the test that says
which: a static finding means the code lost its structural discipline;
a sanitizer trip with a clean static pass means a schedule-dependent
leak the rules cannot see — a new rule candidate, not a suppression.
"""

import asyncio
from pathlib import Path

import pytest

from repro.verify.host_checks import analyze_host_file, iter_python_files

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: the modules whose discipline the bridge property is about — the
#: host-concurrency surface the sanitizer instruments at runtime.
BRIDGE_MODULES = sorted(
    list((SRC / "serve").glob("*.py"))
    + [SRC / "engine" / "shard.py", SRC / "verify" / "sanitizer.py"]
)


class TestStaticHalf:
    @pytest.mark.parametrize("path", BRIDGE_MODULES,
                             ids=lambda p: p.stem)
    def test_bridge_module_is_statically_clean(self, path):
        report = analyze_host_file(path)
        assert not report.diagnostics, report.render()

    def test_whole_tree_has_no_errors(self):
        # the CI gate: `repro lint --host src/` must exit 0
        dirty = []
        for path in iter_python_files([SRC]):
            report = analyze_host_file(path)
            if report.errors:
                dirty.append(report.render())
        assert not dirty, "\n".join(dirty)


class TestDynamicHalf:
    def test_chaos_scenarios_shutdown_clean_under_sanitizer(self):
        # one scenario per hazardous kind, sanitizer explicitly on:
        # worker-kill exercises the shm release path under SIGKILL,
        # update-storm exercises coalescer/reaper drains under version
        # churn. run_scenario's stop() raises SanitizerViolation on any
        # leak, so a green run IS the property.
        from repro.serve.chaos import ChaosScenario, run_scenario

        for kind in ("worker-kill", "update-storm", "overload"):
            outcome = asyncio.run(run_scenario(ChaosScenario(
                name=f"bridge-{kind}", kind=kind, seed=11, n=6,
                requests=6, sanitize=True,
            )))
            census = outcome.get("sanitizer")
            assert census is not None, f"{kind}: sanitizer never armed"
            assert census["clean"], f"{kind}: {census}"
            assert outcome["wrong"] == 0, f"{kind}: wrong answers"

    def test_campaign_green_under_sanitizer(self):
        from repro.serve.chaos import run_chaos_campaign

        report = run_chaos_campaign(runs=4, seed=7, n=6,
                                    requests_per_run=5, sanitize=True)
        assert report["silent_wrong"] == 0, report
        assert report["leaked_shm"] == [], report
