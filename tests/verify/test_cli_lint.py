"""The `repro lint` command: exit codes, JSON output, file targets and
the .py listing extractor."""

import json

from repro.cli import main

BAD_PPC = """
parallel int X, Y;
void main() { Y = broadcast(X, SOUTH, ROW < 2); }
"""

WARN_PPC = """
parallel int X;
void main() {
    X = 1;
    X = 2;
}
"""


def test_default_lints_all_bundled_units_clean(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    for unit in ("min", "selected-min", "mcp", "mcp-library-min",
                 "distance-transform", "asm-mcp"):
        assert f"{unit}: clean" in out
    assert "6 unit(s), 0 error(s), 0 warning(s)" in out


def test_single_program_selection(capsys):
    assert main(["lint", "--program", "mcp"]) == 0
    out = capsys.readouterr().out
    assert "mcp: clean" in out
    assert "1 unit(s)" in out


def test_error_file_exits_nonzero(tmp_path, capsys):
    bad = tmp_path / "bad.ppc"
    bad.write_text(BAD_PPC)
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "ppc-bus-multi-driver" in out
    assert "1 error(s)" in out


def test_warning_file_exits_zero(tmp_path, capsys):
    warn = tmp_path / "warn.ppc"
    warn.write_text(WARN_PPC)
    assert main(["lint", str(warn)]) == 0
    out = capsys.readouterr().out
    assert "ppc-dead-write" in out


def test_missing_file_is_a_cli_error(tmp_path, capsys):
    assert main(["lint", str(tmp_path / "nope.ppc")]) == 2
    assert "not found" in capsys.readouterr().err


def test_json_output_schema(tmp_path, capsys):
    bad = tmp_path / "bad.ppc"
    bad.write_text(BAD_PPC)
    assert main(["lint", str(bad), "--json"]) == 1
    data = json.loads(capsys.readouterr().out)
    assert data["schema_version"] == 1
    assert data["mode"] == "ppc"
    assert data["errors"] == 1
    assert data["warnings"] == 0
    [report] = data["reports"]
    assert report["diagnostics"][0]["rule"] == "ppc-bus-multi-driver"
    assert report["diagnostics"][0]["severity"] == "error"
    assert report["diagnostics"][0]["line"] == 3


def test_json_all_bundled_is_clean(capsys):
    assert main(["lint", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["errors"] == 0
    assert len(data["reports"]) == 6


def test_py_extraction_finds_module_level_listings(tmp_path, capsys):
    mod = tmp_path / "snippets.py"
    mod.write_text(
        'GOOD = """\n'
        "parallel int X;\n"
        "void main() { X = 1; }\n"
        '"""\n'
        "\n"
        "NOT_PPC = \"just a string with parallel in it (\"\n"
        "\n"
        "def demo():\n"
        '    LOCAL = """\n'
        "parallel int Y;\n"
        "void main() { Y = MAXINT + 1; }\n"
        '"""\n'
        "    return LOCAL\n"
    )
    assert main(["lint", str(mod)]) == 0
    out = capsys.readouterr().out
    # module-level GOOD is linted; the in-function listing is not
    assert "GOOD" in out
    assert "1 unit(s)" in out


def test_py_without_listings_reports_nothing_found(tmp_path, capsys):
    mod = tmp_path / "empty.py"
    mod.write_text("x = 1\n")
    assert main(["lint", str(mod)]) == 0
    assert "no module-level PPC listings" in capsys.readouterr().out


def test_word_bits_is_forwarded(tmp_path, capsys):
    src = tmp_path / "w.ppc"
    src.write_text("parallel int X;\nvoid main() { X = 1000; }\n")
    assert main(["lint", str(src)]) == 0
    assert main(["lint", str(src), "--word-bits", "8"]) == 1
    assert "ppc-width-store" in capsys.readouterr().out


def test_no_cost_audit_skips_machine_run(capsys):
    assert main(["lint", "--program", "asm-mcp", "--no-cost-audit"]) == 0
    assert "asm-mcp: clean" in capsys.readouterr().out


def test_examples_directory_lints_clean(capsys):
    import pathlib

    demos = sorted(
        str(p) for p in pathlib.Path("examples").glob("*.py")
    )
    assert demos, "examples/ should contain demo scripts"
    assert main(["lint", *demos]) == 0


# -- the host-rule mode (`repro lint --host`) ---------------------------

DATA = __import__("pathlib").Path(__file__).parent / "data"


def _mask_sources(obj):
    """Replace file paths with <fixture> so the golden is path-free."""
    if isinstance(obj, dict):
        return {k: ("<fixture>" if k == "source" and v else
                    _mask_sources(v))
                for k, v in obj.items()}
    if isinstance(obj, list):
        return [_mask_sources(v) for v in obj]
    return obj


def test_host_json_matches_golden_fixture(capsys):
    """Byte-stable schema contract for downstream tooling: the payload
    for the committed fixture must match the committed golden exactly
    (modulo the absolute source path). A deliberate schema change must
    bump LINT_SCHEMA_VERSION and regenerate the golden."""
    assert main(["lint", "--host", "--json",
                 str(DATA / "host_fixture.py")]) == 1
    produced = _mask_sources(json.loads(capsys.readouterr().out))
    golden = json.loads((DATA / "lint_host_golden.json").read_text())
    assert produced == golden


def test_host_mode_clean_file_exits_zero(tmp_path, capsys):
    mod = tmp_path / "fine.py"
    mod.write_text("import asyncio\n\n\nasync def go():\n"
                   "    await asyncio.sleep(0)\n")
    assert main(["lint", "--host", str(mod)]) == 0
    out = capsys.readouterr().out
    assert "1 file(s), 0 error(s)" in out


def test_host_mode_directory_walk(tmp_path, capsys):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "bad.py").write_text(
        "import time\n\n\nasync def go():\n    time.sleep(1)\n")
    (tmp_path / "pkg" / "fine.py").write_text("x = 1\n")
    assert main(["lint", "--host", str(tmp_path / "pkg")]) == 1
    out = capsys.readouterr().out
    assert "host-blocking-sleep" in out
    assert "2 file(s), 1 error(s)" in out


def test_host_mode_over_repo_src_is_clean(capsys):
    """The acceptance criterion: `repro lint --host src/` exits 0."""
    assert main(["lint", "--host", "src"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out
