# Canonical developer commands (see README.md).

.PHONY: install test bench report examples all

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

report:
	python -m repro.analysis.report

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done

all: install test bench
