"""Connected-component labelling (4-connectivity) on the PE grid.

Baseline scheme: every foreground pixel starts with its own label (its
flat index) and repeatedly takes the minimum over its 4-neighbourhood;
labels flood each component until a fixed point. Convergence needs as many
steps as the longest in-component shortest path — slow for snaky shapes.

The *bus-accelerated* variant adds, after each neighbourhood sweep, one
segmented row reduction and one segmented column reduction: every maximal
run of consecutive foreground pixels forms a bus cluster (Open switch at
each run head) and collapses to its minimum label in a single transaction.
This is the classic reconfigurable-mesh trick the PPA's switch-boxes
exist for — a straight run of any length costs one cycle instead of its
length — and typically cuts the iteration count to the component's
"bend count" rather than its pixel diameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphError
from repro.ppa.directions import Direction
from repro.ppa.machine import PPAMachine

__all__ = ["ComponentsResult", "connected_components"]

_DIRECTIONS = (Direction.NORTH, Direction.EAST, Direction.SOUTH, Direction.WEST)


@dataclass(frozen=True)
class ComponentsResult:
    """Labelling outcome.

    ``labels[r, c]`` is the component id of foreground pixel ``(r, c)`` —
    the smallest flat index in its component, so ids are canonical — and
    ``-1`` on background.
    """

    labels: np.ndarray
    count: int
    iterations: int
    counters: dict[str, int] = field(default_factory=dict)

    def relabelled(self) -> np.ndarray:
        """Labels compressed to ``0 .. count-1`` (background stays -1)."""
        out = np.full(self.labels.shape, -1, dtype=np.int64)
        for new, old in enumerate(sorted(set(self.labels[self.labels >= 0]))):
            out[self.labels == old] = new
        return out


def _run_heads(machine: PPAMachine, fg: np.ndarray, direction: Direction) -> np.ndarray:
    """Open plane marking the first pixel of each foreground run.

    Non-torus shift: the first column/row is always a run head, so clusters
    never wrap across the image border.
    """
    upstream_fg = machine.shift(fg, direction, fill=False, torus=False)
    machine.count_alu()
    return fg & ~upstream_fg


def connected_components(
    machine: PPAMachine,
    image,
    *,
    use_buses: bool = True,
) -> ComponentsResult:
    """Label the 4-connected components of boolean *image*.

    With ``use_buses=True`` (default) each iteration also collapses every
    horizontal and vertical run of foreground pixels over the reconfigurable
    buses; with False only nearest-neighbour shifts are used (the plain-mesh
    behaviour), which needs many more iterations on elongated shapes — the
    comparison is exercised in the tests and the A11 benchmark.
    """
    fg = np.asarray(image, dtype=bool)
    if fg.shape != machine.shape:
        raise GraphError(
            f"image of shape {fg.shape} does not fit machine {machine.shape}"
        )
    before = machine.counters.snapshot()
    inf = machine.maxint
    n = machine.n
    if n * n >= inf:
        raise GraphError(
            f"flat pixel indices need {n * n} < MAXINT={inf}; increase "
            "word_bits"
        )

    flat = machine.row_index * n + machine.col_index
    machine.count_alu(2)
    labels = machine.new_parallel(inf)
    with machine.where(fg):
        machine.store(labels, flat)

    iterations = 0
    while True:
        iterations += 1
        old = labels.copy()
        machine.count_alu()
        # Neighbourhood sweep (always needed: buses only merge straight runs).
        for direction in _DIRECTIONS:
            neighbour = machine.shift(labels, direction, fill=inf, torus=False)
            better = fg & (neighbour < labels)
            machine.count_alu(2)
            with machine.where(better):
                machine.store(labels, neighbour)
        if use_buses:
            # Collapse every straight run in one transaction per axis.
            staged = np.where(fg, labels, inf)
            machine.count_alu()
            for direction in (Direction.EAST, Direction.SOUTH):
                heads = _run_heads(machine, fg, direction)
                run_min = machine.bus_reduce(staged, direction, heads, "min")
                with machine.where(fg):
                    machine.store(labels, np.minimum(labels, run_min))
                machine.count_alu()
                staged = np.where(fg, labels, inf)
                machine.count_alu()
        changed = labels != old
        machine.count_alu()
        if not machine.global_or(changed):
            break
        if iterations > machine.shape[0] * machine.shape[1] + 1:
            raise GraphError("labelling failed to converge")

    out = np.where(fg, labels, -1)
    count = int(len(np.unique(out[out >= 0])))
    return ComponentsResult(
        labels=out,
        count=count,
        iterations=iterations,
        counters=machine.counters.diff(before),
    )
