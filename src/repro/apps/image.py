"""Synthetic binary images sized to the PE grid."""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError

__all__ = ["random_blobs", "frame_image"]


def random_blobs(
    n: int,
    *,
    blobs: int = 3,
    radius: int = 2,
    seed: int = 0,
) -> np.ndarray:
    """A binary ``n x n`` image of *blobs* filled diamonds (city-block
    balls), the natural shapes for 4-connected algorithms."""
    if n < 1:
        raise GraphError(f"image side must be >= 1, got {n}")
    rng = np.random.default_rng(seed)
    img = np.zeros((n, n), dtype=bool)
    rows = np.arange(n)[:, None]
    cols = np.arange(n)[None, :]
    for _ in range(blobs):
        cr, cc = rng.integers(0, n, size=2)
        r = int(rng.integers(1, radius + 1))
        img |= (np.abs(rows - cr) + np.abs(cols - cc)) <= r
    return img


def frame_image(n: int, *, margin: int = 1) -> np.ndarray:
    """A hollow square frame *margin* pixels from the border (a shape whose
    interior is far from every feature — a good distance-transform probe)."""
    if n < 2 * margin + 2:
        raise GraphError(f"frame of margin {margin} needs n >= {2 * margin + 2}")
    img = np.zeros((n, n), dtype=bool)
    img[margin, margin:n - margin] = True
    img[n - margin - 1, margin:n - margin] = True
    img[margin:n - margin, margin] = True
    img[margin:n - margin, n - margin - 1] = True
    return img
