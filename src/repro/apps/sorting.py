"""Row sorting on the PPA, two classic ways.

The PPA inherits the mesh's canonical sorting network and adds a bus-based
alternative built from the paper's own ``min``/``selected_min`` machinery:

* :func:`odd_even_sort_rows` — odd-even transposition: ``n`` rounds of
  alternating adjacent compare-exchange over nearest-neighbour shifts.
  Word-parallel: **O(n)** shift steps per row, independent of ``h``.
* :func:`extract_min_sort_rows` — selection sort over the bus: ``n``
  repetitions of the bit-serial row minimum (+ ``selected_min`` to retire
  exactly one copy of it). **O(n·h)** bus cycles.

The pair mirrors the A7 trade-off at algorithm scale: buses win on
*selection* (one minimum: O(h) ≪ O(n)) but lose on *full sorts*, where the
shift network streams all comparisons. Both are validated against
``numpy.sort`` (duplicates included) in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphError
from repro.ppa.directions import Direction
from repro.ppa.machine import PPAMachine
from repro.ppc.reductions import ppa_min, ppa_selected_min

__all__ = ["SortResult", "odd_even_sort_rows", "extract_min_sort_rows"]


@dataclass(frozen=True)
class SortResult:
    """Sorted rows plus run metadata."""

    values: np.ndarray  # each row ascending
    rounds: int
    counters: dict[str, int] = field(default_factory=dict)


def _check(machine: PPAMachine, values) -> np.ndarray:
    vals = np.asarray(values, dtype=np.int64)
    if vals.shape != machine.shape:
        raise GraphError(
            f"value grid {vals.shape} does not fit machine {machine.shape}"
        )
    return machine.check_word(vals, "sort keys")


def odd_even_sort_rows(machine: PPAMachine, values) -> SortResult:
    """Sort every row ascending by odd-even transposition.

    ``n`` rounds; round ``k`` compare-exchanges the adjacent pairs starting
    at even (k even) or odd (k odd) columns. Each round costs two word
    shifts plus O(1) local compare-selects.
    """
    vals = _check(machine, values)
    n = machine.n
    before = machine.counters.snapshot()
    inf = machine.maxint

    col = machine.col_index
    out = vals.copy()
    machine.count_alu()
    for round_ in range(n):
        offset = round_ % 2
        east = machine.shift(out, Direction.WEST, fill=inf, torus=False)
        west = machine.shift(out, Direction.EAST, fill=0, torus=False)
        is_left = (col % 2 == offset) & (col < n - 1)
        is_right = (col % 2 != offset) & (col > 0)
        machine.count_alu(4)
        out = np.where(
            is_left,
            np.minimum(out, east),
            np.where(is_right, np.maximum(out, west), out),
        )
        machine.count_alu(2)
    return SortResult(
        values=out,
        rounds=n,
        counters=machine.counters.diff(before),
    )


def extract_min_sort_rows(machine: PPAMachine, values) -> SortResult:
    """Sort every row ascending by repeated bus minimum extraction.

    Each of the ``n`` rounds runs the paper's bit-serial ``min()`` over the
    whole row, stores the result in the next output column, and retires
    exactly one copy of it (the smallest-column achiever, found by
    ``selected_min`` — so duplicate keys survive the right number of
    rounds).
    """
    vals = _check(machine, values)
    n = machine.n
    before = machine.counters.snapshot()
    inf = machine.maxint
    if int(vals.max(initial=0)) >= inf:
        raise GraphError(
            f"sort keys must stay below MAXINT={inf} (the retirement "
            "sentinel); increase word_bits"
        )

    col = machine.col_index
    col_last = col == n - 1
    machine.count_alu()
    remaining = vals.copy()
    out = machine.new_parallel(0)
    for k in range(n):
        row_min = ppa_min(machine, remaining, Direction.WEST, col_last)
        with machine.where(col == k):
            machine.store(out, row_min)
        achieves = remaining == row_min
        machine.count_alu()
        winner = ppa_selected_min(
            machine, col, Direction.WEST, col_last, achieves
        )
        with machine.where(col == winner):
            machine.store(remaining, inf)
    return SortResult(
        values=out,
        rounds=n,
        counters=machine.counters.diff(before),
    )
