"""City-block distance transform on the PE grid.

One pixel per PE. Feature pixels start at distance 0, everything else at
``MAXINT``; each iteration sweeps the four directions in sequence
(non-torus shifts — opposite image borders are not adjacent), each sweep
adding one saturating step and keeping the minimum. Because the sweeps
apply in place, one iteration chamfer-propagates along its sweep order and
the loop converges in at most ``max distance + 1`` rounds (often far
fewer) — the grid analogue of the MCP do-while, and the communication
pattern the paper says its primitives were built for (the EDT algorithm of
its Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphError
from repro.ppa.directions import Direction
from repro.ppa.machine import PPAMachine

__all__ = ["DistanceResult", "distance_transform"]

_DIRECTIONS = (Direction.NORTH, Direction.EAST, Direction.SOUTH, Direction.WEST)


@dataclass(frozen=True)
class DistanceResult:
    """Distances plus run metadata.

    ``distances[r, c]`` is the city-block (L1) distance from pixel
    ``(r, c)`` to the nearest feature pixel; ``unreached`` (= the machine's
    ``MAXINT``) where no feature pixel exists on the image.
    """

    distances: np.ndarray
    iterations: int
    unreached: int
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def max_distance(self) -> int:
        finite = self.distances[self.distances < self.unreached]
        return int(finite.max()) if finite.size else 0


def distance_transform(machine: PPAMachine, image) -> DistanceResult:
    """City-block distance to the nearest True pixel of *image*.

    Parameters
    ----------
    machine
        PPA sized to the image (one PE per pixel).
    image
        Boolean ``n x n`` array; True marks feature pixels.

    Returns
    -------
    DistanceResult
        Exact L1 distances (validated against ``scipy.ndimage`` in the
        tests), computed in ``max_distance`` wavefront iterations of 4
        shifts each.
    """
    img = np.asarray(image, dtype=bool)
    if img.shape != machine.shape:
        raise GraphError(
            f"image of shape {img.shape} does not fit machine "
            f"{machine.shape}"
        )
    before = machine.counters.snapshot()
    inf = machine.maxint

    dist = machine.new_parallel(inf)
    with machine.where(img):
        machine.store(dist, 0)

    iterations = 0
    while True:
        iterations += 1
        changed = np.zeros(machine.shape, dtype=bool)
        for direction in _DIRECTIONS:
            neighbour = machine.shift(dist, direction, fill=inf, torus=False)
            candidate = machine.sat_add(neighbour, 1)
            better = candidate < dist
            machine.count_alu()
            with machine.where(better):
                machine.store(dist, candidate)
            changed |= better
            machine.count_alu()
        if not machine.global_or(changed):
            break
        if iterations > 2 * machine.n:
            raise GraphError("distance transform failed to converge")

    return DistanceResult(
        distances=dist,
        iterations=iterations,
        unreached=inf,
        counters=machine.counters.diff(before),
    )
