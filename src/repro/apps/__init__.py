"""Image applications on the PE grid.

The paper's Section 2 notes its communication primitives are the ones
"used to implement the EDT algorithm" — reconfigurable meshes were built
for grid-shaped data where each PE holds one pixel. This package maps
images one-pixel-per-PE and implements the classic kernels:

* :func:`~repro.apps.distance_transform.distance_transform` — city-block
  distance to the nearest feature pixel (Lee/EDT-style wavefront),
* :func:`~repro.apps.components.connected_components` — 4-connectivity
  labelling by minimum-label propagation, with an optional bus-accelerated
  variant that collapses rows/columns of equal labels in O(1) per sweep.

Both run in O(image diameter) SIMD steps and are validated against
``scipy.ndimage`` in the tests.
"""

from repro.apps.image import random_blobs, frame_image
from repro.apps.distance_transform import distance_transform, DistanceResult
from repro.apps.components import connected_components, ComponentsResult
from repro.apps.sorting import (
    SortResult,
    extract_min_sort_rows,
    odd_even_sort_rows,
)

__all__ = [
    "random_blobs",
    "frame_image",
    "distance_transform",
    "DistanceResult",
    "connected_components",
    "ComponentsResult",
    "SortResult",
    "odd_even_sort_rows",
    "extract_min_sort_rows",
]
