"""Process-parallel APSP destination sharding over shared memory.

The all-pairs sweep is embarrassingly parallel across destinations: every
destination's MCP run reads the same weight matrix and writes disjoint
columns of ``dist``/``succ``. This module splits the destination range
into contiguous shards, runs one **supervised worker process** per shard
(``fork`` start method), and stitches the results back together
**deterministically** — output planes land in preallocated
:mod:`multiprocessing.shared_memory` blocks (each worker owns its own
columns, so there are no write conflicts), and the per-worker
machine-counter deltas are merged in shard order.

Failure handling
----------------
Workers are real processes and real processes die. The parent never
waits unboundedly on a shard: every worker runs under a deadline
(``shard_timeout``) and a liveness watch. A shard that crashes (nonzero
exit, e.g. SIGKILL), raises, or blows its deadline is **respawned and
retried exactly once**; if the retry fails too, the parent recomputes
that shard **inline** on its own machine, so the sweep always returns a
complete, correct :class:`~repro.core.apsp.APSPResult`. Every incident
is surfaced as a structured :class:`ShardFailure` in
``APSPResult.shard_report["failures"]`` — nothing hangs and nothing is
silently dropped. ``repro.serve`` wraps this layer in a circuit breaker
and a degradation ladder (see docs/robustness.md).

Shared-memory hygiene: the parent owns every segment and releases each
one individually on **every** exit path (success, worker failure, parent
exception, interpreter teardown ordering) — a failure while cleaning one
block cannot leak the others. Workers attach without ownership and close
in a ``finally``; a SIGKILLed worker's mappings are reclaimed by the
kernel, and the parent's unlink removes the name. The leak-check test in
``tests/engine/test_shard_failures.py`` enumerates ``/dev/shm`` around
crashing sweeps.

Counter semantics
-----------------
``APSPResult.counters`` (the serial-equivalent sum over destinations) is
**invariant across worker counts** and across failure/recovery paths:
each destination's lane ledger is the serial-equivalent cost of its own
run, regardless of which process (or the parent, after a fallback)
hosted it. ``APSPResult.machine_counters`` reports what the machines
actually accrued — merged worker deltas plus any inline-recovery work —
exactly as the inline batched sweep's ``machine_counters`` already
varies with ``lanes=``.

Cost vectors ride along at fork
-------------------------------
The analytic tiers replay counters from per-configuration cost vectors
(:mod:`repro.engine.costs`). The parent probes its vector **once**,
exports the cache, and ships it to every worker through the spawn
payload — workers install it and *hit* on every lookup instead of
silently re-probing (and re-running a traced cycle MCP) per process. The
per-worker hit/miss tallies come back in ``APSPResult.shard_report``.

Eligibility
-----------
Sharding is gated separately from engine choice by
:func:`workers_block_reason`: anything that must observe the run from the
parent process — fault plans, the span tracer, the bus trace — cannot see
worker activity, and custom reduction routines / pre-batched machines /
``serial=True`` sweeps are out of scope. A blocked request **falls back
to the inline sweep** and records the reason in
``APSPResult.shard_report`` (the CLI surfaces it as a note), mirroring
the ``engine="auto"`` downgrade convention.

Chaos hooks
-----------
:func:`set_shard_chaos` arms deterministic failure injection — kill,
delay or raise inside chosen shards for a chosen number of attempts —
used by the service-level chaos harness (:mod:`repro.serve.chaos`) and
the failure tests. The hooks ship to workers inside the spawn payload,
so injection is exact (per shard, per attempt) rather than
probabilistic.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import signal
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from repro.engine.costs import (
    cost_cache_stats,
    export_cost_cache,
    install_cost_cache,
    mcp_cost_vector,
    reset_cost_cache_stats,
)
from repro.engine.select import resolve_engine
from repro.errors import EngineError
from repro.verify.sanitizer import note_shm_create, note_shm_release

__all__ = [
    "ShardFailure",
    "workers_block_reason",
    "destination_shards",
    "sharded_all_pairs",
    "set_shard_chaos",
    "clear_shard_chaos",
]

#: Default per-shard deadline (seconds). Generous — a healthy shard of a
#: CI-sized sweep finishes in well under a second; the deadline exists so
#: a wedged or killed worker can never hang the parent. Override per call
#: (``shard_timeout=``) or process-wide via ``REPRO_SHARD_TIMEOUT``.
DEFAULT_SHARD_TIMEOUT = 120.0

#: Seconds the parent keeps draining the result queue after a worker
#: process exits, before declaring the shard crashed — covers the window
#: where the report is still in the queue's feeder pipe.
_EXIT_DRAIN_GRACE = 1.0

_POLL_INTERVAL = 0.02


@dataclass
class ShardFailure:
    """One failed attempt at running a destination shard in a worker.

    Appended (as a dict) to ``APSPResult.shard_report["failures"]``;
    ``recovered`` records how the sweep ultimately absorbed the failure —
    ``"respawn"`` (the one retry in a fresh worker succeeded) or
    ``"inline"`` (the parent recomputed the shard itself). It is never
    ``None`` on a returned result: one way or the other the shard's
    columns are complete and correct.
    """

    shard: int
    destinations: tuple[int, int]
    kind: str  #: ``"crash"`` | ``"timeout"`` | ``"error"``
    detail: str
    attempt: int
    recovered: str | None = None

    def to_dict(self) -> dict:
        return {
            "shard": int(self.shard),
            "destinations": [int(self.destinations[0]),
                             int(self.destinations[1])],
            "kind": self.kind,
            "detail": self.detail,
            "attempt": int(self.attempt),
            "recovered": self.recovered,
        }


def workers_block_reason(
    machine,
    *,
    serial: bool = False,
    word_parallel: bool = False,
    min_routine=None,
    selected_min_routine=None,
) -> str | None:
    """The first condition blocking a sharded (multi-process) sweep.

    Returns ``None`` when ``workers > 1`` can be honoured. The conditions
    are about *cross-process observability*, not engine tier — an
    eligible machine may shard the ``cycle`` engine just as well as the
    analytic tiers (the differential suite does exactly that).
    """
    from repro.ppc.reductions import ppa_min, ppa_selected_min

    if serial:
        return (
            "serial sweep requested (one destination per machine pass is "
            "inherently sequential)"
        )
    if machine.batch is not None:
        return (
            "machine is already batched (sharding drives its own lane "
            "views over an unbatched machine)"
        )
    if machine.fault_plan is not None:
        return (
            "fault plan attached (workers cannot report per-transaction "
            "faults back to the parent)"
        )
    if machine.telemetry.enabled:
        return (
            "span tracer enabled (worker spans cannot attach to the "
            "parent's trace tree)"
        )
    if machine.trace.enabled:
        return (
            "bus trace enabled (worker transactions cannot append to the "
            "parent's trace)"
        )
    if word_parallel:
        return (
            "word-parallel routines requested (the A7 ablation is a "
            "cycle-engine study; run it inline)"
        )
    if min_routine is not None and min_routine is not ppa_min:
        return "non-default min routine (not shipped to worker processes)"
    if (
        selected_min_routine is not None
        and selected_min_routine is not ppa_selected_min
    ):
        return (
            "non-default selected_min routine (not shipped to worker "
            "processes)"
        )
    if "fork" not in mp.get_all_start_methods():
        return "fork start method unavailable on this platform"
    if machine.n < 2:
        return "grid side < 2 (nothing to shard)"
    return None


def destination_shards(n: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` destination ranges, one per worker.

    ``workers`` is clamped to ``n``; ranges are as equal as
    :func:`numpy.array_split` makes them and cover ``range(n)`` exactly.
    """
    if workers < 1:
        raise EngineError(f"workers must be >= 1, got {workers}")
    pieces = np.array_split(np.arange(n), min(int(workers), n))
    return [(int(p[0]), int(p[-1]) + 1) for p in pieces if p.size]


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing shm block without taking ownership.

    ``track=False`` (Python >= 3.13) keeps the attach out of the resource
    tracker entirely. On older Pythons the attach re-registers the name —
    harmless here, because fork workers share the parent's tracker and
    its cache is a set (the duplicate collapses onto the parent's own
    registration, which the parent's ``unlink()`` clears exactly once).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        return shared_memory.SharedMemory(name=name)


# ---------------------------------------------------------------------------
# Deterministic failure injection (chaos hooks)
# ---------------------------------------------------------------------------

#: Armed injection spec, shipped to workers inside the spawn payload.
#: Maps are ``{shard_index: attempts_affected}`` — an entry of 1 fails
#: the first attempt only (the respawn retry then succeeds), 2 fails both
#: worker attempts (forcing the inline fallback), and so on.
_chaos_spec: dict = {}


def set_shard_chaos(
    *,
    kill_shards: dict[int, int] | None = None,
    slow_shards: dict[int, int] | None = None,
    raise_shards: dict[int, int] | None = None,
    slow_seconds: float = 5.0,
) -> None:
    """Arm deterministic shard-failure injection (tests / chaos harness).

    ``kill_shards`` SIGKILLs the worker before it computes (a hard
    crash); ``slow_shards`` sleeps ``slow_seconds`` first (tripping the
    shard deadline when ``slow_seconds > shard_timeout``);
    ``raise_shards`` raises after the shared-memory attach (the
    worker-exception leak path). Injection is per (shard, attempt) and
    therefore exactly reproducible. Call :func:`clear_shard_chaos` to
    disarm — production code never arms this.
    """
    _chaos_spec.clear()
    _chaos_spec.update(
        {
            "kill": dict(kill_shards or {}),
            "slow": dict(slow_shards or {}),
            "raise": dict(raise_shards or {}),
            "slow_seconds": float(slow_seconds),
        }
    )


def clear_shard_chaos() -> None:
    """Disarm :func:`set_shard_chaos`."""
    _chaos_spec.clear()


def _chaos_hits(chaos: dict, key: str, shard: int, attempt: int) -> bool:
    return bool(chaos) and attempt < int(chaos.get(key, {}).get(shard, 0))


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

# Worker-side state installed at spawn (one dict per worker process;
# empty in the parent).
_worker_ctx: dict = {}


def _worker_init(payload: dict) -> None:
    """Install shipped cost vectors and the task spec in a fresh worker.

    The cache is cleared first so the worker's cost vectors are exactly
    the shipped set (under ``fork`` the parent's cache is inherited — the
    explicit clear+install keeps the contract identical under ``spawn``),
    and the stats are reset so the per-worker hit/miss tallies returned to
    the parent measure only this worker's lookups.
    """
    from repro.engine.costs import clear_cost_cache

    clear_cost_cache()
    install_cost_cache(payload["cost_vectors"])
    reset_cost_cache_stats()
    _worker_ctx.clear()
    _worker_ctx.update(payload)


def _run_shard(task: tuple[int, int, int], attempt: int = 0) -> dict:
    """Execute one destination shard inside a worker process.

    Opens the parent's shared-memory planes, runs the batched sweep for
    ``[start, stop)`` on a fresh machine, writes its columns, and returns
    the shard's machine-counter delta plus cost-cache stats.
    """
    from repro.core.batched import batched_minimum_cost_path
    from repro.ppa.machine import PPAMachine

    shard_index, start, stop = task
    ctx = _worker_ctx
    config = ctx["config"]
    n = config.n
    fields = ctx["fields"]
    chaos = ctx.get("chaos") or {}

    if _chaos_hits(chaos, "kill", shard_index, attempt):
        os.kill(os.getpid(), signal.SIGKILL)
    if _chaos_hits(chaos, "slow", shard_index, attempt):
        time.sleep(chaos["slow_seconds"])

    # Attach one-by-one into a list owned by the finally below: if the
    # k-th attach fails, the k-1 already-open handles must still be
    # closed (a comprehension would strand them — host-shm-attach-leak).
    handles: list[shared_memory.SharedMemory] = []
    try:
        for key in ("w", "dist", "succ", "iters", "lanes"):
            handles.append(_attach(ctx[key]))
        shm_w, shm_dist, shm_succ, shm_iters, shm_lanes = handles
        if _chaos_hits(chaos, "raise", shard_index, attempt):
            raise RuntimeError(
                f"injected worker exception (shard {shard_index}, "
                f"attempt {attempt})"
            )
        W = np.ndarray((n, n), dtype=np.int64, buffer=shm_w.buf)
        W.flags.writeable = False
        dist = np.ndarray((n, n), dtype=np.int64, buffer=shm_dist.buf)
        succ = np.ndarray((n, n), dtype=np.int64, buffer=shm_succ.buf)
        iters = np.ndarray(n, dtype=np.int64, buffer=shm_iters.buf)
        lane_planes = np.ndarray(
            (len(fields), n), dtype=np.int64, buffer=shm_lanes.buf
        )

        machine = PPAMachine(config)
        before = machine.counters.snapshot()
        lane_cap = ctx["lane_cap"]
        for chunk in range(start, stop, lane_cap):
            dests = np.arange(chunk, min(chunk + lane_cap, stop))
            view = machine.lanes(int(dests.size))
            res = batched_minimum_cost_path(
                view,
                W,
                dests,
                engine=ctx["engine"],
                zero_diagonal="require",
                max_iterations=ctx["max_iterations"],
            )
            dist[:, dests] = res.sow.T
            succ[:, dests] = res.ptn.T
            iters[dests] = res.iterations
            for row, name in enumerate(fields):
                lane_planes[row, dests] = res.lane_counters[name]
        return {
            "shard": shard_index,
            "destinations": [start, stop],
            "attempt": attempt,
            "machine_counters": machine.counters.diff(before),
            "cost_cache": cost_cache_stats(),
        }
    finally:
        for shm in handles:
            try:
                shm.close()
            except OSError:  # pragma: no cover - defensive
                pass


def _worker_main(payload: dict, task: tuple[int, int, int], attempt: int,
                 result_queue) -> None:
    """Worker process entry point: run one shard, report through the queue.

    Exceptions are converted into an ``error`` report so the parent can
    distinguish a clean Python failure from a hard crash (nonzero exit
    with no report).
    """
    _worker_init(payload)
    try:
        report = _run_shard(task, attempt)
    except BaseException:
        report = {
            "shard": task[0],
            "destinations": [task[1], task[2]],
            "attempt": attempt,
            "error": traceback.format_exc(limit=8),
        }
    result_queue.put(report)


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class _ShardSupervisor:
    """Run every shard under a deadline; respawn each failed shard once.

    Tracks one live process per in-flight shard, drains the shared result
    queue, and classifies failures: ``error`` (worker raised; it reported
    itself), ``crash`` (worker gone with no report — SIGKILL, OOM-kill,
    segfault) and ``timeout`` (deadline blown; the worker is killed). A
    shard failing its respawn attempt too is handed back in
    ``needs_inline`` for the parent to recompute.
    """

    def __init__(self, ctx, payload: dict, timeout: float):
        self._ctx = ctx
        self._payload = payload
        self._timeout = timeout
        self._queue = ctx.Queue()
        self._live: dict[int, dict] = {}  # shard -> {proc, deadline, ...}
        self.reports: dict[int, dict] = {}
        self.failures: list[ShardFailure] = []
        self.needs_inline: list[tuple[int, int, int]] = []

    def spawn(self, task: tuple[int, int, int], attempt: int = 0) -> None:
        proc = self._ctx.Process(
            target=_worker_main,
            args=(self._payload, task, attempt, self._queue),
            daemon=True,
        )
        proc.start()
        self._live[task[0]] = {
            "proc": proc,
            "task": task,
            "attempt": attempt,
            "deadline": time.monotonic() + self._timeout,
            "exit_seen": None,
        }

    def _fail(self, shard: int, kind: str, detail: str) -> None:
        entry = self._live.pop(shard)
        proc = entry["proc"]
        if proc.is_alive():
            proc.kill()
        proc.join()
        failure = ShardFailure(
            shard=shard,
            destinations=(entry["task"][1], entry["task"][2]),
            kind=kind,
            detail=detail,
            attempt=entry["attempt"],
        )
        self.failures.append(failure)
        if entry["attempt"] == 0:
            failure.recovered = "respawn"  # provisional; see run()
            self.spawn(entry["task"], attempt=1)
        else:
            failure.recovered = "inline"
            self.needs_inline.append(entry["task"])

    def _absorb(self, report: dict) -> None:
        shard = report["shard"]
        if "error" in report:
            if shard in self._live:
                self._fail(shard, "error", report["error"].strip())
            return
        entry = self._live.pop(shard, None)
        if entry is not None:
            entry["proc"].join()
        self.reports[shard] = report

    def run(self) -> None:
        while self._live:
            try:
                report = self._queue.get(timeout=_POLL_INTERVAL)
            except queue_mod.Empty:
                report = None
            if report is not None:
                self._absorb(report)
                continue
            now = time.monotonic()
            for shard in list(self._live):
                entry = self._live[shard]
                proc = entry["proc"]
                if not proc.is_alive():
                    # Exited without a report reaching us yet: give the
                    # queue feeder a short grace, then call it a crash.
                    if entry["exit_seen"] is None:
                        entry["exit_seen"] = now
                    elif now - entry["exit_seen"] > _EXIT_DRAIN_GRACE:
                        self._fail(
                            shard,
                            "crash",
                            f"worker exited with code {proc.exitcode} "
                            "before reporting",
                        )
                elif now > entry["deadline"]:
                    self._fail(
                        shard,
                        "timeout",
                        f"shard exceeded its {self._timeout:.1f}s deadline",
                    )
        # A first-attempt failure is only truly "respawn"-recovered if the
        # retry reported success; otherwise the inline record supersedes.
        recovered_shards = set(self.reports)
        for failure in self.failures:
            if failure.recovered == "respawn" and (
                failure.shard not in recovered_shards
            ):
                failure.recovered = "inline"

    def shutdown(self) -> None:
        """Kill anything still alive and release the queue (error paths)."""
        for entry in self._live.values():
            proc = entry["proc"]
            if proc.is_alive():
                proc.kill()
            proc.join()
        self._live.clear()
        self._queue.close()
        self._queue.join_thread()


def _release_blocks(blocks: list[shared_memory.SharedMemory]) -> None:
    """Close + unlink every segment, best-effort and individually.

    A failure releasing one block (already-closed buffer, racing unlink)
    must never leak the rest — each step runs in its own guard. This is
    the single cleanup path for every exit from :func:`sharded_all_pairs`.
    """
    for shm in blocks:
        try:
            shm.close()
        except OSError:  # pragma: no cover - defensive
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - racing cleanup
            pass
        except OSError:  # pragma: no cover - defensive
            pass
        note_shm_release(shm.name)
    blocks.clear()


def _default_shard_timeout() -> float:
    try:
        return float(os.environ.get("REPRO_SHARD_TIMEOUT", ""))
    except ValueError:
        return DEFAULT_SHARD_TIMEOUT


def sharded_all_pairs(
    machine,
    W,
    *,
    workers: int,
    lanes: int | None = None,
    engine: str = "auto",
    zero_diagonal: str = "require",
    max_iterations: int | None = None,
    shard_timeout: float | None = None,
):
    """All-pairs minimum cost via destination shards in worker processes.

    Callers reach this through
    :func:`repro.core.apsp.all_pairs_minimum_cost` with ``workers > 1``
    after :func:`workers_block_reason` cleared the machine; invoking it
    directly on an ineligible machine raises
    :class:`~repro.errors.EngineError`.

    ``shard_timeout`` bounds each worker attempt (default
    :data:`DEFAULT_SHARD_TIMEOUT`, overridable via the
    ``REPRO_SHARD_TIMEOUT`` environment variable). Worker failures never
    propagate as hangs or missing columns: each failed shard is respawned
    once and, failing that, recomputed inline by the parent — the
    incidents are recorded as :class:`ShardFailure` entries in
    ``shard_report["failures"]``.

    Returns the same :class:`~repro.core.apsp.APSPResult` as the inline
    sweep — ``dist``/``succ``/``iterations``, the serial-equivalent
    ``counters`` and per-destination ``lane_counters`` bit-identical to
    every other engine/worker-count combination — plus a ``shard_report``
    describing the shard layout, per-worker cache stats and any absorbed
    failures. The parent machine is charged the merged worker deltas (and
    any inline-recovery work it ran itself), so its ``machine_counters``
    stay a faithful account of the sweep.
    """
    from repro.core.apsp import APSPResult
    from repro.core.graph import normalize_weights

    blocked = workers_block_reason(machine)
    if blocked is not None:
        raise EngineError(
            f"workers={workers} unavailable: {blocked}; use "
            "all_pairs_minimum_cost(), which falls back to the inline "
            "sweep transparently"
        )

    n = machine.n
    Wm = np.ascontiguousarray(
        normalize_weights(W, machine, zero_diagonal=zero_diagonal),
        dtype=np.int64,
    )
    # Resolve once in the parent so every worker runs the same concrete
    # tier ("auto" would resolve identically on each fresh worker machine,
    # but forwarding the name makes the report unambiguous).
    choice = resolve_engine(machine, engine)
    if choice.analytic:
        mcp_cost_vector(machine.config)  # probe once here, ship below

    timeout = (
        float(shard_timeout) if shard_timeout is not None
        else _default_shard_timeout()
    )
    if timeout <= 0:
        raise EngineError(f"shard_timeout must be > 0, got {timeout}")

    shards = destination_shards(n, workers)
    lane_cap = n if lanes is None else max(1, min(int(lanes), n))
    fields = tuple(type(machine.counters).field_names())

    blocks: list[shared_memory.SharedMemory] = []

    def _alloc(shape) -> tuple[str, np.ndarray]:
        size = int(np.prod(shape)) * 8
        shm = shared_memory.SharedMemory(create=True, size=max(size, 8))
        blocks.append(shm)
        note_shm_create(shm.name, "sharded_all_pairs")
        return shm.name, np.ndarray(shape, dtype=np.int64, buffer=shm.buf)

    machine_before = machine.counters.snapshot()
    supervisor = None
    try:
        w_name, w_arr = _alloc((n, n))
        w_arr[:] = Wm
        dist_name, dist_arr = _alloc((n, n))
        succ_name, succ_arr = _alloc((n, n))
        iters_name, iters_arr = _alloc((n,))
        lanes_name, lanes_arr = _alloc((len(fields), n))
        for arr in (dist_arr, succ_arr, iters_arr, lanes_arr):
            arr[:] = 0

        payload = {
            "config": machine.config,
            "engine": choice.name,
            "lane_cap": lane_cap,
            "max_iterations": max_iterations,
            "fields": fields,
            "cost_vectors": export_cost_cache(),
            "chaos": dict(_chaos_spec) if _chaos_spec else None,
            "w": w_name,
            "dist": dist_name,
            "succ": succ_name,
            "iters": iters_name,
            "lanes": lanes_name,
        }
        ctx = mp.get_context("fork")
        supervisor = _ShardSupervisor(ctx, payload, timeout)
        for i, (start, stop) in enumerate(shards):
            supervisor.spawn((i, start, stop))
        supervisor.run()

        # Shards that failed both worker attempts: recompute inline on the
        # parent machine, writing the same shared planes. Correctness and
        # the serial-equivalent ledgers are engine/host-invariant, so the
        # recovered columns are bit-identical to a healthy worker's.
        for shard_index, start, stop in sorted(supervisor.needs_inline):
            from repro.core.batched import batched_minimum_cost_path

            for chunk in range(start, stop, lane_cap):
                dests = np.arange(chunk, min(chunk + lane_cap, stop))
                view = machine.lanes(int(dests.size))
                res = batched_minimum_cost_path(
                    view,
                    Wm,
                    dests,
                    engine=choice.name,
                    zero_diagonal="require",
                    max_iterations=max_iterations,
                )
                dist_arr[:, dests] = res.sow.T
                succ_arr[:, dests] = res.ptn.T
                iters_arr[dests] = res.iterations
                for row, name in enumerate(fields):
                    lanes_arr[row, dests] = res.lane_counters[name]

        reports = sorted(
            supervisor.reports.values(), key=lambda r: r["shard"]
        )  # deterministic merge order
        merged: dict[str, int] = {name: 0 for name in fields}
        for report in reports:
            for name, value in report["machine_counters"].items():
                merged[name] += int(value)
        machine.apply_counter_delta(merged)

        lane_deltas = {
            name: lanes_arr[row].copy() for row, name in enumerate(fields)
        }
        from repro.ppa.counters import LaneCounters

        worker_stats = [
            {
                "shard": r["shard"],
                "destinations": r["destinations"],
                "attempt": r.get("attempt", 0),
                "cost_cache": r["cost_cache"],
            }
            for r in reports
        ]
        for shard_index, start, stop in sorted(supervisor.needs_inline):
            worker_stats.append(
                {
                    "shard": shard_index,
                    "destinations": [start, stop],
                    "recovered": "inline",
                }
            )
        worker_stats.sort(key=lambda s: s["shard"])

        report_out: dict = {
            "requested_workers": int(workers),
            "workers": len(shards),
            "engine": choice.name,
            "lane_cap": lane_cap,
            "shard_timeout": timeout,
            "shards": [list(s) for s in shards],
            "worker_stats": worker_stats,
        }
        if supervisor.failures:
            report_out["failures"] = [
                f.to_dict() for f in supervisor.failures
            ]

        return APSPResult(
            dist=dist_arr.copy(),
            succ=succ_arr.copy(),
            iterations=iters_arr.copy(),
            maxint=machine.maxint,
            counters=LaneCounters.total_of(lane_deltas),
            machine_counters=machine.counters.diff(machine_before),
            lane_counters=lane_deltas,
            shard_report=report_out,
        )
    finally:
        if supervisor is not None:
            supervisor.shutdown()
        _release_blocks(blocks)
