"""Process-parallel APSP destination sharding over shared memory.

The all-pairs sweep is embarrassingly parallel across destinations: every
destination's MCP run reads the same weight matrix and writes disjoint
columns of ``dist``/``succ``. This module splits the destination range
into contiguous shards, runs one worker process per shard (``fork`` start
method), and stitches the results back together **deterministically** —
output planes land in preallocated :mod:`multiprocessing.shared_memory`
blocks (each worker owns its own columns, so there are no write
conflicts), and the per-worker machine-counter deltas are merged in shard
order.

Counter semantics
-----------------
``APSPResult.counters`` (the serial-equivalent sum over destinations) is
**invariant across worker counts**: each destination's lane ledger is the
serial-equivalent cost of its own run, regardless of which process or
lane chunk hosted it. ``APSPResult.machine_counters`` reports what the
worker machines actually accrued, summed over shards — it varies with the
shard/lane chunking exactly as the inline batched sweep's
``machine_counters`` already varies with ``lanes=``; the differential
tests pin the former bit-for-bit and validate the latter's structure.

Cost vectors ride along at fork
-------------------------------
The analytic tiers replay counters from per-configuration cost vectors
(:mod:`repro.engine.costs`). The parent probes its vector **once**,
exports the cache, and ships it to every worker through the pool
initializer — workers install it and *hit* on every lookup instead of
silently re-probing (and re-running a traced cycle MCP) per process. The
per-worker hit/miss tallies come back in ``APSPResult.shard_report`` and
are asserted in ``tests/engine/test_shard.py``.

Eligibility
-----------
Sharding is gated separately from engine choice by
:func:`workers_block_reason`: anything that must observe the run from the
parent process — fault plans, the span tracer, the bus trace — cannot see
worker activity, and custom reduction routines / pre-batched machines /
``serial=True`` sweeps are out of scope. A blocked request **falls back
to the inline sweep** and records the reason in
``APSPResult.shard_report`` (the CLI surfaces it as a note), mirroring
the ``engine="auto"`` downgrade convention.
"""

from __future__ import annotations

import multiprocessing as mp
from multiprocessing import shared_memory

import numpy as np

from repro.engine.costs import (
    cost_cache_stats,
    export_cost_cache,
    install_cost_cache,
    mcp_cost_vector,
    reset_cost_cache_stats,
)
from repro.engine.select import resolve_engine
from repro.errors import EngineError

__all__ = [
    "workers_block_reason",
    "destination_shards",
    "sharded_all_pairs",
]


def workers_block_reason(
    machine,
    *,
    serial: bool = False,
    word_parallel: bool = False,
    min_routine=None,
    selected_min_routine=None,
) -> str | None:
    """The first condition blocking a sharded (multi-process) sweep.

    Returns ``None`` when ``workers > 1`` can be honoured. The conditions
    are about *cross-process observability*, not engine tier — an
    eligible machine may shard the ``cycle`` engine just as well as the
    analytic tiers (the differential suite does exactly that).
    """
    from repro.ppc.reductions import ppa_min, ppa_selected_min

    if serial:
        return (
            "serial sweep requested (one destination per machine pass is "
            "inherently sequential)"
        )
    if machine.batch is not None:
        return (
            "machine is already batched (sharding drives its own lane "
            "views over an unbatched machine)"
        )
    if machine.fault_plan is not None:
        return (
            "fault plan attached (workers cannot report per-transaction "
            "faults back to the parent)"
        )
    if machine.telemetry.enabled:
        return (
            "span tracer enabled (worker spans cannot attach to the "
            "parent's trace tree)"
        )
    if machine.trace.enabled:
        return (
            "bus trace enabled (worker transactions cannot append to the "
            "parent's trace)"
        )
    if word_parallel:
        return (
            "word-parallel routines requested (the A7 ablation is a "
            "cycle-engine study; run it inline)"
        )
    if min_routine is not None and min_routine is not ppa_min:
        return "non-default min routine (not shipped to worker processes)"
    if (
        selected_min_routine is not None
        and selected_min_routine is not ppa_selected_min
    ):
        return (
            "non-default selected_min routine (not shipped to worker "
            "processes)"
        )
    if "fork" not in mp.get_all_start_methods():
        return "fork start method unavailable on this platform"
    if machine.n < 2:
        return "grid side < 2 (nothing to shard)"
    return None


def destination_shards(n: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` destination ranges, one per worker.

    ``workers`` is clamped to ``n``; ranges are as equal as
    :func:`numpy.array_split` makes them and cover ``range(n)`` exactly.
    """
    if workers < 1:
        raise EngineError(f"workers must be >= 1, got {workers}")
    pieces = np.array_split(np.arange(n), min(int(workers), n))
    return [(int(p[0]), int(p[-1]) + 1) for p in pieces if p.size]


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing shm block without taking ownership.

    ``track=False`` (Python >= 3.13) keeps the attach out of the resource
    tracker entirely. On older Pythons the attach re-registers the name —
    harmless here, because fork-pool workers share the parent's tracker
    and its cache is a set (the duplicate collapses onto the parent's own
    registration, which the parent's ``unlink()`` clears exactly once).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        return shared_memory.SharedMemory(name=name)


# Worker-side state installed by the pool initializer (one dict per worker
# process; empty in the parent).
_worker_ctx: dict = {}


def _worker_init(payload: dict) -> None:
    """Pool initializer: install shipped cost vectors and the task spec.

    The cache is cleared first so the worker's cost vectors are exactly
    the shipped set (under ``fork`` the parent's cache is inherited — the
    explicit clear+install keeps the contract identical under ``spawn``),
    and the stats are reset so the per-worker hit/miss tallies returned to
    the parent measure only this worker's lookups.
    """
    from repro.engine.costs import clear_cost_cache

    clear_cost_cache()
    install_cost_cache(payload["cost_vectors"])
    reset_cost_cache_stats()
    _worker_ctx.clear()
    _worker_ctx.update(payload)


def _run_shard(task: tuple[int, int, int]) -> dict:
    """Execute one destination shard inside a worker process.

    Opens the parent's shared-memory planes, runs the batched sweep for
    ``[start, stop)`` on a fresh machine, writes its columns, and returns
    the shard's machine-counter delta plus cost-cache stats.
    """
    from repro.core.batched import batched_minimum_cost_path
    from repro.ppa.machine import PPAMachine

    shard_index, start, stop = task
    ctx = _worker_ctx
    config = ctx["config"]
    n = config.n
    fields = ctx["fields"]

    handles = [_attach(ctx[key]) for key in ("w", "dist", "succ", "iters", "lanes")]
    shm_w, shm_dist, shm_succ, shm_iters, shm_lanes = handles
    try:
        W = np.ndarray((n, n), dtype=np.int64, buffer=shm_w.buf)
        W.flags.writeable = False
        dist = np.ndarray((n, n), dtype=np.int64, buffer=shm_dist.buf)
        succ = np.ndarray((n, n), dtype=np.int64, buffer=shm_succ.buf)
        iters = np.ndarray(n, dtype=np.int64, buffer=shm_iters.buf)
        lane_planes = np.ndarray(
            (len(fields), n), dtype=np.int64, buffer=shm_lanes.buf
        )

        machine = PPAMachine(config)
        before = machine.counters.snapshot()
        lane_cap = ctx["lane_cap"]
        for chunk in range(start, stop, lane_cap):
            dests = np.arange(chunk, min(chunk + lane_cap, stop))
            view = machine.lanes(int(dests.size))
            res = batched_minimum_cost_path(
                view,
                W,
                dests,
                engine=ctx["engine"],
                zero_diagonal="require",
                max_iterations=ctx["max_iterations"],
            )
            dist[:, dests] = res.sow.T
            succ[:, dests] = res.ptn.T
            iters[dests] = res.iterations
            for row, name in enumerate(fields):
                lane_planes[row, dests] = res.lane_counters[name]
        return {
            "shard": shard_index,
            "destinations": [start, stop],
            "machine_counters": machine.counters.diff(before),
            "cost_cache": cost_cache_stats(),
        }
    finally:
        for shm in handles:
            shm.close()


def sharded_all_pairs(
    machine,
    W,
    *,
    workers: int,
    lanes: int | None = None,
    engine: str = "auto",
    zero_diagonal: str = "require",
    max_iterations: int | None = None,
):
    """All-pairs minimum cost via destination shards in worker processes.

    Callers reach this through
    :func:`repro.core.apsp.all_pairs_minimum_cost` with ``workers > 1``
    after :func:`workers_block_reason` cleared the machine; invoking it
    directly on an ineligible machine raises
    :class:`~repro.errors.EngineError`.

    Returns the same :class:`~repro.core.apsp.APSPResult` as the inline
    sweep — ``dist``/``succ``/``iterations``, the serial-equivalent
    ``counters`` and per-destination ``lane_counters`` bit-identical to
    every other engine/worker-count combination — plus a ``shard_report``
    describing the shard layout and per-worker cache stats. The parent
    machine is charged the merged worker deltas, so its
    ``machine_counters`` stay a faithful account of the sweep.
    """
    from repro.core.apsp import APSPResult
    from repro.core.graph import normalize_weights

    blocked = workers_block_reason(machine)
    if blocked is not None:
        raise EngineError(
            f"workers={workers} unavailable: {blocked}; use "
            "all_pairs_minimum_cost(), which falls back to the inline "
            "sweep transparently"
        )

    n = machine.n
    Wm = np.ascontiguousarray(
        normalize_weights(W, machine, zero_diagonal=zero_diagonal),
        dtype=np.int64,
    )
    # Resolve once in the parent so every worker runs the same concrete
    # tier ("auto" would resolve identically on each fresh worker machine,
    # but forwarding the name makes the report unambiguous).
    choice = resolve_engine(machine, engine)
    if choice.analytic:
        mcp_cost_vector(machine.config)  # probe once here, ship below

    shards = destination_shards(n, workers)
    lane_cap = n if lanes is None else max(1, min(int(lanes), n))
    fields = tuple(type(machine.counters).field_names())

    blocks: list[shared_memory.SharedMemory] = []

    def _alloc(shape) -> tuple[str, np.ndarray]:
        size = int(np.prod(shape)) * 8
        shm = shared_memory.SharedMemory(create=True, size=max(size, 8))
        blocks.append(shm)
        return shm.name, np.ndarray(shape, dtype=np.int64, buffer=shm.buf)

    machine_before = machine.counters.snapshot()
    try:
        w_name, w_arr = _alloc((n, n))
        w_arr[:] = Wm
        dist_name, dist_arr = _alloc((n, n))
        succ_name, succ_arr = _alloc((n, n))
        iters_name, iters_arr = _alloc((n,))
        lanes_name, lanes_arr = _alloc((len(fields), n))
        for arr in (dist_arr, succ_arr, iters_arr, lanes_arr):
            arr[:] = 0

        payload = {
            "config": machine.config,
            "engine": choice.name,
            "lane_cap": lane_cap,
            "max_iterations": max_iterations,
            "fields": fields,
            "cost_vectors": export_cost_cache(),
            "w": w_name,
            "dist": dist_name,
            "succ": succ_name,
            "iters": iters_name,
            "lanes": lanes_name,
        }
        tasks = [(i, start, stop) for i, (start, stop) in enumerate(shards)]
        ctx = mp.get_context("fork")
        with ctx.Pool(
            processes=len(shards),
            initializer=_worker_init,
            initargs=(payload,),
        ) as pool:
            reports = pool.map(_run_shard, tasks)

        reports.sort(key=lambda r: r["shard"])  # deterministic merge order
        merged: dict[str, int] = {name: 0 for name in fields}
        for report in reports:
            for name, value in report["machine_counters"].items():
                merged[name] += int(value)
        machine.apply_counter_delta(merged)

        lane_deltas = {
            name: lanes_arr[row].copy() for row, name in enumerate(fields)
        }
        from repro.ppa.counters import LaneCounters

        return APSPResult(
            dist=dist_arr.copy(),
            succ=succ_arr.copy(),
            iterations=iters_arr.copy(),
            maxint=machine.maxint,
            counters=LaneCounters.total_of(lane_deltas),
            machine_counters=machine.counters.diff(machine_before),
            lane_counters=lane_deltas,
            shard_report={
                "requested_workers": int(workers),
                "workers": len(shards),
                "engine": choice.name,
                "lane_cap": lane_cap,
                "shards": [list(s) for s in shards],
                "worker_stats": [
                    {
                        "shard": r["shard"],
                        "destinations": r["destinations"],
                        "cost_cache": r["cost_cache"],
                    }
                    for r in reports
                ],
            },
        )
    finally:
        for shm in blocks:
            shm.close()
            shm.unlink()
