"""The shared analytic-cost MCP loop.

Both analytic tiers — ``fused`` (whole-array kernels) and ``compiled``
(cache-blocked kernels, optional numba) — run the *same* control flow:
init row-``d`` state, relax until convergence, charge counters by
replaying the per-configuration cost vector (:mod:`repro.engine.costs`).
The only difference between the tiers is the relaxation kernel, so the
loop lives here once, parameterised by a ``relax(sow, W, maxint)``
callable, and the per-tier modules stay thin. Anything pinned about the
fused engine's semantics (smallest-index tie-break, convergence masking,
lane ledgers, the ``MIN_SOW[d, d] = 0`` invariant) is pinned about this
loop — the differential suite in ``tests/engine/`` exercises it through
both tiers.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import normalize_weights
from repro.core.result import MCPResult
from repro.engine.costs import mcp_cost_vector
from repro.errors import GraphError
from repro.ppa.machine import PPAMachine

__all__ = [
    "reconstruct_cold_mcp",
    "run_analytic_mcp",
    "run_analytic_batched_mcp",
]


def reconstruct_cold_mcp(Wm, sow, d: int, maxint: int):
    """Rebuild the cold-trajectory ``(ptn, iterations)`` from a final SOW.

    The cold loop's PTN looks trajectory-dependent (each round overwrites
    ``ptn[v]`` where ``sow[v]`` changed) but is in fact a pure function of
    ``(Wm, final SOW, d)``, which is what makes warm-started re-solves
    bit-identical to cold ones. Write ``fix`` for the final SOW and

        ``M(v) = { u != v : sat(W[v, u] + fix[u]) == fix[v] }``

    for the fixpoint minimizers of ``v``. Because relaxation is monotone
    non-increasing (zero diagonal), ``sow[v]`` changes for the *last* time
    at the round ``h_v`` where it first attains ``fix[v]`` (``h_v = 0``
    when the cold seed ``W[v, d]`` is already final). At round ``h_v`` the
    argmin the trajectory stores is taken over candidates built from the
    round-``h_v - 1`` state, whose minimizing columns are exactly the
    ``u in M(v)`` already finalized (``h_u <= h_v - 1``): any other column
    is strictly above ``fix[u]`` and hence strictly above ``fix[v]``
    (saturation cannot mask this — a saturated candidate is ``maxint``,
    and a vertex with ``fix[v] == maxint`` never changed at all). So

        ``h_v   = 1 + min{ h_u : u in M(v) }``        (v not final at seed)
        ``ptn[v] = smallest u in M(v) with h_u == h_v - 1``

    and the layered sweep below — grow the ``known`` set one round at a
    time, assigning each newly grounded vertex the smallest-index known
    minimizer (``argmax`` over booleans == first ``True`` == the
    bit-serial ``selected_min`` tie-break) — reproduces the trajectory
    PTN exactly. The cold loop runs ``max(h) + 1`` passes (the last pass
    observes no change), giving the iteration count.

    Soundness is self-checking: if *sow* is **not** the true fixpoint
    (e.g. a warm seed below any achievable path cost), every too-low
    vertex only has too-low minimizers, so the sweep stalls before
    grounding everything and raises :class:`~repro.errors.GraphError`
    instead of fabricating a predecessor tree.
    """
    n = int(sow.shape[0])
    # cand[v, u] = sat(W[v, u] + fix[u]); M is its fixpoint-support mask.
    cand = np.minimum(Wm + sow[None, :], maxint)
    support = cand == sow[:, None]
    np.fill_diagonal(support, False)

    known = sow == Wm[:, d]  # h_v = 0: the cold seed was already final
    known[d] = True
    ptn = np.full(n, d, dtype=np.int64)
    depth = np.zeros(n, dtype=np.int64)
    rounds = 0
    while not known.all():
        rounds += 1
        reach = support & known[None, :]
        newly = ~known & reach.any(axis=1)
        if not newly.any() or rounds > n:
            raise GraphError(
                "SOW plane is not the Bellman fixpoint of these weights: "
                "PTN reconstruction failed to ground (stale or corrupt "
                "warm-start seed)"
            )
        ptn[newly] = reach[newly].argmax(axis=1)
        depth[newly] = rounds
        known |= newly
    return ptn, int(depth.max()) + 1


def run_analytic_mcp(
    machine: PPAMachine,
    W,
    d: int,
    relax,
    *,
    zero_diagonal: str = "require",
    max_iterations: int | None = None,
    warm_sow=None,
) -> MCPResult:
    """Single-destination MCP with counters replayed from the cost vector.

    *relax* is the tier's kernel: ``relax(sow, W, maxint) -> (new_sow,
    arg)`` with ``arg`` the smallest-index argmin per row (the bit-serial
    ``selected_min`` tie-break). Eligibility is the caller's job.

    *warm_sow*, when given, is an ``(n,)`` vector of **certified upper
    bounds** on the true distances-to-``d`` under *W* (each finite entry
    must be the cost of an actual path; use ``maxint`` for "no bound").
    The loop then starts from ``min(cold_seed, warm_sow)`` — still an
    upper bound and still below the 1-edge seed, so monotone relaxation
    squeezes it to the *same* fixpoint in (usually far) fewer rounds —
    and the returned PTN and iteration count are reconstructed via
    :func:`reconstruct_cold_mcp`, making SOW, PTN **and** ``iterations``
    bit-identical to a cold solve. Counters, by design, are **not**:
    they charge the rounds actually executed (init + per-round replay),
    which is the entire point of warm-starting. Callers that pin counter
    equality must pass ``warm_sow=None``.
    """
    Wm = normalize_weights(W, machine, zero_diagonal=zero_diagonal)
    n = machine.n
    if not (0 <= d < n):
        raise GraphError(f"destination {d} outside [0, {n})")
    if max_iterations is None:
        max_iterations = n + 1

    before = machine.counters.snapshot()
    cost = mcp_cost_vector(machine.config)
    maxint = machine.maxint

    # Init (statements 4-7 + the directed-graph transposition): row d of
    # SOW holds the 1-edge costs *to* d — column d of W — and PTN holds d.
    machine.apply_counter_delta(cost.init)
    sow = Wm[:, d].copy()
    if warm_sow is not None:
        warm = np.asarray(warm_sow, dtype=sow.dtype)
        if warm.shape != (n,):
            raise GraphError(
                f"warm_sow must have shape ({n},), got {warm.shape}"
            )
        np.minimum(sow, np.minimum(warm, maxint), out=sow)
    ptn = np.full(n, d, dtype=np.int64)

    iterations = 0
    converged = False
    while not converged:
        iterations += 1
        machine.apply_counter_delta(cost.iteration)

        new_sow, arg = relax(sow, Wm, maxint)
        # Node (d, d) never stores into MIN_SOW (statement 11 is masked off
        # row d), so the diagonal writeback always delivers 0 to SOW[d, d].
        new_sow[d] = 0
        changed = new_sow != sow
        # PTN writeback reads the diagonal: PTN[j, j] = arg[j] for j != d,
        # and PTN[d, d] stays d forever (row d never runs statement 12).
        arg[d] = d
        ptn = np.where(changed, arg, ptn)
        sow = new_sow
        converged = not changed.any()

        if not converged and iterations >= max_iterations:
            raise GraphError(
                f"MCP did not converge within {max_iterations} "
                "iterations; the input violates the algorithm's "
                "preconditions"
            )

    if warm_sow is not None:
        # The warm trajectory's PTN/round-count are warm artifacts; swap
        # in the cold-trajectory pair (pure function of the fixpoint).
        ptn, iterations = reconstruct_cold_mcp(Wm, sow, d, maxint)

    return MCPResult(
        destination=d,
        sow=sow.copy(),
        ptn=ptn.copy(),
        iterations=iterations,
        maxint=maxint,
        counters=machine.counters.diff(before),
    )


def run_analytic_batched_mcp(
    machine: PPAMachine,
    W,
    destinations,
    relax,
    *,
    zero_diagonal: str = "require",
    max_iterations: int | None = None,
    warm_sow=None,
):
    """Batched multi-destination MCP with replayed counters.

    Bit-identical to :func:`repro.core.batched.batched_minimum_cost_path`
    with ``engine="cycle"``: per-lane SOW/PTN/iterations, the batched-stream
    scalar counter delta *and* every lane's serial-equivalent ledger. Lane
    convergence masking happens on the host: a converged lane's state rows
    freeze and its ledger stops accruing (``set_active_lanes``), exactly as
    in the cycle loop.

    *warm_sow*, when given, is a ``(B, n)`` plane of certified upper
    bounds (``maxint`` rows for lanes with no seed); see
    :func:`run_analytic_mcp` for the contract. Warm lanes return the
    cold-trajectory PTN and iteration count via
    :func:`reconstruct_cold_mcp`; scalar and lane ledgers charge the
    rounds actually executed.
    """
    from repro.core.batched import BatchedMCPResult, _normalize_lane_weights

    dest = np.asarray(destinations, dtype=np.int64)
    if dest.ndim != 1 or dest.size == 0:
        raise GraphError(
            f"destinations must be a non-empty 1-D vector, got shape "
            f"{dest.shape}"
        )
    batch = int(dest.size)
    if machine.batch is None:
        machine = machine.lanes(batch)
    elif machine.batch != batch:
        raise GraphError(
            f"machine has batch={machine.batch} but {batch} destinations "
            "were given"
        )
    n = machine.n
    if ((dest < 0) | (dest >= n)).any():
        bad = int(dest[(dest < 0) | (dest >= n)][0])
        raise GraphError(f"destination {bad} outside [0, {n})")
    Wm = _normalize_lane_weights(W, machine, batch, zero_diagonal)
    if max_iterations is None:
        max_iterations = n + 1

    before = machine.counters.snapshot()
    lanes_before = machine.lane_counters.snapshot()
    cost = mcp_cost_vector(machine.config)
    maxint = machine.maxint
    lane_idx = np.arange(batch)

    machine.set_active_lanes(None)
    try:
        # Init: every lane charges the init delta (lane mask is all-True),
        # and lane b's row-d state holds column dest[b] of its matrix.
        machine.apply_counter_delta(cost.init)
        if Wm.ndim == 2:
            sow = Wm[:, dest].T.copy()  # (B, n): sow[b, j] = W[j, dest[b]]
        else:
            sow = np.take_along_axis(
                Wm, dest[:, None, None], axis=2
            )[:, :, 0].copy()
        if warm_sow is not None:
            warm = np.asarray(warm_sow, dtype=sow.dtype)
            if warm.shape != (batch, n):
                raise GraphError(
                    f"warm_sow must have shape ({batch}, {n}), got "
                    f"{warm.shape}"
                )
            np.minimum(sow, np.minimum(warm, maxint), out=sow)
        ptn = np.broadcast_to(dest[:, None], (batch, n)).copy()

        iterations = np.zeros(batch, dtype=np.int64)
        active = np.ones(batch, dtype=bool)
        rounds = 0
        while active.any():
            rounds += 1
            machine.set_active_lanes(active)
            iterations += active
            machine.apply_counter_delta(cost.iteration)

            new_sow, arg = relax(sow, Wm, maxint)
            new_sow[lane_idx, dest] = 0
            arg[lane_idx, dest] = dest
            # Freeze converged lanes: the SIMD datapath computed them, but
            # their stores are gated off (the cycle loop's `gate` mask).
            changed = (new_sow != sow) & active[:, None]
            sow = np.where(active[:, None], new_sow, sow)
            ptn = np.where(changed, arg, ptn)
            active = active & changed.any(axis=1)

            if active.any() and rounds >= max_iterations:
                raise GraphError(
                    f"batched MCP did not converge within "
                    f"{max_iterations} iterations; the input violates "
                    "the algorithm's preconditions"
                )
    finally:
        machine.set_active_lanes(None)

    if warm_sow is not None:
        # Per lane, swap the warm trajectory's PTN/round-count for the
        # cold-trajectory pair (a pure function of the lane's fixpoint).
        for b in range(batch):
            lane_W = Wm if Wm.ndim == 2 else Wm[b]
            ptn[b], it = reconstruct_cold_mcp(
                lane_W, sow[b], int(dest[b]), maxint
            )
            iterations[b] = it

    return BatchedMCPResult(
        destinations=dest.copy(),
        sow=sow.copy(),
        ptn=ptn.copy(),
        iterations=iterations,
        maxint=maxint,
        counters=machine.counters.diff(before),
        lane_counters=machine.lane_counters.diff(lanes_before),
    )
