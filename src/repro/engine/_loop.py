"""The shared analytic-cost MCP loop.

Both analytic tiers — ``fused`` (whole-array kernels) and ``compiled``
(cache-blocked kernels, optional numba) — run the *same* control flow:
init row-``d`` state, relax until convergence, charge counters by
replaying the per-configuration cost vector (:mod:`repro.engine.costs`).
The only difference between the tiers is the relaxation kernel, so the
loop lives here once, parameterised by a ``relax(sow, W, maxint)``
callable, and the per-tier modules stay thin. Anything pinned about the
fused engine's semantics (smallest-index tie-break, convergence masking,
lane ledgers, the ``MIN_SOW[d, d] = 0`` invariant) is pinned about this
loop — the differential suite in ``tests/engine/`` exercises it through
both tiers.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import normalize_weights
from repro.core.result import MCPResult
from repro.engine.costs import mcp_cost_vector
from repro.errors import GraphError
from repro.ppa.machine import PPAMachine

__all__ = ["run_analytic_mcp", "run_analytic_batched_mcp"]


def run_analytic_mcp(
    machine: PPAMachine,
    W,
    d: int,
    relax,
    *,
    zero_diagonal: str = "require",
    max_iterations: int | None = None,
) -> MCPResult:
    """Single-destination MCP with counters replayed from the cost vector.

    *relax* is the tier's kernel: ``relax(sow, W, maxint) -> (new_sow,
    arg)`` with ``arg`` the smallest-index argmin per row (the bit-serial
    ``selected_min`` tie-break). Eligibility is the caller's job.
    """
    Wm = normalize_weights(W, machine, zero_diagonal=zero_diagonal)
    n = machine.n
    if not (0 <= d < n):
        raise GraphError(f"destination {d} outside [0, {n})")
    if max_iterations is None:
        max_iterations = n + 1

    before = machine.counters.snapshot()
    cost = mcp_cost_vector(machine.config)
    maxint = machine.maxint

    # Init (statements 4-7 + the directed-graph transposition): row d of
    # SOW holds the 1-edge costs *to* d — column d of W — and PTN holds d.
    machine.apply_counter_delta(cost.init)
    sow = Wm[:, d].copy()
    ptn = np.full(n, d, dtype=np.int64)

    iterations = 0
    converged = False
    while not converged:
        iterations += 1
        machine.apply_counter_delta(cost.iteration)

        new_sow, arg = relax(sow, Wm, maxint)
        # Node (d, d) never stores into MIN_SOW (statement 11 is masked off
        # row d), so the diagonal writeback always delivers 0 to SOW[d, d].
        new_sow[d] = 0
        changed = new_sow != sow
        # PTN writeback reads the diagonal: PTN[j, j] = arg[j] for j != d,
        # and PTN[d, d] stays d forever (row d never runs statement 12).
        arg[d] = d
        ptn = np.where(changed, arg, ptn)
        sow = new_sow
        converged = not changed.any()

        if not converged and iterations >= max_iterations:
            raise GraphError(
                f"MCP did not converge within {max_iterations} "
                "iterations; the input violates the algorithm's "
                "preconditions"
            )

    return MCPResult(
        destination=d,
        sow=sow.copy(),
        ptn=ptn.copy(),
        iterations=iterations,
        maxint=maxint,
        counters=machine.counters.diff(before),
    )


def run_analytic_batched_mcp(
    machine: PPAMachine,
    W,
    destinations,
    relax,
    *,
    zero_diagonal: str = "require",
    max_iterations: int | None = None,
):
    """Batched multi-destination MCP with replayed counters.

    Bit-identical to :func:`repro.core.batched.batched_minimum_cost_path`
    with ``engine="cycle"``: per-lane SOW/PTN/iterations, the batched-stream
    scalar counter delta *and* every lane's serial-equivalent ledger. Lane
    convergence masking happens on the host: a converged lane's state rows
    freeze and its ledger stops accruing (``set_active_lanes``), exactly as
    in the cycle loop.
    """
    from repro.core.batched import BatchedMCPResult, _normalize_lane_weights

    dest = np.asarray(destinations, dtype=np.int64)
    if dest.ndim != 1 or dest.size == 0:
        raise GraphError(
            f"destinations must be a non-empty 1-D vector, got shape "
            f"{dest.shape}"
        )
    batch = int(dest.size)
    if machine.batch is None:
        machine = machine.lanes(batch)
    elif machine.batch != batch:
        raise GraphError(
            f"machine has batch={machine.batch} but {batch} destinations "
            "were given"
        )
    n = machine.n
    if ((dest < 0) | (dest >= n)).any():
        bad = int(dest[(dest < 0) | (dest >= n)][0])
        raise GraphError(f"destination {bad} outside [0, {n})")
    Wm = _normalize_lane_weights(W, machine, batch, zero_diagonal)
    if max_iterations is None:
        max_iterations = n + 1

    before = machine.counters.snapshot()
    lanes_before = machine.lane_counters.snapshot()
    cost = mcp_cost_vector(machine.config)
    maxint = machine.maxint
    lane_idx = np.arange(batch)

    machine.set_active_lanes(None)
    try:
        # Init: every lane charges the init delta (lane mask is all-True),
        # and lane b's row-d state holds column dest[b] of its matrix.
        machine.apply_counter_delta(cost.init)
        if Wm.ndim == 2:
            sow = Wm[:, dest].T.copy()  # (B, n): sow[b, j] = W[j, dest[b]]
        else:
            sow = np.take_along_axis(
                Wm, dest[:, None, None], axis=2
            )[:, :, 0].copy()
        ptn = np.broadcast_to(dest[:, None], (batch, n)).copy()

        iterations = np.zeros(batch, dtype=np.int64)
        active = np.ones(batch, dtype=bool)
        rounds = 0
        while active.any():
            rounds += 1
            machine.set_active_lanes(active)
            iterations += active
            machine.apply_counter_delta(cost.iteration)

            new_sow, arg = relax(sow, Wm, maxint)
            new_sow[lane_idx, dest] = 0
            arg[lane_idx, dest] = dest
            # Freeze converged lanes: the SIMD datapath computed them, but
            # their stores are gated off (the cycle loop's `gate` mask).
            changed = (new_sow != sow) & active[:, None]
            sow = np.where(active[:, None], new_sow, sow)
            ptn = np.where(changed, arg, ptn)
            active = active & changed.any(axis=1)

            if active.any() and rounds >= max_iterations:
                raise GraphError(
                    f"batched MCP did not converge within "
                    f"{max_iterations} iterations; the input violates "
                    "the algorithm's preconditions"
                )
    finally:
        machine.set_active_lanes(None)

    return BatchedMCPResult(
        destinations=dest.copy(),
        sow=sow.copy(),
        ptn=ptn.copy(),
        iterations=iterations,
        maxint=maxint,
        counters=machine.counters.diff(before),
        lane_counters=machine.lane_counters.diff(lanes_before),
    )
