"""Analytic per-iteration cost vectors for the fused engine.

The paper's MCP loop issues a **fixed, data-independent** instruction
stream: below the controller's do-while test there is no data-dependent
branch, so every iteration charges the machine counters the *same* delta
(the batched lane ledger of PR 2 already relies on this). The fused
engine exploits it in the other direction: instead of executing ~35
Python-level machine primitives per round it executes a handful of numpy
kernels and charges the counters from a cost vector measured **once**.

Derivation — replay, not hand-derivation
----------------------------------------
Hand-deriving the constants (``5h + ...`` ALU ops per round, etc.) would
silently drift the day anyone touches the cycle engine's accounting. So
the vector is *replayed*: a scratch cycle machine with the **same**
:class:`~repro.ppa.topology.PPAConfig` runs one tiny deterministic MCP
under the span tracer, and the ``mcp.init`` / ``mcp.iteration`` span
counters — exact partitions of the run's totals, by the telemetry
exactness invariant — become the init and per-iteration deltas. Any
change to the cycle engine's charging is therefore picked up
automatically, and the differential suite in ``tests/engine/`` pins
fused == cycle bit-for-bit on every ledger.

Cache key
---------
The vector depends only on the machine configuration (``n`` enters
through the LINEAR bus-cost model, ``h`` through per-bit loops and
``bit_cycles`` weighting). It does **not** depend on the lane count
``B``: a batched machine charges its scalar counters once per SIMD
instruction — the same increments a serial machine charges — and its
per-lane ledger replicates those increments into each active lane
(see :meth:`repro.ppa.machine.PPAMachine._charge`). The fused engine
therefore applies ``init + iterations[b] * iteration`` per lane and
``init + rounds * iteration`` to the scalar book, which the differential
tests verify lane-for-lane against the batched cycle engine. Probes are
cached in a small LRU keyed on the full (frozen, hashable) config.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.errors import EngineError
from repro.ppa.topology import PPAConfig

__all__ = [
    "MCPCostVector",
    "mcp_cost_vector",
    "clear_cost_cache",
    "cost_cache_size",
    "cost_cache_stats",
    "reset_cost_cache_stats",
    "export_cost_cache",
    "install_cost_cache",
]

_COST_CACHE_SIZE = 32
_cache: "OrderedDict[PPAConfig, MCPCostVector]" = OrderedDict()
# Host-side metric (mirrors the bus-plan cache stats convention): never
# part of the machine cost model or any golden snapshot.
_stats = {"hits": 0, "misses": 0}


@dataclass(frozen=True)
class MCPCostVector:
    """One machine configuration's exact MCP cost profile.

    Attributes
    ----------
    config
        The :class:`PPAConfig` the vector was probed on.
    init
        Counter delta of the init phase (statements 4-7 plus the
        directed-graph init transposition), charged once per run.
    iteration
        Counter delta of one full do-while round (statements 9-20),
        charged once per executed round.
    probe_iterations
        How many rounds the probe workload executed (1 or 2); with two,
        the per-round constancy was verified directly.
    """

    config: PPAConfig
    init: dict[str, int]
    iteration: dict[str, int]
    probe_iterations: int

    def total(self, iterations: int) -> dict[str, int]:
        """The exact counter delta of a run with *iterations* rounds."""
        return {
            k: v + iterations * self.iteration[k]
            for k, v in self.init.items()
        }


def _probe_weights(config: PPAConfig) -> tuple[np.ndarray, int]:
    """A deterministic workload with a known iteration count.

    Prefers a 2-hop chain toward destination 0 (exactly two rounds: one
    productive, one no-change) so per-round constancy can be asserted;
    falls back to the edgeless graph (exactly one round) when the grid or
    word width cannot host it.
    """
    n, maxint = config.n, config.maxint
    W = np.full((n, n), maxint, dtype=np.int64)
    np.fill_diagonal(W, 0)
    if n >= 3 and (n - 1) < maxint:  # weight-1 edges pass the headroom check
        W[1, 0] = 1
        W[2, 1] = 1
        return W, 2
    return W, 1


def _probe(config: PPAConfig) -> MCPCostVector:
    """Run the cycle engine once under the tracer and split its phases."""
    from repro.core.mcp import minimum_cost_path
    from repro.ppa.machine import PPAMachine

    W, expected_rounds = _probe_weights(config)
    scratch = PPAMachine(config)
    with scratch.telemetry.capture():
        result = minimum_cost_path(scratch, W, 0, engine="cycle")
    if result.iterations != expected_rounds:  # pragma: no cover - invariant
        raise EngineError(
            f"cost probe executed {result.iterations} rounds, expected "
            f"{expected_rounds}; the cycle engine changed shape"
        )
    (root,) = scratch.telemetry.roots
    (init_span,) = root.find("mcp.init")
    iter_spans = root.find("mcp.iteration")
    deltas = [dict(s.counters) for s in iter_spans]
    if any(d != deltas[0] for d in deltas[1:]):  # pragma: no cover - invariant
        raise EngineError(
            "cycle-engine iterations are no longer cost-constant; the "
            "fused engine's analytic replay is invalid for this config"
        )
    init = dict(init_span.counters)
    iteration = deltas[0]
    # Partition sanity: init + rounds * iteration must equal the run total.
    total = {
        k: init.get(k, 0) + len(iter_spans) * iteration.get(k, 0)
        for k in result.counters
    }
    if total != result.counters:  # pragma: no cover - invariant
        raise EngineError(
            "cost probe phases do not partition the run total; charges "
            "exist outside the init/iteration spans"
        )
    return MCPCostVector(
        config=config,
        init=init,
        iteration=iteration,
        probe_iterations=len(iter_spans),
    )


def mcp_cost_vector(config: PPAConfig) -> MCPCostVector:
    """The (cached) exact MCP cost vector for *config*.

    The first call per configuration replays one tiny MCP on a scratch
    cycle machine (milliseconds, even at ``n = 512``); later calls are a
    dictionary lookup. The probe may warm the module-wide bus-plan caches
    exactly as any cycle run would — plan-cache state never affects
    counters (host-side metric), which ``tests/engine/`` pins.
    """
    vector = _cache.pop(config, None)
    if vector is not None:
        _cache[config] = vector  # refresh LRU position
        _stats["hits"] += 1
        return vector
    _stats["misses"] += 1
    vector = _probe(config)
    _cache[config] = vector
    while len(_cache) > _COST_CACHE_SIZE:
        _cache.popitem(last=False)
    return vector


def export_cost_cache() -> tuple[MCPCostVector, ...]:
    """Every cached cost vector, oldest-first — a picklable snapshot.

    :class:`MCPCostVector` is a frozen dataclass of a frozen
    :class:`PPAConfig` plus plain dicts, so the tuple pickles cleanly.
    The APSP shard runner (:mod:`repro.engine.shard`) probes the parent
    process once, exports, and ships the vectors to every worker through
    the pool initializer — workers then *hit* the cache instead of
    silently re-probing (and re-tracing) per process; the worker-side
    hit/miss stats are asserted in ``tests/engine/test_shard.py``.
    """
    return tuple(_cache.values())


def install_cost_cache(vectors) -> None:
    """Install pre-probed cost vectors (e.g. in a worker process at fork).

    Installation counts as neither hit nor miss — the stats measure lookup
    traffic, and shipped vectors exist precisely so the first worker
    lookup is a hit. Unknown objects are rejected loudly: a silently
    dropped vector would reintroduce the per-worker re-probe this API
    exists to prevent.
    """
    for vector in vectors:
        if not isinstance(vector, MCPCostVector):
            raise EngineError(
                f"install_cost_cache() takes MCPCostVector instances, got "
                f"{type(vector).__name__}"
            )
        _cache.pop(vector.config, None)
        _cache[vector.config] = vector
    while len(_cache) > _COST_CACHE_SIZE:
        _cache.popitem(last=False)


def clear_cost_cache() -> None:
    """Drop every cached cost vector (hit/miss stats are kept)."""
    _cache.clear()


def cost_cache_size() -> int:
    """Current number of cached cost vectors (bounded by the LRU cap)."""
    return len(_cache)


def cost_cache_stats() -> dict[str, int]:
    """Host-side hit/miss tallies of the cost-vector cache (copy)."""
    return dict(_stats)


def reset_cost_cache_stats() -> None:
    _stats["hits"] = 0
    _stats["misses"] = 0
