"""Execution engines for the MCP relaxation loop.

``cycle``
    The faithful transaction-level simulator (lives in :mod:`repro.core`):
    every bus primitive is individually executed and charged. Required for
    fault plans, span tracing, bus traces and reduction-routine ablations.

``fused``
    The analytic-cost engine (:mod:`repro.engine.fused`): each relaxation
    round is a few vectorised numpy kernels, and the counters are charged
    from a per-configuration cost vector replayed off the cycle engine
    (:mod:`repro.engine.costs`). Bit-identical results and ledgers, orders
    of magnitude less Python dispatch — the ``n = 64``..``255`` regime.

``compiled``
    The cache-blocked tier (:mod:`repro.engine.compiled`): the same
    analytic replay, but the min-plus relaxation runs in L2-resident row
    tiles (optionally JIT'd via numba when installed — never required).
    The large-grid regime; ``auto`` prefers it from
    ``n >= COMPILED_AUTO_MIN_N``.

``auto`` (default everywhere)
    :func:`~repro.engine.select.resolve_engine` upgrades to the fastest
    eligible analytic tier and silently falls back to ``cycle`` otherwise.

Process-parallel APSP destination sharding (:mod:`repro.engine.shard`)
composes with any tier through ``all_pairs_minimum_cost(workers=...)``.
"""

from repro.engine.compiled import (
    HAS_NUMBA,
    blocked_relax,
    compiled_batched_minimum_cost_path,
    compiled_kernel_info,
    compiled_minimum_cost_path,
    numba_active,
    row_block,
)
from repro.engine.costs import (
    MCPCostVector,
    clear_cost_cache,
    cost_cache_size,
    cost_cache_stats,
    export_cost_cache,
    install_cost_cache,
    mcp_cost_vector,
    reset_cost_cache_stats,
)
from repro.engine.fused import (
    fused_batched_minimum_cost_path,
    fused_minimum_cost_path,
)
from repro.engine.select import (
    COMPILED_AUTO_MIN_N,
    ENGINE_DEGRADE_ORDER,
    ENGINE_NAMES,
    EngineChoice,
    compiled_block_reason,
    degrade_engine,
    fused_block_reason,
    resolve_engine,
)
from repro.engine.shard import (
    DEFAULT_SHARD_TIMEOUT,
    ShardFailure,
    clear_shard_chaos,
    destination_shards,
    set_shard_chaos,
    sharded_all_pairs,
    workers_block_reason,
)

__all__ = [
    "ENGINE_NAMES",
    "COMPILED_AUTO_MIN_N",
    "EngineChoice",
    "fused_block_reason",
    "compiled_block_reason",
    "resolve_engine",
    "MCPCostVector",
    "mcp_cost_vector",
    "clear_cost_cache",
    "cost_cache_size",
    "cost_cache_stats",
    "reset_cost_cache_stats",
    "export_cost_cache",
    "install_cost_cache",
    "fused_minimum_cost_path",
    "fused_batched_minimum_cost_path",
    "HAS_NUMBA",
    "numba_active",
    "row_block",
    "blocked_relax",
    "compiled_kernel_info",
    "compiled_minimum_cost_path",
    "compiled_batched_minimum_cost_path",
    "workers_block_reason",
    "destination_shards",
    "sharded_all_pairs",
    "DEFAULT_SHARD_TIMEOUT",
    "ShardFailure",
    "set_shard_chaos",
    "clear_shard_chaos",
    "ENGINE_DEGRADE_ORDER",
    "degrade_engine",
]
