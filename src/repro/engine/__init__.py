"""Execution engines for the MCP relaxation loop.

``cycle``
    The faithful transaction-level simulator (lives in :mod:`repro.core`):
    every bus primitive is individually executed and charged. Required for
    fault plans, span tracing, bus traces and reduction-routine ablations.

``fused``
    The analytic-cost engine (:mod:`repro.engine.fused`): each relaxation
    round is a few vectorised numpy kernels, and the counters are charged
    from a per-configuration cost vector replayed off the cycle engine
    (:mod:`repro.engine.costs`). Bit-identical results and ledgers, orders
    of magnitude less Python dispatch — the ``n = 256``/``512`` regime.

``auto`` (default everywhere)
    :func:`~repro.engine.select.resolve_engine` upgrades to ``fused`` when
    the machine is eligible and silently falls back to ``cycle`` otherwise.
"""

from repro.engine.costs import (
    MCPCostVector,
    clear_cost_cache,
    cost_cache_size,
    cost_cache_stats,
    mcp_cost_vector,
    reset_cost_cache_stats,
)
from repro.engine.fused import (
    fused_batched_minimum_cost_path,
    fused_minimum_cost_path,
)
from repro.engine.select import (
    ENGINE_NAMES,
    EngineChoice,
    fused_block_reason,
    resolve_engine,
)

__all__ = [
    "ENGINE_NAMES",
    "EngineChoice",
    "fused_block_reason",
    "resolve_engine",
    "MCPCostVector",
    "mcp_cost_vector",
    "clear_cost_cache",
    "cost_cache_size",
    "cost_cache_stats",
    "reset_cost_cache_stats",
    "fused_minimum_cost_path",
    "fused_batched_minimum_cost_path",
]
