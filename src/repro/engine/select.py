"""Execution-engine selection policy.

Three engines can run the paper's MCP relaxation loop:

``cycle``
    The faithful simulator: every bus transaction is an individually
    executed :class:`~repro.ppa.machine.PPAMachine` primitive (the
    bit-serial ``min()`` issues ``h`` wired-ORs, and so on). This is the
    only engine that can honour fault plans, span tracing, bus traces and
    non-default reduction routines, because those features observe (or
    perturb) *individual* transactions.

``fused``
    The analytic-cost engine (:mod:`repro.engine.fused`): one relaxation
    round collapses into a handful of vectorised numpy kernels, and the
    machine's counters are charged from a per-iteration cost vector
    *replayed* from a single cycle-engine iteration
    (:mod:`repro.engine.costs`). Results and **all** counter ledgers are
    bit-identical to the cycle engine — but per-transaction observers see
    nothing, which is why eligibility is gated.

``compiled``
    The cache-aware tier (:mod:`repro.engine.compiled`): the same
    analytic-cost replay as ``fused``, but the min-plus relaxation runs as
    a *blocked* kernel — row tiles sized to stay cache-resident instead of
    one whole-array temporary — with an optional numba ``@njit`` fast path
    detected at import (never required; the pure-numpy tiling is always
    available). Eligibility conditions are identical to ``fused``; the
    payoff grows with ``n`` (~4-5x over ``fused`` at ``n = 1024``).

:func:`resolve_engine` implements the policy:

* ``engine="auto"`` (the default everywhere) upgrades to the fastest
  eligible tier — ``compiled`` on large grids
  (``n >= COMPILED_AUTO_MIN_N``), ``fused`` below that — and otherwise
  silently falls back to ``cycle``; existing workflows (fault injection,
  ``--trace``, profiling, A7/A13 routine ablations) keep their exact
  behaviour.
* ``engine="cycle"`` always honours the request.
* ``engine="fused"`` / ``engine="compiled"`` raise
  :class:`~repro.errors.EngineError` with the blocking reason when the
  machine is ineligible (the CLI catches this earlier and prints a
  friendly note instead; see ``repro.cli``).

Process-parallel APSP sharding (``all_pairs_minimum_cost(workers=...)``)
adds one more gate on top of engine eligibility — see
:func:`repro.engine.shard.workers_block_reason`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EngineError

__all__ = [
    "EngineChoice",
    "ENGINE_NAMES",
    "ENGINE_DEGRADE_ORDER",
    "COMPILED_AUTO_MIN_N",
    "fused_block_reason",
    "compiled_block_reason",
    "degrade_engine",
    "resolve_engine",
]

ENGINE_NAMES = ("auto", "cycle", "fused", "compiled")

#: Graceful-degradation order used by the serving tier
#: (:mod:`repro.serve.degrade`): each engine maps to the next tier to try
#: when the current one fails or is under pressure. All tiers are
#: bit-identical on results and counters, so walking down the ladder
#: trades throughput for isolation/diagnosability, never correctness.
ENGINE_DEGRADE_ORDER = ("compiled", "fused", "cycle")


def degrade_engine(name: str) -> str | None:
    """The next-lower engine tier, or ``None`` at the bottom.

    ``auto`` degrades like ``compiled`` (the fastest tier it can resolve
    to); ``cycle`` has nothing below it. Unknown names raise
    :class:`~repro.errors.EngineError`.
    """
    if name == "auto":
        name = ENGINE_DEGRADE_ORDER[0]
    if name not in ENGINE_NAMES:
        raise EngineError(
            f"unknown engine {name!r}; choose one of {ENGINE_NAMES}"
        )
    idx = ENGINE_DEGRADE_ORDER.index(name)
    if idx + 1 >= len(ENGINE_DEGRADE_ORDER):
        return None
    return ENGINE_DEGRADE_ORDER[idx + 1]

#: Grid side at which ``auto`` prefers the blocked (compiled) kernels over
#: whole-array fusion. Below this the fused engine's single temporary fits
#: cache anyway and the tiling loop is pure overhead; above it the blocked
#: kernels win by keeping each candidate tile L2-resident. Either choice is
#: bit-identical — this threshold only picks the faster one.
COMPILED_AUTO_MIN_N = 256


@dataclass(frozen=True)
class EngineChoice:
    """Outcome of :func:`resolve_engine`.

    Attributes
    ----------
    name
        The engine that will actually run: ``"cycle"``, ``"fused"`` or
        ``"compiled"``.
    requested
        The caller's request (``"auto"``/``"cycle"``/``"fused"``/
        ``"compiled"``).
    reason
        Why the choice was made — for ``auto`` fallbacks this is the
        blocking condition (``"fault plan attached"``...), otherwise a
        short confirmation string. Surfaced by the CLI.
    """

    name: str
    requested: str
    reason: str

    @property
    def fused(self) -> bool:
        return self.name == "fused"

    @property
    def compiled(self) -> bool:
        return self.name == "compiled"

    @property
    def analytic(self) -> bool:
        """True for either analytic-replay tier (``fused``/``compiled``)."""
        return self.name in ("fused", "compiled")


def fused_block_reason(
    machine,
    *,
    min_routine=None,
    selected_min_routine=None,
) -> str | None:
    """The first condition blocking the fused engine, or ``None``.

    The fused engine computes whole rounds without issuing individual bus
    transactions, so anything that observes (faults, bus trace, span
    tracer) or redefines (custom reduction routines) per-transaction
    behaviour forces the cycle engine.
    """
    from repro.ppc.reductions import ppa_min, ppa_selected_min

    if machine.fault_plan is not None:
        return "fault plan attached (faults act on individual bus transactions)"
    if machine.telemetry.enabled:
        return "span tracer enabled (per-phase attribution needs cycle spans)"
    if machine.trace.enabled:
        return "bus trace enabled (the fused engine issues no transactions)"
    if min_routine is not None and min_routine is not ppa_min:
        return "non-default min routine (its cost profile is not replayed)"
    if (
        selected_min_routine is not None
        and selected_min_routine is not ppa_selected_min
    ):
        return (
            "non-default selected_min routine (its cost profile is not "
            "replayed)"
        )
    if machine.n < 2:
        return "grid side < 2 (nothing to fuse; cycle engine is trivial)"
    return None


def compiled_block_reason(
    machine,
    *,
    min_routine=None,
    selected_min_routine=None,
) -> str | None:
    """The first condition blocking the compiled engine, or ``None``.

    The compiled tier charges the same replayed analytic cost vectors as
    the fused engine and issues no individual bus transactions either, so
    its eligibility conditions are exactly the fused ones. (numba is an
    optional fast path, never a requirement — the pure-numpy blocked
    kernels run everywhere.)
    """
    return fused_block_reason(
        machine,
        min_routine=min_routine,
        selected_min_routine=selected_min_routine,
    )


def resolve_engine(
    machine,
    engine: str = "auto",
    *,
    min_routine=None,
    selected_min_routine=None,
) -> EngineChoice:
    """Apply the engine policy to *machine* and the caller's request.

    See the module docstring for the policy. *min_routine* /
    *selected_min_routine* are the reduction implementations the caller
    would pass to the cycle engine (``None`` means the defaults).
    """
    if engine not in ENGINE_NAMES:
        raise EngineError(
            f"unknown engine {engine!r}; choose one of {ENGINE_NAMES}"
        )
    if engine == "cycle":
        return EngineChoice("cycle", engine, "cycle engine requested")
    blocked = fused_block_reason(
        machine,
        min_routine=min_routine,
        selected_min_routine=selected_min_routine,
    )
    if engine in ("fused", "compiled"):
        if blocked is not None:
            raise EngineError(
                f"engine={engine!r} unavailable: {blocked}; use engine='auto' "
                "to fall back to the cycle engine transparently"
            )
        return EngineChoice(engine, engine, f"{engine} engine requested")
    # auto
    if blocked is not None:
        return EngineChoice("cycle", engine, blocked)
    if machine.n >= COMPILED_AUTO_MIN_N:
        return EngineChoice(
            "compiled",
            engine,
            f"large grid (n >= {COMPILED_AUTO_MIN_N}): blocked kernels "
            "beat whole-array fusion",
        )
    return EngineChoice("fused", engine, "machine eligible for fused execution")
