"""Execution-engine selection policy.

Two engines can run the paper's MCP relaxation loop:

``cycle``
    The faithful simulator: every bus transaction is an individually
    executed :class:`~repro.ppa.machine.PPAMachine` primitive (the
    bit-serial ``min()`` issues ``h`` wired-ORs, and so on). This is the
    only engine that can honour fault plans, span tracing, bus traces and
    non-default reduction routines, because those features observe (or
    perturb) *individual* transactions.

``fused``
    The analytic-cost engine (:mod:`repro.engine.fused`): one relaxation
    round collapses into a handful of vectorised numpy kernels, and the
    machine's counters are charged from a per-iteration cost vector
    *replayed* from a single cycle-engine iteration
    (:mod:`repro.engine.costs`). Results and **all** counter ledgers are
    bit-identical to the cycle engine — but per-transaction observers see
    nothing, which is why eligibility is gated.

:func:`resolve_engine` implements the policy:

* ``engine="auto"`` (the default everywhere) upgrades to ``fused``
  whenever the machine is eligible and otherwise silently falls back to
  ``cycle`` — existing workflows (fault injection, ``--trace``,
  profiling, A7/A13 routine ablations) keep their exact behaviour.
* ``engine="cycle"`` always honours the request.
* ``engine="fused"`` raises :class:`~repro.errors.EngineError` with the
  blocking reason when the machine is ineligible (the CLI catches this
  earlier and prints a friendly note instead; see ``repro.cli``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EngineError

__all__ = ["EngineChoice", "ENGINE_NAMES", "fused_block_reason", "resolve_engine"]

ENGINE_NAMES = ("auto", "cycle", "fused")


@dataclass(frozen=True)
class EngineChoice:
    """Outcome of :func:`resolve_engine`.

    Attributes
    ----------
    name
        The engine that will actually run: ``"cycle"`` or ``"fused"``.
    requested
        The caller's request (``"auto"``/``"cycle"``/``"fused"``).
    reason
        Why the choice was made — for ``auto`` fallbacks this is the
        blocking condition (``"fault plan attached"``...), otherwise a
        short confirmation string. Surfaced by the CLI.
    """

    name: str
    requested: str
    reason: str

    @property
    def fused(self) -> bool:
        return self.name == "fused"


def fused_block_reason(
    machine,
    *,
    min_routine=None,
    selected_min_routine=None,
) -> str | None:
    """The first condition blocking the fused engine, or ``None``.

    The fused engine computes whole rounds without issuing individual bus
    transactions, so anything that observes (faults, bus trace, span
    tracer) or redefines (custom reduction routines) per-transaction
    behaviour forces the cycle engine.
    """
    from repro.ppc.reductions import ppa_min, ppa_selected_min

    if machine.fault_plan is not None:
        return "fault plan attached (faults act on individual bus transactions)"
    if machine.telemetry.enabled:
        return "span tracer enabled (per-phase attribution needs cycle spans)"
    if machine.trace.enabled:
        return "bus trace enabled (the fused engine issues no transactions)"
    if min_routine is not None and min_routine is not ppa_min:
        return "non-default min routine (its cost profile is not replayed)"
    if (
        selected_min_routine is not None
        and selected_min_routine is not ppa_selected_min
    ):
        return (
            "non-default selected_min routine (its cost profile is not "
            "replayed)"
        )
    if machine.n < 2:
        return "grid side < 2 (nothing to fuse; cycle engine is trivial)"
    return None


def resolve_engine(
    machine,
    engine: str = "auto",
    *,
    min_routine=None,
    selected_min_routine=None,
) -> EngineChoice:
    """Apply the engine policy to *machine* and the caller's request.

    See the module docstring for the policy. *min_routine* /
    *selected_min_routine* are the reduction implementations the caller
    would pass to the cycle engine (``None`` means the defaults).
    """
    if engine not in ENGINE_NAMES:
        raise EngineError(
            f"unknown engine {engine!r}; choose one of {ENGINE_NAMES}"
        )
    if engine == "cycle":
        return EngineChoice("cycle", engine, "cycle engine requested")
    blocked = fused_block_reason(
        machine,
        min_routine=min_routine,
        selected_min_routine=selected_min_routine,
    )
    if engine == "fused":
        if blocked is not None:
            raise EngineError(
                f"engine='fused' unavailable: {blocked}; use engine='auto' "
                "to fall back to the cycle engine transparently"
            )
        return EngineChoice("fused", engine, "fused engine requested")
    # auto
    if blocked is not None:
        return EngineChoice("cycle", engine, blocked)
    return EngineChoice("fused", engine, "machine eligible for fused execution")
