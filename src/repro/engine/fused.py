"""The fused analytic-cost MCP engine.

One relaxation round of the paper's Section 3 loop — row-``d`` broadcast +
saturating add, wired-OR minimum, selected-min PTN recovery, diagonal
writeback, convergence test — collapses into a handful of whole-array
numpy kernels, because the algorithm's *live* state is only the ``d``-th
row of ``SOW``/``PTN`` (everything else is recomputed from it each round):

====================================  =====================================
cycle engine (per round)              fused kernel
====================================  =====================================
broadcast row d + ``sat_add``         ``cand = min(sow[j] + W[i, j], MAXINT)``
``h``-round bit-serial wired-OR min   ``cand.min(axis=-1)``
selected-min over ``COL``             ``cand.argmin(axis=-1)`` (first
                                      occurrence == smallest column index,
                                      the bit-serial tie-break)
diagonal writeback, masked PTN store  ``where(changed, arg, ptn)`` with
                                      ``new_sow[d] = 0`` (the never-stored
                                      ``MIN_SOW[d, d] = 0`` invariant)
controller ``global_or``              ``changed.any()``
====================================  =====================================

Counters are not simulated — they are **replayed**: every round charges
the exact per-iteration delta probed once per machine configuration by
:mod:`repro.engine.costs` (and the init phase charges the probed init
delta). Because one MCP round issues a fixed, data-independent instruction
stream, the replayed totals are bit-identical to the cycle engine's on
*every* ledger: scalar counters, and — via the machine's lane mask — each
lane's serial-equivalent ledger, where lane ``b`` receives ``init +
iterations[b] * iteration`` exactly as the batched cycle engine charges
it. The differential suite in ``tests/engine/`` pins all of this.

The control flow (and the counter replay) is shared with the compiled
tier — see :mod:`repro.engine._loop`; this module contributes only the
whole-array relaxation kernel. :mod:`repro.engine.compiled` contributes
the cache-blocked one.

Eligibility is the caller's job (:func:`repro.engine.select.resolve_engine`
— no fault plan, tracer, bus trace, or non-default reduction routines);
the entry points here re-check and raise :class:`~repro.errors.EngineError`
if invoked directly on an ineligible machine.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import MCPResult
from repro.engine._loop import run_analytic_batched_mcp, run_analytic_mcp
from repro.engine.select import resolve_engine
from repro.ppa.machine import PPAMachine

__all__ = ["fused_minimum_cost_path", "fused_batched_minimum_cost_path"]


def _relax(sow: np.ndarray, W: np.ndarray, maxint: int):
    """One fused relaxation: candidates, row minima, best successors.

    ``sow`` is the row-``d`` state — ``(n,)`` serial or ``(B, n)`` batched;
    ``W`` is ``(n, n)`` (shared) or ``(B, n, n)`` (per lane). Returns
    ``(new_sow, arg)`` where ``arg`` is the smallest-index argmin per row,
    matching the bit-serial ``selected_min`` tie-break over ``COL``.
    """
    # cand[..., i, j] = min(sow[..., j] + W[..., i, j], MAXINT): the cost of
    # "go first to j" from node i — statement 10's broadcast + sat_add.
    cand = np.minimum(sow[..., None, :] + W, maxint)
    return cand.min(axis=-1), cand.argmin(axis=-1)


def fused_minimum_cost_path(
    machine: PPAMachine,
    W,
    d: int,
    *,
    zero_diagonal: str = "require",
    max_iterations: int | None = None,
    warm_sow=None,
) -> MCPResult:
    """Single-destination MCP on the fused engine.

    Bit-identical to :func:`repro.core.mcp.minimum_cost_path` with
    ``engine="cycle"`` in result *and* counters; callers normally reach it
    through ``engine="auto"``/``"fused"`` dispatch rather than directly.
    """
    resolve_engine(machine, "fused")  # raises EngineError when ineligible
    return run_analytic_mcp(
        machine,
        W,
        d,
        _relax,
        zero_diagonal=zero_diagonal,
        max_iterations=max_iterations,
        warm_sow=warm_sow,
    )


def fused_batched_minimum_cost_path(
    machine: PPAMachine,
    W,
    destinations,
    *,
    zero_diagonal: str = "require",
    max_iterations: int | None = None,
    warm_sow=None,
):
    """Batched multi-destination MCP on the fused engine.

    Bit-identical to :func:`repro.core.batched.batched_minimum_cost_path`
    with ``engine="cycle"``: per-lane SOW/PTN/iterations, the batched-stream
    scalar counter delta *and* every lane's serial-equivalent ledger. Lane
    convergence masking happens on the host: a converged lane's state rows
    freeze and its ledger stops accruing (``set_active_lanes``), exactly as
    in the cycle loop.
    """
    resolve_engine(machine, "fused")  # raises EngineError when ineligible
    return run_analytic_batched_mcp(
        machine,
        W,
        destinations,
        _relax,
        zero_diagonal=zero_diagonal,
        max_iterations=max_iterations,
        warm_sow=warm_sow,
    )
