"""The compiled (cache-blocked, optionally JIT'd) MCP engine tier.

Third engine tier below ``fused`` (see :mod:`repro.engine.select`). The
fused engine materialises the whole ``(..., n, n)`` candidate matrix per
relaxation round and then walks it twice more (``min`` + ``argmin``) —
at ``n >= 1024`` those temporaries are hundreds of megabytes and every
pass streams them through DRAM. The compiled tier computes the *same*
relaxation in row tiles sized to stay cache-resident:

* **pure-numpy blocked kernel** (always available): the candidate block
  ``min(sow[..., None, :] + W[i0:i1], MAXINT)`` holds only
  ``B x rows x n`` words, with ``rows`` chosen so the block is ~1 MiB
  (:func:`row_block`); min/argmin run per block while it is still hot.
  ~4-5x over the fused kernel at ``n = 1024`` on one core, identical
  output bit for bit (numpy ``argmin`` keeps the smallest-index
  tie-break per block, and the cross-block merge uses a strict ``<`` so
  the first block achieving the minimum wins — exactly the bit-serial
  ``selected_min`` semantics).
* **numba fast path** (optional, detected at import, never required):
  ``@njit(parallel=True)`` single-pass min+argmin over the rows. Absent
  numba — or with ``REPRO_DISABLE_NUMBA`` set — the numpy tiling runs;
  results are bit-identical either way, so CI exercises both sides of
  the detection with the same golden ledgers.

Counters are **replayed** from the same per-configuration analytic cost
vectors as the fused engine (:mod:`repro.engine.costs`), through the same
shared loop (:mod:`repro.engine._loop`): SOW/PTN/iteration counts, the
scalar counter book and every per-lane serial-equivalent ledger are
bit-identical to both the ``cycle`` and ``fused`` engines. The
differential suite in ``tests/engine/test_compiled.py`` pins this across
graphs, word widths, lane counts and block sizes.

Process-parallel APSP destination sharding rides on this tier — see
:mod:`repro.engine.shard`.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.result import MCPResult
from repro.engine._loop import run_analytic_batched_mcp, run_analytic_mcp
from repro.engine.select import resolve_engine
from repro.ppa.machine import PPAMachine

__all__ = [
    "HAS_NUMBA",
    "numba_active",
    "row_block",
    "blocked_relax",
    "compiled_kernel_info",
    "compiled_minimum_cost_path",
    "compiled_batched_minimum_cost_path",
]

#: Target byte size of one candidate tile (``B x rows x n`` int64). ~1 MiB
#: keeps the tile L2-resident on every CPU this is likely to meet; measured
#: best on the P18 workloads (see benchmarks/bench_p18_compiled.py).
_BLOCK_TARGET_BYTES = 1 << 20

#: Floor on rows per tile: below this the Python loop overhead dominates.
_MIN_BLOCK_ROWS = 16

_DISABLE_ENV = "REPRO_DISABLE_NUMBA"
_BLOCK_ENV = "REPRO_COMPILED_BLOCK"

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba

    HAS_NUMBA = True
except Exception:  # pragma: no cover - the usual case in CI's bare leg
    _numba = None
    HAS_NUMBA = False


def numba_active() -> bool:
    """Whether the numba fast path will be used for the next kernel call.

    True only when numba imported successfully *and* ``REPRO_DISABLE_NUMBA``
    is unset/empty — the CI equivalence matrix runs the same suite with the
    variable set to force the pure-numpy tiling on a numba-equipped host.
    """
    return HAS_NUMBA and not os.environ.get(_DISABLE_ENV)


def row_block(batch: int, n: int) -> int:
    """Rows per candidate tile for a ``(batch, n)`` state relaxation.

    Sized so one ``batch x rows x n`` int64 tile is ~`_BLOCK_TARGET_BYTES`,
    floored at ``_MIN_BLOCK_ROWS`` and capped at ``n``. Overridable via the
    ``REPRO_COMPILED_BLOCK`` environment variable (any positive integer) —
    a tuning knob only; every block size is bit-identical.
    """
    override = os.environ.get(_BLOCK_ENV)
    if override:
        return max(1, min(int(override), n))
    rows = _BLOCK_TARGET_BYTES // (max(1, batch) * max(1, n) * 8)
    return max(_MIN_BLOCK_ROWS, min(int(rows), n))


def _relax_numpy_blocked(sow: np.ndarray, W: np.ndarray, maxint: int):
    """Blocked pure-numpy relaxation over row tiles.

    ``sow`` is ``(B, n)``; ``W`` is ``(n, n)`` (shared across lanes) or
    ``(B, n, n)`` (per lane). Returns ``(new_sow, arg)`` with ``arg`` the
    smallest-index argmin per row — numpy's ``argmin`` is first-occurrence
    within a tile, and tiles are visited in index order, so the global
    tie-break matches the fused kernel exactly.
    """
    B, n = sow.shape
    best = np.empty((B, n), dtype=np.int64)
    arg = np.empty((B, n), dtype=np.int64)
    sow_b = sow[:, None, :]  # (B, 1, n) broadcast against each row tile
    step = row_block(B, n)
    for i0 in range(0, n, step):
        i1 = min(i0 + step, n)
        tile = W[i0:i1] if W.ndim == 2 else W[:, i0:i1, :]
        cand = np.minimum(sow_b + tile, maxint)
        best[:, i0:i1] = cand.min(axis=-1)
        arg[:, i0:i1] = cand.argmin(axis=-1)
    return best, arg


if HAS_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @_numba.njit(parallel=True, cache=True)
    def _numba_relax_shared(sow, W, maxint, best, arg):
        B, n = sow.shape
        for b in _numba.prange(B):
            for i in range(n):
                m = maxint
                a = 0
                row = W[i]
                for j in range(n):
                    c = sow[b, j] + row[j]
                    if c > maxint:
                        c = maxint
                    if c < m:
                        m = c
                        a = j
                best[b, i] = m
                arg[b, i] = a

    @_numba.njit(parallel=True, cache=True)
    def _numba_relax_per_lane(sow, W, maxint, best, arg):
        B, n = sow.shape
        for b in _numba.prange(B):
            for i in range(n):
                m = maxint
                a = 0
                row = W[b, i]
                for j in range(n):
                    c = sow[b, j] + row[j]
                    if c > maxint:
                        c = maxint
                    if c < m:
                        m = c
                        a = j
                best[b, i] = m
                arg[b, i] = a

    def _relax_numba(sow: np.ndarray, W: np.ndarray, maxint: int):
        B, n = sow.shape
        best = np.empty((B, n), dtype=np.int64)
        arg = np.empty((B, n), dtype=np.int64)
        kernel = _numba_relax_shared if W.ndim == 2 else _numba_relax_per_lane
        kernel(
            np.ascontiguousarray(sow),
            np.ascontiguousarray(W),
            np.int64(maxint),
            best,
            arg,
        )
        return best, arg


def blocked_relax(sow: np.ndarray, W: np.ndarray, maxint: int):
    """The compiled tier's relaxation kernel (numba when active, else
    blocked numpy). Accepts the same shapes as the fused kernel — ``(n,)``
    or ``(B, n)`` state against ``(n, n)`` or ``(B, n, n)`` weights — and
    returns bit-identical ``(new_sow, arg)``.
    """
    serial = sow.ndim == 1
    sow2 = sow[None, :] if serial else sow
    if numba_active():  # pragma: no cover - numba-equipped hosts only
        best, arg = _relax_numba(sow2, W, maxint)
    else:
        best, arg = _relax_numpy_blocked(sow2, W, maxint)
    if serial:
        return best[0], arg[0]
    return best, arg


def compiled_kernel_info() -> dict:
    """Introspection for docs/CI: which backend the next call uses."""
    return {
        "numba_installed": HAS_NUMBA,
        "numba_active": numba_active(),
        "backend": "numba" if numba_active() else "numpy-blocked",
        "block_target_bytes": _BLOCK_TARGET_BYTES,
    }


def compiled_minimum_cost_path(
    machine: PPAMachine,
    W,
    d: int,
    *,
    zero_diagonal: str = "require",
    max_iterations: int | None = None,
    warm_sow=None,
) -> MCPResult:
    """Single-destination MCP on the compiled tier.

    Bit-identical to both ``engine="cycle"`` and ``engine="fused"`` in
    result *and* counters; callers normally reach it through
    ``engine="auto"``/``"compiled"`` dispatch rather than directly.
    """
    resolve_engine(machine, "compiled")  # raises EngineError when ineligible
    return run_analytic_mcp(
        machine,
        W,
        d,
        blocked_relax,
        zero_diagonal=zero_diagonal,
        max_iterations=max_iterations,
        warm_sow=warm_sow,
    )


def compiled_batched_minimum_cost_path(
    machine: PPAMachine,
    W,
    destinations,
    *,
    zero_diagonal: str = "require",
    max_iterations: int | None = None,
    warm_sow=None,
):
    """Batched multi-destination MCP on the compiled tier.

    Same contract as :func:`repro.engine.fused.fused_batched_minimum_cost_path`
    — per-lane SOW/PTN/iterations, batched-stream scalar counters and every
    lane's serial-equivalent ledger bit-identical to the cycle engine —
    computed through the cache-blocked kernel.
    """
    resolve_engine(machine, "compiled")  # raises EngineError when ineligible
    return run_analytic_batched_mcp(
        machine,
        W,
        destinations,
        blocked_relax,
        zero_diagonal=zero_diagonal,
        max_iterations=max_iterations,
        warm_sow=warm_sow,
    )
