"""repro — reproduction of *A Parallel Algorithm for Minimum Cost Path
Computation on Polymorphic Processor Array* (Baglietto, Maresca, Migliardi,
IPPS 1998).

Quickstart
----------
>>> import numpy as np
>>> from repro import PPAMachine, PPAConfig, minimum_cost_path, INF
>>> W = np.array([
...     [0,   4, INF, INF],
...     [INF, 0,   1, INF],
...     [INF, INF, 0,   7],
...     [2, INF, INF,  0],
... ])
>>> machine = PPAMachine(PPAConfig(n=4, word_bits=16))
>>> result = minimum_cost_path(machine, W, d=3)
>>> int(result.sow[0]), result.path(0)
(12, [0, 1, 2, 3])

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduced evaluation.
"""

from repro.errors import (
    ReproError,
    ConfigurationError,
    MachineError,
    BusError,
    GraphError,
    WordWidthError,
    PPCError,
)
from repro.ppa import (
    Direction,
    opposite,
    BusCostModel,
    PPAConfig,
    PPAMachine,
)
from repro.ppc import PPCEnvironment, ppa_min, ppa_selected_min
from repro.core import (
    INF,
    MCPResult,
    all_pairs_minimum_cost,
    boruvka_mst,
    extract_path,
    minimum_cost_path,
    minimum_cost_path_asm,
    minimum_cost_path_from,
    minimum_cost_path_multi,
    minimum_cost_path_word,
    normalize_weights,
    reachable_set,
    transitive_closure,
    validate_tree,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "MachineError",
    "BusError",
    "GraphError",
    "WordWidthError",
    "PPCError",
    # machine
    "Direction",
    "opposite",
    "BusCostModel",
    "PPAConfig",
    "PPAMachine",
    # language
    "PPCEnvironment",
    "ppa_min",
    "ppa_selected_min",
    # algorithm
    "INF",
    "MCPResult",
    "minimum_cost_path",
    "minimum_cost_path_word",
    "minimum_cost_path_multi",
    "minimum_cost_path_from",
    "minimum_cost_path_asm",
    "boruvka_mst",
    "all_pairs_minimum_cost",
    "transitive_closure",
    "reachable_set",
    "normalize_weights",
    "extract_path",
    "validate_tree",
]
