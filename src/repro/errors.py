"""Exception hierarchy for the PPA-MCP reproduction.

Every error raised by the library derives from :class:`ReproError`, so
applications can guard a whole simulation run with a single ``except``
clause while still being able to discriminate machine-level faults from
algorithm-level input problems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "MachineError",
    "BusError",
    "BusConflictError",
    "MaskError",
    "VariableError",
    "GraphError",
    "WordWidthError",
    "EngineError",
    "ResilienceError",
    "PPCError",
    "PPCSyntaxError",
    "PPCTypeError",
    "PPCVerifyError",
    "PPCRuntimeError",
]


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An invalid machine or experiment configuration was supplied."""


class MachineError(ReproError):
    """A machine-level invariant was violated (programming error)."""


class BusError(MachineError):
    """Invalid bus operation, e.g. a broadcast on a ring with no Open switch
    while the machine runs in ``strict`` bus mode."""


class BusConflictError(BusError):
    """A dynamically detected bus write race: two or more Open drivers on
    the same ring injected *disagreeing* values during a broadcast (the
    equal-value multi-driver case is the paper's legitimate wired-OR /
    ``min()`` survivor idiom and is not a conflict). Raised only when the
    machine was built with ``PPAMachine(check_bus_conflicts=True)`` — the
    dynamic counterpart of the static bus-race detector in
    :mod:`repro.verify`."""


class MaskError(MachineError):
    """Invalid use of the ``where``/``elsewhere`` activity-mask stack."""


class VariableError(MachineError):
    """Invalid parallel-variable operation (shape/dtype/machine mismatch)."""


class GraphError(ReproError):
    """The input weight matrix violates the algorithm's preconditions."""


class WordWidthError(GraphError):
    """Weights or accumulated path costs do not fit the machine word."""


class EngineError(ReproError):
    """An execution-engine request cannot be honoured — e.g. ``engine=
    "fused"`` on a machine carrying a fault plan, an enabled tracer or bus
    trace, or with non-default reduction routines. ``engine="auto"`` never
    raises this: it transparently falls back to the cycle engine instead."""


class ResilienceError(ReproError):
    """The resilient runtime could not deliver a trustworthy result
    (recovery budget exhausted, spare rows/columns insufficient, or the
    array failed its pre-flight screen)."""


class PPCError(ReproError):
    """Base class for Polymorphic Parallel C language errors."""


class PPCSyntaxError(PPCError):
    """Lexical or syntactic error in a PPC source program."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class PPCTypeError(PPCError):
    """Static semantic error (undeclared identifier, wrong arity, ...)."""


class PPCVerifyError(PPCError):
    """A PPC program was rejected by the static verifier
    (:mod:`repro.verify`) under ``compile_ppc(..., verify="error")``.

    Carries the full diagnostics :class:`~repro.verify.Report` on the
    ``report`` attribute."""

    def __init__(self, message: str, report=None):
        self.report = report
        super().__init__(message)


class PPCRuntimeError(PPCError):
    """Error raised while interpreting a PPC program."""
