"""Result containers that render like the paper's tables/figure series."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Table", "Series", "render_chart"]


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


@dataclass
class Table:
    """A titled table: fixed headers, appendable rows."""

    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row of {len(values)} cells against {len(self.headers)} "
                "headers"
            )
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        cells = [self.headers] + [[_fmt(v) for v in r] for r in self.rows]
        widths = [max(len(row[i]) for row in cells) for i in range(len(self.headers))]
        lines = [self.title, "=" * len(self.title)]
        sep = "-+-".join("-" * w for w in widths)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
        lines.append(sep)
        for row in cells[1:]:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(_fmt(v) for v in row) + " |")
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)

    def column(self, header: str) -> list:
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]


@dataclass
class Series:
    """One figure series: an x sweep and one or more named y series."""

    title: str
    x_label: str
    x: list = field(default_factory=list)
    ys: dict[str, list] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add_point(self, x, **y_values) -> None:
        self.x.append(x)
        for name, v in y_values.items():
            self.ys.setdefault(name, []).append(v)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def as_table(self) -> Table:
        table = Table(self.title, [self.x_label, *self.ys.keys()])
        for i, xv in enumerate(self.x):
            table.add_row(xv, *(self.ys[k][i] for k in self.ys))
        table.notes = list(self.notes)
        return table

    def render(self) -> str:
        return self.as_table().render()

    def render_chart(self, *, width: int = 40) -> str:
        """ASCII bar-chart rendition (see :func:`render_chart`)."""
        return render_chart(self, width=width)


def _bar(value: float, vmax: float, width: int) -> str:
    if vmax <= 0:
        return ""
    filled = int(round(width * value / vmax))
    return "#" * max(0, min(width, filled))


def render_chart(series: "Series", *, width: int = 40) -> str:
    """ASCII bar chart of a :class:`Series` — the terminal's version of
    the paper's figures.

    One block per y-series; bars scale to that series' maximum, with the
    numeric value printed after each bar so nothing is lost to rounding.
    """
    lines = [series.title, "=" * len(series.title)]
    x_width = max(len(str(x)) for x in series.x) if series.x else 1
    for name, ys in series.ys.items():
        lines.append(f"\n{series.x_label:>{x_width}} | {name}")
        vmax = max((float(v) for v in ys), default=0.0)
        for x, y in zip(series.x, ys):
            bar = _bar(float(y), vmax, width)
            value = f"{y:.3f}" if isinstance(y, float) else str(y)
            lines.append(f"{str(x):>{x_width}} | {bar} {value}")
    for note in series.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)
