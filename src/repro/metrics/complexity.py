"""Scaling-law fits for the complexity experiments.

The paper's claims are asymptotic ("O(p·h)", "independent of n"); the
experiment harness turns measured counter series into checkable statements
via two primitives:

* :func:`linear_fit` — least-squares line with R², for "cycles grow
  linearly in h / p" claims (F3, F4);
* :func:`loglog_slope` — the empirical polynomial order, for "flat in n vs
  linear in n" comparisons (F2: slope ≈ 0 for the PPA, ≈ 1 for the mesh).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FitResult", "linear_fit", "loglog_slope"]


@dataclass(frozen=True)
class FitResult:
    """Least-squares line ``y = slope * x + intercept``."""

    slope: float
    intercept: float
    r2: float

    def predict(self, x) -> np.ndarray:
        return self.slope * np.asarray(x, dtype=float) + self.intercept


def linear_fit(x, y) -> FitResult:
    """Fit ``y = a*x + b``; returns slope/intercept/R².

    With fewer than 2 points or zero variance in *x* the fit degenerates;
    both raise ``ValueError`` (callers always control the sweep).
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size != y.size or x.size < 2:
        raise ValueError("need at least two (x, y) points")
    if np.ptp(x) == 0:
        raise ValueError("x has zero variance")
    slope, intercept = np.polyfit(x, y, 1)
    pred = slope * x + intercept
    ss_res = float(((y - pred) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return FitResult(float(slope), float(intercept), r2)


def loglog_slope(x, y) -> float:
    """Empirical polynomial order: the slope of ``log y`` against ``log x``.

    ≈ 0 for constant cost, ≈ 1 for linear, ≈ 2 for quadratic. All values
    must be positive.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if (x <= 0).any() or (y <= 0).any():
        raise ValueError("log-log slope needs positive samples")
    return linear_fit(np.log(x), np.log(y)).slope
