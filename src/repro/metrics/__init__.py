"""Measurement utilities: scaling fits and table rendering."""

from repro.metrics.complexity import linear_fit, loglog_slope, FitResult
from repro.metrics.tables import Table, Series, render_chart

__all__ = [
    "linear_fit",
    "loglog_slope",
    "FitResult",
    "Table",
    "Series",
    "render_chart",
]
