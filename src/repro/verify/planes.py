"""Abstract value domains shared by the PPC and ISA verifier passes.

Two abstractions cooperate (see docs/static-analysis.md):

* :class:`Interval` — a classic integer range ``[lo, hi]`` with the
  machine's *word semantics* baked in: saturating ``+``/``*`` (``MAXINT``
  absorbs, the paper's infinity sentinel), clamped ``-`` and masked
  ``<<``. Sentinel bounds ``±2**62`` stand for "unbounded".

* concrete **switch planes** — masks built from ``ROW``/``COL``/constants
  (the paper's ``ROW == d`` style predicates) are evaluated *concretely*
  on a sample grid, so the bus-race detector can count the exact writer
  set per ring. Anything data-dependent degrades to an interval and the
  plane becomes statically "unknown" — conservatively silent, deferred to
  the dynamic ``check_bus_conflicts`` machine mode.

:func:`ring_driver_counts` is the single place the writer-set geometry
lives: for a bus transaction along ``direction`` the rings are the grid
lines *parallel to the data movement* (columns for NORTH/SOUTH, rows for
EAST/WEST), so the per-ring Open count is ``plane.sum(axis=direction.axis)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ppa.directions import Direction

__all__ = [
    "UNBOUNDED",
    "Interval",
    "PVal",
    "SVal",
    "ring_driver_counts",
    "classify_plane",
]

#: magnitude standing in for "unbounded" — far above any 62-bit word.
UNBOUNDED = 1 << 62


def _clamp(v: int) -> int:
    return max(-UNBOUNDED, min(UNBOUNDED, v))


@dataclass(frozen=True)
class Interval:
    """Inclusive integer range with word-semantics arithmetic."""

    lo: int
    hi: int

    # -- constructors ------------------------------------------------------

    @staticmethod
    def const(v: int) -> "Interval":
        v = int(v)
        return Interval(_clamp(v), _clamp(v))

    @staticmethod
    def of(lo: int, hi: int) -> "Interval":
        return Interval(_clamp(int(lo)), _clamp(int(hi)))

    @staticmethod
    def top() -> "Interval":
        return Interval(-UNBOUNDED, UNBOUNDED)

    @staticmethod
    def word(maxint: int) -> "Interval":
        """Any well-formed machine word: ``[0, MAXINT]``."""
        return Interval(0, int(maxint))

    @staticmethod
    def boolean() -> "Interval":
        return Interval(0, 1)

    # -- queries -----------------------------------------------------------

    @property
    def is_const(self) -> bool:
        return self.lo == self.hi

    def fits_word(self, maxint: int) -> bool:
        return self.lo >= 0 and self.hi <= maxint

    def surely_overflows(self, maxint: int) -> bool:
        """Every value in the range is outside ``[0, MAXINT]``."""
        return self.hi < 0 or self.lo > maxint

    def may_overflow(self, maxint: int) -> bool:
        return not self.fits_word(maxint)

    # -- lattice -----------------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    # -- plain (controller) arithmetic -------------------------------------

    def add(self, o: "Interval") -> "Interval":
        return Interval.of(self.lo + o.lo, self.hi + o.hi)

    def sub(self, o: "Interval") -> "Interval":
        return Interval.of(self.lo - o.hi, self.hi - o.lo)

    def neg(self) -> "Interval":
        return Interval.of(-self.hi, -self.lo)

    def mul(self, o: "Interval") -> "Interval":
        corners = [
            self.lo * o.lo, self.lo * o.hi, self.hi * o.lo, self.hi * o.hi,
        ]
        return Interval.of(min(corners), max(corners))

    # -- word (parallel) arithmetic ----------------------------------------

    def sat_add(self, o: "Interval", maxint: int) -> "Interval":
        """Saturating word add: ``min(a + b, MAXINT)`` — never overflows,
        by the machine definition (MAXINT is the absorbing infinity)."""
        return Interval.of(
            min(self.lo + o.lo, maxint), min(self.hi + o.hi, maxint)
        )

    def sub_clamp(self, o: "Interval") -> "Interval":
        """Word subtraction clamping at 0."""
        return Interval.of(max(self.lo - o.hi, 0), max(self.hi - o.lo, 0))

    def mul_sat(self, o: "Interval", maxint: int) -> "Interval":
        raw = self.mul(o)
        return Interval.of(min(raw.lo, maxint), min(raw.hi, maxint))

    def shl_raw(self, o: "Interval") -> "Interval":
        """Pre-mask ``<<`` result (used to decide truncation); shift
        amounts are clamped into ``[0, 64]`` to keep the math finite."""
        slo = max(0, min(64, o.lo))
        shi = max(0, min(64, o.hi))
        corners = [
            self.lo << slo, self.lo << shi, self.hi << slo, self.hi << shi,
        ]
        return Interval.of(min(corners), max(corners))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_const:
            return str(self.lo)
        lo = "-inf" if self.lo <= -UNBOUNDED else str(self.lo)
        hi = "+inf" if self.hi >= UNBOUNDED else str(self.hi)
        return f"[{lo}, {hi}]"


class SVal:
    """Abstract scalar (controller) value.

    ``value`` holds the concrete Python value when statically known (int,
    bool or :class:`Direction`); otherwise ``None`` with ``ivl`` bounding
    the numeric range.
    """

    __slots__ = ("value", "ivl")

    def __init__(self, value=None, ivl: Interval | None = None):
        self.value = value
        if value is not None and not isinstance(value, Direction):
            ivl = Interval.const(int(value))
        self.ivl = ivl if ivl is not None else Interval.top()

    @property
    def known(self) -> bool:
        return self.value is not None

    @staticmethod
    def unknown(ivl: Interval | None = None) -> "SVal":
        return SVal(None, ivl)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SVal({self.value if self.known else self.ivl})"


class PVal:
    """Abstract parallel value: an optional concrete plane + a range.

    ``plane`` is a full concrete grid (int64 or bool) when every PE's
    value is statically known — the case for ``ROW``/``COL``/constant
    derived masks; ``None`` otherwise. ``ivl`` always bounds the per-PE
    values. ``base`` tracks the int/logical distinction for bus-width
    purposes.
    """

    __slots__ = ("plane", "ivl", "base")

    def __init__(
        self,
        plane: np.ndarray | None,
        ivl: Interval,
        base: str = "int",
    ):
        self.plane = plane
        self.ivl = ivl
        self.base = base

    # -- constructors ------------------------------------------------------

    @staticmethod
    def from_plane(arr: np.ndarray, base: str | None = None) -> "PVal":
        arr = np.asarray(arr)
        if base is None:
            base = "logical" if arr.dtype == np.bool_ else "int"
        if arr.size:
            ivl = Interval.of(int(arr.min()), int(arr.max()))
        else:  # pragma: no cover - degenerate grid
            ivl = Interval.const(0)
        return PVal(arr, ivl, base)

    @staticmethod
    def splat(value: int, shape: tuple[int, int], base: str = "int") -> "PVal":
        dtype = bool if base == "logical" else np.int64
        return PVal.from_plane(np.full(shape, value, dtype=dtype), base)

    @staticmethod
    def unknown_int(maxint: int) -> "PVal":
        return PVal(None, Interval.word(maxint), "int")

    @staticmethod
    def unknown_bool() -> "PVal":
        return PVal(None, Interval.boolean(), "logical")

    @staticmethod
    def unknown(ivl: Interval, base: str = "int") -> "PVal":
        return PVal(None, ivl, base)

    # -- queries -----------------------------------------------------------

    @property
    def known(self) -> bool:
        return self.plane is not None

    def as_bool_plane(self) -> np.ndarray | None:
        if self.plane is None:
            return None
        return self.plane.astype(bool)

    def join(self, other: "PVal") -> "PVal":
        base = self.base if self.base == other.base else "int"
        if (
            self.plane is not None
            and other.plane is not None
            and self.plane.dtype == other.plane.dtype
            and np.array_equal(self.plane, other.plane)
        ):
            return PVal(self.plane, self.ivl.join(other.ivl), base)
        return PVal(None, self.ivl.join(other.ivl), base)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "known" if self.known else "unknown"
        return f"PVal({kind} {self.base} {self.ivl})"


def ring_driver_counts(plane: np.ndarray, direction: Direction) -> np.ndarray:
    """Open-driver count per ring for a transaction along *direction*.

    Rings are columns for NORTH/SOUTH (data moves along axis 0) and rows
    for EAST/WEST; the returned vector is indexed by ring id (column index
    resp. row index).
    """
    return np.asarray(plane, dtype=bool).sum(axis=direction.axis)


def classify_plane(
    plane: np.ndarray, direction: Direction
) -> tuple[np.ndarray, np.ndarray, int]:
    """Return ``(undriven_rings, multi_driver_rings, ring_len)``.

    ``multi_driver_rings`` excludes fully-Open rings — with every switch
    Open each PE heads its own single-member cluster, the identity
    configuration, which cannot race.
    """
    counts = ring_driver_counts(plane, direction)
    ring_len = np.asarray(plane).shape[direction.axis]
    undriven = np.flatnonzero(counts == 0)
    multi = np.flatnonzero((counts >= 2) & (counts < ring_len))
    return undriven, multi, ring_len
