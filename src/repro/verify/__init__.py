"""Static analysis for PPC programs and assembled ISA streams.

The verifier is the third leg of the reproduction's correctness story,
next to the interpreter/executor (dynamic semantics) and the counter
parity suite (cost semantics). It finds machine-model violations
*before* a program runs:

* :mod:`repro.verify.ppc_checks` — abstract interpretation of the PPC
  AST: bus-race geometry on statically-known switch planes,
  mask-aware use-before-def / dead-write dataflow, and interval-based
  word-width analysis;
* :mod:`repro.verify.isa_checks` — the same discipline over assembled
  instruction streams, with a concrete controller path and per-opcode
  static cost prediction;
* :mod:`repro.verify.cost_audit` — the three-way audit pinning static
  prediction == analytic cost vector == real cycle-engine counters on
  the assembly MCP;
* :mod:`repro.verify.diagnostics` — the structured
  :class:`~repro.verify.diagnostics.Report` all passes share;
* :mod:`repro.verify.host_checks` — the ``host-*`` rules: concurrency
  and resource-safety lint of the *host* code itself (asyncio serving
  tier, fork/shm shard engine), surfaced as ``repro lint --host``;
* :mod:`repro.verify.sanitizer` — the runtime leak sanitizer bridging
  the static ``host-*`` rules to real schedules
  (``REPRO_SANITIZE=1`` / ``PathQueryService(sanitize=True)``).

Entry points: ``compile_ppc(..., verify="error"|"warn"|"off")``, the
``repro lint`` CLI command, and the functions re-exported here. The rule
catalogue lives in docs/static-analysis.md.
"""

from repro.verify.cost_audit import audit_mcp_cost, fit_affine_cost
from repro.verify.diagnostics import Diagnostic, Report, Severity
from repro.verify.host_checks import (
    HOST_RULES,
    analyze_host_file,
    analyze_host_source,
    iter_python_files,
)
from repro.verify.isa_checks import (
    ISARun,
    analyze_isa,
    instruction_cost,
    verify_isa,
)
from repro.verify.ppc_checks import verify_ppc, verify_ppc_source
from repro.verify.sanitizer import (
    HostSanitizer,
    LeakCensus,
    SanitizerViolation,
)

__all__ = [
    "Diagnostic",
    "Report",
    "Severity",
    "ISARun",
    "analyze_isa",
    "instruction_cost",
    "verify_isa",
    "verify_ppc",
    "verify_ppc_source",
    "audit_mcp_cost",
    "fit_affine_cost",
    "HOST_RULES",
    "analyze_host_file",
    "analyze_host_source",
    "iter_python_files",
    "HostSanitizer",
    "LeakCensus",
    "SanitizerViolation",
]
