"""Host-side concurrency & resource-safety lint (the ``host-*`` rules).

PR 5's verifier audits the *simulated* machine (bus races on the PPC
switch planes, ISA cost tables). This module applies the same
discipline — structured :class:`~repro.verify.diagnostics.Report`
findings with stable rule ids, golden-fixture-tested — to the *host*
concurrency surface that grew around it: the asyncio serving tier
(:mod:`repro.serve`), the fork-based shard workers with
``multiprocessing.shared_memory`` (:mod:`repro.engine.shard`), and the
coalescing futures in between. These are exactly the layers where the
chaos harness keeps finding leak/soundness bugs *dynamically*; the
analyzer finds the structural ones statically, and the runtime
sanitizer (:mod:`repro.verify.sanitizer`) checks the censuses the
analyzer cannot decide. The bridge property test pins the contract:
statically-clean modules never trip the sanitizer.

The pass is whole-file AST analysis (no imports are executed), module
by module, with three pieces of context per module:

* an **import table** resolving local names to canonical dotted paths
  (``np.random.default_rng`` == ``numpy.random.default_rng``);
* an **async-context map**: statements inside ``async def`` bodies,
  *including nested synchronous helpers* (they almost always run
  inline on the event loop) but excluding anything dispatched through
  ``run_in_executor``/``functools.partial`` (those run on threads);
* a **worker call tree** rooted at ``multiprocessing`` ``Process``
  targets, for the fork-safety rule.

Rule catalogue (docs/static-analysis.md has one trip/no-trip example
per rule):

====================================  ======================================
rule                                  finding
====================================  ======================================
``host-unawaited-coroutine``          coroutine call used as a bare
                                      statement — it never runs
``host-orphan-task``                  ``create_task``/``ensure_future``
                                      result discarded: exceptions are
                                      unobservable, cancellation impossible
``host-blocking-sleep``               ``time.sleep`` inside ``async def``
``host-blocking-io``                  synchronous file/socket/subprocess
                                      I/O (or a blocking ``shutdown``/
                                      ``result`` wait) inside ``async def``
``host-blocking-compute``             a known-heavy solver/oracle kernel
                                      called directly on the event loop
``host-shm-create-leak``              ``SharedMemory(create=True)`` with no
                                      ``close``/``unlink`` on every path
``host-shm-attach-leak``              shm attach not closed on every path
                                      (incl. the partial-failure leak of
                                      attaching inside a comprehension)
``host-slot-leak``                    ``await x.acquire()`` without a
                                      ``finally`` that can release under
                                      cancellation
``host-fork-global``                  worker-side mutation of a module
                                      global the parent reads — invisible
                                      after ``fork``
``host-unseeded-random``              ``random``/``np.random`` drawn from
                                      process-global or unseeded state
                                      (breaks replayable runs)
====================================  ======================================

Suppressions are inline and must be justified:
``# host-ok[rule-id]: reason`` on the flagged line drops that finding;
an empty reason is itself reported (``host-suppression-unjustified``).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.verify.diagnostics import Report, Severity

__all__ = [
    "HOST_RULES",
    "analyze_host_source",
    "analyze_host_file",
    "iter_python_files",
]

HOST_RULES: dict[str, str] = {
    "host-parse-error": "file does not parse as Python",
    "host-unawaited-coroutine": "coroutine call is never awaited",
    "host-orphan-task": "spawned task is discarded (exceptions unobserved)",
    "host-blocking-sleep": "time.sleep blocks the event loop",
    "host-blocking-io": "synchronous I/O blocks the event loop",
    "host-blocking-compute": "heavy kernel runs on the event loop",
    "host-shm-create-leak": "shared memory created without guaranteed "
                            "close/unlink",
    "host-shm-attach-leak": "shared memory attached without guaranteed "
                            "close",
    "host-slot-leak": "acquire without a cancellation-safe release",
    "host-fork-global": "worker-side mutation of a parent-read module "
                        "global",
    "host-unseeded-random": "unseeded / process-global RNG draw",
    "host-suppression-unjustified": "host-ok suppression carries no "
                                    "justification",
}

#: canonical dotted call paths that block the loop outright.
_BLOCKING_SLEEP = {"time.sleep"}

#: canonical dotted call paths (or exact builtins) doing synchronous I/O.
_BLOCKING_IO_CALLS = {
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "os.system", "os.popen", "os.wait", "os.waitpid",
    "socket.create_connection",
    "urllib.request.urlopen",
    "requests.get", "requests.post", "requests.request",
}

#: method names (any receiver) that are synchronous file I/O.
_BLOCKING_IO_METHODS = {"read_text", "write_text", "read_bytes",
                        "write_bytes"}

#: known-heavy repro kernels: each is a full engine sweep or an O(n^2+)
#: oracle pass — on the serving tier these belong in a compute thread
#: (``run_in_executor``), never inline on the event loop.
_HEAVY_KERNELS = {
    "minimum_cost_path", "batched_minimum_cost_path",
    "all_pairs_minimum_cost", "sharded_all_pairs", "run_batched_suite",
    "bellman_reference", "verify_mcp", "verify_apsp",
    "delta_stepping_all_pairs", "audit_mcp_cost",
}

#: awaitable-factory names whose *result* must not be discarded.
_TASK_SPAWNERS = {"create_task", "ensure_future"}

#: canonical asyncio coroutine functions (for the unawaited rule).
_ASYNCIO_COROUTINES = {
    "asyncio.sleep", "asyncio.gather", "asyncio.wait",
    "asyncio.wait_for", "asyncio.shield", "asyncio.to_thread",
}

#: legacy numpy global-state draws (module-level RNG: order-dependent).
_NUMPY_GLOBAL_DRAWS = {
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "uniform", "normal", "standard_normal",
    "poisson", "exponential", "beta", "binomial",
}

#: stdlib `random` module draws on the process-global Mersenne Twister.
_STDLIB_RANDOM_DRAWS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "uniform", "sample", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "getrandbits", "randbytes",
}

_SUPPRESS_RE = re.compile(
    r"#\s*host-ok(?:\[(?P<rule>[\w*-]+)\])?\s*:?\s*(?P<reason>.*)$"
)


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` source text for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _final_name(func: ast.AST) -> str | None:
    """The last segment of a call target (``self.x.acquire`` -> acquire)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


class _ImportTable:
    """Local name -> canonical dotted path resolution."""

    def __init__(self, tree: ast.Module):
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def canonical(self, node: ast.AST) -> str | None:
        """Canonical dotted path of a call target, through the imports."""
        dotted = _dotted(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        base = self.aliases.get(head)
        if base is None:
            return dotted  # builtins / locals resolve to themselves
        return f"{base}.{rest}" if rest else base


def _enclosing_map(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _func_defs(tree: ast.Module) -> list[ast.AST]:
    return [n for n in ast.walk(tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]


# ---------------------------------------------------------------------------
# The analyzer
# ---------------------------------------------------------------------------


class _HostAnalyzer:
    def __init__(self, tree: ast.Module, source: str, report: Report):
        self.tree = tree
        self.source = source
        self.report = report
        self.imports = _ImportTable(tree)
        self.parents = _enclosing_map(tree)
        #: names of every async def in the module (free or method).
        self.async_names = {
            n.name for n in ast.walk(tree)
            if isinstance(n, ast.AsyncFunctionDef)
        }
        #: module-level assigned names.
        self.module_globals = self._collect_module_globals()
        #: module functions that return a SharedMemory attach (helpers).
        self.attach_helpers: set[str] = set()
        self.attach_helpers = self._collect_attach_helpers()

    # -- context ---------------------------------------------------------

    def _collect_module_globals(self) -> set[str]:
        names: set[str] = set()
        for node in self.tree.body:
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for t in targets:
                if isinstance(t, ast.Name):
                    names.add(t.id)
        return names

    def _collect_attach_helpers(self) -> set[str]:
        helpers: set[str] = set()
        for fn in _func_defs(self.tree):
            for node in ast.walk(fn):
                if (isinstance(node, ast.Return) and node.value is not None
                        and self._shm_call_kind(node.value) == "attach"):
                    helpers.add(fn.name)
        return helpers

    def _function_of(self, node: ast.AST) -> ast.AST | None:
        cur = self.parents.get(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cur
            cur = self.parents.get(cur)
        return None

    def _outermost_function_of(self, node: ast.AST) -> ast.AST | None:
        out = None
        cur: ast.AST | None = node
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out = cur
            cur = self.parents.get(cur)
        return out

    def _in_async_context(self, node: ast.AST) -> bool:
        """Does *node* run on the event loop?

        True inside an ``async def`` body, including nested synchronous
        helpers (they are called inline), False once an enclosing
        ``lambda`` appears (lambdas here are thread dispatch or
        callbacks) and False in plain sync functions.
        """
        cur = self.parents.get(node)
        while cur is not None:
            if isinstance(cur, ast.Lambda):
                return False
            if isinstance(cur, ast.AsyncFunctionDef):
                return True
            cur = self.parents.get(cur)
        return False

    def _statement_of(self, node: ast.AST) -> ast.stmt | None:
        cur: ast.AST | None = node
        while cur is not None and not isinstance(cur, ast.stmt):
            cur = self.parents.get(cur)
        return cur  # type: ignore[return-value]

    def _in_comprehension(self, node: ast.AST) -> bool:
        cur = self.parents.get(node)
        while cur is not None and not isinstance(cur, ast.stmt):
            if isinstance(cur, (ast.ListComp, ast.SetComp, ast.DictComp,
                                ast.GeneratorExp)):
                return True
            cur = self.parents.get(cur)
        return False

    def _add(self, rule: str, message: str, node: ast.AST,
             severity: Severity = Severity.ERROR) -> None:
        fn = self._function_of(node)
        self.report.add(
            rule, severity, message,
            line=getattr(node, "lineno", 0),
            function=getattr(fn, "name", None),
        )

    # -- shm classification ---------------------------------------------

    def _shm_call_kind(self, node: ast.AST) -> str | None:
        """``"create"`` / ``"attach"`` / ``None`` for a call node."""
        if not isinstance(node, ast.Call):
            return None
        name = _final_name(node.func)
        if name == "SharedMemory":
            for kw in node.keywords:
                if kw.arg == "create" and isinstance(kw.value, ast.Constant)\
                        and kw.value.value is True:
                    return "create"
            return "attach"
        if name in self.attach_helpers:
            return "attach"
        return None

    # -- rule passes -----------------------------------------------------

    def run(self) -> None:
        self._check_calls()
        self._check_shm()
        self._check_slots()
        self._check_fork_globals()

    # coroutines, tasks, blocking calls, RNG — one walk over every call
    def _check_calls(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = self.imports.canonical(node.func)
            final = _final_name(node.func)
            stmt = self._statement_of(node)
            bare = (isinstance(stmt, ast.Expr) and stmt.value is node)
            in_async = self._in_async_context(node)

            # host-unawaited-coroutine ------------------------------------
            # Name-based matching is deliberately conservative about
            # attribute calls: only `self.<async def>()` counts, so a
            # `writer.close()` does not collide with an `async def close`
            # elsewhere in the module.
            if isinstance(node.func, ast.Attribute):
                recv = node.func.value
                local_coro = (isinstance(recv, ast.Name)
                              and recv.id in ("self", "cls")
                              and final in self.async_names)
            else:
                local_coro = final in self.async_names
            is_coro = (canonical in _ASYNCIO_COROUTINES
                       or (local_coro and final not in _TASK_SPAWNERS))
            if bare and is_coro:
                self._add(
                    "host-unawaited-coroutine",
                    f"coroutine call {final!r} is used as a bare "
                    "statement: it is never scheduled (await it, or wrap "
                    "it in create_task)",
                    node,
                )

            # host-orphan-task --------------------------------------------
            if bare and final in _TASK_SPAWNERS:
                self._add(
                    "host-orphan-task",
                    f"{final}(...) result is discarded: the task cannot "
                    "be cancelled or awaited and its exception is never "
                    "consumed — keep a reference and consume the outcome",
                    node,
                )

            # blocking calls on the event loop ----------------------------
            if in_async:
                if canonical in _BLOCKING_SLEEP:
                    self._add(
                        "host-blocking-sleep",
                        "time.sleep blocks the event loop: use "
                        "await asyncio.sleep(...)",
                        node,
                    )
                elif (canonical in _BLOCKING_IO_CALLS
                      or canonical == "open"
                      or final in _BLOCKING_IO_METHODS
                      or self._blocking_wait(node, final)):
                    self._add(
                        "host-blocking-io",
                        f"synchronous call {final!r} blocks the event "
                        "loop: move it to a thread "
                        "(run_in_executor / asyncio.to_thread)",
                        node,
                    )
                elif final in _HEAVY_KERNELS:
                    self._add(
                        "host-blocking-compute",
                        f"heavy kernel {final!r} runs inline on the event "
                        "loop: dispatch it through run_in_executor so the "
                        "loop keeps serving",
                        node,
                    )

            # host-unseeded-random ----------------------------------------
            self._check_rng(node, canonical, final)

    def _blocking_wait(self, node: ast.Call, final: str | None) -> bool:
        """Blocking waits by shape: ``x.shutdown(wait=True)`` and the
        zero-argument ``future.result()``."""
        if final == "shutdown":
            return any(
                kw.arg == "wait" and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            )
        if final == "result" and isinstance(node.func, ast.Attribute):
            return not node.args and not node.keywords
        return False

    def _check_rng(self, node: ast.Call, canonical: str | None,
                   final: str | None) -> None:
        if canonical is None:
            return
        message = None
        if canonical == "numpy.random.default_rng" and not node.args \
                and not node.keywords:
            message = ("default_rng() without a seed: runs are not "
                       "replayable — thread a seed through")
        elif canonical.startswith("numpy.random.") \
                and canonical.rsplit(".", 1)[-1] in _NUMPY_GLOBAL_DRAWS:
            message = (f"legacy global draw {canonical}: order-dependent "
                       "process state — use a seeded "
                       "np.random.default_rng(seed) generator")
        elif canonical.startswith("random.") \
                and canonical.rsplit(".", 1)[-1] in _STDLIB_RANDOM_DRAWS:
            message = (f"{canonical} draws from the process-global "
                       "Mersenne Twister — use a seeded random.Random(seed)"
                       " instance")
        elif canonical == "random.Random" and not node.args \
                and not node.keywords:
            message = ("random.Random() without a seed: runs are not "
                       "replayable — pass an explicit seed")
        if message is not None:
            self._add("host-unseeded-random", message, node)

    # shared-memory create/attach path analysis ---------------------------
    def _check_shm(self) -> None:
        for node in ast.walk(self.tree):
            kind = self._shm_call_kind(node)
            if kind is None:
                continue
            rule = ("host-shm-create-leak" if kind == "create"
                    else "host-shm-attach-leak")
            stmt = self._statement_of(node)
            # `return SharedMemory(...)` transfers ownership to the caller
            if isinstance(stmt, ast.Return):
                continue
            if self._in_comprehension(node):
                self._add(
                    rule,
                    "shared memory opened inside a comprehension: if a "
                    "later element fails, the earlier handles are "
                    "unreachable and leak — open one-by-one into a list "
                    "released in a finally",
                    node,
                )
                continue
            bound = self._binding_of(node, stmt)
            if bound is None:
                self._add(
                    rule,
                    "shared-memory handle is not bound to a name: it can "
                    "never be closed or unlinked",
                    node,
                )
                continue
            if not self._released_in_finally(node, bound):
                verb = ("close+unlink" if kind == "create" else "close")
                self._add(
                    rule,
                    f"no finally releases {bound!r}: an exception between "
                    f"open and {verb} leaks the segment — release it in a "
                    "finally on every path",
                    node,
                )

    def _binding_of(self, call: ast.Call, stmt: ast.stmt | None
                    ) -> str | None:
        """The name (or container) that ends up owning the handle."""
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and stmt.value is call:
            return stmt.targets[0].id
        if isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name) \
                and stmt.value is call:
            return stmt.target.id
        # container.append(SharedMemory(...)) — the container owns it
        parent = self.parents.get(call)
        if isinstance(parent, ast.Call) \
                and isinstance(parent.func, ast.Attribute) \
                and parent.func.attr == "append" \
                and isinstance(parent.func.value, ast.Name):
            return parent.func.value.id
        return None

    def _released_in_finally(self, node: ast.AST, bound: str) -> bool:
        """Is *bound* (or a container it is appended into) referenced in
        any ``finally`` of the outermost enclosing function?

        The check is whole-function: the repo's idiom allocates in a
        nested helper, appends to a shared list, and releases the list
        in the outer function's ``finally`` — nesting must not hide the
        protection, and a conditional release inside the ``finally``
        still counts (the runtime sanitizer owns the dynamic side).
        """
        outer = self._outermost_function_of(node)
        scope: ast.AST = outer if outer is not None else self.tree
        # containers the bound name is appended into within the scope
        owners = {bound}
        for n in ast.walk(scope):
            if (isinstance(n, ast.Call)
                    and isinstance(n.func, ast.Attribute)
                    and n.func.attr in ("append", "add", "extend")
                    and isinstance(n.func.value, ast.Name)):
                for arg in n.args:
                    if isinstance(arg, ast.Name) and arg.id in owners:
                        owners.add(n.func.value.id)
        for n in ast.walk(scope):
            if isinstance(n, ast.Try) and n.finalbody:
                for stmt in n.finalbody:
                    for sub in ast.walk(stmt):
                        if isinstance(sub, ast.Name) and sub.id in owners:
                            return True
        return False

    # acquire / release discipline ---------------------------------------
    def _check_slots(self) -> None:
        for fn in _func_defs(self.tree):
            tries = [n for n in ast.walk(fn)
                     if isinstance(n, ast.Try) and n.finalbody]
            for node in ast.walk(fn):
                if not isinstance(node, ast.Await):
                    continue
                acquire = self._acquire_call(node.value)
                if acquire is None:
                    continue
                receiver = _dotted(acquire.func.value)  # type: ignore[union-attr]
                if receiver is None:
                    continue
                if not self._release_protected(node, receiver, tries):
                    self._add(
                        "host-slot-leak",
                        f"await {receiver}.acquire() has no finally "
                        f"calling {receiver}.release(): a cancellation "
                        "or exception after admission leaks the slot "
                        "forever — protect it with try/finally (or "
                        "async with)",
                        node,
                    )

    def _acquire_call(self, expr: ast.AST) -> ast.Call | None:
        """The ``<recv>.acquire(...)`` call inside an awaited expression
        (directly, or wrapped in ``wait_for``/``shield``)."""
        for n in ast.walk(expr):
            if isinstance(n, ast.Call) \
                    and isinstance(n.func, ast.Attribute) \
                    and n.func.attr == "acquire":
                return n
        return None

    def _release_protected(self, node: ast.Await, receiver: str,
                           tries: list[ast.Try]) -> bool:
        line = node.lineno
        want = f"{receiver}.release"
        for t in tries:
            encloses = t.lineno <= line <= (t.end_lineno or t.lineno)
            follows = t.lineno > line
            if not (encloses or follows):
                continue
            for stmt in t.finalbody:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Call) \
                            and _dotted(sub.func) == want:
                        return True
        return False

    # fork-safety of module globals ---------------------------------------
    def _check_fork_globals(self) -> None:
        roots = self._worker_targets()
        if not roots:
            return
        by_name: dict[str, ast.AST] = {
            fn.name: fn for fn in _func_defs(self.tree)
        }
        worker_tree = self._reachable(roots, by_name)
        if not worker_tree:
            return
        outside = [fn for name, fn in by_name.items()
                   if name not in worker_tree]
        for name in worker_tree:
            fn = by_name.get(name)
            if fn is None:
                continue
            for gname, node in self._global_mutations(fn):
                if self._read_outside(gname, outside):
                    self._add(
                        "host-fork-global",
                        f"worker-side mutation of module global {gname!r}"
                        ": after fork the write lands in the child's copy"
                        " and the parent (which reads it) never sees it —"
                        " return the value through the result channel "
                        "instead",
                        node,
                    )

    def _worker_targets(self) -> set[str]:
        roots: set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call) \
                    and _final_name(node.func) == "Process":
                for kw in node.keywords:
                    if kw.arg == "target" \
                            and isinstance(kw.value, ast.Name):
                        roots.add(kw.value.id)
        return roots

    def _reachable(self, roots: set[str], by_name: dict[str, ast.AST]
                   ) -> set[str]:
        seen: set[str] = set()
        frontier = [r for r in roots if r in by_name]
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            fn = by_name[name]
            for node in ast.walk(fn):
                if isinstance(node, ast.Call):
                    callee = _final_name(node.func)
                    if callee in by_name and callee not in seen:
                        frontier.append(callee)
        return seen

    _MUTATORS = {"update", "clear", "append", "extend", "add", "pop",
                 "remove", "insert", "setdefault", "popitem", "discard"}

    def _global_mutations(self, fn: ast.AST):
        declared_global: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in self._MUTATORS \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id in self.module_globals:
                yield node.func.value.id, node
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for t in targets:
                    if isinstance(t, ast.Subscript) \
                            and isinstance(t.value, ast.Name) \
                            and t.value.id in self.module_globals:
                        yield t.value.id, node
                    elif isinstance(t, ast.Name) \
                            and t.id in declared_global \
                            and t.id in self.module_globals:
                        yield t.id, node

    def _read_outside(self, gname: str, outside: list[ast.AST]) -> bool:
        for fn in outside:
            for node in ast.walk(fn):
                if isinstance(node, ast.Name) and node.id == gname \
                        and isinstance(node.ctx, ast.Load):
                    return True
        return False


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


def _suppressions(source: str) -> dict[int, tuple[str, str]]:
    """line -> (rule-or-*, justification) for ``# host-ok[...]`` comments."""
    out: dict[int, tuple[str, str]] = {}
    for i, text in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(text)
        if m:
            out[i] = (m.group("rule") or "*", m.group("reason").strip())
    return out


def _apply_suppressions(report: Report, source: str) -> Report:
    table = _suppressions(source)
    if not table:
        return report
    kept = Report(source=report.source)
    used: set[int] = set()
    for d in report.diagnostics:
        entry = table.get(d.line)
        if entry is not None and entry[0] in ("*", d.rule):
            used.add(d.line)
            continue
        kept.add(d.rule, d.severity, d.message, line=d.line, pc=d.pc,
                 function=d.function)
    for line in sorted(used):
        if not table[line][1]:
            kept.add(
                "host-suppression-unjustified", Severity.WARNING,
                "host-ok suppression without a justification — say why "
                "the finding is safe here",
                line=line,
            )
    return kept


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def analyze_host_source(source: str, *, source_name: str = "<string>"
                        ) -> Report:
    """Run every ``host-*`` rule over one Python source text."""
    report = Report(source=source_name)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        report.add(
            "host-parse-error", Severity.ERROR,
            f"does not parse: {exc.msg}", line=exc.lineno or 0,
        )
        return report
    _HostAnalyzer(tree, source, report).run()
    return _apply_suppressions(report, source)


def analyze_host_file(path: "Path | str") -> Report:
    """Lint one ``.py`` file (path becomes the report's source label)."""
    p = Path(path)
    return analyze_host_source(p.read_text(), source_name=str(p))


def iter_python_files(paths) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.update(p.rglob("*.py"))
        else:
            out.add(p)
    return sorted(out)
