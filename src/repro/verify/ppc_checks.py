"""Static analysis of PPC programs by abstract interpretation.

Runs *after* :func:`repro.ppc.lang.analyzer.analyze` (so names resolve and
kinds are consistent) and walks the AST with abstract values
(:class:`~repro.verify.planes.PVal`/:class:`~repro.verify.planes.SVal`)
on a small sample grid. Scalar ``int`` globals — the controller inputs,
like the MCP's destination ``d`` — are sampled over a handful of concrete
values so index predicates (``ROW == d``) stay concrete planes.

Three analysis families (rule identifiers in parentheses; full catalogue
in docs/static-analysis.md):

* **bus races** — for every ``broadcast`` whose switch plane and
  direction are statically known, count the Open drivers per ring:
  a ring with none is undriven (``ppc-bus-undriven``, error), a ring with
  two or more (but not all — the identity configuration) drivers whose
  injected values are not provably equal is a write race
  (``ppc-bus-multi-driver``, error). Data-dependent planes are
  conservatively "unknown": silent here, deferred to the dynamic
  ``PPAMachine(check_bus_conflicts=True)`` detector.

* **mask dataflow** — use-before-def of variables through
  ``where``/``elsewhere`` joins (``ppc-use-before-def``, error; a store
  under mask ``M`` only defines the variable for reads under masks at
  least as strict as ``M``, and matching ``where``/``elsewhere`` arms
  promote to a full definition), straight-line dead writes
  (``ppc-dead-write``, warning) and ``where`` arms that can never
  execute (``ppc-unreachable-elsewhere`` / ``ppc-unreachable-where``,
  warnings — only when the condition is constant on *every* analysis
  context).

* **width/overflow** — intervals are propagated through the machine's
  word semantics. Saturating ``+``/``*`` cannot overflow by definition
  (``MAXINT`` absorbs — the paper's infinity); what *is* flagged is a
  scalar value outside ``[0, MAXINT]`` crossing into the parallel domain
  (``ppc-width-store``, error when guaranteed, warning when possible),
  a parallel ``<<`` that drops high bits (``ppc-width-shift``), and a
  ``bit()`` index outside the word (``ppc-width-bit-index``).

Loops with statically known scalar trip counts (the ``min()`` listing's
``for (j = h - 1; j >= 0; ...)``) are unrolled concretely; data-dependent
loops get two abstract passes after which loop-carried state is widened.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PPCError, PPCSyntaxError, PPCTypeError
from repro.ppa.directions import Direction, opposite
from repro.ppa.segments import broadcast_values, shift_values
from repro.ppc.lang import ast_nodes as ast
from repro.ppc.lang.analyzer import analyze
from repro.ppc.lang.builtins import BUILTINS
from repro.ppc.lang.parser import parse
from repro.verify.diagnostics import Report, Severity
from repro.verify.planes import Interval, PVal, SVal, classify_plane

__all__ = ["verify_ppc", "verify_ppc_source"]

#: concrete-unroll budget per loop before degrading to abstract passes
_UNROLL_CAP = 256
#: inline depth guard
_MAX_INLINE_DEPTH = 16

_DIRECTIONS = {
    "NORTH": Direction.NORTH,
    "EAST": Direction.EAST,
    "SOUTH": Direction.SOUTH,
    "WEST": Direction.WEST,
}


class _ReturnSignal(Exception):
    def __init__(self, value):
        self.value = value


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _Cell:
    """Abstract variable: value + mask-aware definedness + write tracking."""

    __slots__ = ("parallel", "base", "value", "defs", "pending", "is_global")

    def __init__(self, parallel, base, value, *, defined, is_global=False):
        self.parallel = parallel
        self.base = base
        self.value = value
        #: set of chains (frozensets of (node-id, polarity)) under which a
        #: store happened; ``frozenset()`` present means fully defined.
        self.defs: set[frozenset] = {frozenset()} if defined else set()
        #: (line, chain) of the last store not yet observed by a read
        self.pending: tuple[int, frozenset] | None = None
        self.is_global = is_global

    @property
    def defined_everywhere(self) -> bool:
        return frozenset() in self.defs

    def covers(self, chain: frozenset) -> bool:
        """Is the variable defined for a read under *chain*? True when
        some recorded store chain is a subset (i.e. its mask is at least
        as wide as the read context)."""
        return any(s <= chain for s in self.defs)


class _Scope:
    def __init__(self, parent=None):
        self.parent = parent
        self.cells: dict[str, _Cell] = {}

    def lookup(self, name: str) -> _Cell | None:
        scope = self
        while scope is not None:
            if name in scope.cells:
                return scope.cells[name]
            scope = scope.parent
        return None

    def all_cells(self):
        scope = self
        while scope is not None:
            yield from scope.cells.items()
            scope = scope.parent


class _ArmState:
    """Cross-context reachability facts for one ``where`` statement."""

    __slots__ = ("line", "has_else", "always_true", "always_false")

    def __init__(self, line, has_else):
        self.line = line
        self.has_else = has_else
        self.always_true = True
        self.always_false = True


class _AbstractInterpreter:
    def __init__(
        self,
        program: ast.Program,
        report: Report,
        *,
        n: int,
        word_bits: int,
        scalars: dict[str, int],
        arm_states: dict[int, _ArmState],
    ):
        self.program = program
        self.functions = {f.name: f for f in program.functions}
        self.report = report
        self.n = n
        self.h = word_bits
        self.maxint = (1 << word_bits) - 1
        self.shape = (n, n)
        self.arm_states = arm_states
        row = np.repeat(np.arange(n, dtype=np.int64)[:, None], n, axis=1)
        self.constants: dict[str, object] = {
            "NORTH": SVal(Direction.NORTH),
            "EAST": SVal(Direction.EAST),
            "SOUTH": SVal(Direction.SOUTH),
            "WEST": SVal(Direction.WEST),
            "ROW": PVal.from_plane(row, "int"),
            "COL": PVal.from_plane(row.T.copy(), "int"),
            "N": SVal(n),
            "h": SVal(word_bits),
            "MAXINT": SVal(self.maxint),
        }
        self.globals = _Scope()
        for decl in program.globals:
            for d in decl.declarators:
                self.globals.cells[d.name] = self._global_cell(
                    decl, d, scalars
                )
        #: (node, polarity, concrete-mask-or-None) active ``where`` stack
        self.mask_stack: list[tuple[int, str, np.ndarray | None]] = []
        #: widening frames for abstract loops / unknown branches
        self.store_frames: list[dict[int, tuple[_Cell, object, set]]] = []
        self.fn_stack: list[str] = []

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def _global_cell(self, decl, declarator, scalars) -> _Cell:
        base = decl.type.base
        if decl.type.parallel:
            value = (
                PVal.unknown_bool()
                if base == "logical"
                else PVal.unknown_int(self.maxint)
            )
            return _Cell(True, base, value, defined=True, is_global=True)
        if base == "int" and declarator.name in scalars:
            value = SVal(scalars[declarator.name])
        elif base == "logical":
            value = SVal.unknown(Interval.boolean())
        else:
            value = SVal.unknown(Interval.word(self.maxint))
        return _Cell(False, base, value, defined=True, is_global=True)

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------

    def run_entry(self, fn: ast.FunctionDef) -> None:
        scope = _Scope(self.globals)
        for p in fn.params:
            scope.cells[p.name] = self._param_cell(p)
        self.fn_stack.append(fn.name)
        try:
            self._exec(fn.body, scope, fn)
        except _ReturnSignal:
            pass
        finally:
            self.fn_stack.pop()
        self._sweep_scope(scope, fn)

    def _param_cell(self, p: ast.Param) -> _Cell:
        if p.type.parallel:
            value = (
                PVal.unknown_bool()
                if p.type.base == "logical"
                else PVal.unknown_int(self.maxint)
            )
            return _Cell(True, p.type.base, value, defined=True)
        ivl = (
            Interval.boolean()
            if p.type.base == "logical"
            else Interval.word(self.maxint)
        )
        return _Cell(False, p.type.base, SVal.unknown(ivl), defined=True)

    # ------------------------------------------------------------------
    # diagnostics helpers
    # ------------------------------------------------------------------

    @property
    def _fn(self) -> str | None:
        return self.fn_stack[-1] if self.fn_stack else None

    def _error(self, rule, message, line):
        self.report.add(
            rule, Severity.ERROR, message, line=line, function=self._fn
        )

    def _warn(self, rule, message, line):
        self.report.add(
            rule, Severity.WARNING, message, line=line, function=self._fn
        )

    # ------------------------------------------------------------------
    # mask / chain machinery
    # ------------------------------------------------------------------

    def _chain(self) -> frozenset:
        return frozenset((nid, pol) for nid, pol, _ in self.mask_stack)

    def _concrete_mask(self) -> np.ndarray | None:
        """AND of the active masks, or None when any level is unknown.
        Returns None for an empty stack too (callers treat an empty stack
        as the trivial all-True mask)."""
        if not self.mask_stack:
            return None
        acc = None
        for _nid, _pol, mask in self.mask_stack:
            if mask is None:
                return None
            acc = mask if acc is None else (acc & mask)
        return acc

    def _clear_pending(self, scope: _Scope) -> None:
        for _name, cell in scope.all_cells():
            cell.pending = None

    def _sweep_scope(self, scope: _Scope, fn) -> None:
        """End of a lexical scope: locals with unobserved writes are dead."""
        for name, cell in scope.cells.items():
            if cell.is_global or cell.pending is None:
                continue
            line, _chain = cell.pending
            self._warn(
                "ppc-dead-write",
                f"value stored to {name!r} is never read",
                line,
            )
            cell.pending = None

    # -- widening frames ---------------------------------------------------

    def _push_frame(self) -> None:
        self.store_frames.append({})

    def _log_store(self, cell: _Cell) -> None:
        for frame in self.store_frames:
            if id(cell) not in frame:
                frame[id(cell)] = (cell, cell.value, set(cell.defs))

    def _pop_frame_widen(self, *, keep_defs: bool) -> None:
        """Close a widening frame: every cell stored inside gets its value
        joined with (and degraded towards) its pre-frame state, since the
        enclosed region may have run zero or many times."""
        frame = self.store_frames.pop()
        for cell, pre_value, pre_defs in frame.values():
            if cell.parallel:
                pre: PVal = pre_value
                post: PVal = cell.value
                cell.value = pre.join(post)
            else:
                pre_s: SVal = pre_value
                post_s: SVal = cell.value
                if not (
                    pre_s.known
                    and post_s.known
                    and pre_s.value == post_s.value
                ):
                    cell.value = SVal.unknown(pre_s.ivl.join(post_s.ivl))
            if not keep_defs:
                cell.defs = pre_defs
            cell.pending = None

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _exec(self, stmt, scope: _Scope, fn) -> None:
        if isinstance(stmt, ast.Block):
            inner = _Scope(scope)
            for s in stmt.statements:
                self._exec(s, inner, fn)
            self._sweep_scope(inner, fn)
        elif isinstance(stmt, ast.VarDecl):
            self._exec_decl(stmt, scope)
        elif isinstance(stmt, ast.Assign):
            self._exec_assign(stmt, scope)
        elif isinstance(stmt, ast.ExprStatement):
            self._eval(stmt.expr, scope)
        elif isinstance(stmt, ast.Where):
            self._exec_where(stmt, scope, fn)
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt, scope, fn)
        elif isinstance(stmt, (ast.DoWhile, ast.While, ast.For)):
            self._exec_loop(stmt, scope, fn)
        elif isinstance(stmt, ast.Break):
            raise _BreakSignal()
        elif isinstance(stmt, ast.Continue):
            raise _ContinueSignal()
        elif isinstance(stmt, ast.Return):
            value = (
                None if stmt.value is None else self._eval(stmt.value, scope)
            )
            raise _ReturnSignal(value)
        else:  # pragma: no cover - analyzer rejects other nodes
            raise PPCTypeError(f"unknown statement node {stmt!r}")

    def _exec_decl(self, decl: ast.VarDecl, scope: _Scope) -> None:
        for d in decl.declarators:
            explicit = d.init is not None
            init = (
                self._eval(d.init, scope) if explicit else SVal(0)
            )
            if decl.type.parallel:
                value = self._coerce_parallel(
                    init, decl.line, base=decl.type.base,
                    check_width=explicit,
                )
                cell = _Cell(True, decl.type.base, value, defined=explicit)
            else:
                if isinstance(init, PVal):  # pragma: no cover - analyzer
                    init = SVal.unknown(init.ivl)
                cell = _Cell(
                    False, decl.type.base, init, defined=explicit
                )
            scope.cells[d.name] = cell

    def _exec_assign(self, stmt: ast.Assign, scope: _Scope) -> None:
        cell = scope.lookup(stmt.target)
        if cell is None:  # pragma: no cover - analyzer rejects
            return
        value = self._eval(stmt.value, scope)
        if stmt.op != "=":
            current = self._read(cell, stmt.target, stmt.line)
            value = self._binary_values(
                stmt.op[:-1], current, value, stmt.line
            )
        self._store(cell, stmt.target, value, stmt.line)

    def _exec_where(self, stmt: ast.Where, scope: _Scope, fn) -> None:
        cond = self._eval(stmt.condition, scope)
        cond = self._coerce_parallel(
            cond, stmt.line, base="logical", check_width=False
        )
        mask = cond.as_bool_plane()
        state = self.arm_states.get(id(stmt))
        if state is None:
            state = _ArmState(stmt.line, stmt.otherwise is not None)
            self.arm_states[id(stmt)] = state
        if mask is None:
            state.always_true = False
            state.always_false = False
        else:
            if not bool(mask.all()):
                state.always_true = False
            if bool(mask.any()):
                state.always_false = False
        nid = id(stmt)
        self.mask_stack.append((nid, "+", mask))
        try:
            self._exec(stmt.then, _Scope(scope), fn)
        finally:
            self.mask_stack.pop()
        if stmt.otherwise is not None:
            self.mask_stack.append(
                (nid, "-", None if mask is None else ~mask)
            )
            try:
                self._exec(stmt.otherwise, _Scope(scope), fn)
            finally:
                self.mask_stack.pop()
        self._promote_arm_defs(nid, scope)

    def _promote_arm_defs(self, nid: int, scope: _Scope) -> None:
        """A variable stored in both the ``where`` and the matching
        ``elsewhere`` arm (under otherwise-identical chains) is defined on
        the union — drop the pair down to the common chain."""
        for _name, cell in scope.all_cells():
            promoted = set()
            for chain in cell.defs:
                if (nid, "+") in chain:
                    twin = (chain - {(nid, "+")}) | {(nid, "-")}
                    if twin in cell.defs:
                        promoted.add(chain - {(nid, "+")})
            if promoted:
                cell.defs |= promoted
                if frozenset() in cell.defs:
                    cell.defs = {frozenset()}

    def _exec_if(self, stmt: ast.If, scope: _Scope, fn) -> None:
        cond = self._eval(stmt.condition, scope)
        if isinstance(cond, SVal) and cond.known:
            if bool(cond.value):
                self._exec(stmt.then, _Scope(scope), fn)
            elif stmt.otherwise is not None:
                self._exec(stmt.otherwise, _Scope(scope), fn)
            return
        # Unknown controller condition: walk both arms, then widen away
        # anything either arm stored.
        self._push_frame()
        try:
            for arm in (stmt.then, stmt.otherwise):
                if arm is None:
                    continue
                self._clear_pending(scope)
                try:
                    self._exec(arm, _Scope(scope), fn)
                except (_BreakSignal, _ContinueSignal):
                    raise
                except _ReturnSignal:
                    pass
        finally:
            self._pop_frame_widen(keep_defs=False)

    # -- loops -------------------------------------------------------------

    def _exec_loop(self, stmt, scope: _Scope, fn) -> None:
        if isinstance(stmt, ast.For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._exec(stmt.init, inner, fn)
            cond_fn = (
                (lambda: SVal(True))
                if stmt.condition is None
                else (lambda: self._eval(stmt.condition, inner))
            )
            step = stmt.step
            body = stmt.body
            pre_test = True
            run_scope = inner
        elif isinstance(stmt, ast.While):
            run_scope = scope
            cond_fn = lambda: self._eval(stmt.condition, scope)  # noqa: E731
            step, body, pre_test = None, stmt.body, True
        else:  # DoWhile
            run_scope = scope
            cond_fn = lambda: self._eval(stmt.condition, scope)  # noqa: E731
            step, body, pre_test = None, stmt.body, False

        def run_body() -> bool:
            """One pass; returns False when the loop broke."""
            self._clear_pending(run_scope)
            try:
                self._exec(body, _Scope(run_scope), fn)
            except _BreakSignal:
                return False
            except _ContinueSignal:
                pass
            if step is not None:
                self._exec(step, run_scope, fn)
            return True

        iters = 0
        while True:
            if pre_test or iters > 0:
                cond = cond_fn()
                if not (isinstance(cond, SVal) and cond.known):
                    break  # data-dependent: go abstract
                if not bool(cond.value):
                    if not pre_test and iters == 0:
                        # do-while with a constant-false condition still
                        # runs once
                        run_body()
                    return
            if iters >= _UNROLL_CAP:
                break
            if not run_body():
                return
            iters += 1

        # Abstract fixpointing: two passes, then widen loop-carried state.
        self._push_frame()
        try:
            for _ in range(2):
                if not run_body():
                    break
                cond_fn()
        finally:
            self._pop_frame_widen(keep_defs=not pre_test and iters == 0)

    # ------------------------------------------------------------------
    # reads / writes
    # ------------------------------------------------------------------

    def _read(self, cell: _Cell, name: str, line: int):
        cell.pending = None
        if not cell.covers(self._chain()):
            if not cell.defs:
                self._error(
                    "ppc-use-before-def",
                    f"{name!r} is read before any assignment (the "
                    "implicit zero initialisation is a simulator "
                    "convenience, not part of the machine model)",
                    line,
                )
            else:
                self._error(
                    "ppc-use-before-def",
                    f"{name!r} may be read where it was never assigned: "
                    "its stores are guarded by 'where' masks that do not "
                    "cover this context",
                    line,
                )
            # report once, then consider it defined to avoid cascades
            cell.defs.add(frozenset())
        return cell.value

    def _store(self, cell: _Cell, name: str, value, line: int) -> None:
        self._log_store(cell)
        chain = self._chain()
        if cell.parallel:
            new = self._coerce_parallel(
                value, line, base=cell.base, check_width=True
            )
            old: PVal = cell.value
            mask = self._concrete_mask()
            if not self.mask_stack:
                cell.value = new
            elif (
                mask is not None
                and old.plane is not None
                and new.plane is not None
                and old.plane.dtype == new.plane.dtype
            ):
                cell.value = PVal.from_plane(
                    np.where(mask, new.plane, old.plane), cell.base
                )
            else:
                joined = new if not cell.defs else old.join(new)
                cell.value = PVal(None, joined.ivl, cell.base)
        else:
            if isinstance(value, PVal):  # pragma: no cover - analyzer
                value = SVal.unknown(value.ivl)
            cell.value = value
            chain = frozenset()  # scalars ignore where masks entirely
        # definedness
        cell.defs.add(chain)
        if frozenset() in cell.defs:
            cell.defs = {frozenset()}
        # straight-line dead-write detection
        if cell.pending is not None:
            old_line, old_chain = cell.pending
            if chain <= old_chain:
                self._warn(
                    "ppc-dead-write",
                    f"store to {name!r} is overwritten before any read",
                    old_line,
                )
        cell.pending = (line, chain)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def _eval(self, expr, scope: _Scope):
        if isinstance(expr, ast.IntLiteral):
            return SVal(expr.value)
        if isinstance(expr, ast.Identifier):
            if expr.name in self.constants:
                return self.constants[expr.name]
            cell = scope.lookup(expr.name)
            if cell is None:  # pragma: no cover - analyzer rejects
                return SVal.unknown()
            return self._read(cell, expr.name, expr.line)
        if isinstance(expr, ast.Unary):
            return self._unary(expr, scope)
        if isinstance(expr, ast.Binary):
            left = self._eval(expr.left, scope)
            # mimic the interpreter's scalar short-circuit
            if (
                expr.op in ("&&", "||")
                and isinstance(left, SVal)
                and left.known
                and not isinstance(left.value, Direction)
            ):
                lb = bool(left.value)
                if expr.op == "&&" and not lb:
                    return SVal(False)
                if expr.op == "||" and lb:
                    return SVal(True)
                right = self._eval(expr.right, scope)
                if isinstance(right, PVal):
                    return self._parallel_logic(expr.op, right, right)
                return right if not right.known else SVal(bool(right.value))
            right = self._eval(expr.right, scope)
            return self._binary_values(expr.op, left, right, expr.line)
        if isinstance(expr, ast.Call):
            return self._call(expr, scope)
        raise PPCTypeError(f"unknown expression node {expr!r}")

    def _unary(self, expr: ast.Unary, scope: _Scope):
        v = self._eval(expr.operand, scope)
        if isinstance(v, PVal):
            if expr.op == "!":
                plane = v.as_bool_plane()
                return PVal.from_plane(~plane, "logical") if plane is not None \
                    else PVal.unknown_bool()
            if expr.op == "~":
                if v.plane is not None and v.plane.dtype != np.bool_:
                    return PVal.from_plane(
                        (~v.plane) & self.maxint, "int"
                    )
                return PVal.unknown(Interval.word(self.maxint), "int")
            if expr.op == "-":
                if v.plane is not None and v.plane.dtype != np.bool_:
                    return PVal.from_plane(-v.plane, "int")
                return PVal.unknown(v.ivl.neg(), "int")
            return PVal.unknown(Interval.top(), "int")
        s: SVal = v
        if expr.op == "!":
            if s.known and not isinstance(s.value, Direction):
                return SVal(not bool(s.value))
            return SVal.unknown(Interval.boolean())
        if expr.op == "~":
            if s.known and not isinstance(s.value, Direction):
                return SVal(~int(s.value) & self.maxint)
            return SVal.unknown(Interval.word(self.maxint))
        if expr.op == "-":
            if s.known and not isinstance(s.value, Direction):
                return SVal(-int(s.value))
            return SVal.unknown(s.ivl.neg())
        return SVal.unknown()

    # -- binary dispatch ---------------------------------------------------

    def _binary_values(self, op, left, right, line):
        if isinstance(left, PVal) or isinstance(right, PVal):
            check = op not in (
                "==", "!=", "<", "<=", ">", ">=", "&&", "||"
            )
            lp = self._coerce_parallel(left, line, check_width=check)
            rp = self._coerce_parallel(right, line, check_width=check)
            return self._parallel_binary(op, lp, rp, line)
        return self._scalar_binary(op, left, right)

    def _parallel_logic(self, op, lp: PVal, rp: PVal) -> PVal:
        lb, rb = lp.as_bool_plane(), rp.as_bool_plane()
        if lb is not None and rb is not None:
            return PVal.from_plane(
                (lb & rb) if op == "&&" else (lb | rb), "logical"
            )
        return PVal.unknown_bool()

    _NP_CMP = {
        "==": np.equal, "!=": np.not_equal, "<": np.less,
        "<=": np.less_equal, ">": np.greater, ">=": np.greater_equal,
    }

    def _parallel_binary(self, op, lp: PVal, rp: PVal, line) -> PVal:
        maxint = self.maxint
        if op in ("&&", "||"):
            return self._parallel_logic(op, lp, rp)
        if op in self._NP_CMP:
            if lp.plane is not None and rp.plane is not None:
                li = lp.plane.astype(np.int64)
                ri = rp.plane.astype(np.int64)
                return PVal.from_plane(self._NP_CMP[op](li, ri), "logical")
            return PVal.unknown_bool()
        lplane = (
            lp.plane.astype(np.int64) if lp.plane is not None else None
        )
        rplane = (
            rp.plane.astype(np.int64) if rp.plane is not None else None
        )
        both = lplane is not None and rplane is not None
        if op == "+":
            if both:
                return PVal.from_plane(
                    np.minimum(lplane + rplane, maxint), "int"
                )
            return PVal.unknown(lp.ivl.sat_add(rp.ivl, maxint), "int")
        if op == "-":
            if both:
                return PVal.from_plane(
                    np.maximum(lplane - rplane, 0), "int"
                )
            return PVal.unknown(lp.ivl.sub_clamp(rp.ivl), "int")
        if op == "*":
            if both:
                return PVal.from_plane(
                    np.minimum(lplane * rplane, maxint), "int"
                )
            return PVal.unknown(lp.ivl.mul_sat(rp.ivl, maxint), "int")
        if op == "<<":
            raw = lp.ivl.shl_raw(rp.ivl)
            if raw.hi > maxint:
                guaranteed = (
                    lp.ivl.lo << max(0, min(64, rp.ivl.lo))
                ) > maxint
                if guaranteed:
                    self._error(
                        "ppc-width-shift",
                        f"'<<' always drops high bits: the result reaches "
                        f"{raw} but the word holds at most "
                        f"{maxint} (h={self.h})",
                        line,
                    )
                else:
                    self._warn(
                        "ppc-width-shift",
                        f"'<<' may drop high bits: the result can reach "
                        f"{raw.hi} but the word holds at most "
                        f"{maxint} (h={self.h})",
                        line,
                    )
            if both and int(rplane.min()) >= 0 and int(rplane.max()) <= 62:
                return PVal.from_plane(
                    (lplane << rplane) & maxint, "int"
                )
            return PVal.unknown(Interval.word(maxint), "int")
        if op == ">>":
            if both and int(rplane.min()) >= 0 and int(rplane.max()) <= 62:
                return PVal.from_plane(lplane >> rplane, "int")
            return PVal.unknown(Interval.of(0, max(lp.ivl.hi, 0)), "int")
        if op in ("&", "|", "^"):
            if both:
                fn = {
                    "&": np.bitwise_and,
                    "|": np.bitwise_or,
                    "^": np.bitwise_xor,
                }[op]
                return PVal.from_plane(fn(lplane, rplane), "int")
            return PVal.unknown(Interval.word(maxint), "int")
        if op in ("/", "%"):
            if both and int(rplane.min()) > 0:
                fn = np.floor_divide if op == "/" else np.mod
                return PVal.from_plane(fn(lplane, rplane), "int")
            return PVal.unknown(Interval.of(0, max(lp.ivl.hi, 0)), "int")
        return PVal.unknown(Interval.top(), "int")

    def _scalar_binary(self, op, left: SVal, right: SVal) -> SVal:
        if isinstance(left.value, Direction) or isinstance(
            right.value, Direction
        ):
            if op in ("==", "!="):
                if left.known and right.known:
                    eq = left.value == right.value
                    return SVal(eq if op == "==" else not eq)
            return SVal.unknown(Interval.boolean())
        if left.known and right.known:
            lv, rv = int(left.value), int(right.value)
            try:
                if op == "+":
                    return SVal(lv + rv)
                if op == "-":
                    return SVal(lv - rv)
                if op == "*":
                    return SVal(lv * rv)
                if op == "/":
                    return SVal(lv // rv)
                if op == "%":
                    return SVal(lv % rv)
                if op == "<<":
                    return SVal(lv << min(rv, 128))
                if op == ">>":
                    return SVal(lv >> min(rv, 128))
                if op == "&":
                    return SVal(lv & rv)
                if op == "|":
                    return SVal(lv | rv)
                if op == "^":
                    return SVal(lv ^ rv)
                if op == "&&":
                    return SVal(bool(lv) and bool(rv))
                if op == "||":
                    return SVal(bool(lv) or bool(rv))
                if op in self._NP_CMP:
                    return SVal(
                        bool(self._NP_CMP[op](np.int64(lv), np.int64(rv)))
                    )
            except (ZeroDivisionError, ValueError):
                return SVal.unknown()
        li, ri = left.ivl, right.ivl
        if op == "+":
            return SVal.unknown(li.add(ri))
        if op == "-":
            return SVal.unknown(li.sub(ri))
        if op == "*":
            return SVal.unknown(li.mul(ri))
        if op in self._NP_CMP or op in ("&&", "||"):
            return SVal.unknown(Interval.boolean())
        return SVal.unknown()

    # -- scalar -> parallel boundary ---------------------------------------

    def _coerce_parallel(
        self, value, line, *, base=None, check_width=True
    ) -> PVal:
        if isinstance(value, PVal):
            if check_width:
                self._check_word(value.ivl, line)
            return value
        s: SVal = value if isinstance(value, SVal) else SVal(value)
        if isinstance(s.value, Direction):  # pragma: no cover - analyzer
            return PVal.unknown(Interval.top(), base or "int")
        if check_width:
            self._check_word(s.ivl, line)
        tgt_base = base or ("logical" if isinstance(s.value, bool) else "int")
        if s.known:
            v = int(s.value)
            if tgt_base == "logical":
                return PVal.splat(bool(v), self.shape, "logical")
            if 0 <= v <= self.maxint:
                return PVal.splat(v, self.shape, "int")
            return PVal.unknown(s.ivl, "int")
        return PVal.unknown(s.ivl, tgt_base)

    def _check_word(self, ivl: Interval, line) -> None:
        if ivl.surely_overflows(self.maxint):
            self._error(
                "ppc-width-store",
                f"value {ivl} can never fit the h={self.h} word "
                f"[0, {self.maxint}]",
                line,
            )
        elif ivl.may_overflow(self.maxint):
            self._warn(
                "ppc-width-store",
                f"value {ivl} may leave the h={self.h} word "
                f"[0, {self.maxint}]",
                line,
            )

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------

    def _call(self, call: ast.Call, scope: _Scope):
        args = [self._eval(a, scope) for a in call.args]
        fn = self.functions.get(call.name)
        if fn is not None:
            return self._inline(fn, args, call.line, scope)
        spec = BUILTINS.get(call.name)
        if spec is None:  # pragma: no cover - analyzer rejects
            return SVal.unknown()
        return self._builtin(call.name, args, call.line)

    def _inline(self, fn: ast.FunctionDef, args, line, caller_scope):
        if (
            len(self.fn_stack) >= _MAX_INLINE_DEPTH
            or fn.name in self.fn_stack
        ):
            if fn.return_type.parallel:
                return PVal.unknown_int(self.maxint)
            return SVal.unknown()
        self._clear_pending(caller_scope)
        scope = _Scope(self.globals)
        for p, a in zip(fn.params, args):
            cell = self._param_cell(p)
            if p.type.parallel:
                cell.value = self._coerce_parallel(
                    a, line, base=p.type.base, check_width=True
                )
            else:
                cell.value = (
                    a if isinstance(a, SVal) else SVal.unknown()
                )
            scope.cells[p.name] = cell
        self.fn_stack.append(fn.name)
        result = None
        try:
            self._exec(fn.body, scope, fn)
        except _ReturnSignal as ret:
            result = ret.value
        finally:
            self.fn_stack.pop()
        self._sweep_scope(scope, fn)
        if fn.return_type.base == "void":
            return SVal(0)
        if fn.return_type.parallel:
            if result is None:
                return PVal.unknown_int(self.maxint)
            return self._coerce_parallel(result, line, check_width=False)
        return result if isinstance(result, SVal) else SVal.unknown()

    # ------------------------------------------------------------------
    # builtins
    # ------------------------------------------------------------------

    def _direction_of(self, v) -> Direction | None:
        if isinstance(v, SVal) and isinstance(v.value, Direction):
            return v.value
        return None

    def _builtin(self, name, args, line):
        if name == "opposite":
            d = self._direction_of(args[0])
            return SVal(opposite(d)) if d is not None else SVal.unknown()
        if name == "any":
            return SVal.unknown(Interval.boolean())
        if name == "bit":
            return self._bi_bit(args, line)
        if name == "shift":
            return self._bi_shift(args, line)
        if name == "broadcast":
            return self._bi_broadcast(args, line)
        if name == "or":
            # Cluster wired-OR: a reduction — multiple drivers per segment
            # are the whole point, so no race check applies.
            return PVal.unknown_bool()
        if name in ("min", "selected_min"):
            src = self._coerce_parallel(args[0], line)
            return PVal.unknown(
                Interval.of(min(src.ivl.lo, 0), src.ivl.hi), "int"
            )
        return SVal.unknown()  # pragma: no cover - table is exhaustive

    def _bi_bit(self, args, line):
        self._coerce_parallel(args[0], line, check_width=False)
        j = args[1]
        if isinstance(j, PVal):  # runtime rejects parallel index
            return PVal.unknown_bool()
        if j.known and not isinstance(j.value, Direction):
            jj = int(j.value)
            if not (0 <= jj < self.h):
                self._error(
                    "ppc-width-bit-index",
                    f"bit index {jj} outside the h={self.h} word "
                    f"[0, {self.h - 1}] (the machine traps here)",
                    line,
                )
        elif not j.known:
            if j.ivl.hi < 0 or j.ivl.lo > self.h - 1:
                self._error(
                    "ppc-width-bit-index",
                    f"bit index {j.ivl} lies entirely outside the "
                    f"h={self.h} word [0, {self.h - 1}]",
                    line,
                )
            elif j.ivl.lo < 0 or j.ivl.hi > self.h - 1:
                self._warn(
                    "ppc-width-bit-index",
                    f"bit index {j.ivl} may leave the h={self.h} word "
                    f"[0, {self.h - 1}]",
                    line,
                )
        return PVal.unknown_bool()

    def _bi_shift(self, args, line):
        src = self._coerce_parallel(args[0], line)
        d = self._direction_of(args[1])
        if src.plane is not None and d is not None:
            return PVal.from_plane(
                shift_values(src.plane, d, torus=True, fill=0), src.base
            )
        return PVal.unknown(
            Interval.of(min(src.ivl.lo, 0), src.ivl.hi), src.base
        )

    def _bi_broadcast(self, args, line):
        src = self._coerce_parallel(args[0], line)
        d = self._direction_of(args[1])
        plane_v = self._coerce_parallel(
            args[2], line, base="logical", check_width=False
        )
        plane = plane_v.as_bool_plane()
        if plane is not None and d is not None:
            self._static_bus_check(src, plane, d, line)
            if src.plane is not None:
                try:
                    out = broadcast_values(
                        src.plane.astype(np.int64), plane, d, strict=False
                    )
                    if src.base == "logical":
                        return PVal.from_plane(out != 0, "logical")
                    return PVal.from_plane(out, "int")
                except Exception:  # degraded topology: stay abstract
                    pass
        return PVal.unknown(
            Interval.of(min(src.ivl.lo, 0), src.ivl.hi), src.base
        )

    def _static_bus_check(
        self, src: PVal, plane: np.ndarray, d: Direction, line
    ) -> None:
        undriven, multi, _ring_len = classify_plane(plane, d)
        axis_name = "column" if d.axis == 0 else "row"
        if undriven.size:
            rings = ", ".join(str(int(r)) for r in undriven[:4])
            more = "..." if undriven.size > 4 else ""
            self._error(
                "ppc-bus-undriven",
                f"broadcast {d} leaves {axis_name}(s) {rings}{more} with "
                "no Open driver: the bus floats and every PE on the ring "
                "reads an undefined value",
                line,
            )
        if multi.size:
            # equal injected values are the wired-OR / min() survivor
            # idiom — provably race-free
            if src.plane is not None:
                canon = (
                    src.plane.T if d.axis == 0 else src.plane
                ).astype(np.int64)
                open_canon = plane.T if d.axis == 0 else plane
                racy = [
                    int(r)
                    for r in multi
                    if len(set(canon[r][open_canon[r]].tolist())) > 1
                ]
            else:
                racy = [int(r) for r in multi]
            if racy:
                rings = ", ".join(str(r) for r in racy[:4])
                more = "..." if len(racy) > 4 else ""
                self._error(
                    "ppc-bus-multi-driver",
                    f"broadcast {d} has multiple Open drivers on "
                    f"{axis_name}(s) {rings}{more} whose values are not "
                    "provably equal: the delivered word depends on switch "
                    "topology (wired-OR reductions use or()/min() instead)",
                    line,
                )


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def _sample_contexts(program: ast.Program, n: int) -> list[dict[str, int]]:
    scalar_ints = [
        d.name
        for decl in program.globals
        if not decl.type.parallel and decl.type.base == "int"
        for d in decl.declarators
    ]
    if not scalar_ints:
        return [{}]
    picks = [0, 2 % n, n - 1]
    contexts = [{name: p for name in scalar_ints} for p in picks]
    contexts.append(
        {name: picks[i % len(picks)] for i, name in enumerate(scalar_ints)}
    )
    seen, out = set(), []
    for ctx in contexts:
        key = tuple(sorted(ctx.items()))
        if key not in seen:
            seen.add(key)
            out.append(ctx)
    return out


def verify_ppc(
    program: ast.Program,
    *,
    n: int = 8,
    word_bits: int = 16,
    source_name: str | None = None,
    report: Report | None = None,
) -> Report:
    """Run all static PPC analyses over *program* (post-``analyze()``).

    Every function is analysed as an entry point with unknown parameters
    and freshly-initialised globals, once per sampled scalar-global
    context. Diagnostics are de-duplicated per (rule, line).
    """
    if report is None:
        report = Report(source=source_name)
    arm_states: dict[int, _ArmState] = {}
    for ctx in _sample_contexts(program, n):
        for fn in program.functions:
            interp = _AbstractInterpreter(
                program,
                report,
                n=n,
                word_bits=word_bits,
                scalars=ctx,
                arm_states=arm_states,
            )
            interp.fn_stack.clear()
            interp.run_entry(fn)
    for state in arm_states.values():
        if state.always_true and state.has_else:
            report.add(
                "ppc-unreachable-elsewhere",
                Severity.WARNING,
                "the 'where' condition is true on every PE in every "
                "analysis context: the 'elsewhere' arm never stores",
                line=state.line,
            )
        elif state.always_false:
            report.add(
                "ppc-unreachable-where",
                Severity.WARNING,
                "the 'where' condition is false on every PE in every "
                "analysis context: the body never stores",
                line=state.line,
            )
    return report


def verify_ppc_source(
    source: str,
    *,
    n: int = 8,
    word_bits: int = 16,
    source_name: str | None = None,
) -> Report:
    """Parse, analyze and verify PPC *source*; front-end failures become
    diagnostics instead of exceptions (for ``repro lint``)."""
    report = Report(source=source_name)
    try:
        program = analyze(parse(source))
    except PPCSyntaxError as exc:
        report.add(
            "ppc-parse", Severity.ERROR, str(exc), line=exc.line or 0
        )
        return report
    except PPCError as exc:
        message = str(exc)
        line = 0
        if message.startswith("line "):
            try:
                line = int(message.split(":", 1)[0].split()[1])
            except (ValueError, IndexError):  # pragma: no cover
                line = 0
        report.add("ppc-type", Severity.ERROR, message, line=line)
        return report
    return verify_ppc(
        program,
        n=n,
        word_bits=word_bits,
        source_name=source_name,
        report=report,
    )
