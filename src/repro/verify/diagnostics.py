"""Structured diagnostics for the PPC/ISA program verifier.

Every analysis pass in :mod:`repro.verify` reports its findings as
:class:`Diagnostic` records collected into a :class:`Report`. A diagnostic
is location-annotated — source ``line`` for PPC programs, instruction
``pc`` (and the assembler-recorded source line) for ISA streams — and
carries a machine-readable ``rule`` identifier so tests can pin exact
findings and the CLI can render either human text or ``--json``.

Severity policy (see docs/static-analysis.md):

``ERROR``
    The program provably (on at least one analysis context) violates the
    machine model — a statically-decided bus race, a read of a variable no
    execution path has defined, a value that cannot fit the ``h``-bit
    word, a cost-audit disagreement. ``repro lint`` exits non-zero;
    ``compile_ppc(..., verify="error")`` raises.

``WARNING``
    Suspicious but not provably wrong — dead writes, unreachable
    ``elsewhere`` arms, *possible* width overflow, reads of registers the
    stream never initialised. Reported, never fatal.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field

__all__ = ["Severity", "Diagnostic", "Report"]


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One verifier finding.

    ``line`` is the 1-based source line (0 when unknown); ``pc`` is the
    instruction index for ISA findings (``None`` for PPC findings).
    ``function`` names the enclosing PPC function when known; ``source``
    names the unit under analysis (file name or bundled-program name).
    """

    rule: str
    severity: Severity
    message: str
    line: int = 0
    pc: int | None = None
    function: str | None = None
    source: str | None = None

    @property
    def location(self) -> str:
        parts = []
        if self.source:
            parts.append(self.source)
        if self.pc is not None:
            parts.append(f"pc={self.pc}")
        if self.line:
            parts.append(f"line {self.line}")
        return ":".join(parts) if parts else "<unknown>"

    def render(self) -> str:
        where = self.location
        scope = f" (in {self.function})" if self.function else ""
        return f"{where}: {self.severity.value}: [{self.rule}] {self.message}{scope}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "line": self.line,
            "pc": self.pc,
            "function": self.function,
            "source": self.source,
        }


@dataclass
class Report:
    """An ordered, de-duplicated collection of diagnostics."""

    source: str | None = None
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(
        self,
        rule: str,
        severity: Severity,
        message: str,
        *,
        line: int = 0,
        pc: int | None = None,
        function: str | None = None,
    ) -> None:
        """Append a diagnostic unless an identical finding (same rule and
        location) was already recorded — abstract interpretation revisits
        loop bodies and analysis contexts, and one finding per site is
        enough."""
        diag = Diagnostic(
            rule=rule,
            severity=severity,
            message=message,
            line=line,
            pc=pc,
            function=function,
            source=self.source,
        )
        key = (diag.rule, diag.line, diag.pc, diag.function)
        if key in self._seen:
            return
        self._seen.add(key)
        self.diagnostics.append(diag)

    def __post_init__(self) -> None:
        self._seen: set[tuple] = {
            (d.rule, d.line, d.pc, d.function) for d in self.diagnostics
        }

    # -- queries -----------------------------------------------------------

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when the report carries no error-severity diagnostic."""
        return not self.errors

    def by_rule(self, rule: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    def extend(self, other: "Report") -> "Report":
        for d in other.diagnostics:
            key = (d.rule, d.line, d.pc, d.function)
            if key not in self._seen:
                self._seen.add(key)
                self.diagnostics.append(d)
        return self

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        name = self.source or "<program>"
        if not self.diagnostics:
            return f"{name}: clean (no diagnostics)"
        lines = [d.render() for d in self.diagnostics]
        lines.append(
            f"{name}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
