"""Static verifier and cost predictor for assembled ISA streams.

The ISA has a clean concrete/abstract split that the analysis exploits:
the *controller* (scalar registers, program counter, scalar branches) is
data-independent except for the ``gor`` condition flag, while the
*datapath* (parallel registers, memory planes) carries the actual graph
data. :class:`_AbstractExecutor` therefore runs the controller
**concretely** — scalar registers hold real integers, scalar branches
take their real direction — and the datapath **abstractly** as
:class:`~repro.verify.planes.PVal` values (a concrete plane when every
PE's word is statically known, an interval otherwise).

The only data-dependent control is ``gor``; each execution consumes its
flag outcomes from an explicit *flag schedule* (missing entries default
to False, i.e. loops exit). Running the same stream under schedules
``[F]``, ``[T,F]``, ``[T,T,F]`` yields one, two and three rounds of a
``gor``-controlled do-while — the basis of the affine cost audit in
:mod:`repro.verify.cost_audit`.

Because the controller path is concrete, the per-``pc`` execution counts
are exact for the given schedule, and the predicted counter totals follow
from the static per-opcode cost table (:func:`instruction_cost`), which
mirrors the charges of :mod:`repro.ppa.executor` +
:class:`~repro.ppa.machine.PPAMachine` primitive by primitive.

Diagnostics (see docs/static-analysis.md for the rule catalogue):

* ``isa-bus-undriven`` / ``isa-bus-multi-driver`` — bus-race geometry on
  ``bcast`` whenever the ``L`` plane is statically known;
* ``isa-uninit-read`` — a register/memory word read on the executed path
  before any instruction wrote it (the executor zero-fills, so this is a
  silent-wrong-answer, not a crash: WARNING);
* ``isa-flag-before-gor`` — a flag branch before any ``gor`` set it;
* ``isa-width-bit-index`` — ``biti``/``bits`` index outside the word
  (the executor raises :class:`~repro.errors.WordWidthError`);
* ``isa-width-imm`` — ``ldi``/``lds`` placing a value outside the
  ``h``-bit word into a parallel register;
* ``isa-width-shift`` — ``shli`` provably truncating on every PE;
* ``isa-div-zero`` — ``div``/``mod`` by a plane statically containing 0;
* ``isa-mask-underflow`` / ``isa-mask-leak`` — unbalanced
  ``pushm``/``popm``;
* ``isa-pc-range`` — execution runs off the end of the stream
  (a missing ``halt``); ``isa-step-budget`` — the analysis step bound
  was hit (suspected divergence under the schedule).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ppa.isa import Instruction, N_PREGS, N_SREGS, Opcode
from repro.ppa.segments import broadcast_values, shift_values
from repro.ppa.topology import PPAConfig
from repro.verify.diagnostics import Report, Severity
from repro.verify.planes import Interval, PVal, classify_plane

__all__ = [
    "COUNTER_FIELDS",
    "ISARun",
    "instruction_cost",
    "analyze_isa",
    "verify_isa",
]

#: counter vocabulary of the static cost model — must match
#: :meth:`repro.ppa.counters.CycleCounters.field_names`.
COUNTER_FIELDS = (
    "instructions",
    "broadcasts",
    "reductions",
    "shifts",
    "alu_ops",
    "global_ors",
    "bus_cycles",
    "bit_cycles",
)

_DEFAULT_MAX_STEPS = 400_000

#: opcodes whose executor realisation is ``count_alu()`` + ``store()``
#: (two SIMD instructions, two ALU charges).
_ALU2 = {
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.MOD,
    Opcode.MIN, Opcode.MAX, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.NOT, Opcode.CMPEQ, Opcode.CMPNE, Opcode.CMPLT, Opcode.CMPLE,
    Opcode.SHLI, Opcode.SHRI, Opcode.BITI, Opcode.BITS,
}

#: opcodes realised as a single masked ``store()``.
_STORE1 = {
    Opcode.LDI, Opcode.LDS, Opcode.MOV, Opcode.ROW, Opcode.COL,
    Opcode.LD, Opcode.ST,
}

#: pure controller opcodes — free in the machine cost model.
_FREE = {
    Opcode.POPM, Opcode.SLDI, Opcode.SMOV, Opcode.SADDI,
    Opcode.JMP, Opcode.JNZ, Opcode.JZ, Opcode.SJGE,
    Opcode.SBLT, Opcode.SBGE, Opcode.SBEQ, Opcode.SBNE, Opcode.HALT,
}


def instruction_cost(op: Opcode, config: PPAConfig) -> dict[str, int]:
    """Machine-counter delta charged by one execution of *op*.

    Mirrors exactly what :func:`repro.ppa.executor.execute` charges
    through the machine primitives: every store is ``count_alu()``
    (one instruction + one ALU op), communication adds the primitive's
    own bus/bit charges. ``c`` is the per-transaction bus cycle count of
    the config's cost model, ``h`` the word width; ``bcast``/``shift``
    move int64 planes (word-width transfers) while ``wor`` moves boolean
    planes (1-bit transfers).
    """
    c = config.bus_transaction_cycles()
    h = config.word_bits
    zero = dict.fromkeys(COUNTER_FIELDS, 0)
    if op in _FREE:
        return zero
    if op in _STORE1 or op is Opcode.PUSHM:
        return {**zero, "instructions": 1, "alu_ops": 1}
    if op in _ALU2:
        return {**zero, "instructions": 2, "alu_ops": 2}
    if op is Opcode.SHIFT:
        return {
            **zero, "instructions": 2, "alu_ops": 1, "shifts": 1,
            "bus_cycles": 1, "bit_cycles": h,
        }
    if op is Opcode.BCAST:
        return {
            **zero, "instructions": 2, "alu_ops": 1, "broadcasts": 1,
            "bus_cycles": c, "bit_cycles": c * h,
        }
    if op is Opcode.WOR:
        return {
            **zero, "instructions": 2, "alu_ops": 1, "reductions": 1,
            "bus_cycles": c, "bit_cycles": c,
        }
    if op is Opcode.GOR:
        return {
            **zero, "instructions": 1, "global_ors": 1,
            "bus_cycles": 2 * c, "bit_cycles": 2 * c,
        }
    raise AssertionError(f"unpriced opcode {op}")  # pragma: no cover


@dataclass
class ISARun:
    """Result of one abstract execution under a flag schedule."""

    report: Report
    pc_counts: np.ndarray  # executions per instruction index
    counters: dict[str, int]  # predicted machine-counter totals
    halted: bool = False
    gors: int = 0  # gor instructions executed (= flags consumed)
    steps: int = 0
    flag_schedule: tuple[bool, ...] = ()

    @property
    def ok(self) -> bool:
        return self.report.ok and self.halted


class _AbstractExecutor:
    """Concrete controller / abstract datapath interpreter."""

    def __init__(
        self,
        program: list[Instruction],
        config: PPAConfig,
        report: Report,
        *,
        inputs: dict[str, object] | None = None,
        flag_schedule: tuple[bool, ...] = (),
        mem_words: int = 8,
        max_steps: int = _DEFAULT_MAX_STEPS,
    ):
        self.program = program
        self.config = config
        self.report = report
        self.maxint = config.maxint
        self.shape = config.shape
        self.max_steps = max_steps
        self.flag_schedule = list(flag_schedule)

        zero = PVal.splat(0, self.shape)
        self.pregs: list[PVal] = [zero] * N_PREGS
        self.mem: list[PVal] = [zero] * mem_words
        self.sregs = [0] * N_SREGS
        self.preg_written = [False] * N_PREGS
        self.sreg_written = [False] * N_SREGS
        self.mem_written = [False] * mem_words
        self.flag = False
        self.flag_written = False
        self.mask_depth = 0
        self.pc = 0
        self.steps = 0
        self.halted = False
        self.gors = 0
        self.pc_counts = np.zeros(len(program), dtype=np.int64)
        #: one finding per (rule, register) pair is enough
        self._warned: set[tuple[str, str]] = set()
        #: uninitialised names read by the current instruction, combined
        #: into one diagnostic per site (the Report deduplicates on pc)
        self._pending_uninit: list[str] = []

        rows, cols = np.indices(self.shape)
        self.row_plane = PVal.from_plane(rows.astype(np.int64))
        self.col_plane = PVal.from_plane(cols.astype(np.int64))

        for key, value in (inputs or {}).items():
            kind, idx = key[0], int(key[1:])
            if kind == "r":
                self.preg_written[idx] = True
                self.pregs[idx] = self._input_pval(value)
            elif kind == "s":
                self.sreg_written[idx] = True
                self.sregs[idx] = int(value)  # controller inputs: concrete
            elif kind == "m":
                self.mem_written[idx] = True
                self.mem[idx] = self._input_pval(value)
            else:
                raise ValueError(f"unknown input key {key!r}")

    def _input_pval(self, value) -> PVal:
        if value is None:  # externally supplied, statically unknown
            return PVal.unknown_int(self.maxint)
        arr = np.broadcast_to(
            np.asarray(value, dtype=np.int64), self.shape
        ).copy()
        return PVal.from_plane(arr)

    # -- diagnostics -------------------------------------------------------

    def _diag(self, rule: str, sev: Severity, msg: str, instr: Instruction):
        self.report.add(
            rule, sev, msg, line=instr.line, pc=self.pc_of(instr)
        )

    def pc_of(self, instr: Instruction) -> int:
        # self.pc already advanced past the current instruction
        return self.pc - 1

    def _note_uninit(self, name: str) -> None:
        key = ("isa-uninit-read", name)
        if key not in self._warned:
            self._warned.add(key)
            self._pending_uninit.append(name)

    def _flush_uninit(self, instr: Instruction) -> None:
        if not self._pending_uninit:
            return
        names = ", ".join(self._pending_uninit)
        obj = "them" if len(self._pending_uninit) > 1 else "it"
        self._pending_uninit = []
        self._diag(
            "isa-uninit-read", Severity.WARNING,
            f"{names} read before any instruction writes {obj} "
            "(the executor zero-fills state, so this computes on silent "
            "zeroes)", instr,
        )

    def _read_preg(self, idx: int, instr: Instruction) -> PVal:
        if not self.preg_written[idx]:
            self._note_uninit(f"r{idx}")
            self.preg_written[idx] = True  # one finding per register
        return self.pregs[idx]

    def _write_preg(self, idx: int, value: PVal) -> None:
        self.preg_written[idx] = True
        if self.mask_depth and value.plane is not None:
            # a masked store merges with unknown prior contents: keep the
            # bounds, drop the concrete plane unless it matches the old one
            old = self.pregs[idx]
            if old.plane is None or not np.array_equal(old.plane, value.plane):
                value = PVal(
                    None, value.ivl.join(old.ivl), value.base
                )
        elif self.mask_depth:
            value = PVal(
                None, value.ivl.join(self.pregs[idx].ivl), value.base
            )
        self.pregs[idx] = value

    # -- abstract ALU ------------------------------------------------------

    def _binary(self, a: PVal, b: PVal, op: Opcode) -> PVal:
        m = self.maxint
        if a.plane is not None and b.plane is not None:
            x = a.plane.astype(np.int64)
            y = b.plane.astype(np.int64)
            if op is Opcode.ADD:
                return PVal.from_plane(np.minimum(x + y, m))
            if op is Opcode.SUB:
                return PVal.from_plane(np.maximum(x - y, 0))
            if op is Opcode.MUL:
                return PVal.from_plane(np.minimum(x * y, m))
            if op is Opcode.MIN:
                return PVal.from_plane(np.minimum(x, y))
            if op is Opcode.MAX:
                return PVal.from_plane(np.maximum(x, y))
            if op is Opcode.AND:
                return PVal.from_plane(x & y)
            if op is Opcode.OR:
                return PVal.from_plane(x | y)
            if op is Opcode.XOR:
                return PVal.from_plane(x ^ y)
            if op is Opcode.CMPEQ:
                return PVal.from_plane((x == y).astype(np.int64))
            if op is Opcode.CMPNE:
                return PVal.from_plane((x != y).astype(np.int64))
            if op is Opcode.CMPLT:
                return PVal.from_plane((x < y).astype(np.int64))
            if op is Opcode.CMPLE:
                return PVal.from_plane((x <= y).astype(np.int64))
            if op in (Opcode.DIV, Opcode.MOD) and (y != 0).all():
                out = x // y if op is Opcode.DIV else x % y
                return PVal.from_plane(out)
        ai, bi = a.ivl, b.ivl
        if op is Opcode.ADD:
            return PVal.unknown(ai.sat_add(bi, m))
        if op is Opcode.SUB:
            return PVal.unknown(ai.sub_clamp(bi))
        if op is Opcode.MUL:
            return PVal.unknown(ai.mul_sat(bi, m))
        if op is Opcode.MIN:
            return PVal.unknown(
                Interval.of(min(ai.lo, bi.lo), min(ai.hi, bi.hi))
            )
        if op is Opcode.MAX:
            return PVal.unknown(
                Interval.of(max(ai.lo, bi.lo), max(ai.hi, bi.hi))
            )
        if op is Opcode.AND:
            return PVal.unknown(Interval.of(0, max(0, min(ai.hi, bi.hi))))
        if op in (Opcode.OR, Opcode.XOR):
            return PVal.unknown(Interval.of(0, m))
        if op in (Opcode.CMPEQ, Opcode.CMPNE, Opcode.CMPLT, Opcode.CMPLE):
            return PVal.unknown(Interval.boolean())
        if op is Opcode.DIV:
            return PVal.unknown(Interval.of(0, max(0, ai.hi)))
        if op is Opcode.MOD:
            return PVal.unknown(Interval.of(0, max(0, bi.hi - 1)))
        raise AssertionError(op)  # pragma: no cover

    # -- bus geometry ------------------------------------------------------

    def _bus_check(self, src: PVal, L: PVal, direction, instr) -> None:
        plane = L.as_bool_plane()
        if plane is None:
            return  # data-dependent topology: dynamic checker's job
        undriven, multi, _len = classify_plane(plane, direction)
        axis_name = "column" if direction.axis == 0 else "row"
        if undriven.size:
            rings = ", ".join(str(int(r)) for r in undriven[:4])
            more = "..." if undriven.size > 4 else ""
            self._diag(
                "isa-bus-undriven", Severity.ERROR,
                f"bcast {direction} leaves {axis_name}(s) {rings}{more} "
                "with no Open driver: the bus floats and every PE on the "
                "ring reads an undefined value", instr,
            )
        if multi.size:
            if src.plane is not None:
                canon = (
                    src.plane.T if direction.axis == 0 else src.plane
                ).astype(np.int64)
                open_canon = plane.T if direction.axis == 0 else plane
                racy = [
                    int(r) for r in multi
                    if len(set(canon[r][open_canon[r]].tolist())) > 1
                ]
            else:
                racy = [int(r) for r in multi]
            if racy:
                rings = ", ".join(str(r) for r in racy[:4])
                more = "..." if len(racy) > 4 else ""
                self._diag(
                    "isa-bus-multi-driver", Severity.ERROR,
                    f"bcast {direction} has multiple Open drivers on "
                    f"{axis_name}(s) {rings}{more} whose values are not "
                    "provably equal: the delivered word depends on switch "
                    "topology (use wor for wired-OR reductions)", instr,
                )

    # -- main loop ---------------------------------------------------------

    def run(self) -> None:
        program = self.program
        while not self.halted:
            if self.pc < 0 or self.pc >= len(program):
                last = program[-1] if program else None
                self.report.add(
                    "isa-pc-range", Severity.ERROR,
                    f"program counter {self.pc} runs outside the program "
                    "(missing halt on some path?)",
                    line=last.line if last else 0,
                    pc=self.pc,
                )
                return
            if self.steps >= self.max_steps:
                instr = program[self.pc]
                self.report.add(
                    "isa-step-budget", Severity.WARNING,
                    f"analysis stopped after {self.max_steps} steps under "
                    f"flag schedule {tuple(self.flag_schedule)!r} — the "
                    "stream may not terminate",
                    line=instr.line, pc=self.pc,
                )
                return
            instr = program[self.pc]
            self.pc_counts[self.pc] += 1
            self.pc += 1
            self.steps += 1
            alive = self._step(instr)
            self._flush_uninit(instr)
            if not alive:
                return
        # balanced-mask check at halt
        if self.mask_depth:
            last = self.program[self.pc - 1]
            self.report.add(
                "isa-mask-leak", Severity.WARNING,
                f"halt with {self.mask_depth} mask(s) still pushed "
                "(missing popm)", line=last.line, pc=self.pc - 1,
            )

    def _step(self, instr: Instruction) -> bool:
        op = instr.opcode
        a = instr.operands
        m = self.maxint
        S = self.sregs

        if op is Opcode.HALT:
            self.halted = True
        elif op is Opcode.LDI:
            if not (0 <= a[1] <= m):
                self._diag(
                    "isa-width-imm", Severity.WARNING,
                    f"ldi immediate {a[1]} outside the {self.config.word_bits}"
                    f"-bit word [0, {m}]", instr,
                )
            self._write_preg(a[0], PVal.splat(a[1], self.shape))
        elif op is Opcode.LDS:
            v = self._read_sreg(a[1], instr)
            if not (0 <= v <= m):
                self._diag(
                    "isa-width-imm", Severity.WARNING,
                    f"lds moves scalar value {v} outside the "
                    f"{self.config.word_bits}-bit word [0, {m}] into r{a[0]}",
                    instr,
                )
            self._write_preg(a[0], PVal.splat(v, self.shape))
        elif op is Opcode.MOV:
            self._write_preg(a[0], self._read_preg(a[1], instr))
        elif op is Opcode.ROW:
            self._write_preg(a[0], self.row_plane)
        elif op is Opcode.COL:
            self._write_preg(a[0], self.col_plane)
        elif op is Opcode.LD:
            if not self.mem_written[a[1]]:
                self._note_uninit(f"memory word {a[1]}")
                self.mem_written[a[1]] = True
            self._write_preg(a[0], self.mem[a[1]])
        elif op is Opcode.ST:
            value = self._read_preg(a[1], instr)
            self.mem_written[a[0]] = True
            if self.mask_depth:
                old = self.mem[a[0]]
                value = PVal(None, value.ivl.join(old.ivl), value.base)
            self.mem[a[0]] = value
        elif op in _ALU2 and op not in (
            Opcode.NOT, Opcode.SHLI, Opcode.SHRI, Opcode.BITI, Opcode.BITS,
        ):
            ra = self._read_preg(a[1], instr)
            rb = self._read_preg(a[2], instr)
            if op in (Opcode.DIV, Opcode.MOD):
                zero_sure = (
                    rb.plane is not None and bool((rb.plane == 0).any())
                ) or rb.ivl.is_const and rb.ivl.lo == 0
                if zero_sure:
                    self._diag(
                        "isa-div-zero", Severity.ERROR,
                        f"{op.value} divides by r{a[2]}, which is statically "
                        "0 on at least one PE (the executor traps)", instr,
                    )
            self._write_preg(a[0], self._binary(ra, rb, op))
        elif op is Opcode.NOT:
            ra = self._read_preg(a[1], instr)
            if ra.plane is not None:
                self._write_preg(
                    a[0],
                    PVal.from_plane((ra.plane == 0).astype(np.int64)),
                )
            else:
                out = Interval.boolean()
                if ra.ivl.lo > 0:
                    out = Interval.const(0)
                elif ra.ivl.is_const and ra.ivl.lo == 0:
                    out = Interval.const(1)
                self._write_preg(a[0], PVal.unknown(out))
        elif op is Opcode.SHLI:
            ra = self._read_preg(a[1], instr)
            raw = ra.ivl.shl_raw(Interval.const(a[2]))
            if ra.plane is not None:
                shifted = ra.plane.astype(np.int64) << min(a[2], 62)
                if (shifted > m).all() and ra.plane.size:
                    self._diag(
                        "isa-width-shift", Severity.ERROR,
                        f"shli by {a[2]} truncates on every PE: results "
                        f"exceed MAXINT={m} before the word mask", instr,
                    )
                elif (shifted > m).any():
                    self._diag(
                        "isa-width-shift", Severity.WARNING,
                        f"shli by {a[2]} truncates on some PEs "
                        f"(results exceed MAXINT={m} before the word mask)",
                        instr,
                    )
                self._write_preg(a[0], PVal.from_plane(shifted & m))
            else:
                if raw.lo > m:
                    self._diag(
                        "isa-width-shift", Severity.ERROR,
                        f"shli by {a[2]} truncates on every PE: the operand "
                        f"range {ra.ivl} makes every result exceed "
                        f"MAXINT={m}", instr,
                    )
                self._write_preg(a[0], PVal.unknown(Interval.of(0, m)))
        elif op is Opcode.SHRI:
            ra = self._read_preg(a[1], instr)
            if ra.plane is not None:
                self._write_preg(
                    a[0], PVal.from_plane(ra.plane.astype(np.int64) >> a[2])
                )
            else:
                sh = min(max(a[2], 0), 62)
                self._write_preg(
                    a[0],
                    PVal.unknown(
                        Interval.of(max(ra.ivl.lo, 0) >> sh,
                                    max(ra.ivl.hi, 0) >> sh)
                    ),
                )
        elif op in (Opcode.BITI, Opcode.BITS):
            ra = self._read_preg(a[1], instr)
            j = a[2] if op is Opcode.BITI else self._read_sreg(a[2], instr)
            h = self.config.word_bits
            if not (0 <= j < h):
                self._diag(
                    "isa-width-bit-index", Severity.ERROR,
                    f"{op.value} selects bit {j} outside the {h}-bit word "
                    "(the executor raises WordWidthError)", instr,
                )
                self._write_preg(a[0], PVal.unknown(Interval.boolean()))
            elif ra.plane is not None:
                self._write_preg(
                    a[0],
                    PVal.from_plane(
                        ((ra.plane.astype(np.int64) >> j) & 1)
                    ),
                )
            else:
                self._write_preg(a[0], PVal.unknown(Interval.boolean()))
        elif op is Opcode.SHIFT:
            ra = self._read_preg(a[1], instr)
            if ra.plane is not None:
                out = shift_values(
                    ra.plane.astype(np.int64), a[2],
                    torus=self.config.torus, fill=0,
                )
                self._write_preg(a[0], PVal.from_plane(out))
            else:
                lo = ra.ivl.lo if self.config.torus else min(ra.ivl.lo, 0)
                self._write_preg(
                    a[0], PVal.unknown(Interval.of(lo, ra.ivl.hi))
                )
        elif op is Opcode.BCAST:
            src = self._read_preg(a[1], instr)
            L = self._read_preg(a[3], instr)
            self._bus_check(src, L, a[2], instr)
            plane = L.as_bool_plane()
            if src.plane is not None and plane is not None:
                try:
                    out = broadcast_values(
                        src.plane.astype(np.int64), plane, a[2], strict=False
                    )
                    self._write_preg(a[0], PVal.from_plane(out))
                except Exception:
                    self._write_preg(
                        a[0],
                        PVal.unknown(Interval.of(min(src.ivl.lo, 0),
                                                 src.ivl.hi)),
                    )
            else:
                self._write_preg(
                    a[0],
                    PVal.unknown(
                        Interval.of(min(src.ivl.lo, 0), src.ivl.hi)
                    ),
                )
        elif op is Opcode.WOR:
            self._read_preg(a[1], instr)
            self._read_preg(a[3], instr)
            # wired-OR combines every cluster member: multi-driver is the
            # intended semantics, so no race geometry check applies
            self._write_preg(a[0], PVal.unknown(Interval.boolean()))
        elif op is Opcode.PUSHM:
            self._read_preg(a[0], instr)
            self.mask_depth += 1
        elif op is Opcode.POPM:
            if self.mask_depth == 0:
                self._diag(
                    "isa-mask-underflow", Severity.ERROR,
                    "popm with empty mask stack (the executor raises "
                    "MachineError)", instr,
                )
                return False
            self.mask_depth -= 1
        elif op is Opcode.GOR:
            self._read_preg(a[0], instr)
            if self.gors < len(self.flag_schedule):
                self.flag = self.flag_schedule[self.gors]
            else:
                self.flag = False  # schedules exhaust into loop exit
            self.gors += 1
            self.flag_written = True
        elif op is Opcode.SLDI:
            S[a[0]] = a[1]
            self.sreg_written[a[0]] = True
        elif op is Opcode.SMOV:
            S[a[0]] = self._read_sreg(a[1], instr)
            self.sreg_written[a[0]] = True
        elif op is Opcode.SADDI:
            S[a[0]] = self._read_sreg(a[0], instr) + a[1]
            self.sreg_written[a[0]] = True
        elif op is Opcode.JMP:
            self.pc = a[0]
        elif op in (Opcode.JNZ, Opcode.JZ):
            if not self.flag_written:
                key = ("isa-flag-before-gor", op.value)
                if key not in self._warned:
                    self._warned.add(key)
                    self._diag(
                        "isa-flag-before-gor", Severity.WARNING,
                        f"{op.value} tests the condition flag before any "
                        "gor sets it (flag starts False)", instr,
                    )
            taken = self.flag if op is Opcode.JNZ else not self.flag
            if taken:
                self.pc = a[0]
        elif op is Opcode.SJGE:
            if self._read_sreg(a[0], instr) >= 0:
                self.pc = a[1]
        elif op in (Opcode.SBLT, Opcode.SBGE, Opcode.SBEQ, Opcode.SBNE):
            v = self._read_sreg(a[0], instr)
            taken = {
                Opcode.SBLT: v < a[1],
                Opcode.SBGE: v >= a[1],
                Opcode.SBEQ: v == a[1],
                Opcode.SBNE: v != a[1],
            }[op]
            if taken:
                self.pc = a[2]
        else:  # pragma: no cover - signature table is exhaustive
            raise AssertionError(f"unhandled opcode {op}")
        return True

    def _read_sreg(self, idx: int, instr: Instruction) -> int:
        if not self.sreg_written[idx]:
            self._note_uninit(f"s{idx}")
            self.sreg_written[idx] = True
        return self.sregs[idx]


def analyze_isa(
    program: list[Instruction],
    config: PPAConfig,
    *,
    inputs: dict[str, object] | None = None,
    flag_schedule: tuple[bool, ...] = (),
    mem_words: int = 8,
    max_steps: int = _DEFAULT_MAX_STEPS,
    report: Report | None = None,
    source_name: str | None = None,
) -> ISARun:
    """Abstractly execute *program* under one ``gor`` flag schedule.

    Returns the per-``pc`` execution counts, the predicted machine-counter
    totals (static cost table x execution counts), and the diagnostics
    gathered along the concrete controller path.
    """
    rep = report if report is not None else Report(source=source_name)
    # size memory to the stream's furthest ld/st address (compiled PPC
    # programs spill locals well past the executor's 8-word default)
    referenced = [
        instr.operands[1] if instr.opcode is Opcode.LD else instr.operands[0]
        for instr in program
        if instr.opcode in (Opcode.LD, Opcode.ST)
    ]
    if referenced:
        mem_words = max(mem_words, max(referenced) + 1)
    ex = _AbstractExecutor(
        program, config, rep,
        inputs=inputs, flag_schedule=flag_schedule,
        mem_words=mem_words, max_steps=max_steps,
    )
    ex.run()
    counters = dict.fromkeys(COUNTER_FIELDS, 0)
    for pc, count in enumerate(ex.pc_counts):
        if not count:
            continue
        cost = instruction_cost(program[pc].opcode, config)
        for k, v in cost.items():
            if v:
                counters[k] += int(count) * v
    return ISARun(
        report=rep,
        pc_counts=ex.pc_counts,
        counters=counters,
        halted=ex.halted,
        gors=ex.gors,
        steps=ex.steps,
        flag_schedule=tuple(flag_schedule),
    )


def verify_isa(
    program: list[Instruction],
    config: PPAConfig,
    *,
    inputs: dict[str, object] | None = None,
    schedules: list[tuple[bool, ...]] | None = None,
    mem_words: int = 8,
    max_steps: int = _DEFAULT_MAX_STEPS,
    source_name: str | None = None,
    report: Report | None = None,
) -> Report:
    """Verify an assembled stream across several ``gor`` flag schedules.

    The default schedules cover the loop-exit path (``(False,)``) and two
    loop-taken rounds (``(True, True, False)``), which reaches every
    instruction of single-do-while programs like the assembly MCP.
    Diagnostics are deduplicated across schedules by (rule, pc).
    """
    rep = report if report is not None else Report(source=source_name)
    if schedules is None:
        schedules = [(False,), (True, True, False)]
    for schedule in schedules:
        analyze_isa(
            program, config,
            inputs=inputs, flag_schedule=schedule,
            mem_words=mem_words, max_steps=max_steps, report=rep,
        )
    return rep
