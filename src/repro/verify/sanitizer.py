"""Runtime leak sanitizer — the dynamic half of the ``host-*`` rules.

:mod:`repro.verify.host_checks` proves the *structural* discipline
statically: every shm open has a ``finally``, every ``acquire`` can
release under cancellation, no task is spawned fire-and-forget. What it
cannot decide is whether those paths actually run to completion under
real schedules — a worker SIGKILLed mid-shard, an update storm racing a
drain, a cancellation landing between admission and the ``try``. This
module checks exactly that, the way an ASan/TSan run complements a
compiler warning: with the sanitizer armed (``REPRO_SANITIZE=1`` or
``PathQueryService(sanitize=True)``), the serving tier records three
censuses at shutdown and **raises** :class:`SanitizerViolation` if any
is non-empty:

* **pending tasks** — every task created through the instrumented event
  loop that is still pending after ``stop()`` drained connections,
  reapers and the coalescer;
* **open shm** — every ``multiprocessing.shared_memory`` segment the
  shard engine allocated (:func:`note_shm_create`) and never released
  (:func:`note_shm_release`), i.e. what would be left in ``/dev/shm``;
* **held slots** — admission-controller slots still marked in flight,
  plus waiters still queued.

The bridge property test (tests/verify/test_sanitizer_bridge.py) ties
the two halves together in the PR 5 style: modules the static pass
calls clean never trip the sanitizer across the chaos campaign.

The shm hooks are module-level and no-op when the sanitizer is
disarmed, so :mod:`repro.engine.shard` can call them unconditionally
from its single alloc/release path with zero serving-path overhead.
They are thread-safe (shard dispatch runs on executor threads).
"""

from __future__ import annotations

import asyncio
import os
import threading
import weakref
from typing import Any

__all__ = [
    "HostSanitizer",
    "LeakCensus",
    "SanitizerViolation",
    "sanitize_from_env",
    "note_shm_create",
    "note_shm_release",
    "open_shm_census",
]

_ENV_FLAG = "REPRO_SANITIZE"

# -- module-level shm registry (fed by repro.engine.shard) ------------------

_shm_lock = threading.Lock()
#: shm name -> human-readable origin, while the segment is open.
_open_shm: dict[str, str] = {}
#: number of armed sanitizers; the registry only records while > 0 or
#: the environment flag is set, so disarmed runs pay one int compare.
_armed = 0


def sanitize_from_env() -> bool:
    """True when ``REPRO_SANITIZE`` asks for sanitizer mode."""
    return os.environ.get(_ENV_FLAG, "").strip().lower() \
        in ("1", "true", "yes", "on")


def _tracking() -> bool:
    return _armed > 0 or sanitize_from_env()


def note_shm_create(name: str, where: str = "") -> None:
    """Record a shared-memory segment as open (no-op when disarmed)."""
    if not _tracking():
        return
    with _shm_lock:
        _open_shm[name] = where


def note_shm_release(name: str) -> None:
    """Record a shared-memory segment as released."""
    if not _tracking():
        return
    with _shm_lock:
        _open_shm.pop(name, None)


def open_shm_census() -> dict[str, str]:
    """Segments currently recorded open: ``{name: origin}``."""
    with _shm_lock:
        return dict(_open_shm)


class SanitizerViolation(RuntimeError):
    """A shutdown census found leaked tasks, shm segments or slots."""

    def __init__(self, census: "LeakCensus"):
        self.census = census
        super().__init__(census.describe())


class LeakCensus:
    """One shutdown census: what was still alive when it should not be."""

    def __init__(self, *, pending_tasks: list[str],
                 open_shm: dict[str, str], held_slots: int,
                 queued_waiters: int):
        self.pending_tasks = pending_tasks
        self.open_shm = open_shm
        self.held_slots = held_slots
        self.queued_waiters = queued_waiters

    @property
    def clean(self) -> bool:
        return (not self.pending_tasks and not self.open_shm
                and self.held_slots == 0 and self.queued_waiters == 0)

    def describe(self) -> str:
        if self.clean:
            return "sanitizer: clean shutdown"
        parts = []
        if self.pending_tasks:
            parts.append(f"{len(self.pending_tasks)} pending task(s): "
                         + ", ".join(sorted(self.pending_tasks)[:8]))
        if self.open_shm:
            parts.append(f"{len(self.open_shm)} open shm segment(s): "
                         + ", ".join(sorted(self.open_shm)[:8]))
        if self.held_slots:
            parts.append(f"{self.held_slots} admission slot(s) still "
                         "held")
        if self.queued_waiters:
            parts.append(f"{self.queued_waiters} admission waiter(s) "
                         "still queued")
        return "sanitizer: leaked at shutdown — " + "; ".join(parts)

    def to_dict(self) -> dict:
        return {
            "clean": self.clean,
            "pending_tasks": sorted(self.pending_tasks),
            "open_shm": dict(sorted(self.open_shm.items())),
            "held_slots": self.held_slots,
            "queued_waiters": self.queued_waiters,
        }


class HostSanitizer:
    """Event-loop + resource instrumentation for one service lifetime.

    ``arm(loop)`` wraps the loop's task factory so every task created
    afterwards is tracked (weakly — completed tasks cost nothing);
    ``shutdown_census()`` reports what is still alive, and ``disarm()``
    restores the original factory. Arming is idempotent per loop.
    """

    def __init__(self) -> None:
        self._tasks: "weakref.WeakSet[asyncio.Task]" = weakref.WeakSet()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._prev_factory: Any = None
        self._armed = False

    @property
    def armed(self) -> bool:
        return self._armed

    def arm(self, loop: asyncio.AbstractEventLoop) -> None:
        global _armed
        if self._armed and self._loop is loop:
            return
        if self._armed:
            self.disarm()
        self._loop = loop
        self._prev_factory = loop.get_task_factory()
        prev = self._prev_factory

        def factory(lp, coro, **kwargs):
            if prev is not None:
                task = prev(lp, coro, **kwargs)
            else:
                task = asyncio.Task(coro, loop=lp, **kwargs)
            self._tasks.add(task)
            return task

        loop.set_task_factory(factory)
        self._armed = True
        _armed += 1

    def disarm(self) -> None:
        global _armed
        if not self._armed:
            return
        if self._loop is not None and not self._loop.is_closed():
            self._loop.set_task_factory(self._prev_factory)
        self._loop = None
        self._prev_factory = None
        self._armed = False
        _armed -= 1

    # -- censuses --------------------------------------------------------

    def pending_task_census(self) -> list[str]:
        """Names of tracked tasks still pending (excluding the caller)."""
        try:
            me = asyncio.current_task()
        except RuntimeError:  # pragma: no cover - no running loop
            me = None
        return [t.get_name() for t in self._tasks
                if not t.done() and t is not me]

    def shutdown_census(self, *, admission: Any = None) -> LeakCensus:
        """Collect the full census (tasks, shm, slots) at shutdown."""
        held = queued = 0
        if admission is not None:
            held = int(getattr(admission, "inflight", 0))
            queued = int(getattr(admission, "queue_depth", 0))
        return LeakCensus(
            pending_tasks=self.pending_task_census(),
            open_shm=open_shm_census(),
            held_slots=held,
            queued_waiters=queued,
        )

    def check_shutdown(self, *, admission: Any = None) -> LeakCensus:
        """Census + raise :class:`SanitizerViolation` if anything leaked."""
        census = self.shutdown_census(admission=admission)
        if not census.clean:
            raise SanitizerViolation(census)
        return census
