"""Three-way static cost audit of the assembly MCP.

The paper's complexity claims are counter statements — so a verifier for
this repo must be able to *predict* the counters of an instruction
stream without running the datapath, and to prove the prediction against
the live machine. The audit triangulates three independent derivations
of the MCP cost profile:

1. **static** — :func:`repro.verify.isa_checks.analyze_isa` executes the
   stream's controller concretely under the ``gor`` flag schedules
   ``[F]``, ``[T,F]``, ``[T,T,F]`` (one, two and three do-while rounds)
   and prices the per-``pc`` execution counts with the static opcode
   cost table. An affine fit ``C(k) = init + k * iteration`` must hold:
   ``C3 - C2 == C2 - C1`` on every counter, else the stream has a
   data-independent-cost violation and the mismatch is localised to the
   first ``pc`` whose per-round execution-count delta is not constant.

2. **analytic** — :func:`repro.engine.costs.mcp_cost_vector`, the fused
   engine's replayed per-round vector, probed from the *native* Python
   implementation. Native and assembly renditions are counter-identical
   on the communication ledger (the equality the repo's parity tests
   pin), so the audit cross-checks :data:`ANALYTIC_FIELDS` only —
   ``instructions``/``alu_ops`` legitimately differ between renditions
   (the bit-serial asm loops do more local bookkeeping per round).

3. **dynamic** — a real cycle-engine run of
   :func:`repro.core.asm_mcp.minimum_cost_path_asm` on a deterministic
   workload. The static prediction ``init + k * iteration`` (with ``k``
   the run's observed round count) must equal the run's counter delta
   on **all** counters, bit for bit.

Any disagreement is an error-severity ``cost-audit-*`` diagnostic: it
means the static table, the executor's charging, or the analytic probe
drifted apart — exactly the regression class this audit exists to catch.
"""

from __future__ import annotations

import numpy as np

from repro.ppa.isa import Instruction
from repro.ppa.topology import PPAConfig
from repro.verify.diagnostics import Report, Severity
from repro.verify.isa_checks import COUNTER_FIELDS, ISARun, analyze_isa

__all__ = ["ANALYTIC_FIELDS", "fit_affine_cost", "audit_mcp_cost"]

#: counters on which the native and assembly MCP renditions are provably
#: identical (the communication ledger); ``instructions``/``alu_ops``
#: depend on the rendition and are checked against the dynamic run only.
ANALYTIC_FIELDS = (
    "broadcasts",
    "reductions",
    "shifts",
    "global_ors",
    "bus_cycles",
    "bit_cycles",
)

#: flag schedules driving one, two and three do-while rounds.
_SCHEDULES = ((False,), (True, False), (True, True, False))


def fit_affine_cost(
    program: list[Instruction],
    config: PPAConfig,
    *,
    inputs: dict[str, object] | None = None,
    report: Report | None = None,
) -> tuple[dict[str, int], dict[str, int], list[ISARun], Report]:
    """Fit ``cost(k) = init + k * iteration`` to the static prediction.

    Runs the three probe schedules, checks per-round constancy, and
    returns ``(init, iteration, runs, report)``. Non-affine behaviour is
    reported as ``cost-audit-nonaffine`` at the first instruction whose
    per-round execution-count delta is not constant.
    """
    rep = report if report is not None else Report()
    runs = [
        analyze_isa(
            program, config, inputs=inputs, flag_schedule=s, report=rep
        )
        for s in _SCHEDULES
    ]
    c1, c2, c3 = (r.counters for r in runs)
    iteration = {k: c2[k] - c1[k] for k in COUNTER_FIELDS}
    init = {k: c1[k] - iteration[k] for k in COUNTER_FIELDS}

    bad = [k for k in COUNTER_FIELDS if c3[k] - c2[k] != iteration[k]]
    if bad:
        d12 = runs[1].pc_counts - runs[0].pc_counts
        d23 = runs[2].pc_counts - runs[1].pc_counts
        diverging = np.flatnonzero(d12 != d23)
        pc = int(diverging[0]) if diverging.size else 0
        instr = program[pc]
        rep.add(
            "cost-audit-nonaffine",
            Severity.ERROR,
            "per-round cost is not constant on counter(s) "
            f"{', '.join(bad)}: {instr.opcode.value} executes "
            f"{int(d12[pc])} time(s) in round 2 but {int(d23[pc])} in "
            "round 3 — the stream's cost is data- or round-dependent",
            line=instr.line,
            pc=pc,
        )
    return init, iteration, runs, rep


def _audit_workload(config: PPAConfig) -> np.ndarray:
    """Deterministic weight matrix with a multi-round MCP on any grid."""
    n, maxint = config.n, config.maxint
    W = np.full((n, n), maxint, dtype=np.int64)
    np.fill_diagonal(W, 0)
    # a chain i -> i-1 -> ... -> 0 forces ~n productive rounds
    for i in range(1, n):
        W[i, i - 1] = 1 + (i % 3)
    if (3 * n) > maxint:  # tiny words: fall back to the edgeless graph
        W = np.full((n, n), maxint, dtype=np.int64)
        np.fill_diagonal(W, 0)
    return W


def audit_mcp_cost(
    config: PPAConfig,
    *,
    destination: int = 0,
    source_name: str = "asm-mcp",
    run_machine: bool = True,
) -> Report:
    """Three-way cost audit of the bundled assembly MCP for *config*.

    ``run_machine=False`` skips the dynamic leg (static + analytic only),
    for callers that audit many configurations cheaply.
    """
    from repro.core.asm_mcp import mcp_assembly, minimum_cost_path_asm
    from repro.engine.costs import mcp_cost_vector
    from repro.ppa.assembler import assemble
    from repro.ppa.machine import PPAMachine

    report = Report(source=source_name)
    program = assemble(mcp_assembly(config.n, config.word_bits))
    inputs = {"r0": None, "s0": destination}

    init, iteration, runs, _ = fit_affine_cost(
        program, config, inputs=inputs, report=report
    )
    if not all(r.halted for r in runs):
        report.add(
            "cost-audit-aborted",
            Severity.ERROR,
            "static analysis did not reach halt under every probe "
            "schedule; cost prediction is unavailable",
        )
        return report

    # -- leg 2: analytic vector (communication ledger) ----------------------
    vector = mcp_cost_vector(config)
    for k in ANALYTIC_FIELDS:
        if iteration[k] != vector.iteration[k]:
            report.add(
                "cost-audit-analytic",
                Severity.ERROR,
                f"per-iteration {k}: static prediction {iteration[k]} "
                f"!= analytic vector {vector.iteration[k]} "
                "(asm stream and native implementation disagree on the "
                "communication ledger)",
            )
        if init[k] != vector.init[k]:
            report.add(
                "cost-audit-analytic",
                Severity.ERROR,
                f"init-phase {k}: static prediction {init[k]} != "
                f"analytic vector {vector.init[k]}",
            )

    # -- leg 3: real cycle-engine run (all counters) -------------------------
    if run_machine:
        machine = PPAMachine(config)
        result = minimum_cost_path_asm(
            machine, _audit_workload(config), destination
        )
        k_rounds = result.iterations
        predicted = {
            f: init[f] + k_rounds * iteration[f] for f in COUNTER_FIELDS
        }
        actual = {f: result.counters.get(f, 0) for f in COUNTER_FIELDS}
        for f in COUNTER_FIELDS:
            if predicted[f] != actual[f]:
                report.add(
                    "cost-audit-counters",
                    Severity.ERROR,
                    f"counter {f}: static prediction {predicted[f]} != "
                    f"cycle-engine run {actual[f]} "
                    f"({k_rounds} round(s), n={config.n}, "
                    f"h={config.word_bits})",
                )
    return report
