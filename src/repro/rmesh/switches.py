"""RMESH switch configurations: partitions of the four ports.

An RMESH PE may electrically fuse any subset of its ports {N, E, S, W};
a *configuration* is a set partition of the four ports (15 possibilities —
the Bell number B(4)). The PPA's switch-box realises only a handful of
them (straight-through row/column behaviour); the full table is what buys
the RMESH its constant-time tricks.

Configurations are addressed by name (:data:`CONFIGS`) or by integer id
(:func:`partition_of`), and stored per-PE as an id grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

__all__ = ["Config", "CONFIGS", "ALL_PARTITIONS", "partition_of"]

_PORTS = ("N", "E", "S", "W")


def _all_partitions(items: tuple[str, ...]) -> list[tuple[frozenset, ...]]:
    """Every set partition of *items* (canonicalised, deterministic order)."""
    if not items:
        return [()]
    head, rest = items[0], items[1:]
    out = []
    for sub in _all_partitions(rest):
        # head alone
        out.append(tuple(sorted((frozenset({head}), *sub), key=sorted)))
        # head joined to each existing block
        for i in range(len(sub)):
            joined = frozenset(sub[i] | {head})
            blocks = sub[:i] + (joined,) + sub[i + 1:]
            out.append(tuple(sorted(blocks, key=sorted)))
    # dedupe, stable order
    seen = {}
    for p in out:
        seen.setdefault(p, None)
    return list(seen)


ALL_PARTITIONS: list[tuple[frozenset, ...]] = sorted(
    _all_partitions(_PORTS), key=lambda p: (len(p), [sorted(b) for b in p])
)
assert len(ALL_PARTITIONS) == 15


@dataclass(frozen=True)
class Config:
    """One named switch configuration."""

    name: str
    id: int
    blocks: tuple[frozenset, ...]

    def fuses(self, a: str, b: str) -> bool:
        """True if ports *a* and *b* are electrically connected."""
        return any(a in blk and b in blk for blk in self.blocks)


def _find_id(blocks: list[set]) -> int:
    canon = tuple(sorted((frozenset(b) for b in blocks), key=sorted))
    return ALL_PARTITIONS.index(canon)


def _named(name: str, *blocks) -> Config:
    blocks = [set(b) for b in blocks]
    named = {p for b in blocks for p in b}
    blocks.extend({p} for p in _PORTS if p not in named)
    idx = _find_id(blocks)
    return Config(name, idx, ALL_PARTITIONS[idx])


#: The configurations the classic algorithms use, by name.
CONFIGS: dict[str, Config] = {
    cfg.name: cfg
    for cfg in (
        _named("ISOLATE"),                      # {N}{E}{S}{W}
        _named("ROW", "EW"),                    # straight-through row bus
        _named("COL", "NS"),                    # straight-through column bus
        _named("CROSS", "EW", "NS"),            # both, kept separate
        _named("ALL", "NESW"),                  # one four-way bus
        _named("NE", "NE"),
        _named("NW", "NW"),
        _named("SE", "SE"),
        _named("SW", "SW"),
        _named("STAIR_DOWN", "WS", "NE"),       # W->S and N->E: the staircase
        _named("STAIR_UP", "WN", "SE"),         # the opposite diagonal pair
    )
}


def partition_of(config_id: int) -> tuple[frozenset, ...]:
    """The port partition for integer id *config_id* (0..14)."""
    if not (0 <= config_id < len(ALL_PARTITIONS)):
        raise ValueError(
            f"config id must be in [0, {len(ALL_PARTITIONS)}), got {config_id}"
        )
    return ALL_PARTITIONS[config_id]
