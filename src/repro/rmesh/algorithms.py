"""Classic constant-time RMESH algorithms — and their PPA counterparts.

The point of this module is the paper's Section 4 sentence made
quantitative: the row/column-only PPA "is a less powerful model with
respect to the Reconfigurable Mesh". The staircase bit-count below needs
buses that *turn corners* inside a PE — a configuration the PPA switch-box
cannot form — and finishes in **one bus cycle** where the PPA needs a
Θ(n) shift reduction (:func:`ppa_count_ones_row`). Experiment T13 sweeps
the comparison.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.ppa.directions import Direction
from repro.ppa.machine import PPAMachine
from repro.rmesh.machine import Port, RMeshMachine
from repro.rmesh.switches import CONFIGS

__all__ = [
    "count_ones",
    "parity",
    "prefix_or",
    "leftmost_one",
    "global_or_one_step",
    "ppa_count_ones_row",
]


def _check_bits(machine: RMeshMachine, bits, limit: int) -> np.ndarray:
    arr = np.asarray(bits, dtype=bool).ravel()
    if arr.size > limit:
        raise GraphError(
            f"at most {limit} bits fit this {machine.n}x{machine.n} "
            "staircase"
        )
    return arr


def count_ones(machine: RMeshMachine, bits) -> int:
    """Sum of up to ``n - 1`` bits in **one bus cycle** (the staircase).

    Column ``j`` holds bit ``b_j``. A zero column passes the signal
    straight through (``ROW`` config); a one column sends it one row down
    (``STAIR_DOWN``: W fuses to S, N fuses to E). A probe injected at the
    north-west PE's W port therefore exits the east edge on row
    ``sum(bits)`` — the count is *where* the signal lands.
    """
    n = machine.n
    arr = _check_bits(machine, bits, n - 1)
    padded = np.zeros(n, dtype=bool)
    padded[: arr.size] = arr

    ids = np.where(
        padded[None, :], CONFIGS["STAIR_DOWN"].id, CONFIGS["ROW"].id
    )
    machine.set_config(np.broadcast_to(ids, (n, n)))

    drivers = np.zeros((n, n, 4), dtype=bool)
    drivers[0, 0, Port.W] = True
    signal = machine.bus_signal(drivers)

    exit_rows = np.flatnonzero(signal[:, n - 1, Port.E])
    if exit_rows.size != 1:  # pragma: no cover - structural invariant
        raise GraphError("staircase produced no unique exit row")
    return int(exit_rows[0])


def parity(machine: RMeshMachine, bits) -> int:
    """Parity of up to ``n - 1`` bits, via the staircase count.

    (The count is available in one cycle; its low bit is the parity. A
    dedicated O(1) parity network exists in the literature, but deriving
    it from the count adds nothing here.)
    """
    return count_ones(machine, bits) & 1


def prefix_or(machine: RMeshMachine, bits) -> np.ndarray:
    """Per column: "some 1 lies strictly west of me", in one bus cycle.

    Every 1-column isolates its W port from its E port (so signals cannot
    pass it) and drives its E side; a column's W port then carries a
    signal iff some earlier column drove it. This is the O(1) priority
    resolution primitive (see :func:`leftmost_one`).
    """
    n = machine.n
    arr = _check_bits(machine, bits, n)
    padded = np.zeros(n, dtype=bool)
    padded[: arr.size] = arr

    ids = np.where(padded[None, :], CONFIGS["ISOLATE"].id, CONFIGS["ROW"].id)
    machine.set_config(np.broadcast_to(ids, (n, n)))

    drivers = np.zeros((n, n, 4), dtype=bool)
    drivers[0, :, Port.E] = padded  # 1-columns drive their east side
    signal = machine.bus_signal(drivers)
    return signal[0, : arr.size, Port.W].copy()


def leftmost_one(machine: RMeshMachine, bits) -> int | None:
    """Index of the first set bit, from one :func:`prefix_or` cycle."""
    arr = np.asarray(bits, dtype=bool).ravel()
    if not arr.any():
        return None
    before = prefix_or(machine, arr)
    winners = np.flatnonzero(arr & ~before)
    return int(winners[0])


def global_or_one_step(machine: RMeshMachine, bits) -> bool:
    """OR of one bit per PE in a single cycle (one fused four-way bus)."""
    return machine.global_or(np.asarray(bits, dtype=bool))


def ppa_count_ones_row(machine: PPAMachine, bits) -> tuple[int, int]:
    """The PPA counterpart: sum one row of bits by shift-halving.

    The PPA's switches cannot turn a bus, so counting falls back on the
    mesh's Θ(n) reduction: the row is folded east-to-west with word
    shifts (a shift by ``2**k`` costs ``2**k`` single-hop cycles).
    Returns ``(count, bus_cycles_spent)``.
    """
    arr = np.asarray(bits, dtype=np.int64).ravel()
    n = machine.n
    if arr.size > n:
        raise GraphError(f"at most {n} bits fit one row")
    before = machine.counters.snapshot()
    vals = machine.new_parallel(0)
    vals[0, : arr.size] = arr
    machine.count_alu()

    span = 1
    while span < n:
        shifted = vals
        for _ in range(span):  # a distance-2^k move is 2^k hops
            shifted = machine.shift(shifted, Direction.WEST, fill=0, torus=False)
        vals = machine.sat_add(vals, shifted)
        span *= 2
    count = int(vals[0, 0])
    spent = machine.counters.diff(before)["bus_cycles"]
    return count, spent
