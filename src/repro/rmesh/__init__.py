"""Reconfigurable Mesh (RMESH) — the *more powerful* model of reference [1].

The paper's Section 4 places the PPA below the Reconfigurable Mesh of
Miller, Prasanna-Kumar, Reisis and Stout: the PPA's switch-box only
connects or splits the straight-through row/column buses, while an RMESH
PE may internally fuse any subset of its four ports — letting buses turn
corners and snake through the array. This package implements that model
(port-partition switch configurations, global bus resolution by connected
components) plus the classic algorithms the extra power enables, so the
"less powerful but hardware implementable" trade-off the paper argues
becomes a measured experiment (T13): counting n bits takes one bus cycle
on the RMESH and Θ(n) communication steps on the PPA.
"""

from repro.rmesh.switches import Config, CONFIGS, partition_of
from repro.rmesh.machine import RMeshMachine, Port
from repro.rmesh.mcp import rmesh_all_pairs, rmesh_mcp
from repro.rmesh.algorithms import (
    count_ones,
    parity,
    prefix_or,
    leftmost_one,
    global_or_one_step,
    ppa_count_ones_row,
)

__all__ = [
    "Config",
    "CONFIGS",
    "partition_of",
    "RMeshMachine",
    "Port",
    "count_ones",
    "parity",
    "prefix_or",
    "leftmost_one",
    "global_or_one_step",
    "ppa_count_ones_row",
    "rmesh_mcp",
    "rmesh_all_pairs",
]
