"""The paper's MCP algorithm running on the Reconfigurable Mesh.

Section 4 orders the models by power (PPA < RMESH); containment in the
other direction is shown by *running the PPA algorithm on the RMESH*: the
straight-through ``ROW``/``COL`` configurations recover undirected row and
column lines, and the same dynamic program executes with the same
iteration count and the familiar O(p·h) bus cost. (Because RMESH lines are
undirected, no circular-wrap convention is needed — a single driver
reaches the whole line in both directions, like the GCN baseline.)
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import normalize_weights
from repro.core.result import MCPResult
from repro.errors import GraphError
from repro.rmesh.machine import Port, RMeshMachine
from repro.rmesh.switches import CONFIGS

__all__ = ["rmesh_mcp", "rmesh_all_pairs"]


def _row_broadcast(machine: RMeshMachine, values, driver_mask) -> np.ndarray:
    """Word on each row line, driven by the PEs in *driver_mask*."""
    machine.set_config(CONFIGS["ROW"].id)
    drivers = np.zeros((machine.n, machine.n, 4), dtype=bool)
    drivers[..., Port.E] = driver_mask
    return machine.broadcast(values, drivers)[:, :, Port.E]


def _col_broadcast(machine: RMeshMachine, values, driver_mask) -> np.ndarray:
    """Word on each column line, driven by the PEs in *driver_mask*."""
    machine.set_config(CONFIGS["COL"].id)
    drivers = np.zeros((machine.n, machine.n, 4), dtype=bool)
    drivers[..., Port.N] = driver_mask
    return machine.broadcast(values, drivers)[:, :, Port.N]


def _row_or(machine: RMeshMachine, bits) -> np.ndarray:
    """Wired-OR per row line (one 1-bit cycle)."""
    machine.set_config(CONFIGS["ROW"].id)
    drivers = np.zeros((machine.n, machine.n, 4), dtype=bool)
    drivers[..., Port.E] = np.asarray(bits, dtype=bool)
    return machine.bus_signal(drivers)[:, :, Port.E]


def _row_min(
    machine: RMeshMachine, values: np.ndarray, args: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Bit-serial row minimum + smallest-arg achiever (PPA min() ported)."""
    h = machine.word_bits
    enable = np.ones(machine.shape, dtype=bool)
    for j in range(h - 1, -1, -1):
        bit_j = (values >> j) & 1 == 1
        zero_seen = _row_or(machine, enable & ~bit_j)
        enable &= ~(zero_seen & bit_j)
    # Survivors hold equal (minimal) words: they may co-drive the line.
    min_v = _row_broadcast(machine, values, enable)
    surv = enable.copy()
    for j in range(h - 1, -1, -1):
        bit_j = (args >> j) & 1 == 1
        zero_seen = _row_or(machine, surv & ~bit_j)
        surv &= ~(zero_seen & bit_j)
    min_a = _row_broadcast(machine, args, surv)
    return min_v, min_a


def rmesh_mcp(machine: RMeshMachine, W, d: int, **kwargs) -> MCPResult:
    """Minimum cost path to *d*, PPA algorithm on RMESH configurations."""
    Wm = normalize_weights(W, machine, **kwargs)
    n = machine.n
    if not (0 <= d < n):
        raise GraphError(f"destination {d} outside [0, {n})")
    before = machine.counters.snapshot()
    tele = machine.telemetry

    with tele.span("mcp", arch=machine.architecture, n=n, d=d):
        with tele.span("mcp.init"):
            COL = np.broadcast_to(np.arange(n, dtype=np.int64)[None, :], (n, n))
            rows = np.arange(n)
            not_d = (rows != d)[:, None]
            row_d = ~not_d & np.ones((n, n), dtype=bool)
            diag = np.eye(n, dtype=bool)

            SOW = np.zeros((n, n), dtype=np.int64)
            PTN = np.zeros((n, n), dtype=np.int64)
            # Init: the 1-edge costs to d, transposed onto row d with two
            # broadcasts (row line from column d, then column line from the
            # diag).
            w_to_d = _row_broadcast(machine, Wm, COL == d)
            SOW[d] = _col_broadcast(machine, w_to_d, diag)[d]
            PTN[d] = d

        iterations = 0
        converged = False
        while not converged:
            iterations += 1
            with tele.span("mcp.iteration", k=iterations):
                with tele.span("mcp.broadcast"):
                    down = _col_broadcast(machine, SOW, row_d)
                    cand = np.minimum(down + Wm, machine.maxint)
                    SOW = np.where(not_d, cand, SOW)
                with tele.span("mcp.min"):
                    mv, ma = _row_min(machine, SOW, COL.copy())
                    MIN_SOW = np.where(not_d, mv, 0)
                    PTN_new = np.where(not_d, ma, PTN)
                with tele.span("mcp.writeback"):
                    back_v = _col_broadcast(machine, MIN_SOW, diag)
                    back_p = _col_broadcast(machine, PTN_new, diag)
                    old_row = SOW[d].copy()
                    SOW[d] = back_v[d]
                    changed = SOW[d] != old_row
                    PTN_new[d] = np.where(changed, back_p[d], PTN[d])
                    PTN = PTN_new
                with tele.span("mcp.convergence"):
                    changed_plane = np.zeros((n, n), dtype=bool)
                    changed_plane[d] = changed
                    converged = not machine.global_or(changed_plane)
            if not converged and iterations > n:
                raise GraphError("MCP did not converge; invalid input")

    return MCPResult(
        destination=d,
        sow=SOW[d].copy(),
        ptn=PTN[d].copy(),
        iterations=iterations,
        maxint=machine.maxint,
        counters=machine.counters.diff(before),
    )


def rmesh_all_pairs(machine: RMeshMachine, W, **kwargs):
    """All-pairs MCP on the RMESH: the literal destination sweep.

    API parity with :func:`repro.core.apsp.all_pairs_minimum_cost` (same
    :class:`~repro.core.apsp.APSPResult` container) so cross-architecture
    experiments can swap drivers. The RMESH simulator has no lane axis —
    its port-partition bus resolution is connected-components-based, not a
    per-ring gather — so this is the serial execution model and
    ``machine_counters`` equals ``counters``.
    """
    from repro.core.apsp import APSPResult

    n = machine.n
    dist = np.full((n, n), machine.maxint, dtype=np.int64)
    succ = np.zeros((n, n), dtype=np.int64)
    iterations = np.zeros(n, dtype=np.int64)
    totals: dict[str, int] = {}
    tele = machine.telemetry
    with tele.span("apsp", n=n, arch=machine.architecture, lanes=1):
        for d in range(n):
            with tele.span("apsp.destination", d=d):
                res = rmesh_mcp(machine, W, d, **kwargs)
            dist[:, d] = res.sow
            succ[:, d] = res.ptn
            iterations[d] = res.iterations
            for k, v in res.counters.items():
                totals[k] = totals.get(k, 0) + v
    return APSPResult(
        dist=dist,
        succ=succ,
        iterations=iterations,
        maxint=machine.maxint,
        counters=totals,
        machine_counters=dict(totals),
    )
