"""RMESH machine: port-level bus resolution by connected components.

Every PE exposes four ports; its configuration fuses some of them
internally, and the wiring fuses each ``E`` port with the ``W`` port of
the east neighbour and each ``S`` port with the ``N`` port below (linear
edges — the canonical RMESH is not a torus). A *bus* is a connected
component of the resulting port graph; a signal driven anywhere on a bus
is visible on every port of it within one cycle (the same constant-time
assumption as the PPA's, ablated there by A8).

Bus resolution uses ``scipy.sparse.csgraph.connected_components`` over the
4·n² ports — one call per transaction, vectorised edge construction.
"""

from __future__ import annotations

import enum

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components

from repro.errors import BusError, ConfigurationError
from repro.ppa.counters import CycleCounters
from repro.rmesh.switches import ALL_PARTITIONS, CONFIGS
from repro.telemetry.spans import Tracer

__all__ = ["Port", "RMeshMachine"]


class Port(enum.IntEnum):
    N = 0
    E = 1
    S = 2
    W = 3


_PORT_INDEX = {p.name: int(p) for p in Port}


class RMeshMachine:
    """An ``n x n`` reconfigurable mesh with per-PE port partitions."""

    architecture = "rmesh"

    def __init__(self, n: int, word_bits: int = 16):
        if n < 1:
            raise ConfigurationError(f"grid side must be >= 1, got {n}")
        if not (2 <= word_bits <= 62):
            raise ConfigurationError(f"word_bits out of range: {word_bits}")
        self.n = n
        self.word_bits = word_bits
        self.counters = CycleCounters()
        #: span tracer (see :mod:`repro.telemetry`); disabled by default.
        self.telemetry = Tracer(self.counters)
        self._config = np.full((n, n), CONFIGS["ISOLATE"].id, dtype=np.int64)
        self._labels: np.ndarray | None = None  # (n, n, 4) bus ids

    @property
    def maxint(self) -> int:
        return (1 << self.word_bits) - 1

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n, self.n)

    def require_square_fit(self, size: int) -> None:
        if size != self.n:
            from repro.errors import MaskError

            raise MaskError(
                f"problem of size {size} requires an {size}x{size} machine; "
                f"this machine is {self.n}x{self.n}"
            )

    # -- configuration ------------------------------------------------------

    def set_config(self, config_ids) -> None:
        """Program every switch; *config_ids* is a grid of partition ids
        (0..14) or a scalar for a uniform configuration."""
        ids = np.asarray(config_ids, dtype=np.int64)
        ids = np.array(np.broadcast_to(ids, self.shape))
        if ids.size and (ids.min() < 0 or ids.max() >= len(ALL_PARTITIONS)):
            raise ConfigurationError(
                f"config ids must be in [0, {len(ALL_PARTITIONS)})"
            )
        self._config = ids
        self._labels = None  # lazily re-resolved
        self.counters.instructions += 1  # one SIMD reconfigure instruction

    def set_config_named(self, names) -> None:
        """Like :meth:`set_config` but from a grid (or scalar) of names."""
        arr = np.asarray(names)
        lookup = np.vectorize(lambda s: CONFIGS[str(s)].id)
        self.set_config(lookup(np.broadcast_to(arr, self.shape)))

    # -- bus resolution ------------------------------------------------------

    def _port_id(self, r, c, port) -> np.ndarray:
        return (np.asarray(r) * self.n + np.asarray(c)) * 4 + int(port)

    def bus_labels(self) -> np.ndarray:
        """Bus id per port, shape ``(n, n, 4)`` (recomputed lazily)."""
        if self._labels is not None:
            return self._labels
        n = self.n
        rows_a: list[np.ndarray] = []
        rows_b: list[np.ndarray] = []

        # Inter-PE wiring: E <-> W of the east neighbour, S <-> N below.
        r, c = np.nonzero(np.ones((n, n), dtype=bool))
        east = c < n - 1
        rows_a.append(self._port_id(r[east], c[east], Port.E))
        rows_b.append(self._port_id(r[east], c[east] + 1, Port.W))
        south = r < n - 1
        rows_a.append(self._port_id(r[south], c[south], Port.S))
        rows_b.append(self._port_id(r[south] + 1, c[south], Port.N))

        # Intra-PE fusing from the partition table.
        for cid in np.unique(self._config):
            mask = self._config == cid
            rr, cc = np.nonzero(mask)
            for block in ALL_PARTITIONS[int(cid)]:
                ports = sorted(block)
                for a, b in zip(ports, ports[1:]):
                    rows_a.append(self._port_id(rr, cc, _PORT_INDEX[a]))
                    rows_b.append(self._port_id(rr, cc, _PORT_INDEX[b]))

        a = np.concatenate(rows_a)
        b = np.concatenate(rows_b)
        total = 4 * n * n
        graph = coo_matrix(
            (np.ones(len(a), dtype=np.int8), (a, b)), shape=(total, total)
        )
        _, labels = connected_components(graph, directed=False)
        self._labels = labels.reshape(n, n, 4)
        return self._labels

    # -- transactions -----------------------------------------------------

    def _count(self, bits: int) -> None:
        c = self.counters
        c.instructions += 1
        c.broadcasts += 1
        c.bus_cycles += 1
        c.bit_cycles += bits

    def bus_signal(self, drivers) -> np.ndarray:
        """One 1-bit bus cycle: ``drivers`` is a ``(n, n, 4)`` boolean array
        of asserted ports; returns, per port, whether its bus carries a
        signal (wired-OR)."""
        drivers = np.asarray(drivers, dtype=bool)
        if drivers.shape != (self.n, self.n, 4):
            raise BusError(
                f"drivers must have shape {(self.n, self.n, 4)}, got "
                f"{drivers.shape}"
            )
        labels = self.bus_labels()
        self._count(1)
        nbuses = int(labels.max()) + 1
        driven = np.zeros(nbuses, dtype=bool)
        np.logical_or.at(driven, labels.reshape(-1), drivers.reshape(-1))
        return driven[labels]

    def broadcast(self, values, driver_ports) -> np.ndarray:
        """One word transaction: each driven bus carries its drivers' word
        (conflicting drivers raise :class:`BusError`); returns the word
        visible per port (0 on undriven buses)."""
        values = np.asarray(values, dtype=np.int64)
        drivers = np.asarray(driver_ports, dtype=bool)
        if drivers.shape != (self.n, self.n, 4):
            raise BusError(
                f"driver_ports must have shape {(self.n, self.n, 4)}"
            )
        labels = self.bus_labels()
        self._count(self.word_bits)
        nbuses = int(labels.max()) + 1
        flat_labels = labels.reshape(-1)
        flat_drive = drivers.reshape(-1)
        word = np.broadcast_to(values[..., None], labels.shape).reshape(-1)

        lo = np.full(nbuses, np.iinfo(np.int64).max, dtype=np.int64)
        hi = np.full(nbuses, np.iinfo(np.int64).min, dtype=np.int64)
        np.minimum.at(lo, flat_labels[flat_drive], word[flat_drive])
        np.maximum.at(hi, flat_labels[flat_drive], word[flat_drive])
        driven = np.zeros(nbuses, dtype=bool)
        driven[flat_labels[flat_drive]] = True
        if bool((driven & (lo != hi)).any()):
            raise BusError("conflicting drivers on one RMESH bus")
        out = np.where(driven, np.where(driven, lo, 0), 0)
        return out[labels]

    def global_or(self, bits) -> bool:
        """Controller test; on the RMESH a single fused bus suffices."""
        self.set_config(CONFIGS["ALL"].id)
        drivers = np.zeros((self.n, self.n, 4), dtype=bool)
        drivers[..., 0] = np.asarray(bits, dtype=bool)
        signal = self.bus_signal(drivers)
        self.counters.global_ors += 1
        return bool(signal[0, 0, 0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RMeshMachine(n={self.n}, word_bits={self.word_bits})"
