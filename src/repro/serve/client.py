"""Multiplexed JSON-lines client for the path-query service.

One :class:`ServeClient` owns one TCP connection and any number of
in-flight requests on it: requests are written pipelined (each gets a
fresh ``id``), a single reader task correlates the out-of-order
responses back to their futures. This is what lets the load generator
hold 10k+ concurrent queries open over a few dozen sockets instead of
10k ephemeral connections.

The client is deliberately thin — no retries, no deadline enforcement
beyond what the server applies. Interpreting ``shed``/``deadline``
statuses (and honouring ``retry_after_ms``) is the *caller's* policy;
the load generator and chaos harness each make that policy explicit.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any

from repro.errors import ReproError
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    Response,
    decode_line,
    encode_message,
)

__all__ = ["ServeClient"]

_client_counter = itertools.count(1)


class ServeClient:
    """Async client: many in-flight requests multiplexed on one socket."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.host = host
        self.port = port
        self._tag = f"c{next(_client_counter)}"
        self._next = itertools.count(1)
        self._pending: dict[str, asyncio.Future] = {}
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None

    # -- lifecycle -------------------------------------------------------

    async def connect(self) -> "ServeClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_LINE_BYTES + 1024,
        )
        self._reader_task = asyncio.ensure_future(self._read_loop())
        return self

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
        self._fail_pending(ReproError("connection closed"))

    async def __aenter__(self) -> "ServeClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- plumbing --------------------------------------------------------

    async def _read_loop(self) -> None:
        error: Exception = ReproError("connection closed by server")
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = Response.from_dict(decode_line(line))
                future = self._pending.pop(response.id, None)
                if future is not None and not future.done():
                    future.set_result(response)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            error = exc
        finally:
            self._fail_pending(error)

    def _fail_pending(self, error: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)

    # -- requests --------------------------------------------------------

    def submit(self, op: str, **fields: Any) -> "asyncio.Future[Response]":
        """Fire one request; the returned future resolves to its
        :class:`Response`. Call :meth:`drain` periodically when
        pipelining thousands of submissions."""
        if self._writer is None:
            raise ReproError("client is not connected")
        rid = f"{self._tag}-{next(self._next)}"
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        payload = {"id": rid, "op": op}
        payload.update({k: v for k, v in fields.items() if v is not None})
        self._writer.write(encode_message(payload))
        return future

    async def drain(self) -> None:
        """Respect transport backpressure (awaits the write buffer)."""
        if self._writer is not None:
            await self._writer.drain()

    async def request(self, op: str, **fields: Any) -> Response:
        future = self.submit(op, **fields)
        await self.drain()
        return await future

    # -- conveniences ----------------------------------------------------

    async def put_graph(self, name: str, weights, *, word_bits: int = 16
                        ) -> Response:
        return await self.request("put_graph", graph=name, weights=weights,
                                  word_bits=word_bits)

    async def put_delta(self, name: str, edges, *,
                        base_version: int | None = None) -> Response:
        """Incremental ``put_graph``: apply a sparse ``[[u, v, w]]`` edge
        delta (``w = None`` removes the edge); ``base_version`` makes the
        update conditional on the graph still being at that version."""
        return await self.request("put_graph", graph=name, edges=edges,
                                  base_version=base_version)

    async def point(self, graph: str, source: int, dest: int, *,
                    deadline_ms: float | None = None,
                    want_path: bool = False) -> Response:
        return await self.request("point", graph=graph, source=source,
                                  dest=dest, deadline_ms=deadline_ms,
                                  want_path=want_path or None)

    async def dest(self, graph: str, dest: int, *,
                   deadline_ms: float | None = None) -> Response:
        return await self.request("dest", graph=graph, dest=dest,
                                  deadline_ms=deadline_ms)

    async def apsp(self, graph: str, *,
                   deadline_ms: float | None = None) -> Response:
        return await self.request("apsp", graph=graph,
                                  deadline_ms=deadline_ms)

    async def stats(self) -> Response:
        return await self.request("stats")

    async def health(self) -> Response:
        return await self.request("health")

    async def ping(self) -> Response:
        return await self.request("ping")
