"""The graceful-degradation ladder.

Every rung trades serving *throughput* for *isolation and recoverability*
— never correctness, because all engine tiers are bit-identical and
every answer is verified (:mod:`repro.serve.oracle`) before it leaves
the server. The rungs, top to bottom:

====  =============================  =================================
rung  configuration                  typical trigger
====  =============================  =================================
0     compiled, workers, full lanes  healthy
1     compiled, inline (workers=1)   breaker open / worker crashes
2     compiled, inline, lanes/4      memory or queue pressure
3     fused, inline, lanes/4         compiled-tier failure
4     cycle, inline, lanes/8,        analytic tiers failing / bus-fault
      resilient executor             recovery
====  =============================  =================================

(the engine column is the *request*; per-machine eligibility may refine
it further through :func:`repro.engine.select.resolve_engine`, e.g. a
fault-plan-carrying machine always resolves to ``cycle``).

The ladder keeps one level per graph plus a global floor. Failures
*raise* the level immediately (sticky); sustained success *lowers* it one
rung after ``recovery_successes`` consecutive verified answers, so a
transient incident does not permanently tax the service. Transient
pressure (admission queue occupancy) adds a per-request bump without
moving the sticky level. Every response computed below rung 0 carries a
machine-readable record — rung number, label, engine/workers/lane
divisor, and the accumulated reasons — satisfying the "recorded
downgrade reason on every response" serving contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.select import ENGINE_DEGRADE_ORDER
from repro.errors import ConfigurationError

__all__ = ["Rung", "RUNGS", "DegradationLadder"]


@dataclass(frozen=True)
class Rung:
    """One ladder level: how to run a query when at this level."""

    index: int
    label: str
    engine: str
    use_workers: bool
    lane_div: int  #: lanes = max(1, n // lane_div)
    resilient: bool = False  #: run under the PR 3 resilient executor

    def coalesce_width(self, n: int, cap: int) -> int:
        """Max destinations per coalesced engine run at this rung.

        The same ``lane_div`` that throttles APSP sweeps under pressure
        throttles coalesced column batches: a degraded rung computes
        narrower batches (bounding the working set and the blast radius
        of a retry) at the cost of more engine runs. Always >= 1 — a
        batch can always make progress one column at a time.
        """
        return max(1, min(int(cap), max(1, n // self.lane_div)))

    def record(self, reasons: list[str], workers: int) -> dict:
        """The machine-readable ``degraded`` payload for a response."""
        return {
            "rung": self.index,
            "label": self.label,
            "engine": self.engine,
            "workers": workers if self.use_workers else 1,
            "lane_div": self.lane_div,
            "resilient": self.resilient,
            "reasons": list(reasons),
        }


RUNGS: tuple[Rung, ...] = (
    Rung(0, "full", ENGINE_DEGRADE_ORDER[0], True, 1),
    Rung(1, "inline-workers", ENGINE_DEGRADE_ORDER[0], False, 1),
    Rung(2, "reduced-lanes", ENGINE_DEGRADE_ORDER[0], False, 4),
    Rung(3, "fused-tier", ENGINE_DEGRADE_ORDER[1], False, 4),
    Rung(4, "cycle-resilient", ENGINE_DEGRADE_ORDER[2], False, 8,
         resilient=True),
)


@dataclass
class DegradationLadder:
    """Sticky per-graph degradation level with pressure bumps."""

    #: consecutive verified answers at a level before stepping back up.
    recovery_successes: int = 8
    #: admission pressure above which requests get a one-rung bump.
    pressure_bump_at: float = 0.5
    #: pressure above which they get a two-rung bump.
    pressure_bump2_at: float = 0.9

    _level: dict = field(default_factory=dict, init=False)  # graph -> int
    _streak: dict = field(default_factory=dict, init=False)
    _reasons: dict = field(default_factory=dict, init=False)
    #: monotonic tallies for stats export
    stats: dict = field(
        default_factory=lambda: {"downgrades": 0, "recoveries": 0},
        init=False,
    )

    def __post_init__(self) -> None:
        if self.recovery_successes < 1:
            raise ConfigurationError(
                "recovery_successes must be >= 1, got "
                f"{self.recovery_successes}"
            )

    # -- selection -------------------------------------------------------

    def rung_for(self, graph: str, *, pressure: float = 0.0,
                 breaker_open: bool = False) -> tuple[Rung, list[str]]:
        """The rung to run a request at, plus the reasons if degraded."""
        level = self._level.get(graph, 0)
        reasons = list(self._reasons.get(graph, ()))
        if breaker_open and level < 1:
            level = 1
            reasons.append("worker-pool breaker open")
        bump = 0
        if pressure >= self.pressure_bump2_at:
            bump = 2
        elif pressure >= self.pressure_bump_at:
            bump = 1
        if bump:
            reasons.append(
                f"admission pressure {pressure:.2f} (queue backlog)"
            )
        level = min(level + bump, len(RUNGS) - 1)
        return RUNGS[level], reasons

    def rung_below(self, rung: Rung) -> Rung | None:
        """The next rung down, or ``None`` at the bottom of the ladder."""
        if rung.index + 1 >= len(RUNGS):
            return None
        return RUNGS[rung.index + 1]

    # -- feedback --------------------------------------------------------

    def record_failure(self, graph: str, rung: Rung, reason: str) -> None:
        """A failure at *rung*: pin the graph at least one level below."""
        new_level = min(rung.index + 1, len(RUNGS) - 1)
        if new_level > self._level.get(graph, 0):
            self._level[graph] = new_level
            self.stats["downgrades"] += 1
        self._streak[graph] = 0
        reasons = self._reasons.setdefault(graph, [])
        if reason not in reasons:
            reasons.append(reason)
        del reasons[:-4]  # keep the most recent few

    def record_success(self, graph: str) -> None:
        """A verified answer: progress toward stepping back up."""
        level = self._level.get(graph, 0)
        if level == 0:
            return
        streak = self._streak.get(graph, 0) + 1
        if streak >= self.recovery_successes:
            self._level[graph] = level - 1
            self._streak[graph] = 0
            self.stats["recoveries"] += 1
            if level - 1 == 0:
                self._reasons.pop(graph, None)
        else:
            self._streak[graph] = streak

    def forget(self, graph: str) -> None:
        self._level.pop(graph, None)
        self._streak.pop(graph, None)
        self._reasons.pop(graph, None)

    def snapshot(self) -> dict:
        return {
            "levels": dict(self._level),
            **self.stats,
        }
