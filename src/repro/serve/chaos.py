"""Deterministic service-level chaos harness.

Runs the *whole* service — admission, ladder, breaker, worker pool,
resilient executor — under seeded failure injection and checks the two
robustness invariants the PR's acceptance bar names:

* **0 silent-wrong**: every ``ok`` answer is re-validated here against a
  plain-numpy Bellman solution, independently of the service's own
  verifier and of every engine;
* **0 leaked shared memory**: ``/dev/shm`` is snapshotted around every
  run — worker crashes included, nothing may remain.

Injection kinds (one per run, round-robin over the campaign):

``healthy``
    Control group — no injection; also pins the determinism digest.
``worker-kill``
    The first APSP shard worker is SIGKILLed on its first attempt
    (:func:`repro.engine.shard.set_shard_chaos`); the pool must respawn
    and the answer must still verify.
``worker-slow``
    The first shard stalls past ``shard_timeout``; the pool must detect
    the deadline, kill, and recover.
``overload``
    Admission is squeezed (``max_inflight=1``, tiny queue) under a
    burst; requests must resolve fast as ``shed`` (with
    ``retry_after_ms``) or complete — never hang.
``bus-fault``
    Every machine the service builds carries a PR 3
    :class:`~repro.ppa.faults.FaultPlan` (a stuck-open row bus). The
    analytic tiers refuse faulted machines, the cycle engine computes
    corrupted answers that the verifier rejects, and the ladder must
    walk down to the resilient rung — whose spare PEs quarantine the
    fault — before an ``ok`` can be served.
``update-storm``
    Strictly sequential stream interleaving sparse edge-delta
    ``put_graph`` updates with queries. Every answer must carry the
    *current* graph version and match the local reference for that
    version — a stale surviving column or an unsoundly-kept cache entry
    counts as silent-wrong. Sequential issuance keeps version
    assignment (and hence the campaign digest) deterministic.

Everything is a function of the campaign seed: graphs, query streams,
fault placement. The campaign digest covers the scenario stream and all
verified costs, so two runs of the same seed must agree on it.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.engine.shard import clear_shard_chaos, set_shard_chaos
from repro.errors import ConfigurationError
from repro.ppa.faults import FaultKind, FaultPlan
from repro.resilience import BackoffPolicy
from repro.serve.loadgen import random_graph
from repro.serve.oracle import bellman_reference
from repro.serve.service import (
    PathQueryService,
    ServiceConfig,
    default_machine_factory,
)

__all__ = ["CHAOS_KINDS", "ChaosScenario", "run_chaos_campaign",
           "run_scenario"]

CHAOS_KINDS = ("healthy", "worker-kill", "worker-slow", "overload",
               "bus-fault", "update-storm")


@dataclass
class ChaosScenario:
    """One seeded chaos run: an injection kind plus a query stream."""

    name: str
    kind: str
    seed: int
    n: int = 12
    requests: int = 20
    density: float = 0.35
    word_bits: int = 16
    deadline_ms: float = 20_000.0
    workers: int = 2
    #: service-side request coalescing. Not part of ``to_dict`` — the
    #: campaign digest must be identical with it on or off (coalescing
    #: changes throughput, never answers), and the coalescing test pins
    #: exactly that.
    coalesce: bool = True
    #: leak-sanitizer mode: None defers to REPRO_SANITIZE. Also not part
    #: of ``to_dict`` — instrumentation must never change an answer.
    sanitize: "bool | None" = None

    def to_dict(self) -> dict:
        return {"name": self.name, "kind": self.kind, "seed": self.seed,
                "n": self.n, "requests": self.requests,
                "density": self.density, "workers": self.workers}


def _list_shm() -> set:
    try:
        return set(os.listdir("/dev/shm"))
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        return set()


def _config_for(sc: ChaosScenario) -> ServiceConfig:
    fast_backoff = BackoffPolicy(base=0.005, multiplier=2.0, cap=0.05,
                                 max_attempts=2)
    if sc.kind == "overload":
        return ServiceConfig(
            max_inflight=1, max_queue=2, workers=1,
            default_deadline_ms=sc.deadline_ms, backoff=fast_backoff,
            breaker_cooldown_s=0.2, recovery_successes=2, seed=sc.seed,
            coalesce=sc.coalesce,
        )
    if sc.kind in ("worker-kill", "worker-slow"):
        return ServiceConfig(
            max_inflight=4, max_queue=64, workers=sc.workers,
            shard_timeout=0.25 if sc.kind == "worker-slow" else 10.0,
            default_deadline_ms=sc.deadline_ms, backoff=fast_backoff,
            breaker_cooldown_s=0.2, recovery_successes=2, seed=sc.seed,
            coalesce=sc.coalesce,
        )
    # healthy, bus-fault, update-storm: inline compute, generous queue
    return ServiceConfig(
        max_inflight=4, max_queue=64, workers=1,
        default_deadline_ms=sc.deadline_ms, backoff=fast_backoff,
        breaker_cooldown_s=0.2, recovery_successes=2, seed=sc.seed,
        coalesce=sc.coalesce,
    )


def _machine_factory_for(sc: ChaosScenario):
    if sc.kind != "bus-fault":
        return default_machine_factory
    rng = np.random.default_rng(sc.seed)
    row = int(rng.integers(1, sc.n - 1))
    col = int(rng.integers(1, sc.n - 1))

    def faulty_factory(n: int, word_bits: int):
        machine = default_machine_factory(n, word_bits)
        machine.inject_faults(
            FaultPlan().add(row, col, FaultKind.STUCK_OPEN, axis=0)
        )
        return machine

    return faulty_factory


async def run_scenario(sc: ChaosScenario) -> dict:
    """Execute one scenario in-process; returns its outcome record."""
    if sc.kind not in CHAOS_KINDS:
        raise ConfigurationError(f"unknown chaos kind {sc.kind!r}")
    rng = np.random.default_rng(sc.seed)
    wire = random_graph(sc.n, sc.density, rng)
    maxint = (1 << sc.word_bits) - 1
    grid = np.asarray(
        [[maxint if v is None else v for v in row] for row in wire],
        dtype=np.int64,
    )
    reference: dict[tuple[int, int], np.ndarray] = {}
    state = {"version": 1}  # the service-side version the stream is at

    async def expect_column(dest: int) -> np.ndarray:
        # The oracle pass is a full O(n^2) numpy sweep: run it on a
        # worker thread so the loop keeps serving while we validate
        # (host-blocking-compute).
        key = (state["version"], dest)
        if key not in reference:
            loop = asyncio.get_running_loop()
            reference[key] = await loop.run_in_executor(
                None, bellman_reference, grid, dest, maxint)
        return reference[key]

    service = PathQueryService(_config_for(sc),
                               machine_factory=_machine_factory_for(sc),
                               sanitize=sc.sanitize)

    if sc.kind == "worker-kill":
        set_shard_chaos(kill_shards={0: 1})
    elif sc.kind == "worker-slow":
        set_shard_chaos(slow_shards={0: 1}, slow_seconds=2.0)

    outcome = {
        "scenario": sc.to_dict(),
        "by_status": {},
        "wrong": 0,
        "degraded": 0,
        "updates": 0,
        "latency_ms": [],
        "ok_answers": [],
    }
    try:
        put = await service.handle_request({
            "id": "setup", "op": "put_graph", "graph": "chaos",
            "weights": wire, "word_bits": sc.word_bits,
        })
        if put.status != "ok":
            raise RuntimeError(f"chaos setup failed: {put.error}")

        plan = []
        for i in range(sc.requests):
            if sc.kind == "update-storm" and i % 4 == 3:
                op = "update"
            elif sc.kind in ("worker-kill", "worker-slow") and i % 7 == 0:
                op = "apsp"
            elif i % 9 == 5:
                op = "dest"
            else:
                op = "point"
            plan.append((i, op, int(rng.integers(0, sc.n)),
                         int(rng.integers(0, sc.n))))

        async def one(i: int, op: str, source: int, dest: int) -> None:
            body = {"id": f"q{i}", "op": op, "graph": "chaos",
                    "deadline_ms": sc.deadline_ms}
            if op != "apsp":
                body["dest"] = dest
            if op == "point":
                body["source"] = source
            t0 = time.monotonic()
            resp = await service.handle_request(body)
            outcome["latency_ms"].append((time.monotonic() - t0) * 1e3)
            outcome["by_status"][resp.status] = \
                outcome["by_status"].get(resp.status, 0) + 1
            if resp.degraded is not None:
                outcome["degraded"] += 1
                if not resp.degraded.get("reasons") \
                        and resp.degraded.get("rung", 0) == 0:
                    outcome["wrong"] += 1  # degraded stamp with no record
            if resp.status == "shed" and resp.retry_after_ms is None:
                outcome["wrong"] += 1  # shed without backpressure signal
            if resp.status != "ok":
                return
            if (sc.kind == "update-storm" and op in ("point", "dest")
                    and resp.result.get("version") != state["version"]):
                outcome["wrong"] += 1  # a stale version IS a wrong answer
                return
            if op == "point":
                expect = int((await expect_column(dest))[source])
                expected = None if expect >= maxint else expect
                got = resp.result.get("cost")
                if got != expected:
                    outcome["wrong"] += 1
                else:
                    outcome["ok_answers"].append((i, op, got))
            elif op == "dest":
                want = [int(v) for v in await expect_column(dest)]
                if resp.result.get("sow") != want:
                    outcome["wrong"] += 1
                else:
                    outcome["ok_answers"].append((i, op, sum(
                        v for v in want if v < maxint)))
            else:  # apsp: independent reachability cross-check
                want = 0
                for d in range(sc.n):
                    want += int(((await expect_column(d)) < maxint).sum())
                if resp.result.get("reachable_pairs") != want:
                    outcome["wrong"] += 1
                else:
                    outcome["ok_answers"].append((i, op, want))

        if sc.kind == "update-storm":
            # strictly sequential: deterministic version assignment,
            # every query validated against exactly one reference grid
            upd_rng = np.random.default_rng(sc.seed ^ 0xDE17A)
            for i, op, source, dest in plan:
                if op != "update":
                    await one(i, op, source, dest)
                    continue
                edges = []
                for _ in range(max(1, sc.n // 6)):
                    u = int(upd_rng.integers(0, sc.n))
                    v = int(upd_rng.integers(0, sc.n - 1))
                    if v >= u:
                        v += 1
                    w = None if upd_rng.random() < 0.2 \
                        else int(upd_rng.integers(1, 10))
                    edges.append([u, v, w])
                resp = await service.handle_request({
                    "id": f"u{i}", "op": "put_graph", "graph": "chaos",
                    "edges": edges, "base_version": state["version"],
                })
                outcome["by_status"][resp.status] = \
                    outcome["by_status"].get(resp.status, 0) + 1
                if resp.status != "ok":
                    outcome["wrong"] += 1  # conditional delta must apply
                    continue
                for u, v, w in edges:
                    grid[u, v] = maxint if w is None else w
                state["version"] += 1
                outcome["updates"] += 1
                # survivor count pins delta migration determinism
                outcome["ok_answers"].append(
                    (i, op, resp.result["delta"]["columns_kept"])
                )
        elif sc.kind == "overload":
            # full burst: everything at once against 1 slot + 2 queue
            await asyncio.gather(*(one(*spec) for spec in plan))
        else:
            gate = asyncio.Semaphore(4)

            async def bounded(spec):
                async with gate:
                    await one(*spec)

            await asyncio.gather(*(bounded(spec) for spec in plan))
    finally:
        clear_shard_chaos()
        # With the sanitizer armed, stop() raises SanitizerViolation on
        # any leaked task/shm/slot — a chaos scenario that leaks fails
        # loudly, it does not degrade into a flaky later run.
        await service.stop()

    stats = service.stats()
    if service.last_census is not None:
        outcome["sanitizer"] = service.last_census.to_dict()
    outcome["ladder"] = stats["ladder"]
    outcome["breaker"] = {k: stats["breaker"][k]
                          for k in ("state", "trips", "rejections")}
    outcome["admission"] = {k: stats["admission"][k]
                            for k in ("admitted", "shed")}
    outcome["verify_rejections"] = stats["counters"]["verify_rejections"]
    return outcome


def run_chaos_campaign(
    runs: int = 50,
    *,
    seed: int = 0,
    n: int = 10,
    requests_per_run: int = 12,
    kinds: tuple = CHAOS_KINDS,
    coalesce: bool = True,
    sanitize: "bool | None" = None,
) -> dict:
    """Run ``runs`` seeded scenarios (round-robin over ``kinds``) and
    aggregate the campaign-level invariants. Synchronous entry point —
    owns its own event loop. ``coalesce`` toggles request coalescing in
    every scenario's service; the campaign digest must be invariant
    under it (asserted by ``benchmarks/bench_p20_coalescing.py``)."""
    scenarios = [
        ChaosScenario(
            name=f"run{i:03d}-{kinds[i % len(kinds)]}",
            kind=kinds[i % len(kinds)],
            seed=seed * 10_000 + i,
            n=n,
            requests=requests_per_run,
            coalesce=coalesce,
            sanitize=sanitize,
        )
        for i in range(runs)
    ]
    report: dict = {
        "seed": seed,
        "runs": runs,
        "kinds": list(kinds),
        "by_kind": {},
        "by_status": {},
        "silent_wrong": 0,
        "validated": 0,
        "updates": 0,
        "degraded_responses": 0,
        "verify_rejections": 0,
        "breaker_trips": 0,
        "ladder_downgrades": 0,
        "leaked_shm": [],
        "latency_ms": {},
    }
    latencies: list[float] = []
    digest = hashlib.blake2b(digest_size=16)
    shm_before = _list_shm()
    t0 = time.monotonic()
    for sc in scenarios:
        outcome = asyncio.run(run_scenario(sc))
        digest.update(json.dumps(
            [sc.to_dict(), sorted(outcome["ok_answers"])],
            sort_keys=True, separators=(",", ":"),
        ).encode())
        kind_bucket = report["by_kind"].setdefault(sc.kind, {
            "runs": 0, "ok": 0, "wrong": 0, "degraded": 0,
        })
        kind_bucket["runs"] += 1
        kind_bucket["ok"] += outcome["by_status"].get("ok", 0)
        kind_bucket["wrong"] += outcome["wrong"]
        kind_bucket["degraded"] += outcome["degraded"]
        for status, count in outcome["by_status"].items():
            report["by_status"][status] = \
                report["by_status"].get(status, 0) + count
        report["silent_wrong"] += outcome["wrong"]
        report["validated"] += len(outcome["ok_answers"])
        report["updates"] += outcome.get("updates", 0)
        report["degraded_responses"] += outcome["degraded"]
        report["verify_rejections"] += outcome["verify_rejections"]
        report["breaker_trips"] += outcome["breaker"]["trips"]
        report["ladder_downgrades"] += outcome["ladder"]["downgrades"]
        latencies.extend(outcome["latency_ms"])
        leaked = _list_shm() - shm_before
        if leaked:
            report["leaked_shm"].extend(
                sorted(f"{sc.name}:{name}" for name in leaked)
            )
            shm_before |= leaked  # report each leak once
    report["wall_s"] = round(time.monotonic() - t0, 3)
    if latencies:
        arr = np.asarray(latencies)
        report["latency_ms"] = {
            "p50": round(float(np.percentile(arr, 50)), 3),
            "p99": round(float(np.percentile(arr, 99)), 3),
            "max": round(float(arr.max()), 3),
        }
    report["digest"] = digest.hexdigest()
    return report
