"""Incremental graph updates: sparse edge deltas, sound invalidation.

A full ``put_graph`` invalidates every cached column and APSP plane for
the graph. That is wasteful for the common production shape — a large
graph receiving a trickle of edge updates — because a changed edge
``(u, v)`` can only affect destination columns whose *current* answer
actually routes cost or tree structure through it. This module supplies
the three pieces the service's delta path is built from:

* :func:`apply_edge_delta` — decode the wire form (``[[u, v, w]]``,
  ``w = null`` removes the edge) and produce the new weight grid;
* :func:`dirty_destinations` — the O(|delta| * n) **conservative-exact**
  per-column invalidation test (see below);
* :func:`certify_warm_plane` — turn a stale cached answer into a plane
  of *certified* upper bounds that can warm-start the re-solve
  (:func:`repro.core.mcp.minimum_cost_path`'s ``warm_sow`` contract).

Invalidation soundness
----------------------
For destination ``d`` let ``sow``/``ptn`` be the cached (verified)
answer under the old weights. For each changed edge ``(u, v)`` with new
weight ``w'`` (``maxint`` when removed) the column is marked dirty iff

1. ``sat(w' + sow[v]) < sow[u]`` — the edge now offers a strictly
   better first hop out of ``u``, so the cached cost is an
   overestimate; or
2. ``ptn[u] == v`` and ``sat(w' + sow[v]) != sow[u]`` — the cached
   successor tree routes ``u`` through this edge and the change broke
   the cost telescope through it.

If neither fires for any changed edge, the cached ``(sow, ptn)`` still
satisfies every check in :func:`repro.serve.oracle.verify_mcp` under
the *new* weights: the fixpoint minimum at ``u`` is preserved (any old
minimizer that was a changed edge must be ``ptn[u]`` itself, pinned by
test 2; other terms are untouched, and test 1 rules out new, better
terms), the successor telescope is intact at every hop, and the
termination walk is unchanged. The test is also *exact* in the useful
direction: a clean verdict is a proof, so surviving columns are served
(with a bumped version) without recomputation — this "delta
invalidation never serves a stale column" property is what
``tests/serve/test_delta.py`` pins against the oracle.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError

__all__ = [
    "apply_edge_delta",
    "decode_edges",
    "dirty_destinations",
    "column_is_dirty",
    "certify_warm_plane",
    "certify_warm_column",
]


def decode_edges(edges, n: int, maxint: int) -> list[tuple[int, int, int]]:
    """Validate the wire edge list into ``(u, v, w)`` triples.

    ``w`` arrives as a non-negative int (new weight) or ``None`` (remove
    the edge -> ``maxint`` sentinel). Self-edges are rejected: the
    algorithm's zero diagonal is structural, not data.
    """
    if not isinstance(edges, (list, tuple)) or not edges:
        raise GraphError("edges must be a non-empty list of [u, v, w]")
    out: list[tuple[int, int, int]] = []
    for item in edges:
        if not isinstance(item, (list, tuple)) or len(item) != 3:
            raise GraphError(f"edge entry must be [u, v, w], got {item!r}")
        u, v, w = item
        try:
            u, v = int(u), int(v)
        except (TypeError, ValueError):
            raise GraphError(f"edge endpoints must be ints, got {item!r}") \
                from None
        if not (0 <= u < n and 0 <= v < n):
            raise GraphError(f"edge ({u}, {v}) outside [0, {n})^2")
        if u == v:
            raise GraphError(
                f"edge ({u}, {u}) touches the diagonal; self-costs are "
                "fixed at 0"
            )
        if w is None:
            w = maxint
        else:
            try:
                w = int(w)
            except (TypeError, ValueError):
                raise GraphError(
                    f"edge weight must be an int or null, got {item!r}"
                ) from None
            if not (0 <= w <= maxint):
                raise GraphError(
                    f"edge ({u}, {v}) weight {w} outside [0, {maxint}]"
                )
        out.append((u, v, w))
    return out


def apply_edge_delta(W: np.ndarray, edges, maxint: int) -> np.ndarray:
    """The new weight grid after applying decoded ``(u, v, w)`` triples.

    Later entries win when a delta names the same edge twice (the wire
    order is the client's statement of intent).
    """
    Wn = np.array(W, dtype=np.int64, copy=True)
    for u, v, w in edges:
        Wn[u, v] = w
    return Wn


def _sat(x: np.ndarray, maxint: int) -> np.ndarray:
    return np.minimum(x, maxint)


def column_is_dirty(edges, sow: np.ndarray, ptn: np.ndarray,
                    maxint: int) -> bool:
    """Whether one cached column can be invalidated by the delta."""
    sow = np.asarray(sow, dtype=np.int64)
    ptn = np.asarray(ptn, dtype=np.int64)
    for u, v, w in edges:
        through = int(_sat(np.int64(w) + sow[v], maxint))
        if through < sow[u]:
            return True  # better first hop out of u than the cached cost
        if int(ptn[u]) == v and through != sow[u]:
            return True  # cached tree hops u->v and the telescope broke
    return False


def dirty_destinations(edges, dist: np.ndarray, succ: np.ndarray,
                       maxint: int) -> np.ndarray:
    """Boolean ``(n,)`` mask of destinations a delta can invalidate.

    Vectorised over a full cached APSP plane (``dist[x, d]`` /
    ``succ[x, d]`` laid out as in :class:`repro.core.apsp.APSPResult`):
    one pass of the two per-column tests per changed edge.
    """
    dist = np.asarray(dist, dtype=np.int64)
    succ = np.asarray(succ, dtype=np.int64)
    n = dist.shape[0]
    dirty = np.zeros(n, dtype=bool)
    for u, v, w in edges:
        through = _sat(np.int64(w) + dist[v, :], maxint)
        dirty |= through < dist[u, :]
        dirty |= (succ[u, :] == v) & (through != dist[u, :])
    return dirty


def certify_warm_column(W_new: np.ndarray, sow: np.ndarray,
                        ptn: np.ndarray, d: int, maxint: int) -> np.ndarray:
    """Certified upper bounds on distances-to-``d`` under the new grid.

    Walks the *cached* successor tree under the *new* weights: a vertex
    whose walk telescopes edge costs all the way to ``d`` gets that path
    cost (an achievable, hence sound, warm-start bound); anything broken
    by the delta gets ``maxint``. Vectorised: n parallel walkers advance
    together, accumulating saturated edge costs.
    """
    plane = certify_warm_plane(
        W_new, np.asarray(sow)[:, None], np.asarray(ptn)[:, None],
        np.asarray([d]), maxint,
    )
    return plane[:, 0]


def certify_warm_plane(W_new: np.ndarray, dist: np.ndarray,
                       succ: np.ndarray, dests: np.ndarray,
                       maxint: int) -> np.ndarray:
    """Column-stacked :func:`certify_warm_column` for many destinations.

    ``dist``/``succ`` are ``(n, k)`` stale cached columns for the
    destinations in ``dests``; the result is the ``(n, k)`` certified
    bound plane (entries are achievable path costs under ``W_new`` or
    ``maxint``). Only the successor structure of the stale answer is
    trusted — every cost is re-accumulated from ``W_new``, so the output
    satisfies the ``warm_sow`` contract no matter how stale the input.
    """
    W_new = np.asarray(W_new, dtype=np.int64)
    succ = np.asarray(succ, dtype=np.int64)
    dist = np.asarray(dist, dtype=np.int64)
    n, k = succ.shape
    dests = np.asarray(dests, dtype=np.int64)

    pos = np.tile(np.arange(n)[:, None], (1, k))
    cost = np.zeros((n, k), dtype=np.int64)
    alive = dist < maxint  # the stale answer claimed reachability
    arrived = alive & (pos == dests[None, :])
    walking = alive & ~arrived
    cols = np.tile(np.arange(k)[None, :], (n, 1))
    for _ in range(n):
        if not walking.any():
            break
        nxt = np.where(walking, succ[pos, cols], pos)
        hop = np.where(walking, W_new[pos, nxt], 0)
        # a removed edge (maxint) kills the walker: bound stays maxint
        dead = walking & (hop >= maxint)
        walking &= ~dead
        hop = np.where(walking, hop, 0)
        cost = _sat(cost + hop, maxint)
        pos = np.where(walking, nxt, pos)
        arrived |= walking & (pos == dests[None, :])
        walking &= ~arrived
    # walkers still moving after n hops are cycling: no certificate
    out = np.full((n, k), maxint, dtype=np.int64)
    out[arrived] = cost[arrived]
    out[dests, np.arange(k)] = 0
    return out
