"""``repro.serve`` — fault-tolerant async path-query service.

The serving front end over the execution engines (ROADMAP,
"MCP-as-a-service"): a stdlib-``asyncio`` JSON-lines server answering
point-to-point, single-destination and APSP minimum-cost-path queries
over persistent named graphs, built robustness-first:

* **admission control** (:mod:`repro.serve.admission`) — a bounded
  queue with load shedding and backpressure signals on every response;
* **deadlines + retries** (:mod:`repro.serve.service`,
  :class:`~repro.resilience.BackoffPolicy`) — per-request deadlines with
  cancellation, exponential-backoff-with-jitter retries for transient
  failures;
* **graceful degradation** (:mod:`repro.serve.degrade`) — a ladder that
  downgrades engine tier (compiled → fused → cycle), worker count and
  lane batch under pressure or after failures, stamping a
  machine-readable downgrade reason on every affected response;
* **circuit breaker** (:mod:`repro.serve.breaker`) — around the sharded
  APSP worker pool, composing with the pool's own crash detection,
  respawn and shared-memory reclamation
  (:mod:`repro.engine.shard`);
* **answer verification** (:mod:`repro.serve.oracle`) — every computed
  result is checked against the Bellman fixpoint before it is served,
  which is what makes the chaos campaign's "0 silent-wrong" claim a
  theorem rather than a sample;
* **chaos harness** (:mod:`repro.serve.chaos`) — deterministic, seeded
  service-level failure injection (worker kill, slow worker, queue
  overload, PR 3 bus-fault plans) with campaign-level invariants.

See docs/robustness.md ("Serving and failure handling") for the design
and EXPERIMENTS.md (P19) for the measured SLOs; ``repro serve`` /
``repro loadgen`` are the CLI entry points.
"""

from repro.serve.admission import AdmissionController, AdmissionStats
from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.chaos import ChaosScenario, run_chaos_campaign
from repro.serve.client import ServeClient
from repro.serve.coalesce import ColumnCoalescer, CoalesceStats
from repro.serve.degrade import DegradationLadder, Rung, RUNGS
from repro.serve.delta import (
    apply_edge_delta,
    certify_warm_column,
    certify_warm_plane,
    column_is_dirty,
    decode_edges,
    dirty_destinations,
)
from repro.serve.loadgen import LoadGenResult, run_loadgen
from repro.serve.oracle import (
    bellman_reference,
    verify_apsp,
    verify_mcp,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    Request,
    Response,
    decode_line,
    encode_message,
)
from repro.serve.service import PathQueryService, ServiceConfig

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "BreakerState",
    "ChaosScenario",
    "CircuitBreaker",
    "CoalesceStats",
    "ColumnCoalescer",
    "DegradationLadder",
    "LoadGenResult",
    "PathQueryService",
    "PROTOCOL_VERSION",
    "Request",
    "Response",
    "Rung",
    "RUNGS",
    "ServeClient",
    "ServiceConfig",
    "apply_edge_delta",
    "bellman_reference",
    "certify_warm_column",
    "certify_warm_plane",
    "column_is_dirty",
    "decode_edges",
    "decode_line",
    "dirty_destinations",
    "encode_message",
    "run_chaos_campaign",
    "run_loadgen",
    "verify_apsp",
    "verify_mcp",
]
