"""Admission control: bounded queue, load shedding, backpressure.

The service admits at most ``max_inflight`` concurrently-executing
requests; up to ``max_queue`` more may wait. Anything beyond that is
**shed immediately** with a ``retry_after_ms`` hint — the server's memory
and tail latency stay bounded no matter how hard the open-loop offered
load exceeds capacity (the p99 the SLO benchmark reports is over
*admitted* requests; shed ones fail fast by design).

The controller is a plain asyncio primitive: ``acquire()`` either
returns an admission slot (possibly after queueing) or raises
:class:`QueueFull` synchronously. ``pressure`` in ``[0, 1]`` is the
queue-occupancy signal the degradation ladder consumes, and
:class:`AdmissionStats` is the running tally exported via ``stats`` /
the load generator reports.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, ReproError

__all__ = ["AdmissionController", "AdmissionStats", "QueueFull"]


class QueueFull(ReproError):
    """Raised synchronously by :meth:`AdmissionController.acquire` when
    both the execution slots and the wait queue are saturated."""

    def __init__(self, retry_after_ms: float):
        super().__init__("admission queue full")
        self.retry_after_ms = retry_after_ms


@dataclass
class AdmissionStats:
    """Monotonic admission tallies (exported via the ``stats`` op)."""

    admitted: int = 0
    shed: int = 0
    peak_queue: int = 0
    peak_inflight: int = 0
    #: work units admitted: a coalesced batch holds ONE slot but carries
    #: ``weight`` = its lane count, so ``admitted_weight / admitted`` is
    #: the average amortisation the coalescer achieved.
    admitted_weight: int = 0

    def to_dict(self) -> dict:
        return {
            "admitted": self.admitted,
            "shed": self.shed,
            "peak_queue": self.peak_queue,
            "peak_inflight": self.peak_inflight,
            "admitted_weight": self.admitted_weight,
        }


@dataclass
class AdmissionController:
    """Bounded-concurrency gate with an explicitly bounded wait queue."""

    max_inflight: int = 64
    max_queue: int = 1024
    #: baseline retry hint for shed requests; scaled by queue occupancy.
    base_retry_after_ms: float = 50.0

    _inflight: int = field(default=0, init=False)
    _waiters: list = field(default_factory=list, init=False)
    stats: AdmissionStats = field(default_factory=AdmissionStats, init=False)

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.max_queue < 0:
            raise ConfigurationError(
                f"max_queue must be >= 0, got {self.max_queue}"
            )

    # -- signals ---------------------------------------------------------

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def queue_depth(self) -> int:
        return len(self._waiters)

    @property
    def pressure(self) -> float:
        """Queue occupancy in ``[0, 1]`` — the ladder's pressure input."""
        if self.max_queue == 0:
            return 1.0 if self._inflight >= self.max_inflight else 0.0
        return min(1.0, len(self._waiters) / self.max_queue)

    def retry_after_ms(self) -> float:
        """Backpressure hint: grows with queue occupancy."""
        return self.base_retry_after_ms * (1.0 + 4.0 * self.pressure)

    def snapshot(self) -> dict:
        return {
            "inflight": self._inflight,
            "queue_depth": self.queue_depth,
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
            "pressure": round(self.pressure, 4),
            **self.stats.to_dict(),
        }

    # -- admission -------------------------------------------------------

    async def acquire(self, weight: int = 1) -> None:
        """Wait for an execution slot; raise :class:`QueueFull` if the
        wait queue is already at capacity (synchronously — a shed request
        never consumes queue memory).

        *weight* is accounting only: a coalesced batch occupies one slot
        regardless of lane count (that is the amortisation), but reports
        how many requests' worth of work the slot carries."""
        if self._inflight < self.max_inflight and not self._waiters:
            self._inflight += 1
            self._note_admitted(weight)
            return
        if len(self._waiters) >= self.max_queue:
            self.stats.shed += 1
            raise QueueFull(self.retry_after_ms())
        waiter: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters.append(waiter)
        self.stats.peak_queue = max(self.stats.peak_queue,
                                    len(self._waiters))
        try:
            await waiter
        except asyncio.CancelledError:
            if not waiter.cancelled() and waiter.done():
                # the slot was granted between cancellation and wakeup —
                # hand it to the next waiter instead of leaking it
                self._release_slot()
            else:
                try:
                    self._waiters.remove(waiter)
                except ValueError:
                    pass
            raise
        self._note_admitted(weight)

    def release(self) -> None:
        """Return an execution slot (always from a ``finally``)."""
        self._release_slot()

    def _note_admitted(self, weight: int = 1) -> None:
        self.stats.admitted += 1
        self.stats.admitted_weight += max(1, int(weight))
        self.stats.peak_inflight = max(self.stats.peak_inflight,
                                       self._inflight)

    def _release_slot(self) -> None:
        while self._waiters:
            waiter = self._waiters.pop(0)
            if not waiter.done():
                # hand the slot over: inflight count is unchanged
                waiter.set_result(None)
                return
        self._inflight -= 1
        if self._inflight < 0:  # pragma: no cover - defensive
            self._inflight = 0
