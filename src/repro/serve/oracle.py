"""Answer verification: the Bellman fixpoint as a serving invariant.

With non-negative weights the single-destination minimum-cost vector is
the *unique* fixpoint of

    sow[d] = 0
    sow[v] = min_u ( W[v, u] + sow[u] )        for v != d

(the min taken over ``u != v`` — the zero diagonal would otherwise make
any ``sow[v] = 0`` claim self-supporting), so a computed ``(sow, ptn)``
pair can be *proved* correct in O(n^2) vectorised numpy — orders of
magnitude cheaper than recomputing, and independent of which engine (or
which possibly-faulted machine) produced it. The successor array is held
to the same bar: every hop must be a real edge that closes the cost
telescope, and following it must terminate at the destination — so even
a zero-cost cycle of mutually-supporting wrong claims cannot verify. :class:`~repro.serve.service.PathQueryService` verifies every
computed answer before caching or serving it; anything that fails is
retried down the degradation ladder or reported as an ``error`` — never
served. This check is what turns the chaos campaign's "0 silent-wrong"
acceptance bar into a structural guarantee.

The functions return a list of human-readable violation strings (empty =
verified), so failures are diagnosable in logs and chaos reports.
"""

from __future__ import annotations

import numpy as np

__all__ = ["verify_mcp", "verify_apsp", "bellman_reference"]


def _min_plus_column(W: np.ndarray, sow: np.ndarray, maxint: int,
                     *, off_diagonal: bool = False) -> np.ndarray:
    """One min-plus relaxation of ``sow`` through ``W``, saturated.

    With ``off_diagonal=True`` the min excludes ``u == v``. Including the
    zero diagonal is fine for *relaxation* (``W[v,v] + sow[v]`` never
    improves anything) but fatal for *verification*: it makes
    ``min_u(W[v,u] + sow[u]) <= sow[v]`` hold trivially, so an
    underestimating ``sow`` would pass the fixpoint equality.
    """
    cand = W.astype(np.int64) + sow[np.newaxis, :]
    np.minimum(cand, maxint, out=cand)
    # entries where either leg is "infinite" must stay infinite
    cand[(W >= maxint) | (sow[np.newaxis, :] >= maxint)] = maxint
    if off_diagonal:
        n = W.shape[0]
        cand[np.arange(n), np.arange(n)] = maxint
    return np.minimum(cand.min(axis=1), maxint)


def verify_mcp(
    W: np.ndarray,
    sow: np.ndarray,
    ptn: np.ndarray,
    d: int,
    maxint: int,
) -> list[str]:
    """Violations of the Bellman fixpoint for one destination (empty=ok).

    Checks, in order: the destination's zero; saturation discipline (all
    costs in ``[0, maxint]``); the fixpoint equation at every vertex; and
    successor consistency — for every reachable non-destination vertex
    ``v``, ``sow[v] == W[v, ptn[v]] + sow[ptn[v]]`` with a reachable
    successor, so the returned *paths* (not just the costs) are optimal.
    """
    W = np.asarray(W, dtype=np.int64)
    sow = np.asarray(sow, dtype=np.int64)
    ptn = np.asarray(ptn, dtype=np.int64)
    n = W.shape[0]
    problems: list[str] = []
    if sow.shape != (n,) or ptn.shape != (n,):
        return [f"shape mismatch: W {W.shape}, sow {sow.shape}, "
                f"ptn {ptn.shape}"]
    if not 0 <= d < n:
        return [f"destination {d} out of range for n={n}"]
    if sow[d] != 0:
        problems.append(f"sow[{d}] = {int(sow[d])}, expected 0")
    if (sow < 0).any() or (sow > maxint).any():
        problems.append("sow leaves [0, maxint]")
        return problems
    expected = _min_plus_column(W, sow, maxint, off_diagonal=True)
    expected[d] = 0
    bad = np.flatnonzero(expected != sow)
    for v in bad[:4]:
        problems.append(
            f"fixpoint violated at {int(v)}: sow={int(sow[v])}, "
            f"min-plus={int(expected[v])}"
        )
    if bad.size > 4:
        problems.append(f"... and {int(bad.size) - 4} more fixpoint "
                        "violations")
    reachable = sow < maxint
    via = np.flatnonzero(reachable & (np.arange(n) != d))
    if via.size:
        succ = ptn[via]
        if (succ < 0).any() or (succ >= n).any():
            problems.append("ptn points outside the vertex range")
        else:
            edge = W[via, succ]
            hop_ok = (
                (succ != via)  # self-loops prove nothing
                & (edge < maxint)
                & (sow[succ] < maxint)
                & (sow[via] == edge + sow[succ])
            )
            bad_hop = np.flatnonzero(~hop_ok)
            if bad_hop.size:
                v = int(via[bad_hop[0]])
                problems.append(
                    f"ptn inconsistent at {v}: sow={int(sow[v])} != "
                    f"W[v,ptn]+sow[ptn] ({int(bad_hop.size)} such)"
                )
            elif not problems:
                # every hop telescopes, so if the walk also *terminates*
                # at d the claimed costs are achievable path costs; a
                # cycle here would mean mutually-supporting wrong claims
                pos = np.arange(n)
                stepping = reachable & (pos != d)
                for _ in range(n):
                    if not stepping.any():
                        break
                    pos = np.where(stepping, ptn[pos], pos)
                    stepping = reachable & (pos != d)
                stuck = np.flatnonzero(stepping)
                if stuck.size:
                    problems.append(
                        f"ptn cycles without reaching {d} from "
                        f"{int(stuck[0])} ({int(stuck.size)} such)"
                    )
    return problems


def verify_apsp(
    W: np.ndarray,
    dist: np.ndarray,
    succ: np.ndarray,
    maxint: int,
) -> list[str]:
    """Bellman-fixpoint verification of a full APSP solution (empty=ok).

    Vectorised over all destinations at once: O(n^3) numpy ops, still far
    cheaper than any engine's solve. Successor consistency is checked on
    every reachable off-diagonal pair.
    """
    W = np.asarray(W, dtype=np.int64)
    dist = np.asarray(dist, dtype=np.int64)
    succ = np.asarray(succ, dtype=np.int64)
    n = W.shape[0]
    problems: list[str] = []
    if dist.shape != (n, n) or succ.shape != (n, n):
        return [f"shape mismatch: W {W.shape}, dist {dist.shape}"]
    if (np.diagonal(dist) != 0).any():
        problems.append("diagonal of dist is not zero")
    if (dist < 0).any() or (dist > maxint).any():
        problems.append("dist leaves [0, maxint]")
        return problems
    # Fixpoint: dist == min-plus(W, dist) off-diagonal, all columns at
    # once — the min over first hops u != v (see verify_mcp on why the
    # zero diagonal must be excluded).
    cand = W[:, :, np.newaxis] + dist[np.newaxis, :, :]
    np.minimum(cand, maxint, out=cand)
    cand[(W >= maxint), :] = maxint
    inf_mid = dist >= maxint  # (u, d) legs that are infinite
    cand[:, inf_mid] = maxint
    cand[np.arange(n), np.arange(n), :] = maxint
    expected = cand.min(axis=1)
    expected[np.arange(n), np.arange(n)] = 0
    bad = np.argwhere(expected != dist)
    for v, d in bad[:4]:
        problems.append(
            f"fixpoint violated at ({int(v)} -> {int(d)}): "
            f"dist={int(dist[v, d])}, min-plus={int(expected[v, d])}"
        )
    if bad.shape[0] > 4:
        problems.append(f"... and {bad.shape[0] - 4} more fixpoint "
                        "violations")
    v_idx, d_idx = np.nonzero((dist < maxint)
                              & (np.arange(n)[:, None] != np.arange(n)))
    if v_idx.size:
        s = succ[v_idx, d_idx]
        if (s < 0).any() or (s >= n).any():
            problems.append("succ points outside the vertex range")
        else:
            edge = W[v_idx, s]
            tail = dist[s, d_idx]
            ok = (s != v_idx) & (edge < maxint) & (tail < maxint) & (
                dist[v_idx, d_idx] == edge + tail
            )
            if not ok.all():
                k = int(np.flatnonzero(~ok)[0])
                problems.append(
                    f"succ inconsistent at ({int(v_idx[k])} -> "
                    f"{int(d_idx[k])})"
                )
            elif not problems:
                # per-column successor walks must all reach the diagonal
                dest_row = np.arange(n)[np.newaxis, :]
                pos = np.tile(np.arange(n)[:, np.newaxis], (1, n))
                stepping = (dist < maxint) & (pos != dest_row)
                for _ in range(n):
                    if not stepping.any():
                        break
                    pos = np.where(stepping, succ[pos, dest_row], pos)
                    stepping = (dist < maxint) & (pos != dest_row)
                stuck = np.argwhere(stepping)
                if stuck.size:
                    v, d = stuck[0]
                    problems.append(
                        f"succ cycles without reaching the destination "
                        f"({int(v)} -> {int(d)}, {stuck.shape[0]} such)"
                    )
    return problems


def bellman_reference(W: np.ndarray, d: int, maxint: int) -> np.ndarray:
    """Plain-numpy Bellman-Ford costs to ``d`` (load-generator oracle)."""
    W = np.asarray(W, dtype=np.int64)
    n = W.shape[0]
    sow = np.full(n, maxint, dtype=np.int64)
    sow[d] = 0
    for _ in range(n):
        relaxed = _min_plus_column(W, sow, maxint)
        relaxed[d] = 0
        nxt = np.minimum(sow, relaxed)
        if np.array_equal(nxt, sow):
            break
        sow = nxt
    return sow
