"""Request coalescing: lane-batched micro-batching + single-flight dedup.

The paper's one trick is amortising a relaxation round across an entire
processor array; PR 2 extended the same amortisation across *query
lanes* (batched APSP). This module applies it to the serving tier's
request stream: concurrent column queries against the same graph
version are collected for a short window (``coalesce_window_ms``, or
until ``max_lanes`` distinct destinations are waiting) and dispatched
as **one** ``batched_minimum_cost_path`` run, each lane's column fanned
back to its waiting requests. Because batched lanes are bit-identical
to serial runs (pinned since PR 2), coalescing changes *only* the
throughput — every answer, digest and cache entry is byte-for-byte what
the serial path would have produced.

Single-flight deduplication rides on the same bookkeeping: all waiters
for one ``(graph, version, dest)`` share one per-destination future, so
identical in-flight requests — the pathological hot-key shape that
races past an LRU — cost one lane total, whether they arrived in the
same collection window or while the batch was already computing. Every
waiter receives the *same* payload object: bit-identical fan-out is
structural, not a property to test for.

The coalescer owns collection, dedup and statistics only; admission,
the degradation-ladder retry loop and the actual engine dispatch stay
in :class:`~repro.serve.service.PathQueryService` (injected here as the
``dispatch`` coroutine). All methods run on the event loop.

Waiter futures resolve to a small outcome dict: ``{"status": "ok",
"payload": {...}}`` with the per-column payload (``sow``/``ptn``/
``iterations``/``engine``/``degraded``/``batched_with``/``attempts``/
``queued_ms``), or ``{"status": "shed"|"deadline"|"error", ...}`` when
the whole batch failed. Per-request deadlines stay per-request: a
waiter that cannot wait any longer abandons its future (the batch keeps
computing for the others and still warms the cache).
"""

from __future__ import annotations

import asyncio
import functools
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable

__all__ = ["ColumnCoalescer", "CoalesceStats"]


@dataclass
class CoalesceStats:
    """Monotonic coalescer tallies (exported via the ``stats`` op)."""

    #: batches dispatched (each consumes one admission slot).
    batches: int = 0
    #: column requests that entered the coalescer.
    requests: int = 0
    #: requests that shared a batch with at least one other request.
    coalesced_requests: int = 0
    #: requests answered by an already-pending identical (graph,
    #: version, dest) computation instead of a new lane.
    single_flight_hits: int = 0
    #: batches flushed because they reached ``max_lanes``.
    flushed_full: int = 0
    #: batches flushed by the collection-window timer.
    flushed_window: int = 0
    #: dispatch tasks that died with an unexpected exception (their
    #: waiters are resolved with an error outcome, never stranded).
    dispatch_errors: int = 0
    #: lane-fill histogram: batch size (distinct destinations) -> count.
    lane_fill: dict = field(default_factory=dict)

    def record_flush(self, lanes: int, reason: str) -> None:
        self.batches += 1
        if reason == "full":
            self.flushed_full += 1
        else:
            self.flushed_window += 1
        key = str(lanes)
        self.lane_fill[key] = self.lane_fill.get(key, 0) + 1

    def to_dict(self) -> dict:
        return {
            "batches": self.batches,
            "requests": self.requests,
            "coalesced_requests": self.coalesced_requests,
            "single_flight_hits": self.single_flight_hits,
            "flushed_full": self.flushed_full,
            "flushed_window": self.flushed_window,
            "dispatch_errors": self.dispatch_errors,
            "lane_fill": dict(sorted(self.lane_fill.items(),
                                     key=lambda kv: int(kv[0]))),
        }


class _PendingBatch:
    """One graph-version batch still collecting destinations."""

    __slots__ = ("graph", "waiters", "deadline_at", "timer", "sizes")

    def __init__(self, graph: Any):
        self.graph = graph
        #: dest -> shared per-destination future
        self.waiters: dict[int, asyncio.Future] = {}
        self.deadline_at = 0.0
        self.timer: asyncio.Task | None = None
        #: dest -> number of requests sharing that future (for stats)
        self.sizes: dict[int, int] = {}


class ColumnCoalescer:
    """Per-graph-version micro-batching queue with single-flight dedup."""

    def __init__(
        self,
        dispatch: Callable[[Any, dict[int, asyncio.Future], float],
                           Awaitable[None]],
        *,
        window_ms: float = 2.0,
        max_lanes: int = 32,
    ):
        if window_ms < 0:
            raise ValueError(f"window_ms must be >= 0, got {window_ms}")
        if max_lanes < 1:
            raise ValueError(f"max_lanes must be >= 1, got {max_lanes}")
        self._dispatch = dispatch
        self.window_ms = float(window_ms)
        self.max_lanes = int(max_lanes)
        self.stats = CoalesceStats()
        self._pending: dict[tuple, _PendingBatch] = {}
        #: (name, version, dest) -> future, from collection until resolved
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._tasks: set[asyncio.Task] = set()
        self._closed = False

    # -- joining ---------------------------------------------------------

    def join(self, g: Any, dest: int, deadline_at: float
             ) -> tuple[asyncio.Future, bool]:
        """``(future, single_flight)`` answering ``dest`` on graph *g*.

        Joins the pending batch for ``(g.name, g.version)`` (creating
        one, and its window timer, if absent), or an identical
        already-in-flight computation — in which case ``single_flight``
        is True and the future is the one the earlier request waits on.
        """
        if self._closed:
            raise RuntimeError("coalescer is closed")
        self.stats.requests += 1
        flight_key = (g.name, g.version, dest)
        existing = self._inflight.get(flight_key)
        if existing is not None:
            self.stats.single_flight_hits += 1
            batch = self._pending.get((g.name, g.version))
            if batch is not None and dest in batch.waiters:
                # still collecting: extend the batch deadline and tally
                batch.deadline_at = max(batch.deadline_at, deadline_at)
                batch.sizes[dest] = batch.sizes.get(dest, 1) + 1
            return existing, True

        key = (g.name, g.version)
        batch = self._pending.get(key)
        if batch is None:
            batch = _PendingBatch(g)
            self._pending[key] = batch
            if self.window_ms > 0:
                batch.timer = asyncio.ensure_future(
                    self._window_flush(key)
                )

        future: asyncio.Future = asyncio.get_running_loop().create_future()
        batch.waiters[dest] = future
        batch.sizes[dest] = 1
        batch.deadline_at = max(batch.deadline_at, deadline_at)
        self._inflight[flight_key] = future
        future.add_done_callback(
            lambda _f, k=flight_key: self._inflight.pop(k, None)
        )

        if len(batch.waiters) >= self.max_lanes or self.window_ms == 0:
            self._flush(key, "full")
        return future, False

    # -- flushing --------------------------------------------------------

    async def _window_flush(self, key: tuple) -> None:
        try:
            await asyncio.sleep(self.window_ms / 1e3)
        except asyncio.CancelledError:
            return
        self._flush(key, "window", from_timer=True)

    def _flush(self, key: tuple, reason: str, *,
               from_timer: bool = False) -> None:
        batch = self._pending.pop(key, None)
        if batch is None:
            return
        if batch.timer is not None and not from_timer:
            batch.timer.cancel()
        lanes = len(batch.waiters)
        self.stats.record_flush(lanes, reason)
        riders = sum(batch.sizes.values())
        if lanes < riders or lanes > 1:
            self.stats.coalesced_requests += riders
        task = asyncio.ensure_future(
            self._dispatch(batch.graph, batch.waiters, batch.deadline_at)
        )
        self._tasks.add(task)
        task.add_done_callback(
            functools.partial(self._dispatch_done, batch.waiters)
        )

    def _dispatch_done(self, waiters: dict[int, asyncio.Future],
                       task: "asyncio.Task") -> None:
        """Consume the dispatch task's outcome (host-orphan-task).

        A dispatch that dies with an unexpected exception (or is
        cancelled mid-shutdown) must not strand its waiters on futures
        nobody will ever resolve: every still-pending waiter gets an
        error outcome and the failure is tallied.
        """
        self._tasks.discard(task)
        if task.cancelled():
            detail = "batch dispatch cancelled"
        else:
            exc = task.exception()
            if exc is None:
                return
            detail = f"batch dispatch failed: {exc!r}"
        self.stats.dispatch_errors += 1
        for future in waiters.values():
            if not future.done():
                future.set_result({"status": "error", "error": detail})

    # -- lifecycle -------------------------------------------------------

    async def drain(self) -> None:
        """Flush everything pending and await all in-flight batches."""
        self._closed = True
        for key in list(self._pending):
            self._flush(key, "window")
        while self._tasks:
            await asyncio.gather(*list(self._tasks),
                                 return_exceptions=True)
        self._closed = False

    def snapshot(self) -> dict:
        return {
            **self.stats.to_dict(),
            "pending_batches": len(self._pending),
            "inflight_columns": len(self._inflight),
            "window_ms": self.window_ms,
            "max_lanes": self.max_lanes,
        }
